/// \file surrogate_codesign.cpp
/// The paper's full study: simulate the complete 416-configuration
/// design space for Graph500 BFS, train all four model families, print
/// Table I, and emit both simulated and surrogate-driven
/// recommendations.  Optionally saves the dataset as CSV.
///
/// Usage: surrogate_codesign [--vertices 1024] [--csv dataset.csv]
///                           [--trace-dir DIR]

#include <iostream>

#include "gmd/common/cli.hpp"
#include "gmd/common/error.hpp"
#include "gmd/dse/dataset_builder.hpp"
#include "gmd/dse/report.hpp"
#include "gmd/dse/workflow.hpp"

int main(int argc, char** argv) {
  using namespace gmd;

  CliParser cli("surrogate_codesign",
                "full 416-point ML-based design space exploration");
  cli.add_option("vertices", "1024", "graph size (paper value: 1024)")
      .add_option("edge-factor", "16", "edges per vertex (paper value: 16)")
      .add_option("csv", "", "write the sweep dataset to this CSV path")
      .add_option("trace-dir", "",
                  "round-trip the trace through gem5/NVMain format files "
                  "in this directory")
      .add_option("trace-format", "text",
                  "on-disk trace container under --trace-dir: text | gmdt")
      .add_option("report", "", "write a markdown study report to this path")
      .add_option("seed", "1", "random seed")
      .add_option("policy", "failfast",
                  "sweep failure policy: failfast | skip | retry")
      .add_option("checkpoint", "",
                  "journal completed sweep rows to this file")
      .add_flag("resume", "resume from an existing --checkpoint journal");
  try {
    if (!cli.parse(argc, argv)) return 0;

    dse::WorkflowConfig config;
    config.graph_vertices = static_cast<std::uint32_t>(cli.get_int("vertices"));
    config.edge_factor = static_cast<unsigned>(cli.get_int("edge-factor"));
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    config.trace_dir = cli.get_string("trace-dir");
    config.trace_format = cli.get_string("trace-format");
    config.log_progress = true;
    // Full paper design space (design_points left empty).

    const std::string policy = cli.get_string("policy");
    if (policy == "skip") {
      config.sweep.failure_policy = dse::FailurePolicy::kSkip;
    } else if (policy == "retry") {
      config.sweep.failure_policy = dse::FailurePolicy::kRetry;
    } else if (policy != "failfast") {
      throw Error(ErrorCode::kConfig, "unknown failure policy '" + policy +
                                          "' (failfast|skip|retry)");
    }
    config.sweep.checkpoint_path = cli.get_string("checkpoint");
    config.sweep.resume = cli.get_flag("resume");

    const dse::WorkflowResult result = dse::run_workflow(config);
    std::cout << result.report() << "\n";

    // Surrogate-driven recommendation over the same space: what the
    // trained model would pick without consulting the simulator.  Only
    // rows that actually simulated feed the model or the dataset.
    const std::vector<dse::SweepRow> completed = result.ok_rows();
    std::vector<dse::DesignPoint> candidates;
    candidates.reserve(result.sweep.size());
    for (const auto& row : result.sweep) candidates.push_back(row.point);
    const auto surrogate_recs =
        dse::recommend_from_surrogate(completed, candidates, "svr");
    std::cout << "Surrogate-predicted optima (no further simulation):\n"
              << dse::format_recommendations(surrogate_recs);

    const std::string csv_path = cli.get_string("csv");
    if (!csv_path.empty()) {
      dse::sweep_to_table(completed).save(csv_path);
      std::cout << "\ndataset written to " << csv_path << "\n";
    }
    const std::string report_path = cli.get_string("report");
    if (!report_path.empty()) {
      dse::save_markdown_report(report_path, result);
      std::cout << "study report written to " << report_path << "\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
