/// \file active_learning_dse.cpp
/// Label-efficient DSE (the paper's §V future work): instead of
/// simulating all configurations, an active learner picks which
/// configuration to simulate next by GP predictive variance, and is
/// compared against random sampling at every budget level.
///
/// Usage: active_learning_dse [--metric power_w] [--budget 60]

#include <iomanip>
#include <iostream>

#include "gmd/common/cli.hpp"
#include "gmd/common/error.hpp"
#include "gmd/dse/active_learning.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/workflow.hpp"

int main(int argc, char** argv) {
  using namespace gmd;

  CliParser cli("active_learning_dse",
                "active-learning vs random-sampling DSE comparison");
  cli.add_option("metric", "total_latency_cycles",
                 "target metric (see dataset columns)")
      .add_option("vertices", "256", "graph size")
      .add_option("budget", "60", "total simulation (label) budget")
      .add_option("initial", "8", "random initial labels")
      .add_option("batch", "4", "labels acquired per round")
      .add_option("seed", "1", "random seed");
  try {
    if (!cli.parse(argc, argv)) return 0;

    dse::WorkflowConfig config;
    config.graph_vertices = static_cast<std::uint32_t>(cli.get_int("vertices"));
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    const auto trace = dse::generate_workload_trace(config);

    // Oracle: pre-simulate the whole (reduced) space, then hide labels.
    const auto all = dse::run_sweep(dse::reduced_design_space(), trace);
    std::vector<dse::SweepRow> pool, holdout;
    for (std::size_t i = 0; i < all.size(); ++i) {
      (i % 4 == 0 ? holdout : pool).push_back(all[i]);
    }
    std::cout << "pool: " << pool.size() << " configurations, holdout: "
              << holdout.size() << "\n\n";

    dse::ActiveLearningOptions options;
    options.initial_labels = static_cast<std::size_t>(cli.get_int("initial"));
    options.label_budget = static_cast<std::size_t>(cli.get_int("budget"));
    options.batch_size = static_cast<std::size_t>(cli.get_int("batch"));
    options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));

    const std::string metric = cli.get_string("metric");
    const auto active =
        dse::run_active_learning(pool, holdout, metric, options);
    const auto random =
        dse::run_random_sampling(pool, holdout, metric, options);

    std::cout << "metric: " << metric << "\n";
    std::cout << std::setw(8) << "labels" << std::setw(14) << "active R2"
              << std::setw(14) << "random R2" << "\n";
    for (std::size_t i = 0; i < active.curve.size(); ++i) {
      std::cout << std::setw(8) << active.curve[i].labels_used << std::fixed
                << std::setprecision(4) << std::setw(14)
                << active.curve[i].r2_on_holdout << std::setw(14)
                << (i < random.curve.size() ? random.curve[i].r2_on_holdout
                                            : 0.0)
                << "\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
