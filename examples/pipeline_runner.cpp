/// \file pipeline_runner.cpp
/// Crash-safe pipeline driver: runs the five-stage orchestrator
/// (cpusim -> pack -> sweep -> train -> recommend) over an output
/// directory, journaling every stage in manifest.txt so `--resume`
/// picks up exactly where a previous (possibly killed) run stopped.
///
/// Typical round trip:
///
///   pipeline_runner --out-dir run1                  # full run
///   pipeline_runner --out-dir run1 --resume         # all stages skip
///
/// Fault injection for resilience testing (used by scripts/check.sh and
/// CI): `--kill-stage NAME` SIGKILL-exits the process right before that
/// stage runs; `--kill-after-points N` kills mid-sweep after N points
/// have started; `--fail-stage NAME` throws a typed error instead.  A
/// killed run resumed with `--resume` must produce artifacts
/// bit-identical to an uninterrupted run.
///
/// Usage: pipeline_runner [--out-dir DIR] [--vertices N] [--workload W]
///          [--resume] [--stage-budget-ms MS] [--deadline-ms MS]
///          [--kill-stage NAME] [--kill-after-points N]
///          [--fail-stage NAME] [--summary-only]

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <memory>

#include "gmd/common/cli.hpp"
#include "gmd/common/error.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/pipeline/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace gmd;

  CliParser cli("pipeline_runner",
                "crash-safe co-design pipeline with kill-and-resume");
  cli.add_option("out-dir", "pipeline-out", "artifact + manifest directory")
      .add_option("vertices", "192", "graph size (paper uses 1024)")
      .add_option("edge-factor", "8", "edges per vertex")
      .add_option("workload", "bfs", "bfs|dobfs|pagerank|cc|sssp|triangles")
      .add_option("seed", "1", "random seed")
      .add_option("threads", "0", "worker threads (0 = hardware)")
      .add_option("space", "reduced", "design space: reduced | paper")
      .add_option("deadline-ms", "0",
                  "whole-pipeline wall budget in ms (0 = unlimited)")
      .add_option("stage-budget-ms", "0",
                  "per-stage wall budget in ms (0 = unlimited)")
      .add_option("kill-stage", "",
                  "fault injection: _Exit(137) right before this stage")
      .add_option("kill-after-points", "0",
                  "fault injection: _Exit(137) after N sweep points start")
      .add_option("fail-stage", "",
                  "fault injection: throw right before this stage")
      .add_option("sim-workers", "1",
                  "channel-parallel threads per sweep simulation "
                  "(bit-identical results)")
      .add_option("sweep-processes", "0",
                  "worker PROCESSES for the sweep stage (0 = in-process; "
                  ">0 runs the lease-based distributed sweep, which "
                  "survives SIGKILLed workers)")
      .add_option("sample-fraction", "1.0",
                  "chunk-sampled sweep: fraction of store chunks per point "
                  "(1.0 = exhaustive; changes the sweep stage identity)")
      .add_option("sample-seed", "1", "seed of the sampled chunk subset")
      .add_flag("resume", "skip stages whose manifest entries verify")
      .add_flag("summary-only", "print only the one-line stage summary");
  try {
    if (!cli.parse(argc, argv)) return 0;

    pipeline::PipelineOptions options;
    options.out_dir = cli.get_string("out-dir");
    options.graph_vertices =
        static_cast<std::uint32_t>(cli.get_int("vertices"));
    options.edge_factor = static_cast<unsigned>(cli.get_int("edge-factor"));
    options.workload = cli.get_string("workload");
    options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    options.num_threads = static_cast<std::size_t>(cli.get_int("threads"));
    options.resume = cli.get_flag("resume");

    const std::string space = cli.get_string("space");
    GMD_REQUIRE_AS(ErrorCode::kConfig,
                   space == "reduced" || space == "paper",
                   "--space must be 'reduced' or 'paper', got '" << space
                                                                 << "'");
    options.design_points = space == "paper" ? dse::paper_design_space()
                                             : dse::reduced_design_space();
    // Survive injected per-point faults instead of aborting the sweep.
    options.sweep.failure_policy = dse::FailurePolicy::kRetry;
    options.sweep.sim_workers =
        static_cast<std::uint32_t>(cli.get_int("sim-workers"));
    options.sweep_processes =
        static_cast<std::size_t>(cli.get_int("sweep-processes"));
    options.sweep.sample_fraction = cli.get_double("sample-fraction");
    options.sweep.sample_seed =
        static_cast<std::uint64_t>(cli.get_int("sample-seed"));

    const auto stage_budget =
        std::chrono::milliseconds(cli.get_int("stage-budget-ms"));
    options.budgets.cpusim = stage_budget;
    options.budgets.pack = stage_budget;
    options.budgets.sweep = stage_budget;
    options.budgets.train = stage_budget;
    options.budgets.recommend = stage_budget;

    const auto deadline_ms =
        std::chrono::milliseconds(cli.get_int("deadline-ms"));
    std::unique_ptr<Deadline> pipeline_deadline;
    if (deadline_ms.count() > 0) {
      pipeline_deadline = std::make_unique<Deadline>(
          std::chrono::nanoseconds(deadline_ms));
      options.cancel = pipeline_deadline.get();
    }

    // Deterministic fault injection.  _Exit skips every destructor and
    // atexit handler — the closest portable stand-in for SIGKILL, so
    // no writer gets a chance to flush or rename on the way down.
    const std::string kill_stage = cli.get_string("kill-stage");
    const std::string fail_stage = cli.get_string("fail-stage");
    if (!kill_stage.empty() || !fail_stage.empty()) {
      options.stage_hook = [kill_stage, fail_stage](const std::string& name) {
        if (name == kill_stage) {
          std::cerr << "[fault] killing before stage '" << name << "'\n";
          std::_Exit(137);
        }
        if (name == fail_stage) {
          throw Error(ErrorCode::kSimulation,
                      "injected failure before stage '" + name + "'");
        }
      };
    }
    const auto kill_after_points = cli.get_int("kill-after-points");
    auto points_started = std::make_shared<std::atomic<std::int64_t>>(0);
    if (kill_after_points > 0) {
      options.sweep_fault_hook = [kill_after_points, points_started](
                                     std::size_t, std::uint32_t) {
        if (points_started->fetch_add(1) + 1 >= kill_after_points) {
          std::cerr << "[fault] killing after " << kill_after_points
                    << " sweep points started\n";
          std::_Exit(137);
        }
      };
    }

    const pipeline::PipelineResult result = pipeline::run_pipeline(options);
    std::cout << result.summary() << "\n";
    if (!cli.get_flag("summary-only")) {
      std::cout << "artifacts:\n"
                << "  trace:           " << result.trace_path << "\n"
                << "  store:           " << result.store_path << "\n"
                << "  sweep csv:       " << result.sweep_csv << "\n"
                << "  table I:         " << result.table1_path << "\n"
                << "  recommendations: " << result.recommendations_path
                << "\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
