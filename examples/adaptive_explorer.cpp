/// \file adaptive_explorer.cpp
/// Closed-loop surrogate-guided design-space exploration: stream a
/// lazy (up to 10^6-point) space through the fitted surrogate, acquire
/// a batch per round, simulate only the acquired points, and emit the
/// final top-k recommendation plus Pareto fronts over everything
/// simulated.
///
/// Usage: adaptive_explorer [--workload bfs|dobfs|pagerank|cc|sssp|triangles]
///                          [--vertices N] [--space paper|reduced|million]
///                          [--metric NAME] [--model gp|rf]
///                          [--acquisition variance|ei|best]
///                          [--initial N] [--batch N] [--rounds N]
///                          [--budget N] [--top-k N] [--seed N]
///                          [--threads N] [--block N]
///                          [--run-dir DIR] [--resume]
///                          [--kill-after-round N]
///                          [--out-dir DIR] [--agreement]
///
/// With --run-dir every round's acquisition is journaled before its
/// simulations run, so `--run-dir DIR --resume` after a SIGKILL (or a
/// --kill-after-round N rehearsal, which _Exit(137)s once N rounds have
/// completed) replays the journal and lands on the bit-identical final
/// result — the CSVs under --out-dir match a never-killed run byte for
/// byte.
///
/// --agreement additionally sweeps the WHOLE space exhaustively (small
/// spaces only) and reports the fraction of the true top-k the explorer
/// recovered with its simulation budget.

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <vector>

#include "gmd/common/cli.hpp"
#include "gmd/common/error.hpp"
#include "gmd/dse/explorer.hpp"
#include "gmd/dse/lazy_space.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/dse/workflow.hpp"

namespace {

using namespace gmd;

dse::LazySpace build_space(const std::string& name) {
  if (name == "paper") return dse::LazySpace::paper();
  if (name == "reduced") return dse::LazySpace::reduced();
  if (name == "million") return dse::LazySpace(dse::LazySpace::million_axes());
  throw Error(ErrorCode::kConfig,
              "unknown space '" + name + "' (paper|reduced|million)");
}

std::size_t metric_column(const std::string& metric) {
  const auto& names = memsim::MemoryMetrics::metric_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == metric) return i;
  }
  throw Error(ErrorCode::kConfig, "unknown metric '" + metric + "'");
}

/// CSV writers print doubles at round-trip precision so a resumed run's
/// files are byte-identical to an uninterrupted one.
void open_csv(std::ofstream& out, const std::string& path) {
  out.open(path);
  GMD_REQUIRE(out.good(), "cannot write '" << path << "'");
  out << std::setprecision(17);
}

void write_result_csv(const std::string& path, const dse::LazySpace& space,
                      const dse::ExplorerResult& result,
                      const std::string& metric) {
  std::ofstream out;
  open_csv(out, path);
  std::vector<std::size_t> labeled_indices;  // already sorted ascending
  labeled_indices.reserve(result.labeled.size());
  for (const auto& [index, row] : result.labeled) {
    labeled_indices.push_back(index);
  }
  out << "rank,space_index,id,source," << metric << "\n";
  for (std::size_t rank = 0; rank < result.top.size(); ++rank) {
    const dse::ScoredPoint& pick = result.top[rank];
    const bool observed = std::binary_search(
        labeled_indices.begin(), labeled_indices.end(), pick.index);
    out << (rank + 1) << "," << pick.index << "," << space[pick.index].id()
        << "," << (observed ? "observed" : "predicted") << "," << pick.score
        << "\n";
  }
}

void write_front_csvs(const std::string& dir,
                      const dse::ExplorerResult& result) {
  for (const dse::ParetoFrontPair& front : result.fronts) {
    const std::size_t col_a = metric_column(front.metric_a);
    const std::size_t col_b = metric_column(front.metric_b);
    std::ofstream out;
    open_csv(out,
             dir + "/front_" + front.metric_a + "__" + front.metric_b +
                 ".csv");
    out << "space_index,id," << front.metric_a << "," << front.metric_b
        << "\n";
    for (const std::size_t entry : front.entries) {
      const auto& [index, row] = result.labeled[entry];
      const std::vector<double> values = row.metrics.metric_values();
      out << index << "," << row.point.id() << "," << values[col_a] << ","
          << values[col_b] << "\n";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmd;

  CliParser cli("adaptive_explorer",
                "surrogate-guided closed-loop design-space exploration");
  cli.add_option("workload", "bfs",
                 "bfs | dobfs | pagerank | cc | sssp | triangles")
      .add_option("vertices", "256", "graph size")
      .add_option("space", "reduced",
                  "design space: paper (416) | reduced (96) | "
                  "million (lazy 10^6 grid)")
      .add_option("metric", "total_latency_cycles",
                  "target metric driving acquisition")
      .add_option("model", "gp", "surrogate family: gp | rf")
      .add_option("acquisition", "ei",
                  "acquisition: variance | ei | best")
      .add_option("initial", "32", "deterministic seed sample size")
      .add_option("batch", "16", "points acquired per round")
      .add_option("rounds", "8", "acquisition rounds after the seed")
      .add_option("budget", "128", "total simulations, seed included")
      .add_option("top-k", "10", "final recommendation size")
      .add_option("seed", "1", "run seed")
      .add_option("threads", "1", "scoring threads (0: hardware)")
      .add_option("block", "8192", "streaming block size in rows")
      .add_option("run-dir", "",
                  "journal directory enabling kill-and-resume")
      .add_flag("resume", "resume a killed run from --run-dir")
      .add_option("kill-after-round", "0",
                  "fault injection: _Exit(137) once this many rounds "
                  "have completed (0: never)")
      .add_option("out-dir", "",
                  "write result.csv and front_*.csv here "
                  "(defaults to --run-dir)")
      .add_flag("agreement",
                "also sweep the space exhaustively and report top-k "
                "agreement (small spaces only)");
  try {
    if (!cli.parse(argc, argv)) return 0;

    dse::WorkflowConfig config;
    config.graph_vertices = static_cast<std::uint32_t>(cli.get_int("vertices"));
    config.workload = cli.get_string("workload");
    const auto trace = dse::generate_workload_trace(config);

    const dse::LazySpace space = build_space(cli.get_string("space"));
    std::cout << "workload '" << config.workload << "': " << trace.size()
              << " events; space '" << cli.get_string("space") << "': "
              << space.size() << " points\n";

    dse::ExplorerOptions options;
    options.metric = cli.get_string("metric");
    options.model = cli.get_string("model");
    options.acquisition = dse::parse_acquisition(cli.get_string("acquisition"));
    options.initial_samples = static_cast<std::size_t>(cli.get_int("initial"));
    options.batch_size = static_cast<std::size_t>(cli.get_int("batch"));
    options.max_rounds = static_cast<std::size_t>(cli.get_int("rounds"));
    options.simulation_budget =
        static_cast<std::size_t>(cli.get_int("budget"));
    options.top_k = static_cast<std::size_t>(cli.get_int("top-k"));
    options.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    options.num_threads = static_cast<std::size_t>(cli.get_int("threads"));
    options.block_size = static_cast<std::size_t>(cli.get_int("block"));
    options.run_dir = cli.get_string("run-dir");
    options.resume = cli.get_flag("resume");

    const std::size_t kill_after =
        static_cast<std::size_t>(cli.get_int("kill-after-round"));
    if (kill_after > 0) {
      GMD_REQUIRE(!options.run_dir.empty(),
                  "--kill-after-round needs --run-dir to resume from");
      options.round_hook = [kill_after](std::size_t completed) {
        if (completed >= kill_after) {
          std::cout << "killed after round " << completed << "\n"
                    << std::flush;
          std::_Exit(137);
        }
      };
    }

    const dse::ExplorerResult result = run_explorer(space, trace, options);

    std::cout << "\nrounds:\n";
    for (const dse::ExplorerRound& round : result.rounds) {
      std::cout << "  round " << round.round << ": acquired "
                << round.acquired.size() << ", simulated "
                << round.newly_simulated << ", best " << options.metric
                << " = " << round.best_value << "\n";
    }
    std::cout << "simulated " << result.labeled.size() << " / "
              << result.space_size << " points; streamed "
              << result.stream.scored << " candidate scores in "
              << result.stream.blocks << " blocks\n";

    std::cout << "\ntop-" << result.top.size() << " by " << options.metric
              << ":\n";
    for (std::size_t rank = 0; rank < result.top.size(); ++rank) {
      const dse::ScoredPoint& pick = result.top[rank];
      std::cout << "  " << std::setw(2) << (rank + 1) << ". "
                << space[pick.index].id() << "  " << pick.score << "\n";
    }
    for (const dse::ParetoFrontPair& front : result.fronts) {
      std::cout << "front " << front.metric_a << " vs " << front.metric_b
                << ": " << front.entries.size() << " points\n";
    }

    std::string out_dir = cli.get_string("out-dir");
    if (out_dir.empty()) out_dir = options.run_dir;
    if (!out_dir.empty()) {
      std::filesystem::create_directories(out_dir);
      write_result_csv(out_dir + "/result.csv", space, result,
                       options.metric);
      write_front_csvs(out_dir, result);
      std::cout << "wrote result.csv and " << result.fronts.size()
                << " front CSVs to '" << out_dir << "'\n";
    }

    if (cli.get_flag("agreement")) {
      GMD_REQUIRE(space.size() <= 100000,
                  "--agreement sweeps the whole space; pick a small one");
      dse::SweepOptions sweep;
      const std::vector<dse::SweepRow> rows =
          dse::run_sweep(space.materialize(), trace, sweep);
      const std::vector<std::size_t> truth =
          dse::exhaustive_topk(rows, options.metric, options.top_k);
      std::vector<std::size_t> picks;
      for (const dse::ScoredPoint& pick : result.top) {
        picks.push_back(pick.index);
      }
      const double agreement = dse::topk_agreement(picks, truth);
      std::cout << "\nexhaustive sweep: " << rows.size()
                << " simulations; top-" << options.top_k
                << " agreement = " << agreement << "\n";
      GMD_REQUIRE(agreement >= 0.9,
                  "explorer missed the exhaustive top-" << options.top_k
                  << " (agreement " << agreement << " < 0.9)");
    }
    return 0;
  } catch (const Error& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}
