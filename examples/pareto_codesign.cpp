/// \file pareto_codesign.cpp
/// Multi-objective co-design on top of the paper's sweep: compute the
/// power/latency/bandwidth Pareto front and answer constrained queries
/// like "fastest memory under a power cap" — the decision step an
/// architect runs after the per-metric recommendations.
///
/// Usage: pareto_codesign [--vertices 512] [--power-cap 0.12]

#include <iostream>

#include "gmd/common/cli.hpp"
#include "gmd/common/error.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/pareto.hpp"
#include "gmd/dse/workflow.hpp"

int main(int argc, char** argv) {
  using namespace gmd;

  CliParser cli("pareto_codesign", "multi-objective memory co-design");
  cli.add_option("vertices", "512", "graph size")
      .add_option("workload", "bfs", "bfs | dobfs | pagerank | cc | sssp | triangles")
      .add_option("power-cap", "0.12", "power budget in W per channel");
  try {
    if (!cli.parse(argc, argv)) return 0;

    dse::WorkflowConfig config;
    config.graph_vertices = static_cast<std::uint32_t>(cli.get_int("vertices"));
    config.workload = cli.get_string("workload");
    const auto trace = dse::generate_workload_trace(config);
    const auto rows = dse::run_sweep(dse::reduced_design_space(), trace);

    const std::vector<dse::Objective> objectives = {
        dse::Objective("power_w"), dse::Objective("total_latency_cycles"),
        dse::Objective("bandwidth_mbs")};
    const auto front = dse::pareto_front(rows, objectives);
    std::cout << dse::format_pareto_front(rows, front, objectives) << "\n";

    const double cap = cli.get_double("power-cap");
    const std::vector<dse::Constraint> constraints = {
        {"power_w", cap, /*is_upper_bound=*/true}};
    const auto best = dse::best_under_constraints(
        rows, dse::Objective("total_latency_cycles"), constraints);
    if (best) {
      const auto& row = rows[*best];
      std::cout << "Fastest memory under " << cap << " W/channel: "
                << row.point.id() << " (total latency "
                << row.metrics.avg_total_latency_cycles << " cycles, power "
                << row.metrics.avg_power_per_channel_w << " W)\n";
    } else {
      std::cout << "No configuration satisfies the " << cap
                << " W/channel power cap.\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
