/// \file graph500_runner.cpp
/// The Graph500 benchmark driver the paper could not run inside gem5
/// (§III-D): Kronecker generation, 64 validated BFS searches, TEPS
/// statistics — runnable standalone on the host, or used as a workload
/// source for the co-design flow.
///
/// Usage: graph500_runner [--scale 12] [--edge-factor 16] [--roots 64]

#include <iostream>

#include "gmd/common/cli.hpp"
#include "gmd/common/error.hpp"
#include "gmd/graph/graph500.hpp"

int main(int argc, char** argv) {
  using namespace gmd;

  CliParser cli("graph500_runner", "Graph500-style BFS benchmark");
  cli.add_option("scale", "12", "log2 of the vertex count")
      .add_option("edge-factor", "16", "edges per vertex")
      .add_option("roots", "64", "number of BFS searches")
      .add_option("seed", "1", "random seed")
      .add_flag("no-validate", "skip per-search result validation");
  try {
    if (!cli.parse(argc, argv)) return 0;

    graph::Graph500Params params;
    params.scale = static_cast<unsigned>(cli.get_int("scale"));
    params.edge_factor = static_cast<unsigned>(cli.get_int("edge-factor"));
    params.num_roots = static_cast<unsigned>(cli.get_int("roots"));
    params.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    params.validate = !cli.get_flag("no-validate");

    const graph::Graph500Result result = graph::run_graph500(params);
    std::cout << result.summary();
    return result.validation_failures == 0 ? 0 : 2;
  } catch (const Error& e) {
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
