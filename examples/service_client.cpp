/// \file service_client.cpp
/// End-to-end driver and smoke test for the gmd_serve daemon.  Builds a
/// small BFS trace store and a deployed surrogate, spawns the server
/// over a pipe pair, and exercises the full protocol:
///
///   1. concurrent mixed load (simulate / predict / recommend / stats /
///      health from many threads) with p50/p99 latency reporting,
///   2. cache-hit answers verified bit-identical to a local run_sweep
///      over the same store and points,
///   3. admission control: a tiny-queue server must shed load with
///      typed "overloaded" errors and keep serving afterwards,
///   4. deadline budgets: an already-expired deadline answers "timeout",
///   5. graceful drain: closing stdin answers everything accepted and
///      the server exits 0.
///
/// Exits non-zero on the first failed expectation, so CI can run it as
/// one smoke gate.
///
/// Usage: service_client --server PATH [--vertices N] [--threads N]
///          [--requests-per-thread N] [--bench-json PATH]

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "gmd/common/cli.hpp"
#include "gmd/common/error.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/surrogate.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/graph/generators.hpp"
#include "gmd/memsim/metrics.hpp"
#include "gmd/service/client.hpp"
#include "gmd/service/service.hpp"
#include "gmd/tracestore/reader.hpp"
#include "gmd/tracestore/writer.hpp"

namespace {

using namespace gmd;
using service::Json;

[[noreturn]] void fail(const std::string& message) {
  std::cerr << "service_client: FAIL: " << message << "\n";
  std::exit(1);
}

void expect(bool ok, const std::string& message) {
  if (!ok) fail(message);
}

std::vector<cpusim::MemoryEvent> bfs_trace(std::uint32_t vertices) {
  graph::UniformRandomParams params;
  params.num_vertices = vertices;
  params.edge_factor = 8;
  graph::EdgeList list = graph::generate_uniform_random(params);
  graph::symmetrize(list);
  const auto g = graph::CsrGraph::from_edge_list(list);
  cpusim::VectorSink sink;
  cpusim::AtomicCpu cpu(cpusim::CpuModel{}, &sink);
  cpusim::BfsWorkload(g, 0).run(cpu);
  return sink.take();
}

Json simulate_request(const std::string& trace,
                      std::span<const dse::DesignPoint> points) {
  Json request;
  request["verb"] = "simulate";
  request["trace"] = trace;
  Json::Array array;
  for (const auto& point : points) {
    array.push_back(service::design_point_to_json(point));
  }
  request["points"] = Json(std::move(array));
  return request;
}

double percentile(std::vector<double> sorted_ms, double p) {
  if (sorted_ms.empty()) return 0.0;
  std::sort(sorted_ms.begin(), sorted_ms.end());
  const auto index = static_cast<std::size_t>(
      p * static_cast<double>(sorted_ms.size() - 1) / 100.0 + 0.5);
  return sorted_ms[std::min(index, sorted_ms.size() - 1)];
}

int run(int argc, const char* const* argv) {
  CliParser cli("service_client", "gmd_serve end-to-end smoke driver");
  cli.add_option("server", "", "path to the gmd_serve binary (required)");
  cli.add_option("vertices", "128", "BFS workload graph size");
  cli.add_option("threads", "8", "concurrent client threads");
  cli.add_option("requests-per-thread", "8", "requests per client thread");
  cli.add_option("out-dir", "", "working directory (default: temp)");
  cli.add_option("bench-json", "", "write latency/hit-rate JSON here");
  if (!cli.parse(argc, argv)) return 0;

  const std::string server = cli.get_string("server");
  expect(!server.empty(), "--server is required");
  std::string dir = cli.get_string("out-dir");
  if (dir.empty()) {
    dir = (std::filesystem::temp_directory_path() / "gmd_service_client")
              .string();
  }
  std::filesystem::create_directories(dir);

  // --- fixtures: trace store + deployed surrogate ----------------------
  const std::string store_path = dir + "/workload.gmdt";
  const auto events =
      bfs_trace(static_cast<std::uint32_t>(cli.get_int("vertices")));
  tracestore::TraceStoreWriterOptions wopts;
  wopts.events_per_chunk = 4000;
  tracestore::write_trace_store(store_path, events, wopts);
  tracestore::TraceStoreReader store(store_path);

  const std::vector<dse::DesignPoint> space = dse::reduced_design_space();
  const std::vector<dse::SweepRow> rows = dse::run_sweep(space, store);
  const std::string model_path = dir + "/bandwidth.gmdm";
  dse::SurrogateSuite::deploy(rows, "bandwidth_mbs", "gb")
      .save_file(model_path);

  // A mixed-technology slice of the space for simulate requests.
  std::vector<dse::DesignPoint> sim_points;
  for (std::size_t i = 0; i < space.size(); i += 7) {
    sim_points.push_back(space[i]);
  }

  // --- spawn the server -----------------------------------------------
  service::PipeClient::Options spawn;
  spawn.server_path = server;
  spawn.args = {"--traces", "bfs=" + store_path,
                "--models", "bw=" + model_path,
                "--queue-depth", "512"};
  service::PipeClient client(spawn);

  {
    const Json health = client.request([&] {
      Json r;
      r["verb"] = "health";
      return r;
    }());
    expect(health.bool_or("ok", false), "health request failed");
    expect(health.string_or("status", "") == "ok", "server not healthy");
  }

  // --- phase 1: concurrent mixed load ---------------------------------
  const std::size_t num_threads =
      static_cast<std::size_t>(cli.get_int("threads"));
  const std::size_t per_thread =
      static_cast<std::size_t>(cli.get_int("requests-per-thread"));
  std::atomic<std::uint64_t> ok_count{0};
  std::atomic<std::uint64_t> total{0};
  std::mutex latency_mutex;
  std::vector<double> latencies_ms;

  const auto worker = [&](std::size_t t) {
    std::vector<double> local;
    for (std::size_t k = 0; k < per_thread; ++k) {
      Json request;
      switch ((t + k) % 5) {
        case 0: {
          const std::size_t at = (t * per_thread + k) % sim_points.size();
          request = simulate_request(
              "bfs", std::span(sim_points).subspan(at, 1));
          break;
        }
        case 1: {
          request["verb"] = "predict";
          request["model"] = "bw";
          Json::Array pts;
          for (const auto& p : sim_points) {
            pts.push_back(service::design_point_to_json(p));
          }
          request["points"] = Json(std::move(pts));
          break;
        }
        case 2: {
          request["verb"] = "recommend";
          request["metric"] = "bandwidth_mbs";
          request["model"] = "bw";
          Json::Array pts;
          for (const auto& p : space) {
            pts.push_back(service::design_point_to_json(p));
          }
          request["points"] = Json(std::move(pts));
          break;
        }
        case 3: request["verb"] = "stats"; break;
        default: request["verb"] = "health"; break;
      }
      const auto start = std::chrono::steady_clock::now();
      const Json response = client.request(std::move(request));
      const auto elapsed = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - start)
                               .count();
      local.push_back(elapsed);
      total.fetch_add(1);
      if (response.bool_or("ok", false)) ok_count.fetch_add(1);
    }
    std::lock_guard<std::mutex> lock(latency_mutex);
    latencies_ms.insert(latencies_ms.end(), local.begin(), local.end());
  };

  std::vector<std::thread> threads;
  for (std::size_t t = 0; t < num_threads; ++t) threads.emplace_back(worker, t);
  for (auto& thread : threads) thread.join();
  expect(total.load() >= 64, "mixed phase must issue >= 64 requests (got " +
                                 std::to_string(total.load()) + ")");
  expect(ok_count.load() == total.load(),
         "all mixed requests must succeed (ok " +
             std::to_string(ok_count.load()) + "/" +
             std::to_string(total.load()) + ")");
  const double p50 = percentile(latencies_ms, 50);
  const double p99 = percentile(latencies_ms, 99);

  // --- phase 2: cache hits, bit-identical to run_sweep -----------------
  const std::vector<dse::SweepRow> reference =
      dse::run_sweep(sim_points, store);
  const Json cold = client.request(simulate_request("bfs", sim_points));
  expect(cold.bool_or("ok", false), "simulate batch failed");
  const Json warm = client.request(simulate_request("bfs", sim_points));
  expect(warm.bool_or("ok", false), "cached simulate batch failed");
  expect(static_cast<std::size_t>(warm.number_or("cache_hits", 0)) ==
             sim_points.size(),
         "second simulate batch must be all cache hits");

  const auto& names = memsim::MemoryMetrics::metric_names();
  for (const Json* response : {&cold, &warm}) {
    const auto& rows_json = response->at("rows").as_array();
    expect(rows_json.size() == sim_points.size(), "row count mismatch");
    for (std::size_t i = 0; i < rows_json.size(); ++i) {
      const Json& metrics = rows_json[i].at("metrics");
      const std::vector<double> expected =
          reference[i].metrics.metric_values();
      for (std::size_t m = 0; m < names.size(); ++m) {
        const double got = metrics.number_or(names[m], -1.0);
        if (got != expected[m]) {
          fail("metric " + names[m] + " of " + sim_points[i].id() +
               " differs from run_sweep: got " + std::to_string(got) +
               ", want " + std::to_string(expected[m]));
        }
      }
    }
  }

  // --- phase 3 setup: predict 10k+ configs in one request --------------
  {
    std::vector<dse::DesignPoint> big = dse::paper_design_space();
    Json::Array pts;
    while (pts.size() < 10000) {
      for (const auto& p : big) {
        if (pts.size() >= 10000) break;
        pts.push_back(service::design_point_to_json(p));
      }
    }
    const std::size_t batch = pts.size();
    Json request;
    request["verb"] = "predict";
    request["model"] = "bw";
    request["points"] = Json(std::move(pts));
    const auto start = std::chrono::steady_clock::now();
    const Json response = client.request(std::move(request));
    const auto elapsed_ms = std::chrono::duration<double, std::milli>(
                                std::chrono::steady_clock::now() - start)
                                .count();
    expect(response.bool_or("ok", false), "10k-config predict failed");
    expect(response.at("values").as_array().size() == batch,
           "10k-config predict returned wrong count");
    std::cout << "predict batch: " << batch << " configs in " << elapsed_ms
              << " ms\n";
  }

  // --- phase 4: deadline expiry answers "timeout" ----------------------
  {
    Json request = simulate_request("bfs", std::span(sim_points).subspan(0, 1));
    request["points"].as_array()[0]["cpu_freq_mhz"] = 3333;  // uncached point
    request["deadline_ms"] = 0.000001;
    const Json response = client.request(std::move(request));
    expect(!response.bool_or("ok", true), "expired deadline must fail");
    expect(response.at("error").string_or("code", "") == "timeout",
           "expired deadline must answer code=timeout");
  }

  // --- stats + graceful drain ------------------------------------------
  Json stats;
  {
    Json request;
    request["verb"] = "stats";
    stats = client.request(std::move(request));
    expect(stats.bool_or("ok", false), "stats failed");
    const double hit_rate = stats.at("cache").number_or("hit_rate", 0.0);
    std::cout << "mixed load: " << total.load() << " requests, p50 " << p50
              << " ms, p99 " << p99 << " ms; cache hit rate " << hit_rate
              << "\n";
  }
  const int exit_code = client.close_and_wait();
  expect(exit_code == 0, "graceful drain must exit 0 (got " +
                             std::to_string(exit_code) + ")");

  // --- phase 5: admission control on a tiny server ----------------------
  {
    service::PipeClient::Options tiny;
    tiny.server_path = server;
    tiny.args = {"--traces", "bfs=" + store_path, "--threads", "1",
                 "--queue-depth", "2"};
    service::PipeClient small(tiny);
    std::vector<std::uint64_t> ids;
    for (std::size_t k = 0; k < 32; ++k) {
      Json request = simulate_request(
          "bfs", std::span(sim_points).subspan(k % sim_points.size(), 1));
      // A distinct CPU frequency per request defeats the result cache,
      // so every request is real work and the queue actually fills.
      request["points"].as_array()[0]["cpu_freq_mhz"] = 1000 + 17 * k;
      ids.push_back(small.send(std::move(request)));
    }
    std::size_t overloaded = 0;
    std::size_t succeeded = 0;
    for (const std::uint64_t id : ids) {
      const Json response = small.wait(id);
      if (response.bool_or("ok", false)) {
        ++succeeded;
      } else if (response.at("error").string_or("code", "") == "overloaded") {
        ++overloaded;
      }
    }
    expect(overloaded > 0,
           "a 2-deep queue flooded with 32 simulates must shed load");
    expect(succeeded > 0, "the tiny server must still serve admitted work");
    // Still healthy after shedding.
    Json health;
    health["verb"] = "health";
    expect(small.request(std::move(health)).bool_or("ok", false),
           "server must stay healthy after overload");
    expect(small.close_and_wait() == 0, "tiny server must drain cleanly");
    std::cout << "overload: " << overloaded << " shed, " << succeeded
              << " served\n";
  }

  // --- phase 6: SIGKILL + transparent client retry ----------------------
  {
    service::PipeClient::Options resilient;
    resilient.server_path = server;
    resilient.args = {"--traces", "bfs=" + store_path};
    resilient.retry.max_attempts = 4;
    resilient.retry.initial_backoff = std::chrono::milliseconds(5);
    resilient.retry.restart_on_death = true;
    service::PipeClient survivor(resilient);
    Json health;
    health["verb"] = "health";
    expect(survivor.request(health).bool_or("ok", false),
           "resilient server must come up");
    survivor.kill_server();
    // The client must respawn the server and answer as if nothing
    // happened — the kill is invisible to the caller.
    int attempts = 0;
    const Json recovered = survivor.request_with_retry(
        simulate_request("bfs", std::span(sim_points).subspan(0, 1)),
        &attempts);
    expect(recovered.bool_or("ok", false),
           "retry after SIGKILL must recover (got " + recovered.dump() + ")");
    expect(survivor.restarts() >= 1, "recovery must have respawned the server");
    expect(survivor.close_and_wait() == 0,
           "respawned server must drain cleanly");
    std::cout << "kill-retry: recovered in " << attempts << " attempts, "
              << survivor.restarts() << " restart(s)\n";
  }

  // --- phase 7: injected fault answered typed, then self-heals ----------
  {
    service::PipeClient::Options chaos;
    chaos.server_path = server;
    chaos.args = {"--traces", "bfs=" + store_path, "--quarantine-probe-ms",
                  "0", "--faults",
                  "tracestore.chunk_verify=invalid-data:nth=1:oneshot"};
    service::PipeClient client2(chaos);
    Json request = simulate_request("bfs", std::span(sim_points).subspan(0, 1));
    const Json broken = client2.request(request);
    expect(!broken.bool_or("ok", true),
           "injected checksum fault must fail the first simulate");
    expect(broken.at("error").string_or("code", "") == "invalid-data",
           "injected fault must answer its typed wire code");
    // The store was quarantined; with a zero probe interval the next
    // lookup re-verifies it (the fault was one-shot) and serving resumes.
    const Json healed = client2.request(request);
    expect(healed.bool_or("ok", false),
           "service must self-heal after a transient store fault (got " +
               healed.dump() + ")");
    Json health;
    health["verb"] = "health";
    expect(client2.request(health).string_or("status", "") == "ok",
           "health must report ok after self-healing");
    expect(client2.close_and_wait() == 0, "chaos server must drain cleanly");
    std::cout << "fault-injection: typed error, then self-healed\n";
  }

  const std::string bench_json = cli.get_string("bench-json");
  if (!bench_json.empty()) {
    Json out;
    out["requests"] = total.load();
    out["p50_ms"] = p50;
    out["p99_ms"] = p99;
    out["cache_hit_rate"] = stats.at("cache").number_or("hit_rate", 0.0);
    std::ofstream os(bench_json);
    os << out.dump() << "\n";
  }

  std::cout << "service_client: all phases passed\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const Error& e) {
    std::cerr << "service_client: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "service_client: " << e.what() << "\n";
    return 1;
  }
}
