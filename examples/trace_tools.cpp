/// \file trace_tools.cpp
/// The trace pipeline as a standalone tool.  Two modes:
///
/// Pipeline (no subcommand): run a graph workload, write its memory
/// trace in gem5 text format, convert it to NVMain text and to a GMDT
/// trace store with the parallel chunked converter (§III-D), and print
/// trace statistics — the part of the paper's workflow that moved
/// 91.5M gem5 lines into a 14 GB NVMain trace.
///
/// Subcommands for working with GMDT stores:
///   trace_tools pack   --input T.gem5.txt --input-format gem5 [--output T.gmdt]
///   trace_tools unpack --input T.gmdt [--output T.nvmain.txt]
///   trace_tools info   --input T.gmdt
///   trace_tools verify --input T.gmdt
///
/// `unpack` also accepts the legacy packed binary format ("GMDTRC01");
/// the container is sniffed from the file magic.

#include <algorithm>
#include <array>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "gmd/common/cli.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/thread_pool.hpp"
#include "gmd/dse/workflow.hpp"
#include "gmd/trace/converter.hpp"
#include "gmd/trace/formats.hpp"
#include "gmd/trace/stats.hpp"
#include "gmd/tracestore/format.hpp"
#include "gmd/tracestore/reader.hpp"
#include "gmd/tracestore/writer.hpp"

namespace {

using namespace gmd;

/// Default output path: the input with its extension replaced.
std::string derive_output(const std::string& input, const char* extension) {
  return std::filesystem::path(input).replace_extension(extension).string();
}

/// First 8 bytes of a file, for container sniffing.
std::array<char, 8> read_magic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GMD_REQUIRE_AS(ErrorCode::kIo, in.good(), "cannot open '" << path << "'");
  std::array<char, 8> magic{};
  in.read(magic.data(), magic.size());
  GMD_REQUIRE_AS(ErrorCode::kIo, in.good(),
                 "'" << path << "' is too short to hold a container magic");
  return magic;
}

int run_pack(int argc, char** argv) {
  CliParser cli("trace_tools pack", "pack a text trace into a GMDT store");
  cli.add_option("input", "", "input trace file (required)")
      .add_option("input-format", "gem5", "gem5 | nvmain")
      .add_option("output", "", "output store (default: input with .gmdt)")
      .add_option("chunk-events", "65536", "events per GMDT chunk")
      .add_option("chunk-kb", "4096", "parser chunk size in KiB")
      .add_option("threads", "0", "parser threads (0 = all cores)")
      .add_option("max-skipped", "-1",
                  "malformed-line budget (-1 = unlimited, 0 = strict)");
  if (!cli.parse(argc, argv)) return 0;

  const std::string input = cli.get_string("input");
  GMD_REQUIRE_AS(ErrorCode::kConfig, !input.empty(), "--input is required");
  std::string output = cli.get_string("output");
  if (output.empty()) output = derive_output(input, ".gmdt");
  const std::string format = cli.get_string("input-format");

  trace::ConvertOptions options;
  options.chunk_bytes = static_cast<std::size_t>(cli.get_int("chunk-kb")) * 1024;
  options.num_threads = static_cast<std::size_t>(cli.get_int("threads"));
  options.gmdt_chunk_events =
      static_cast<std::size_t>(cli.get_int("chunk-events"));
  if (cli.get_int("max-skipped") >= 0) {
    options.max_skipped_lines =
        static_cast<std::uint64_t>(cli.get_int("max-skipped"));
  }

  trace::ConvertStats stats;
  if (format == "gem5") {
    stats = trace::convert_gem5_to_gmdt(input, output, options);
  } else if (format == "nvmain") {
    std::ifstream in(input);
    GMD_REQUIRE_AS(ErrorCode::kIo, in.good(), "cannot open '" << input << "'");
    const auto events = trace::read_nvmain_trace(in);
    tracestore::TraceStoreWriterOptions store_options;
    store_options.events_per_chunk = options.gmdt_chunk_events;
    tracestore::write_trace_store(output, events, store_options);
    stats.lines_in = events.size();
    stats.events_out = events.size();
    stats.chunks = 1;
  } else {
    throw Error(ErrorCode::kConfig,
                "--input-format must be gem5 or nvmain, got '" + format + "'");
  }

  const tracestore::TraceStoreReader reader(output);
  std::cout << "packed " << stats.events_out << " events into "
            << reader.num_chunks() << " chunks (" << reader.file_bytes()
            << " bytes) -> " << output << "\n"
            << "skipped: " << trace::summarize_skipped(stats, options) << "\n";
  return 0;
}

int run_unpack(int argc, char** argv) {
  CliParser cli("trace_tools unpack",
                "expand a GMDT store (or legacy binary trace) to NVMain text");
  cli.add_option("input", "", "input container (required)")
      .add_option("output", "",
                  "output text trace (default: input with .nvmain.txt)")
      .add_option("threads", "0", "decoder threads (0 = all cores)");
  if (!cli.parse(argc, argv)) return 0;

  const std::string input = cli.get_string("input");
  GMD_REQUIRE_AS(ErrorCode::kConfig, !input.empty(), "--input is required");
  std::string output = cli.get_string("output");
  if (output.empty()) output = derive_output(input, ".nvmain.txt");

  const auto magic = read_magic(input);
  if (std::memcmp(magic.data(), tracestore::kMagic.data(), magic.size()) == 0) {
    trace::ConvertOptions options;
    options.num_threads = static_cast<std::size_t>(cli.get_int("threads"));
    const trace::ConvertStats stats =
        trace::convert_gmdt_to_nvmain(input, output, options);
    std::cout << "unpacked " << stats.events_out << " events from "
              << stats.chunks << " chunks -> " << output << "\n";
    return 0;
  }
  // Legacy packed binary ("GMDTRC01"); read_binary_trace validates the
  // magic and reports a typed error for anything unrecognized.
  std::ifstream in(input, std::ios::binary);
  GMD_REQUIRE_AS(ErrorCode::kIo, in.good(), "cannot open '" << input << "'");
  const auto events = trace::read_binary_trace(in);
  std::ofstream out(output);
  GMD_REQUIRE_AS(ErrorCode::kIo, out.good(), "cannot write '" << output << "'");
  trace::NvmainTraceWriter writer(out);
  for (const auto& event : events) writer.on_event(event);
  std::cout << "unpacked " << writer.lines_written()
            << " events (legacy binary) -> " << output << "\n";
  return 0;
}

int run_info(int argc, char** argv) {
  CliParser cli("trace_tools info", "print GMDT store header and directory");
  cli.add_option("input", "", "GMDT store (required)")
      .add_option("max-chunks", "8", "chunk directory rows to print");
  if (!cli.parse(argc, argv)) return 0;

  const std::string input = cli.get_string("input");
  GMD_REQUIRE_AS(ErrorCode::kConfig, !input.empty(), "--input is required");
  const tracestore::TraceStoreReader reader(input);

  const double bytes_per_event =
      reader.num_events() == 0
          ? 0.0
          : static_cast<double>(reader.file_bytes()) /
                static_cast<double>(reader.num_events());
  std::cout << "GMDT store: " << input << "\n"
            << "  format version:   " << reader.header().version << "\n"
            << "  events:           " << reader.num_events() << "\n"
            << "  chunks:           " << reader.num_chunks() << "\n"
            << "  events per chunk: " << reader.header().events_per_chunk
            << "\n"
            << "  file bytes:       " << reader.file_bytes() << "\n"
            << "  bytes per event:  " << bytes_per_event << "\n"
            << "  content checksum: 0x" << std::hex << reader.content_checksum()
            << std::dec << "\n";
  const auto max_chunks =
      static_cast<std::size_t>(cli.get_int("max-chunks"));
  const std::size_t shown = std::min(reader.num_chunks(), max_chunks);
  for (std::size_t i = 0; i < shown; ++i) {
    const tracestore::ChunkEntry& entry = reader.chunk_info(i);
    std::cout << "  chunk " << i << ": " << entry.event_count << " events, "
              << entry.encoded_bytes << " bytes, ticks [" << entry.min_tick
              << ", " << entry.max_tick << "]\n";
  }
  if (shown < reader.num_chunks()) {
    std::cout << "  ... " << (reader.num_chunks() - shown)
              << " more chunks\n";
  }
  return 0;
}

int run_verify(int argc, char** argv) {
  CliParser cli("trace_tools verify",
                "decode and checksum every chunk of a GMDT store");
  cli.add_option("input", "", "GMDT store (required)");
  if (!cli.parse(argc, argv)) return 0;

  const std::string input = cli.get_string("input");
  GMD_REQUIRE_AS(ErrorCode::kConfig, !input.empty(), "--input is required");
  const tracestore::TraceStoreReader reader(input);
  reader.verify();
  std::cout << "ok: " << reader.num_events() << " events in "
            << reader.num_chunks() << " chunks, all checksums match\n";
  return 0;
}

int run_pipeline(int argc, char** argv) {
  CliParser cli("trace_tools", "generate, convert, and inspect memory traces");
  cli.add_option("workload", "bfs",
                 "bfs | dobfs | pagerank | cc | sssp | triangles")
      .add_option("vertices", "512", "graph size")
      .add_option("out-dir", "/tmp/gmd_traces", "output directory")
      .add_option("chunk-kb", "4096", "converter chunk size in KiB")
      .add_option("threads", "0", "converter threads (0 = all cores)");
  if (!cli.parse(argc, argv)) return 0;

  dse::WorkflowConfig config;
  config.graph_vertices = static_cast<std::uint32_t>(cli.get_int("vertices"));
  config.workload = cli.get_string("workload");
  const auto events = dse::generate_workload_trace(config);

  const std::filesystem::path dir(cli.get_string("out-dir"));
  std::filesystem::create_directories(dir);
  const std::string gem5_path = (dir / "workload.gem5.txt").string();
  const std::string nvmain_path = (dir / "workload.nvmain.txt").string();
  const std::string store_path = (dir / "workload.gmdt").string();

  {
    std::ofstream out(gem5_path);
    GMD_REQUIRE(out.good(), "cannot write " << gem5_path);
    trace::Gem5TraceWriter writer(out);
    for (const auto& event : events) writer.on_event(event);
    std::cout << "wrote " << writer.lines_written() << " gem5 lines to "
              << gem5_path << "\n";
  }

  trace::ConvertOptions options;
  options.chunk_bytes =
      static_cast<std::size_t>(cli.get_int("chunk-kb")) * 1024;
  options.num_threads = static_cast<std::size_t>(cli.get_int("threads"));
  const trace::ConvertStats stats =
      trace::convert_gem5_to_nvmain(gem5_path, nvmain_path, options);
  std::cout << "converted " << stats.lines_in << " lines into "
            << stats.events_out << " NVMain records across " << stats.chunks
            << " chunks -> " << nvmain_path << "\n"
            << "skipped: " << trace::summarize_skipped(stats, options) << "\n";

  const trace::ConvertStats store_stats =
      trace::convert_gem5_to_gmdt(gem5_path, store_path, options);
  const tracestore::TraceStoreReader reader(store_path);
  std::cout << "packed " << store_stats.events_out << " events into "
            << reader.num_chunks() << " GMDT chunks (" << reader.file_bytes()
            << " bytes) -> " << store_path << "\n\n";

  std::cout << "trace statistics:\n"
            << trace::describe(trace::compute_stats(events));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    if (argc > 1 && argv[1][0] != '-') {
      const std::string command = argv[1];
      if (command == "pack") return run_pack(argc - 1, argv + 1);
      if (command == "unpack") return run_unpack(argc - 1, argv + 1);
      if (command == "info") return run_info(argc - 1, argv + 1);
      if (command == "verify") return run_verify(argc - 1, argv + 1);
      throw gmd::Error(gmd::ErrorCode::kConfig,
                       "unknown subcommand '" + command +
                           "' (expected pack, unpack, info, or verify)");
    }
    return run_pipeline(argc, argv);
  } catch (const gmd::Error& e) {
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
