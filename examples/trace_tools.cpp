/// \file trace_tools.cpp
/// The trace pipeline as a standalone tool: run a graph workload, write
/// its memory trace in gem5 text format, convert it to NVMain format
/// with the parallel chunked converter (§III-D), and print trace
/// statistics — the part of the paper's workflow that moved 91.5M
/// gem5 lines into a 14 GB NVMain trace.
///
/// Usage: trace_tools [--workload bfs] [--vertices 512] [--out-dir DIR]
///                    [--chunk-kb 4096] [--threads 0]

#include <filesystem>
#include <fstream>
#include <iostream>

#include "gmd/common/cli.hpp"
#include "gmd/common/error.hpp"
#include "gmd/dse/workflow.hpp"
#include "gmd/trace/converter.hpp"
#include "gmd/trace/formats.hpp"
#include "gmd/trace/stats.hpp"

int main(int argc, char** argv) {
  using namespace gmd;

  CliParser cli("trace_tools", "generate, convert, and inspect memory traces");
  cli.add_option("workload", "bfs", "bfs | dobfs | pagerank | cc | sssp | triangles")
      .add_option("vertices", "512", "graph size")
      .add_option("out-dir", "/tmp/gmd_traces", "output directory")
      .add_option("chunk-kb", "4096", "converter chunk size in KiB")
      .add_option("threads", "0", "converter threads (0 = all cores)");
  try {
    if (!cli.parse(argc, argv)) return 0;

    dse::WorkflowConfig config;
    config.graph_vertices = static_cast<std::uint32_t>(cli.get_int("vertices"));
    config.workload = cli.get_string("workload");
    const auto events = dse::generate_workload_trace(config);

    const std::filesystem::path dir(cli.get_string("out-dir"));
    std::filesystem::create_directories(dir);
    const std::string gem5_path = (dir / "workload.gem5.txt").string();
    const std::string nvmain_path = (dir / "workload.nvmain.txt").string();

    {
      std::ofstream out(gem5_path);
      GMD_REQUIRE(out.good(), "cannot write " << gem5_path);
      trace::Gem5TraceWriter writer(out);
      for (const auto& event : events) writer.on_event(event);
      std::cout << "wrote " << writer.lines_written() << " gem5 lines to "
                << gem5_path << "\n";
    }

    trace::ConvertOptions options;
    options.chunk_bytes =
        static_cast<std::size_t>(cli.get_int("chunk-kb")) * 1024;
    options.num_threads = static_cast<std::size_t>(cli.get_int("threads"));
    const trace::ConvertStats stats =
        trace::convert_gem5_to_nvmain(gem5_path, nvmain_path, options);
    std::cout << "converted " << stats.lines_in << " lines ("
              << stats.lines_skipped << " skipped) into " << stats.events_out
              << " NVMain records across " << stats.chunks << " chunks -> "
              << nvmain_path << "\n\n";

    std::cout << "trace statistics:\n"
              << trace::describe(trace::compute_stats(events));
    return 0;
  } catch (const Error& e) {
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
