/// \file quickstart.cpp
/// Minimal end-to-end tour of the graphmemdse public API:
///   1. generate the paper's workload graph (GTGraph random model),
///   2. run Graph500-style BFS on the atomic CPU to obtain a memory trace,
///   3. sweep a small memory design space with the cycle-level simulator,
///   4. train surrogate models and print Table-I-style scores,
///   5. print co-design recommendations.
///
/// Usage: quickstart [--vertices N] [--edge-factor K] [--seed S]

#include <iostream>

#include "gmd/common/cli.hpp"
#include "gmd/common/error.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/workflow.hpp"

int main(int argc, char** argv) {
  using namespace gmd;

  CliParser cli("quickstart", "end-to-end co-design workflow demo");
  cli.add_option("vertices", "256", "graph size (paper uses 1024)")
      .add_option("edge-factor", "16", "edges per vertex")
      .add_option("seed", "1", "random seed");
  try {
    if (!cli.parse(argc, argv)) return 0;

    dse::WorkflowConfig config;
    config.graph_vertices = static_cast<std::uint32_t>(cli.get_int("vertices"));
    config.edge_factor = static_cast<unsigned>(cli.get_int("edge-factor"));
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    // A reduced 96-point space keeps the demo quick; swap in
    // paper_design_space() for the full 416-point study.
    config.design_points = dse::reduced_design_space();

    const dse::WorkflowResult result = dse::run_workflow(config);
    std::cout << result.report();
    return 0;
  } catch (const Error& e) {
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
