/// \file sweep_worker.cpp
/// One distributed sweep worker process.  Joins a run directory
/// prepared by a supervisor (`memory_explorer --run-dir DIR
/// --supervise-only`), claims shard tasks through atomic-rename leases,
/// simulates them against the shared <run-dir>/trace.gmdt store, and
/// journals every terminal row under journals/<worker-id>.journal.
/// Exits when the supervisor publishes run.complete (or after
/// --idle-timeout-ms with nothing left to claim).
///
/// Kill it at any instant — SIGKILL included — and start another: the
/// supervisor expires the orphaned lease and re-issues the shard, and a
/// worker restarted under the same --worker id adopts its predecessor's
/// journal.  The point list is rebuilt locally from --space/--axis/
/// --kind (and the sampling flags), which must match the supervisor's
/// invocation: the run directory's identity check refuses a worker
/// configured for a different sweep.
///
/// Usage: sweep_worker --run-dir DIR [--worker ID]
///          [--space axis|reduced|paper] [--axis ctrl|cpu|channels|trcd]
///          [--kind dram|nvm|hybrid] [--policy skip|retry|failfast]
///          [--retries N] [--deadline-ms N] [--threads N] [--sim-workers N]
///          [--sample-fraction F] [--sample-seed N] [--sample-chunk-events N]
///          [--heartbeat-ms N] [--poll-ms N] [--idle-timeout-ms N]
///          [--wait-ms N] [--exit-after-points K]

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "gmd/common/cli.hpp"
#include "gmd/common/error.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/distributed.hpp"
#include "gmd/tracestore/reader.hpp"

namespace {

using namespace gmd;

dse::FailurePolicy parse_policy(const std::string& policy) {
  if (policy == "failfast") return dse::FailurePolicy::kFailFast;
  if (policy == "skip") return dse::FailurePolicy::kSkip;
  if (policy == "retry") return dse::FailurePolicy::kRetry;
  throw Error(ErrorCode::kConfig,
              "unknown failure policy '" + policy + "' (failfast|skip|retry)");
}

dse::MemoryKind parse_kind(const std::string& kind) {
  if (kind == "dram") return dse::MemoryKind::kDram;
  if (kind == "nvm") return dse::MemoryKind::kNvm;
  if (kind == "hybrid") return dse::MemoryKind::kHybrid;
  throw Error("unknown memory kind '" + kind + "'");
}

std::vector<dse::DesignPoint> build_points(const std::string& space,
                                           const std::string& axis,
                                           dse::MemoryKind kind) {
  if (space == "axis") return dse::axis_design_points(axis, kind);
  if (space == "reduced") return dse::reduced_design_space();
  if (space == "paper") return dse::paper_design_space();
  throw Error(ErrorCode::kConfig,
              "unknown space '" + space + "' (axis|reduced|paper)");
}

std::string default_worker_id() {
#if defined(__unix__) || defined(__APPLE__)
  return "worker-" + std::to_string(::getpid());
#else
  return "worker";
#endif
}

/// Waits for the supervisor to publish the store and run.meta (both are
/// temp-then-rename writes, so existing means complete).
void wait_for_run(const std::string& store_path, const std::string& meta_path,
                  std::chrono::milliseconds budget) {
  namespace fs = std::filesystem;
  const auto give_up = std::chrono::steady_clock::now() + budget;
  while (!(fs::exists(store_path) && fs::exists(meta_path))) {
    GMD_REQUIRE_AS(ErrorCode::kTimeout,
                   std::chrono::steady_clock::now() < give_up,
                   "run directory not initialized within "
                       << budget.count() << " ms (waiting for '" << store_path
                       << "' and '" << meta_path << "')");
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmd;

  CliParser cli("sweep_worker", "one lease-claiming distributed sweep worker");
  cli.add_option("run-dir", "", "shared run directory (required)")
      .add_option("worker", "", "worker id (default: worker-<pid>)")
      .add_option("space", "axis",
                  "point set: axis (one --axis slice) | reduced | paper")
      .add_option("axis", "ctrl", "axis to sweep: ctrl | cpu | channels | trcd")
      .add_option("kind", "nvm", "memory technology: dram | nvm | hybrid")
      .add_option("policy", "skip", "failure policy: failfast | skip | retry")
      .add_option("retries", "3", "max attempts per point under --policy retry")
      .add_option("deadline-ms", "0",
                  "per-point wall budget in milliseconds (0: unlimited)")
      .add_option("threads", "0", "sweep threads (0 = hardware)")
      .add_option("sim-workers", "1",
                  "channel-parallel threads per simulation")
      .add_option("sample-fraction", "1.0",
                  "chunk-sampled sweep: fraction of store chunks per point")
      .add_option("sample-seed", "1", "seed of the sampled chunk subset")
      .add_option("sample-chunk-events", "10000",
                  "events per sampling window (identity only)")
      .add_option("heartbeat-ms", "100", "lease heartbeat interval")
      .add_option("poll-ms", "25", "task-scan poll interval")
      .add_option("idle-timeout-ms", "30000",
                  "exit after this long with nothing claimable")
      .add_option("wait-ms", "10000",
                  "wait this long for trace.gmdt + run.meta to appear")
      .add_option("exit-after-points", "0",
                  "fault injection: _Exit(137) after journaling this many "
                  "points (the SIGKILL stand-in)");
  try {
    if (!cli.parse(argc, argv)) return 0;

    const std::string run_root = cli.get_string("run-dir");
    GMD_REQUIRE_AS(ErrorCode::kConfig, !run_root.empty(),
                   "--run-dir is required");
    const dse::RunDir run{run_root};
    const std::string store_path = run_root + "/trace.gmdt";
    wait_for_run(store_path, run.meta_path(),
                 std::chrono::milliseconds(cli.get_int("wait-ms")));

    const tracestore::TraceStoreReader store(store_path);
    const auto points = build_points(cli.get_string("space"),
                                     cli.get_string("axis"),
                                     parse_kind(cli.get_string("kind")));

    dse::WorkerOptions worker;
    worker.worker_id = cli.get_string("worker");
    if (worker.worker_id.empty()) worker.worker_id = default_worker_id();
    worker.sweep.failure_policy = parse_policy(cli.get_string("policy"));
    worker.sweep.max_attempts =
        static_cast<std::uint32_t>(cli.get_int("retries"));
    worker.sweep.point_wall_budget =
        std::chrono::milliseconds(cli.get_int("deadline-ms"));
    worker.sweep.num_threads =
        static_cast<std::size_t>(cli.get_int("threads"));
    worker.sweep.sim_workers =
        static_cast<std::uint32_t>(cli.get_int("sim-workers"));
    worker.sweep.sample_fraction = cli.get_double("sample-fraction");
    worker.sweep.sample_seed =
        static_cast<std::uint64_t>(cli.get_int("sample-seed"));
    worker.sweep.sampling_chunk_events =
        static_cast<std::size_t>(cli.get_int("sample-chunk-events"));
    worker.heartbeat_interval =
        std::chrono::milliseconds(cli.get_int("heartbeat-ms"));
    worker.poll_interval = std::chrono::milliseconds(cli.get_int("poll-ms"));
    worker.idle_timeout =
        std::chrono::milliseconds(cli.get_int("idle-timeout-ms"));

    const auto exit_after =
        static_cast<std::size_t>(cli.get_int("exit-after-points"));
    if (exit_after > 0) {
      worker.progress_hook = [exit_after](std::size_t journaled) {
        if (journaled >= exit_after) {
          std::cerr << "[fault] _Exit(137) after " << journaled
                    << " journaled points\n";
          std::_Exit(137);
        }
      };
    }

    std::cout << "worker '" << worker.worker_id << "' joining run '"
              << run_root << "' (" << points.size() << " points)\n";
    const dse::WorkerResult result = dse::run_sweep_worker(
        run, points, store, worker);
    std::cout << "worker '" << worker.worker_id << "': "
              << result.shards_completed << " shard(s) completed, "
              << result.shards_abandoned << " abandoned, "
              << result.points_simulated << " point(s) journaled\n";
    if (!result.health.all_ok()) {
      std::cout << "health: " << result.health.summary() << "\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
