/// \file memsim_cli.cpp
/// The NVMain command-line workflow, reimplemented: take a memory
/// configuration file and an NVMain-format trace file, simulate, and
/// print the performance metrics — so existing NVMain-style sweep
/// scripts can drive this simulator file-for-file.
///
/// Usage: memsim_cli --config mem.cfg --trace trace.nvt
///        memsim_cli --config mem.cfg --trace trace.gmdt --trace-format gmdt
///        memsim_cli --emit-config dram|nvm > mem.cfg

#include <fstream>
#include <iostream>

#include "gmd/common/cli.hpp"
#include "gmd/common/error.hpp"
#include "gmd/memsim/config_io.hpp"
#include "gmd/memsim/hybrid.hpp"
#include "gmd/memsim/memory_system.hpp"
#include "gmd/memsim/sampled.hpp"
#include "gmd/trace/formats.hpp"
#include "gmd/tracestore/reader.hpp"

int main(int argc, char** argv) {
  using namespace gmd;

  CliParser cli("memsim_cli", "trace-driven memory simulation (NVMain role)");
  cli.add_option("config", "", "memory configuration file (NVMain-style)")
      .add_option("config-dram", "",
                  "hybrid mode: DRAM-side configuration file")
      .add_option("config-nvm", "",
                  "hybrid mode: NVM-side configuration file")
      .add_option("dram-fraction", "0.5",
                  "hybrid mode: fraction of pages routed to DRAM")
      .add_option("trace", "", "trace file (NVMain text or GMDT store)")
      .add_option("trace-format", "text",
                  "trace container: text (NVMain) | gmdt (trace store)")
      .add_option("emit-config", "",
                  "print a preset config (dram or nvm) to stdout and exit")
      .add_option("sim-workers", "1",
                  "channel-parallel simulation threads (bit-identical "
                  "results; hybrid mode always runs serial)")
      .add_option("sample-fraction", "1.0",
                  "simulate only this fraction of trace chunks and report "
                  "estimates with confidence intervals; 1.0 = exhaustive "
                  "(single-technology configs only)")
      .add_option("sample-seed", "1", "seed of the sampled chunk subset")
      .add_option("sample-warmup-chunks", "1",
                  "uncounted warmup chunks before each sampled window")
      .add_option("sample-chunk-events", "10000",
                  "events per sampling window");
  try {
    if (!cli.parse(argc, argv)) return 0;

    const std::string preset = cli.get_string("emit-config");
    if (!preset.empty()) {
      if (preset == "dram") {
        memsim::write_config(std::cout, memsim::make_dram_config(2, 666, 3000));
      } else if (preset == "nvm") {
        memsim::write_config(std::cout,
                             memsim::make_nvm_config(2, 666, 3000, 67));
      } else {
        throw Error("--emit-config expects 'dram' or 'nvm'");
      }
      return 0;
    }

    const std::string config_path = cli.get_string("config");
    const std::string dram_path = cli.get_string("config-dram");
    const std::string nvm_path = cli.get_string("config-nvm");
    const std::string trace_path = cli.get_string("trace");
    const bool hybrid = !dram_path.empty() || !nvm_path.empty();
    GMD_REQUIRE((hybrid || !config_path.empty()) && !trace_path.empty(),
                "need --trace plus --config, or --config-dram/--config-nvm "
                "(or --emit-config)");

    const std::string trace_format = cli.get_string("trace-format");
    std::vector<cpusim::MemoryEvent> events;
    if (trace_format == "gmdt") {
      events = tracestore::TraceStoreReader(trace_path).read_all();
    } else if (trace_format == "text") {
      std::ifstream trace_in(trace_path);
      GMD_REQUIRE(trace_in.good(),
                  "cannot open trace '" << trace_path << "'");
      events = trace::read_nvmain_trace(trace_in);
    } else {
      throw Error(ErrorCode::kConfig,
                  "--trace-format expects 'text' or 'gmdt', got '" +
                      trace_format + "'");
    }

    const double sample_fraction = cli.get_double("sample-fraction");
    const bool sampling = sample_fraction < 1.0;
    memsim::MemoryMetrics metrics;
    memsim::SampledMetrics sampled;
    std::string description;
    if (hybrid) {
      GMD_REQUIRE(!dram_path.empty() && !nvm_path.empty(),
                  "hybrid mode needs both --config-dram and --config-nvm");
      GMD_REQUIRE(!sampling,
                  "--sample-fraction < 1 supports single-technology configs "
                  "only (hybrid migration state is whole-trace)");
      memsim::HybridConfig config;
      config.dram = memsim::load_config(dram_path);
      config.nvm = memsim::load_config(nvm_path);
      config.dram_fraction = cli.get_double("dram-fraction");
      metrics = memsim::HybridMemory::simulate(config, events);
      description = "hybrid (" + std::to_string(config.total_channels()) +
                    " channels)";
    } else {
      memsim::MemoryConfig config = memsim::load_config(config_path);
      config.sim.num_workers =
          static_cast<std::uint32_t>(cli.get_int("sim-workers"));
      if (sampling) {
        memsim::SpanChunkedTrace chunked(
            events,
            static_cast<std::size_t>(cli.get_int("sample-chunk-events")));
        memsim::SampledSimOptions sopt;
        sopt.fraction = sample_fraction;
        sopt.seed = static_cast<std::uint64_t>(cli.get_int("sample-seed"));
        sopt.warmup_chunks = static_cast<std::uint32_t>(
            cli.get_int("sample-warmup-chunks"));
        sampled = memsim::simulate_sampled(config, chunked, sopt);
        metrics = sampled.estimate;
      } else {
        metrics = memsim::MemorySystem::simulate(config, events);
      }
      description = config.name + " (" + memsim::to_string(config.device) +
                    ", " + std::to_string(config.channels) + " channels, " +
                    std::to_string(config.clock_mhz) + " MHz)";
    }
    std::cout << "config: " << description << "\n"
              << "trace:  " << events.size() << " requests\n\n"
              << metrics.describe();
    if (sampling) {
      std::cout << "\nsampled: " << sampled.chunks_sampled << "/"
                << sampled.chunks_total << " chunks ("
                << sampled.events_measured << " measured events"
                << (sampled.exhaustive ? ", exhaustive fallback" : "")
                << "), 95% joint confidence intervals:\n";
      const auto& names = memsim::MemoryMetrics::metric_names();
      for (std::size_t i = 0; i < names.size(); ++i) {
        std::cout << "  " << names[i] << ": [" << sampled.ci[i].lo << ", "
                  << sampled.ci[i].hi << "]\n";
      }
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
