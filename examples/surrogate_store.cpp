/// \file surrogate_store.cpp
/// "Train once, query forever": runs the sweep, trains one surrogate
/// per metric, saves them (plus the dataset) to a directory, reloads
/// them, and answers configuration queries without any simulation —
/// the deployment workflow the serialization layer exists for.
///
/// Usage: surrogate_store [--dir /tmp/gmd_models] [--vertices 512]

#include <filesystem>
#include <fstream>
#include <iostream>

#include "gmd/common/cli.hpp"
#include "gmd/common/error.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/dataset_builder.hpp"
#include "gmd/dse/workflow.hpp"
#include "gmd/ml/serialize.hpp"

int main(int argc, char** argv) {
  using namespace gmd;

  CliParser cli("surrogate_store", "persist and reload trained surrogates");
  cli.add_option("dir", "/tmp/gmd_models", "model store directory")
      .add_option("vertices", "512", "graph size");
  try {
    if (!cli.parse(argc, argv)) return 0;
    const std::filesystem::path dir(cli.get_string("dir"));
    std::filesystem::create_directories(dir);

    // Phase 1: simulate and train (the expensive part).
    dse::WorkflowConfig config;
    config.graph_vertices = static_cast<std::uint32_t>(cli.get_int("vertices"));
    const auto trace = dse::generate_workload_trace(config);
    const auto rows = dse::run_sweep(dse::reduced_design_space(), trace);
    dse::sweep_to_table(rows).save((dir / "dataset.csv").string());

    for (const std::string& metric : dse::target_metric_names()) {
      const dse::MetricDataset md = dse::build_metric_dataset(rows, metric);
      const auto model = ml::make_regressor("svr");
      model->fit(md.data.X, md.data.y);
      ml::save_model_file((dir / (metric + ".svr.txt")).string(), *model);
    }
    std::cout << "stored dataset + " << dse::target_metric_names().size()
              << " SVR models in " << dir << "\n\n";

    // Phase 2: a "later session" — reload and query, no simulator.
    const auto stored_rows =
        dse::table_to_sweep(CsvTable::load((dir / "dataset.csv").string()));
    dse::DesignPoint query;
    query.kind = dse::MemoryKind::kHybrid;
    query.cpu_freq_mhz = 5000;
    query.ctrl_freq_mhz = 1250;
    query.channels = 4;
    query.trcd = 125;

    std::cout << "reloaded " << stored_rows.size()
              << " dataset rows; predictions for " << query.id() << ":\n";
    for (const std::string& metric : dse::target_metric_names()) {
      const dse::MetricDataset md =
          dse::build_metric_dataset(stored_rows, metric);
      const auto model =
          ml::load_model_file((dir / (metric + ".svr.txt")).string());
      // Scale the query with the dataset's scalers, predict, unscale.
      const auto raw = query.features();
      ml::Matrix x(1, raw.size());
      std::copy(raw.begin(), raw.end(), x.row(0).begin());
      const double scaled = model->predict_one(md.x_scaler.transform(x).row(0));
      const double value =
          md.y_scaler.inverse_transform(std::vector<double>{scaled})[0];
      std::cout << "  " << metric << ": " << value << "\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
