/// \file config_generator.cpp
/// The paper's configuration-generation scripts (§III-C): "To avoid
/// human errors, we automated the process of generating configuration
/// files for 1) pure DRAM, 2) pure NVM, and 3) a hybrid ... with
/// different numbers of channels as well as different values for
/// various memory configuration related parameters."
///
/// Emits one NVMain-style config file per design point (two files for
/// hybrids: the DRAM side and the NVM side) plus a manifest.tsv that
/// maps point ids to files — ready to drive memsim_cli in a shell loop.
///
/// Usage: config_generator [--dir ./configs] [--space paper|reduced]

#include <filesystem>
#include <fstream>
#include <iostream>

#include "gmd/common/cli.hpp"
#include "gmd/common/error.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/memsim/config_io.hpp"

int main(int argc, char** argv) {
  using namespace gmd;

  CliParser cli("config_generator",
                "emit NVMain-style config files for the whole design space");
  cli.add_option("dir", "./configs", "output directory")
      .add_option("space", "paper", "paper (416 points) | reduced (96)");
  try {
    if (!cli.parse(argc, argv)) return 0;

    const std::string space = cli.get_string("space");
    const auto points = space == "paper"     ? dse::paper_design_space()
                        : space == "reduced" ? dse::reduced_design_space()
                                             : std::vector<dse::DesignPoint>{};
    GMD_REQUIRE(!points.empty(), "--space expects 'paper' or 'reduced'");

    const std::filesystem::path dir(cli.get_string("dir"));
    std::filesystem::create_directories(dir);
    std::ofstream manifest(dir / "manifest.tsv");
    GMD_REQUIRE(manifest.good(), "cannot write manifest");
    manifest << "id\tkind\tfiles\n";

    std::size_t files_written = 0;
    for (const dse::DesignPoint& point : points) {
      if (point.kind == dse::MemoryKind::kHybrid) {
        const auto hybrid = point.hybrid_config();
        const std::string dram_file = point.id() + ".dram.cfg";
        const std::string nvm_file = point.id() + ".nvm.cfg";
        memsim::save_config((dir / dram_file).string(), hybrid.dram);
        memsim::save_config((dir / nvm_file).string(), hybrid.nvm);
        manifest << point.id() << "\thybrid\t" << dram_file << ","
                 << nvm_file << "\n";
        files_written += 2;
      } else {
        const std::string file = point.id() + ".cfg";
        memsim::save_config((dir / file).string(), point.single_config());
        manifest << point.id() << "\t" << to_string(point.kind) << "\t"
                 << file << "\n";
        ++files_written;
      }
    }
    std::cout << "wrote " << files_written << " config files for "
              << points.size() << " design points to " << dir
              << " (manifest.tsv maps ids to files)\n";
    return 0;
  } catch (const Error& e) {
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
