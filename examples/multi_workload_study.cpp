/// \file multi_workload_study.cpp
/// The §V generalizability study as a library call: run the pipeline
/// for several graph kernels, train descriptor-augmented surrogates,
/// and print leave-one-workload-out generalization scores.
///
/// Usage: multi_workload_study [--vertices 512]
///        [--workloads bfs,pagerank,cc,sssp] [--model svr]

#include <iostream>

#include "gmd/common/cli.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/string_util.hpp"
#include "gmd/dse/multi_study.hpp"

int main(int argc, char** argv) {
  using namespace gmd;

  CliParser cli("multi_workload_study",
                "cross-workload surrogate generalization study");
  cli.add_option("vertices", "512", "graph size per workload")
      .add_option("workloads", "bfs,pagerank,cc,sssp",
                  "comma-separated kernel list")
      .add_option("model", "svr", "surrogate family (linear|svr|rf|gb)")
      .add_option("seed", "1", "random seed");
  try {
    if (!cli.parse(argc, argv)) return 0;

    dse::MultiStudyConfig config;
    config.graph_vertices = static_cast<std::uint32_t>(cli.get_int("vertices"));
    config.seed = static_cast<std::uint64_t>(cli.get_int("seed"));
    config.surrogate_model = cli.get_string("model");
    config.workloads.clear();
    const std::string workloads = cli.get_string("workloads");
    for (const auto part : split(workloads, ',')) {
      config.workloads.emplace_back(trim(part));
    }

    const dse::MultiStudyResult result = run_multi_workload_study(config);
    std::cout << result.summary();
    std::cout << "\nPer-metric mean LOWO R2:\n";
    for (const std::string& metric : dse::target_metric_names()) {
      std::cout << "  " << metric << ": "
                << format_fixed(result.mean_lowo_r2(metric), 4) << "\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
