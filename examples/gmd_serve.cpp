/// \file gmd_serve.cpp
/// The resident DSE query service daemon.  Reads one JSON request per
/// line from stdin, writes one JSON response per line to stdout
/// (responses may be out of request order; match by "id"), and keeps
/// traces mmapped, surrogates loaded, and simulation results cached
/// across requests — the amortization a fresh process per query can
/// never get.  EOF on stdin is the graceful-drain signal: admission
/// stops, every accepted request completes and answers, then the
/// process exits 0.
///
/// Usage: gmd_serve [--traces alias=path,alias2=path2]
///          [--models name=path,name2=path2]
///          [--threads N] [--queue-depth N] [--cache-capacity N]
///          [--cache-shards N] [--default-deadline-ms N] [--sim-workers N]
///          [--quarantine-probe-ms N] [--faults SPEC]
///
/// Traces/models can also arrive at runtime via the register_trace /
/// register_model verbs (see service.hpp for the protocol).
///
/// Chaos hooks: `--faults site=kind[:nth=N][:p=F][:seed=S][:oneshot],...`
/// (or the GMD_FAULTS environment variable) arms the process-wide
/// fault-injection registry before serving — see
/// gmd/common/faultinject.hpp for the site catalog and spec grammar.

#include <functional>
#include <iostream>
#include <mutex>
#include <string>

#include "gmd/common/cli.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/faultinject.hpp"
#include "gmd/common/string_util.hpp"
#include "gmd/service/service.hpp"

namespace {

using namespace gmd;

/// Parses "name=path,name2=path2" and hands each pair to `add`.
void register_pairs(const std::string& spec,
                    const std::function<void(const std::string&,
                                             const std::string&)>& add) {
  if (spec.empty()) return;
  for (const std::string_view pair : split(spec, ',')) {
    const auto eq = pair.find('=');
    GMD_REQUIRE_AS(ErrorCode::kConfig,
                   eq != std::string_view::npos && eq > 0 &&
                       eq + 1 < pair.size(),
                   "expected name=path, got '" << pair << "'");
    add(std::string(pair.substr(0, eq)), std::string(pair.substr(eq + 1)));
  }
}

int run(int argc, const char* const* argv) {
  CliParser cli("gmd_serve",
                "Resident DSE query service (JSON lines on stdin/stdout)");
  cli.add_option("traces", "", "comma-separated alias=path GMDT stores");
  cli.add_option("models", "", "comma-separated name=path .gmdm surrogates");
  cli.add_option("threads", "0", "worker threads (0: hardware)");
  cli.add_option("queue-depth", "256", "admission bound (pending requests)");
  cli.add_option("cache-capacity", "4096", "result cache entries");
  cli.add_option("cache-shards", "8", "result cache shards");
  cli.add_option("default-deadline-ms", "0",
                 "deadline for requests without one (0: unlimited)");
  cli.add_option("sim-workers", "1",
                 "channel-parallel workers per simulation");
  cli.add_option("quarantine-probe-ms", "5000",
                 "min delay between re-probes of a quarantined resource "
                 "(0: probe on every lookup)");
  cli.add_option("faults", "",
                 "arm fault points: site=kind[:nth=N][:p=F][:seed=S]"
                 "[:oneshot],... (also read from $GMD_FAULTS)");
  if (!cli.parse(argc, argv)) return 0;

  service::ServiceOptions options;
  options.num_threads = static_cast<std::size_t>(cli.get_int("threads"));
  options.max_queue_depth =
      static_cast<std::size_t>(cli.get_int("queue-depth"));
  options.cache_capacity =
      static_cast<std::size_t>(cli.get_int("cache-capacity"));
  options.cache_shards = static_cast<std::size_t>(cli.get_int("cache-shards"));
  options.default_deadline =
      std::chrono::milliseconds(cli.get_int("default-deadline-ms"));
  options.sim_workers = static_cast<std::uint32_t>(cli.get_int("sim-workers"));
  options.quarantine_probe_interval =
      std::chrono::milliseconds(cli.get_int("quarantine-probe-ms"));

  // Chaos: arm injected faults before anything touches a fault point.
  if (const std::string faults = cli.get_string("faults"); !faults.empty()) {
    faultinject::arm_from_spec(faults);
  }
  faultinject::arm_from_env();

  service::Service service(options);
  register_pairs(cli.get_string("traces"),
                 [&service](const std::string& alias, const std::string& path) {
                   service.traces().register_store(alias, path);
                 });
  register_pairs(cli.get_string("models"),
                 [&service](const std::string& name, const std::string& path) {
                   service.models().register_model(name, path);
                 });

  // One mutex serializes response lines: worker threads answer
  // concurrently, and a torn line would corrupt the protocol.
  std::mutex stdout_mutex;
  const auto respond = [&stdout_mutex](std::string line) {
    std::lock_guard<std::mutex> lock(stdout_mutex);
    std::cout << line << "\n" << std::flush;
  };

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line.empty()) continue;
    service.handle_line(line, respond);
  }
  // stdin EOF: drain accepted work (their responses still flush above),
  // then exit cleanly.
  service.drain();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const Error& e) {
    std::cerr << "gmd_serve: " << e.what() << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "gmd_serve: " << e.what() << "\n";
    return 1;
  }
}
