/// \file memory_explorer.cpp
/// The architect's view: sweep one design axis (or a full design space)
/// for a chosen workload and print a metric table per configuration —
/// the interactive equivalent of reading one block of the paper's
/// Figure 2.
///
/// Usage: memory_explorer [--workload bfs|dobfs|pagerank|cc|sssp|triangles]
///                        [--vertices N] [--space axis|reduced|paper|million]
///                        [--limit N] [--axis ctrl|cpu|channels|trcd]
///                        [--kind dram|nvm|hybrid]
///                        [--trace-dir DIR] [--trace-format text|gmdt]
///                        [--policy failfast|skip|retry] [--retries N]
///                        [--deadline-ms N] [--checkpoint PATH] [--resume]
///                        [--csv PATH]
///
/// With --trace-dir the workload trace goes through the on-disk
/// pipeline first (gem5 text, then the chosen container); the gmdt
/// path feeds the sweep straight from the memory-mapped store.
///
/// Distributed mode (--run-dir DIR): the sweep executes as a
/// lease-based multi-process run over a shared run directory.  The
/// trace is published once as <run-dir>/trace.gmdt and every worker
/// maps it read-only.
///
///   --run-dir DIR --distributed N   fork N workers, supervise them,
///                                   survive (and respawn) dead ones
///   --run-dir DIR --supervise-only  plan/monitor/merge only; point
///                                   `sweep_worker --run-dir DIR` at the
///                                   same directory from other processes
///
/// --kill-workers K --kill-after-points P makes the first K forked
/// workers _Exit(137) (the SIGKILL stand-in) after journaling P points
/// — the deterministic crash-recovery demo: the run still completes
/// and the merged rows are bit-identical to a single-process sweep.

#include <chrono>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <iostream>
#include <vector>

#include "gmd/common/cli.hpp"
#include "gmd/common/error.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/dataset_builder.hpp"
#include "gmd/dse/distributed.hpp"
#include "gmd/dse/lazy_space.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/dse/workflow.hpp"
#include "gmd/trace/converter.hpp"
#include "gmd/trace/formats.hpp"
#include "gmd/tracestore/reader.hpp"
#include "gmd/tracestore/writer.hpp"

namespace {

using namespace gmd;

std::vector<dse::DesignPoint> build_points(const std::string& space,
                                           const std::string& axis,
                                           dse::MemoryKind kind,
                                           std::size_t limit) {
  std::vector<dse::DesignPoint> points;
  if (space == "axis") {
    points = dse::axis_design_points(axis, kind);
  } else if (space == "reduced") {
    points = dse::reduced_design_space();
  } else if (space == "paper") {
    points = dse::paper_design_space();
  } else if (space == "million") {
    // Decoded lazily: with --limit only the requested prefix is ever
    // materialized, so smoke runs touch a 10^6-point space for free.
    const dse::LazySpace lazy(dse::LazySpace::million_axes());
    const std::size_t count =
        limit == 0 ? lazy.size() : std::min(limit, lazy.size());
    lazy.decode_block(0, count, points);
    return points;
  } else {
    throw Error(ErrorCode::kConfig,
                "unknown space '" + space + "' (axis|reduced|paper|million)");
  }
  if (limit != 0 && points.size() > limit) points.resize(limit);
  return points;
}

dse::FailurePolicy parse_policy(const std::string& policy) {
  if (policy == "failfast") return dse::FailurePolicy::kFailFast;
  if (policy == "skip") return dse::FailurePolicy::kSkip;
  if (policy == "retry") return dse::FailurePolicy::kRetry;
  throw Error(ErrorCode::kConfig,
              "unknown failure policy '" + policy + "' (failfast|skip|retry)");
}

dse::MemoryKind parse_kind(const std::string& kind) {
  if (kind == "dram") return dse::MemoryKind::kDram;
  if (kind == "nvm") return dse::MemoryKind::kNvm;
  if (kind == "hybrid") return dse::MemoryKind::kHybrid;
  throw Error("unknown memory kind '" + kind + "'");
}

/// Publishes the trace as <run-dir>/trace.gmdt unless a readable store
/// is already there (a resumed run reuses the published one, keeping
/// the sweep identity stable across supervisor restarts).
std::string publish_run_trace(const std::string& run_dir,
                              std::span<const cpusim::MemoryEvent> trace) {
  std::filesystem::create_directories(run_dir);
  const std::string store_path = run_dir + "/trace.gmdt";
  if (std::filesystem::exists(store_path)) {
    try {
      const tracestore::TraceStoreReader probe(store_path);
      return store_path;  // complete store from a previous run
    } catch (const Error&) {
      std::cout << "rewriting unreadable trace store '" << store_path
                << "'\n";
    }
  }
  tracestore::write_trace_store(store_path, trace);
  return store_path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace gmd;

  CliParser cli("memory_explorer", "sweep one memory design axis");
  cli.add_option("workload", "bfs", "bfs | dobfs | pagerank | cc | sssp | triangles")
      .add_option("vertices", "256", "graph size")
      .add_option("space", "axis",
                  "point set: axis (one --axis slice) | reduced | paper | "
                  "million (lazy 10^6-point grid)")
      .add_option("limit", "0",
                  "sweep only the first N points of the space (0: all)")
      .add_option("axis", "ctrl", "axis to sweep: ctrl | cpu | channels | trcd")
      .add_option("kind", "nvm", "memory technology: dram | nvm | hybrid")
      .add_option("trace-dir", "",
                  "round-trip the trace through files in this directory")
      .add_option("trace-format", "text",
                  "on-disk trace container under --trace-dir: text | gmdt")
      .add_option("policy", "failfast",
                  "failure policy: failfast | skip | retry")
      .add_option("retries", "3", "max attempts per point under --policy retry")
      .add_option("deadline-ms", "0",
                  "per-point wall budget in milliseconds (0: unlimited)")
      .add_option("checkpoint", "",
                  "journal completed rows to this file (atomic rewrite)")
      .add_flag("resume", "resume from an existing --checkpoint journal")
      .add_option("sim-workers", "1",
                  "channel-parallel threads per simulation (bit-identical; "
                  "the point pool shrinks to compensate)")
      .add_option("sample-fraction", "1.0",
                  "chunk-sampled sweep: fraction of trace chunks per point "
                  "(1.0 = exhaustive; hybrid points stay exhaustive)")
      .add_option("sample-seed", "1", "seed of the sampled chunk subset")
      .add_option("sample-chunk-events", "10000",
                  "events per sampling window for in-memory traces")
      .add_option("csv", "", "also save ok rows as a CSV table here")
      .add_option("run-dir", "",
                  "distributed mode: shared run directory (leases, "
                  "journals, trace.gmdt)")
      .add_option("distributed", "4",
                  "worker processes to fork under --run-dir")
      .add_flag("supervise-only",
                "plan/monitor/merge only; workers join via sweep_worker")
      .add_option("shard-points", "16", "points per claimable shard")
      .add_option("lease-ttl-ms", "2000",
                  "expire a lease whose heartbeat stalls this long")
      .add_option("kill-workers", "0",
                  "fault injection: this many forked workers _Exit(137)")
      .add_option("kill-after-points", "0",
                  "fault injection: ...after journaling this many points");
  try {
    if (!cli.parse(argc, argv)) return 0;

    dse::WorkflowConfig config;
    config.graph_vertices = static_cast<std::uint32_t>(cli.get_int("vertices"));
    config.workload = cli.get_string("workload");
    const auto trace = dse::generate_workload_trace(config);
    std::cout << "workload '" << config.workload << "': " << trace.size()
              << " memory events\n\n";

    const auto points = build_points(
        cli.get_string("space"), cli.get_string("axis"),
        parse_kind(cli.get_string("kind")),
        static_cast<std::size_t>(cli.get_int("limit")));
    dse::SweepOptions sweep;
    sweep.failure_policy = parse_policy(cli.get_string("policy"));
    sweep.max_attempts =
        static_cast<std::uint32_t>(cli.get_int("retries"));
    sweep.point_wall_budget =
        std::chrono::milliseconds(cli.get_int("deadline-ms"));
    sweep.checkpoint_path = cli.get_string("checkpoint");
    sweep.resume = cli.get_flag("resume");
    sweep.sim_workers =
        static_cast<std::uint32_t>(cli.get_int("sim-workers"));
    sweep.sample_fraction = cli.get_double("sample-fraction");
    sweep.sample_seed = static_cast<std::uint64_t>(cli.get_int("sample-seed"));
    sweep.sampling_chunk_events =
        static_cast<std::size_t>(cli.get_int("sample-chunk-events"));

    const std::string run_dir = cli.get_string("run-dir");
    const std::string trace_dir = cli.get_string("trace-dir");
    std::vector<dse::SweepRow> rows;
    if (!run_dir.empty()) {
      // --- distributed: lease-based multi-process run ------------------
      const std::string store_path = publish_run_trace(run_dir, trace);
      const tracestore::TraceStoreReader store(store_path);
      std::cout << "run dir '" << run_dir << "': " << points.size()
                << " points, trace store " << store.num_chunks()
                << " chunks\n";

      dse::DistributedStats stats;
      if (cli.get_flag("supervise-only")) {
        dse::SupervisorOptions sup;
        sup.shard_size = static_cast<std::size_t>(cli.get_int("shard-points"));
        sup.lease_ttl =
            std::chrono::milliseconds(cli.get_int("lease-ttl-ms"));
        const dse::JournalKey key = dse::sweep_identity(
            dse::make_journal_key(points, store), sweep);
        rows = dse::supervise({run_dir}, points, key, sup, &stats);
      } else {
        dse::DistributedSweepOptions dist;
        dist.num_workers =
            static_cast<std::size_t>(cli.get_int("distributed"));
        dist.shard_size = static_cast<std::size_t>(cli.get_int("shard-points"));
        dist.lease_ttl = std::chrono::milliseconds(cli.get_int("lease-ttl-ms"));
        dist.kill_workers =
            static_cast<std::size_t>(cli.get_int("kill-workers"));
        dist.kill_after_points =
            static_cast<std::size_t>(cli.get_int("kill-after-points"));
        rows = dse::run_sweep_distributed(points, store, run_dir, sweep, dist,
                                          &stats);
      }
      std::cout << "distributed: " << stats.shards << " shards, "
                << stats.tasks_issued << " tasks issued, "
                << stats.leases_expired << " leases expired, "
                << stats.workers_respawned << " workers respawned, "
                << stats.duplicate_rows << " duplicate rows merged\n\n";
    } else if (trace_dir.empty()) {
      rows = dse::run_sweep(points, trace, sweep);
    } else {
      std::filesystem::create_directories(trace_dir);
      const std::string gem5_path = trace_dir + "/explorer.gem5.txt";
      {
        std::ofstream out(gem5_path);
        GMD_REQUIRE(out.good(), "cannot write '" << gem5_path << "'");
        trace::Gem5TraceWriter writer(out);
        for (const auto& event : trace) writer.on_event(event);
      }
      const std::string trace_format = cli.get_string("trace-format");
      if (trace_format == "gmdt") {
        const std::string store_path = trace_dir + "/explorer.gmdt";
        trace::convert_gem5_to_gmdt(gem5_path, store_path);
        const tracestore::TraceStoreReader store(store_path);
        std::cout << "trace store: " << store.num_chunks() << " chunks, "
                  << store.file_bytes() << " bytes\n\n";
        rows = dse::run_sweep(points, store, sweep);
      } else if (trace_format == "text") {
        const std::string nvmain_path = trace_dir + "/explorer.nvmain.txt";
        trace::convert_gem5_to_nvmain(gem5_path, nvmain_path);
        std::ifstream in(nvmain_path);
        GMD_REQUIRE(in.good(), "cannot read '" << nvmain_path << "'");
        const auto events = trace::read_nvmain_trace(in);
        rows = dse::run_sweep(points, events, sweep);
      } else {
        throw Error(ErrorCode::kConfig,
                    "--trace-format expects 'text' or 'gmdt', got '" +
                        trace_format + "'");
      }
    }

    std::cout << std::left << std::setw(28) << "configuration"
              << std::right << std::setw(10) << "power(W)" << std::setw(12)
              << "bw(MB/s)" << std::setw(10) << "lat(cy)" << std::setw(12)
              << "totlat(cy)" << std::setw(12) << "rd/ch" << std::setw(12)
              << "wr/ch" << "\n";
    for (const auto& row : rows) {
      if (!row.ok()) {
        std::cout << std::left << std::setw(28) << row.point.id()
                  << "  <" << dse::to_string(row.outcome) << "> ["
                  << to_string(row.error_code) << "] " << row.error << "\n";
        continue;
      }
      const auto& m = row.metrics;
      std::cout << std::left << std::setw(28) << row.point.id() << std::right
                << std::fixed << std::setprecision(4) << std::setw(10)
                << m.avg_power_per_channel_w << std::setprecision(1)
                << std::setw(12) << m.avg_bandwidth_per_bank_mbs
                << std::setw(10) << m.avg_latency_cycles << std::setw(12)
                << m.avg_total_latency_cycles << std::setw(12)
                << m.avg_reads_per_channel << std::setw(12)
                << m.avg_writes_per_channel << "\n";
      if (row.sampled()) {
        const auto& ci = row.metric_ci;
        std::cout << std::setprecision(1) << "  ci(95% joint): power ["
                  << ci[0].lo << ", " << ci[0].hi << "] bw [" << ci[1].lo
                  << ", " << ci[1].hi << "] lat [" << ci[2].lo << ", "
                  << ci[2].hi << "] totlat [" << ci[3].lo << ", " << ci[3].hi
                  << "]\n";
      }
    }
    const std::string csv = cli.get_string("csv");
    if (!csv.empty()) {
      std::vector<dse::SweepRow> ok_rows;
      for (const auto& row : rows) {
        if (row.ok()) ok_rows.push_back(row);
      }
      // Same writer as the pipeline and the distributed supervisor, so
      // this CSV is byte-comparable against a run directory's sweep.csv.
      dse::sweep_to_table(ok_rows).save(csv);
      std::cout << "\nsaved " << ok_rows.size() << " ok rows to '" << csv
                << "'\n";
    }
    const dse::SweepHealth health = dse::summarize_health(rows);
    if (!health.all_ok()) {
      std::cout << "\nsweep health: " << health.summary() << "\n";
    }
    return 0;
  } catch (const Error& e) {
    std::cerr << "error [" << to_string(e.code()) << "]: " << e.what()
              << "\n";
    return 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
