#!/usr/bin/env bash
# Pre-merge check: configure (Release, warnings on), build, run the full
# test suite, then print the sweep microbenchmark gauges so perf
# regressions are visible next to the test results.
#
# Usage: scripts/check.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra"
cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo
echo "== GMDT pack -> verify -> unpack smoke =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$BUILD_DIR/examples/trace_tools" --out-dir "$SMOKE_DIR" --vertices 256
"$BUILD_DIR/examples/trace_tools" pack \
  --input "$SMOKE_DIR/workload.gem5.txt" --input-format gem5 \
  --output "$SMOKE_DIR/smoke.gmdt"
"$BUILD_DIR/examples/trace_tools" verify --input "$SMOKE_DIR/smoke.gmdt"
"$BUILD_DIR/examples/trace_tools" unpack \
  --input "$SMOKE_DIR/smoke.gmdt" --output "$SMOKE_DIR/smoke.nvmain.txt"
cmp "$SMOKE_DIR/smoke.nvmain.txt" "$SMOKE_DIR/workload.nvmain.txt"
echo "GMDT round trip matches the text converter output"

echo
echo "== pipeline kill-and-resume smoke =="
PIPE_REF="$SMOKE_DIR/pipeline-ref"
PIPE_KILLED="$SMOKE_DIR/pipeline-killed"
# Reference: one uninterrupted run.
"$BUILD_DIR/examples/pipeline_runner" --vertices 96 --out-dir "$PIPE_REF" \
  --summary-only
# Same configuration, killed twice (SIGKILL stand-in: no destructors, no
# flushes) and failed once, resumed after each fault.
if "$BUILD_DIR/examples/pipeline_runner" --vertices 96 \
    --out-dir "$PIPE_KILLED" --kill-after-points 5 --summary-only; then
  echo "expected the mid-sweep kill to terminate the run" >&2; exit 1
fi
if "$BUILD_DIR/examples/pipeline_runner" --vertices 96 \
    --out-dir "$PIPE_KILLED" --resume --kill-stage train --summary-only; then
  echo "expected the pre-train kill to terminate the run" >&2; exit 1
fi
if "$BUILD_DIR/examples/pipeline_runner" --vertices 96 \
    --out-dir "$PIPE_KILLED" --resume --fail-stage recommend \
    --summary-only; then
  echo "expected the injected recommend failure to fail the run" >&2; exit 1
fi
"$BUILD_DIR/examples/pipeline_runner" --vertices 96 --out-dir "$PIPE_KILLED" \
  --resume --summary-only
# The recovered artifacts must be bit-identical to the uninterrupted run,
# and no uncommitted temp file may survive.
cmp "$PIPE_REF/sweep.csv" "$PIPE_KILLED/sweep.csv"
cmp "$PIPE_REF/table1.txt" "$PIPE_KILLED/table1.txt"
cmp "$PIPE_REF/recommendations.txt" "$PIPE_KILLED/recommendations.txt"
for model in "$PIPE_REF"/models/*.model; do
  cmp "$model" "$PIPE_KILLED/models/$(basename "$model")"
done
LEFTOVER_TEMPS="$(find "$PIPE_REF" "$PIPE_KILLED" -name '*.tmp')"
if [ -n "$LEFTOVER_TEMPS" ]; then
  echo "uncommitted temp files left behind:" >&2
  echo "$LEFTOVER_TEMPS" >&2
  exit 1
fi
echo "killed-and-resumed pipeline matches the uninterrupted run bit for bit"

echo
echo "== distributed sweep kill-worker smoke =="
# Single-process reference CSV over the full 416-point paper grid.
"$BUILD_DIR/examples/memory_explorer" --vertices 96 --space paper \
  --policy retry --csv "$SMOKE_DIR/single-sweep.csv" > /dev/null
# Lease-sharded run: 4 forked workers, two of which _Exit(137) (the
# SIGKILL stand-in — no destructors, no flushes) after 10 journaled
# points; the supervisor reaps and respawns them mid-run.
"$BUILD_DIR/examples/memory_explorer" --vertices 96 --space paper \
  --policy retry --run-dir "$SMOKE_DIR/dist-forked" --distributed 4 \
  --shard-points 8 --lease-ttl-ms 1000 --kill-workers 2 \
  --kill-after-points 10 > /dev/null
cmp "$SMOKE_DIR/single-sweep.csv" "$SMOKE_DIR/dist-forked/sweep.csv"
echo "4-worker run with two SIGKILLed workers matches single-process bit for bit"
# External supervisor + worker processes: two workers die mid-run, a
# replacement restarted under a dead worker's id adopts its journal.
timeout 300 "$BUILD_DIR/examples/memory_explorer" --vertices 96 --space paper \
  --run-dir "$SMOKE_DIR/dist-ext" --supervise-only --shard-points 8 \
  --lease-ttl-ms 1000 > /dev/null & SUP_PID=$!
WORKER="$BUILD_DIR/examples/sweep_worker"
"$WORKER" --run-dir "$SMOKE_DIR/dist-ext" --space paper --worker w1 \
  > /dev/null &
"$WORKER" --run-dir "$SMOKE_DIR/dist-ext" --space paper --worker w2 \
  --exit-after-points 5 > /dev/null & W2_PID=$!
"$WORKER" --run-dir "$SMOKE_DIR/dist-ext" --space paper --worker w3 \
  --exit-after-points 5 > /dev/null & W3_PID=$!
if wait "$W2_PID"; then
  echo "expected worker w2 to be killed mid-run" >&2; exit 1
fi
if wait "$W3_PID"; then
  echo "expected worker w3 to be killed mid-run" >&2; exit 1
fi
"$WORKER" --run-dir "$SMOKE_DIR/dist-ext" --space paper --worker w2 \
  > /dev/null &
wait "$SUP_PID"
cmp "$SMOKE_DIR/single-sweep.csv" "$SMOKE_DIR/dist-ext/sweep.csv"
wait
echo "supervised run with killed-and-resumed workers matches bit for bit"

echo
echo "== channel-parallel equivalence + sampled-CI smoke =="
"$BUILD_DIR/examples/memsim_cli" --emit-config dram > "$SMOKE_DIR/dram.cfg"
# Serial and 4-worker runs of the same config + trace must print the
# exact same metrics (channel-parallel replay is bit-identical).
"$BUILD_DIR/examples/memsim_cli" --config "$SMOKE_DIR/dram.cfg" \
  --trace "$SMOKE_DIR/smoke.nvmain.txt" > "$SMOKE_DIR/serial.out"
"$BUILD_DIR/examples/memsim_cli" --config "$SMOKE_DIR/dram.cfg" \
  --trace "$SMOKE_DIR/smoke.nvmain.txt" --sim-workers 4 \
  > "$SMOKE_DIR/parallel.out"
cmp "$SMOKE_DIR/serial.out" "$SMOKE_DIR/parallel.out"
echo "4-worker metrics match serial bit for bit"
# A sampled run must report confidence intervals for every metric.
"$BUILD_DIR/examples/memsim_cli" --config "$SMOKE_DIR/dram.cfg" \
  --trace "$SMOKE_DIR/smoke.nvmain.txt" --sample-fraction 0.5 \
  --sample-chunk-events 500 > "$SMOKE_DIR/sampled.out"
grep -q "joint confidence intervals" "$SMOKE_DIR/sampled.out"
CI_LINES="$(grep -c '\[.*, .*\]' "$SMOKE_DIR/sampled.out")"
if [ "$CI_LINES" -lt 6 ]; then
  echo "expected >= 6 per-metric CI lines, got $CI_LINES" >&2; exit 1
fi
echo "sampled run reports per-metric confidence intervals"

echo
echo "== query service smoke =="
# Bare protocol: health + stats on stdin, one response line each, and a
# clean drain (exit 0) when stdin closes.
printf '%s\n' '{"verb":"health","id":1}' '{"verb":"stats","id":2}' \
  | "$BUILD_DIR/examples/gmd_serve" > "$SMOKE_DIR/serve.out"
grep -q '"status":"ok"' "$SMOKE_DIR/serve.out"
test "$(wc -l < "$SMOKE_DIR/serve.out")" -eq 2
echo "gmd_serve answered health+stats and drained cleanly on EOF"
# Chaos smoke: an armed one-shot fault answers its typed wire code on
# the first stats, then the site disarms and the second stats succeeds.
printf '%s\n' '{"verb":"stats","id":1}' '{"verb":"stats","id":2}' \
  | "$BUILD_DIR/examples/gmd_serve" \
      --faults 'service.stats=unavailable:nth=1:oneshot' \
  > "$SMOKE_DIR/serve_faults.out"
grep -q '"code":"unavailable"' "$SMOKE_DIR/serve_faults.out"
grep -q '"ok":true' "$SMOKE_DIR/serve_faults.out"
echo "gmd_serve fault injection: typed error once, then healthy"
# Full client smoke: concurrent mixed load, cache bit-identity against
# run_sweep, 10k-config predict, deadline expiry, overload shedding on
# a tiny queue, graceful drain, SIGKILL + transparent client retry, and
# an injected store fault that quarantines and self-heals.
"$BUILD_DIR/examples/service_client" --server "$BUILD_DIR/examples/gmd_serve" \
  --vertices 128 --out-dir "$SMOKE_DIR/service"

echo
echo "== adaptive explorer kill-and-resume smoke =="
EXPLORER_ARGS=(--vertices 96 --space reduced --model rf --initial 8 \
  --batch 4 --rounds 3 --budget 20 --top-k 5)
# Reference: one uninterrupted closed loop.
"$BUILD_DIR/examples/adaptive_explorer" "${EXPLORER_ARGS[@]}" \
  --out-dir "$SMOKE_DIR/explorer-ref" > /dev/null
# Same loop, SIGKILL stand-in (_Exit, no destructors, no flushes) after
# one acquisition round, then resumed from the journals.
if "$BUILD_DIR/examples/adaptive_explorer" "${EXPLORER_ARGS[@]}" \
    --run-dir "$SMOKE_DIR/explorer-kill" --kill-after-round 2 \
    > /dev/null; then
  echo "expected the mid-loop kill to terminate the explorer" >&2; exit 1
fi
"$BUILD_DIR/examples/adaptive_explorer" "${EXPLORER_ARGS[@]}" \
  --run-dir "$SMOKE_DIR/explorer-kill" --resume \
  --out-dir "$SMOKE_DIR/explorer-resumed" > /dev/null
for artifact in result.csv front_power_w__total_latency_cycles.csv \
    front_power_w__bandwidth_mbs.csv; do
  cmp "$SMOKE_DIR/explorer-ref/$artifact" \
    "$SMOKE_DIR/explorer-resumed/$artifact"
done
echo "killed-and-resumed explorer matches the uninterrupted run bit for bit"

echo
echo "== memsim microbenchmarks =="
"$BUILD_DIR/bench/bench_micro" \
  --benchmark_filter='BM_MemorySimulation' --benchmark_min_time=2

echo
echo "== sweep gauge (compare against BENCH_sweep.json) =="
"$BUILD_DIR/bench/bench_sweep"

echo
echo "== surrogate training gauge, quick mode (compare against BENCH_ml.json) =="
"$BUILD_DIR/bench/bench_ml" --quick

echo
echo "== query service gauge (compare against BENCH_service.json) =="
"$BUILD_DIR/bench/bench_service"

echo
echo "== explorer gauge, quick mode (compare against BENCH_explorer.json) =="
"$BUILD_DIR/bench/bench_explorer" --quick
