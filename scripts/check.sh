#!/usr/bin/env bash
# Pre-merge check: configure (Release, warnings on), build, run the full
# test suite, then print the sweep microbenchmark gauges so perf
# regressions are visible next to the test results.
#
# Usage: scripts/check.sh [build-dir]   (default: build)

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"

cmake -B "$BUILD_DIR" -S . \
  -DCMAKE_BUILD_TYPE=Release \
  -DCMAKE_CXX_FLAGS="-Wall -Wextra"
cmake --build "$BUILD_DIR" -j "$(nproc)"

ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo
echo "== GMDT pack -> verify -> unpack smoke =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
"$BUILD_DIR/examples/trace_tools" --out-dir "$SMOKE_DIR" --vertices 256
"$BUILD_DIR/examples/trace_tools" pack \
  --input "$SMOKE_DIR/workload.gem5.txt" --input-format gem5 \
  --output "$SMOKE_DIR/smoke.gmdt"
"$BUILD_DIR/examples/trace_tools" verify --input "$SMOKE_DIR/smoke.gmdt"
"$BUILD_DIR/examples/trace_tools" unpack \
  --input "$SMOKE_DIR/smoke.gmdt" --output "$SMOKE_DIR/smoke.nvmain.txt"
cmp "$SMOKE_DIR/smoke.nvmain.txt" "$SMOKE_DIR/workload.nvmain.txt"
echo "GMDT round trip matches the text converter output"

echo
echo "== memsim microbenchmarks =="
"$BUILD_DIR/bench/bench_micro" \
  --benchmark_filter='BM_MemorySimulation' --benchmark_min_time=2

echo
echo "== sweep gauge (compare against BENCH_sweep.json) =="
"$BUILD_DIR/bench/bench_sweep"
