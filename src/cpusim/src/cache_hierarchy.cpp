#include "gmd/cpusim/cache_hierarchy.hpp"

#include <algorithm>

#include "gmd/common/error.hpp"

namespace gmd::cpusim {

CacheHierarchy::CacheHierarchy(const CacheHierarchyConfig& config)
    : l1_(config.l1), l2_(config.l2) {
  GMD_REQUIRE(config.l1.line_bytes == config.l2.line_bytes,
              "L1 and L2 must share a line size");
  GMD_REQUIRE(config.l2.size_bytes >= config.l1.size_bytes,
              "L2 must be at least as large as L1 (inclusive hierarchy)");
}

HierarchyTraffic CacheHierarchy::access(std::uint64_t address,
                                        bool is_write) {
  HierarchyTraffic traffic;
  const CacheAccessResult l1 = l1_.access(address, is_write);
  traffic.l1_hit = l1.hit;
  if (l1.hit) return traffic;

  // L1 victim write-back lands in L2 (it is below L1), possibly
  // evicting a dirty L2 line to memory.
  if (l1.writeback) {
    const CacheAccessResult spill =
        l2_.access(l1.writeback_address, /*is_write=*/true);
    if (spill.writeback) {
      traffic.writebacks.push_back(spill.writeback_address);
    }
    // An L2 miss on the spill means the line had aged out of L2 (the
    // hierarchy is only approximately inclusive); its fill is paper
    // bookkeeping, not memory traffic — the data came from L1.
  }

  // L1 miss: look up (and fill) L2.
  const CacheAccessResult l2 = l2_.access(address, /*is_write=*/false);
  traffic.l2_hit = l2.hit;
  if (l2.writeback) traffic.writebacks.push_back(l2.writeback_address);
  if (!l2.hit) traffic.fills.push_back(l2.fill_address);
  return traffic;
}

std::vector<std::uint64_t> CacheHierarchy::flush() {
  // L1 dirty lines spill into L2 first, then L2 flushes to memory.
  std::vector<std::uint64_t> memory_writebacks;
  for (const std::uint64_t line : l1_.flush()) {
    const CacheAccessResult spill = l2_.access(line, /*is_write=*/true);
    if (spill.writeback) {
      memory_writebacks.push_back(spill.writeback_address);
    }
  }
  auto l2_lines = l2_.flush();
  memory_writebacks.insert(memory_writebacks.end(), l2_lines.begin(),
                           l2_lines.end());
  std::sort(memory_writebacks.begin(), memory_writebacks.end());
  memory_writebacks.erase(
      std::unique(memory_writebacks.begin(), memory_writebacks.end()),
      memory_writebacks.end());
  return memory_writebacks;
}

}  // namespace gmd::cpusim
