#include "gmd/cpusim/config_io.hpp"

#include <fstream>
#include <functional>
#include <map>
#include <ostream>

#include "gmd/common/error.hpp"
#include "gmd/common/string_util.hpp"

namespace gmd::cpusim {

void write_cpu_config(std::ostream& os, const CpuModel& model) {
  os << "; graphmemdse system (CPU) configuration\n";
  os << "CPUFreqMHz " << model.freq_mhz << "\n";
  os << "ComputeOpTicks " << model.compute_op_ticks << "\n";
  os << "MemoryOpTicks " << model.memory_op_ticks << "\n";
  if (model.cache_hierarchy) {
    os << "L1Size " << model.cache_hierarchy->l1.size_bytes << "\n";
    os << "L1Line " << model.cache_hierarchy->l1.line_bytes << "\n";
    os << "L1Assoc " << model.cache_hierarchy->l1.associativity << "\n";
    os << "L2Size " << model.cache_hierarchy->l2.size_bytes << "\n";
    os << "L2Line " << model.cache_hierarchy->l2.line_bytes << "\n";
    os << "L2Assoc " << model.cache_hierarchy->l2.associativity << "\n";
  } else if (model.cache) {
    os << "L1Size " << model.cache->size_bytes << "\n";
    os << "L1Line " << model.cache->line_bytes << "\n";
    os << "L1Assoc " << model.cache->associativity << "\n";
  } else {
    os << "CacheEnable false\n";
  }
}

void save_cpu_config(const std::string& path, const CpuModel& model) {
  std::ofstream out(path);
  GMD_REQUIRE(out.good(), "cannot open '" << path << "' for writing");
  write_cpu_config(out, model);
  GMD_REQUIRE(out.good(), "write to '" << path << "' failed");
}

CpuModel read_cpu_config(std::istream& is) {
  CpuModel model;
  CacheConfig l1;
  CacheConfig l2;
  bool saw_l1 = false;
  bool saw_l2 = false;
  bool cache_enabled = true;

  const auto parse_number = [](std::string_view key, std::string_view value) {
    const auto parsed = parse_uint(value);
    GMD_REQUIRE(parsed.has_value(), "cpu config key "
                                        << std::string(key) << ": bad value '"
                                        << std::string(value) << "'");
    return *parsed;
  };

  using Setter =
      std::function<void(std::string_view key, std::string_view value)>;
  const std::map<std::string, Setter, std::less<>> setters = {
      {"CPUFreqMHz",
       [&](auto k, auto v) { model.freq_mhz = parse_number(k, v); }},
      {"ComputeOpTicks",
       [&](auto k, auto v) {
         model.compute_op_ticks =
             static_cast<std::uint32_t>(parse_number(k, v));
       }},
      {"MemoryOpTicks",
       [&](auto k, auto v) {
         model.memory_op_ticks =
             static_cast<std::uint32_t>(parse_number(k, v));
       }},
      {"L1Size",
       [&](auto k, auto v) {
         l1.size_bytes = parse_number(k, v);
         saw_l1 = true;
       }},
      {"L1Line",
       [&](auto k, auto v) {
         l1.line_bytes = static_cast<std::uint32_t>(parse_number(k, v));
         saw_l1 = true;
       }},
      {"L1Assoc",
       [&](auto k, auto v) {
         l1.associativity = static_cast<std::uint32_t>(parse_number(k, v));
         saw_l1 = true;
       }},
      {"L2Size",
       [&](auto k, auto v) {
         l2.size_bytes = parse_number(k, v);
         saw_l2 = true;
       }},
      {"L2Line",
       [&](auto k, auto v) {
         l2.line_bytes = static_cast<std::uint32_t>(parse_number(k, v));
         saw_l2 = true;
       }},
      {"L2Assoc",
       [&](auto k, auto v) {
         l2.associativity = static_cast<std::uint32_t>(parse_number(k, v));
         saw_l2 = true;
       }},
      {"CacheEnable",
       [&](auto k, auto v) {
         const std::string lowered = to_lower(v);
         GMD_REQUIRE(lowered == "true" || lowered == "false",
                     "cpu config key " << std::string(k)
                                       << ": expected true/false");
         cache_enabled = lowered == "true";
       }},
  };

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    std::string_view text = trim(line);
    for (const char comment : {';', '#'}) {
      if (const auto pos = text.find(comment); pos != std::string_view::npos)
        text = trim(text.substr(0, pos));
    }
    if (text.empty()) continue;
    const auto space = text.find_first_of(" \t");
    GMD_REQUIRE(space != std::string_view::npos,
                "cpu config line " << line_no << ": expected 'KEY value'");
    const std::string_view key = text.substr(0, space);
    const std::string_view value = trim(text.substr(space + 1));
    const auto it = setters.find(key);
    GMD_REQUIRE(it != setters.end(), "cpu config line "
                                         << line_no << ": unknown key '"
                                         << std::string(key) << "'");
    it->second(key, value);
  }

  if (cache_enabled && saw_l2) {
    GMD_REQUIRE(saw_l1, "L2 cache configured without an L1");
    model.cache_hierarchy = CacheHierarchyConfig{l1, l2};
  } else if (cache_enabled && saw_l1) {
    model.cache = l1;
  }
  // Validate eagerly by constructing the CPU once.
  (void)AtomicCpu(model);
  return model;
}

CpuModel load_cpu_config(const std::string& path) {
  std::ifstream in(path);
  GMD_REQUIRE(in.good(), "cannot open '" << path << "' for reading");
  return read_cpu_config(in);
}

}  // namespace gmd::cpusim
