#include "gmd/cpusim/workloads.hpp"

#include <limits>

#include "gmd/common/error.hpp"
#include "gmd/common/string_util.hpp"

namespace gmd::cpusim {

namespace {

using graph::VertexId;

/// Shared setup: the CSR arrays in simulated memory.  The graph is
/// assumed resident before the kernel's region of interest begins, so
/// the copy-in itself is silent (Graph500 times only the search).
struct SimCsr {
  SimArray<std::uint64_t> offsets;
  SimArray<VertexId> neighbors;

  SimCsr(AddressSpace& space, AtomicCpu& cpu, const graph::CsrGraph& g)
      : offsets(space.allocate<std::uint64_t>(cpu, g.num_vertices() + 1,
                                              "csr.offsets")),
        neighbors(
            space.allocate<VertexId>(cpu, g.num_edges(), "csr.neighbors")) {
    offsets.assign_silent(
        {g.offsets().begin(), g.offsets().end()});
    neighbors.assign_silent(
        {g.neighbors().begin(), g.neighbors().end()});
  }
};

WorkloadResult finish(AtomicCpu& cpu, const AddressSpace& space,
                      std::uint64_t kernel_output) {
  cpu.flush_cache();
  WorkloadResult result;
  result.cpu = cpu.stats();
  result.sim_bytes = space.bytes_allocated();
  result.kernel_output = kernel_output;
  return result;
}

}  // namespace

BfsWorkload::BfsWorkload(const graph::CsrGraph& graph, VertexId source)
    : graph_(graph), source_(source) {
  GMD_REQUIRE(source < graph.num_vertices(),
              "BFS source " << source << " out of range");
}

WorkloadResult BfsWorkload::run(AtomicCpu& cpu) const {
  AddressSpace space;
  SimCsr csr(space, cpu, graph_);
  const VertexId n = graph_.num_vertices();

  constexpr VertexId kNone = std::numeric_limits<VertexId>::max();
  auto parent = space.allocate<VertexId>(cpu, n, "bfs.parent");
  auto frontier = space.allocate<VertexId>(cpu, n, "bfs.frontier");
  auto next = space.allocate<VertexId>(cpu, n, "bfs.next");
  parent.fill_silent(kNone);

  // Region of interest: the Graph500 timed kernel.
  parent.store(source_, source_);
  frontier.store(0, source_);
  std::size_t frontier_size = 1;
  std::uint64_t visited = 1;

  while (frontier_size > 0) {
    std::size_t next_size = 0;
    for (std::size_t i = 0; i < frontier_size; ++i) {
      const VertexId u = frontier.load(i);
      const std::uint64_t begin = csr.offsets.load(u);
      const std::uint64_t end = csr.offsets.load(u + 1);
      for (std::uint64_t e = begin; e < end; ++e) {
        const VertexId v = csr.neighbors.load(e);
        cpu.compute();  // visited check
        if (parent.load(v) == kNone) {
          parent.store(v, u);
          next.store(next_size++, v);
          ++visited;
        }
      }
    }
    // Swap frontiers: the kernel reads `next` as the new frontier.
    for (std::size_t i = 0; i < next_size; ++i) {
      frontier.store(i, next.load(i));
    }
    frontier_size = next_size;
    cpu.compute();  // loop bookkeeping
  }
  return finish(cpu, space, visited);
}

DirectionOptimizingBfsWorkload::DirectionOptimizingBfsWorkload(
    const graph::CsrGraph& graph, VertexId source, double alpha)
    : graph_(graph), source_(source), alpha_(alpha) {
  GMD_REQUIRE(source < graph.num_vertices(),
              "BFS source " << source << " out of range");
  GMD_REQUIRE(alpha > 0.0, "alpha must be positive");
}

WorkloadResult DirectionOptimizingBfsWorkload::run(AtomicCpu& cpu) const {
  AddressSpace space;
  SimCsr csr(space, cpu, graph_);
  const VertexId n = graph_.num_vertices();

  constexpr VertexId kNone = std::numeric_limits<VertexId>::max();
  auto parent = space.allocate<VertexId>(cpu, n, "dobfs.parent");
  auto in_frontier = space.allocate<std::uint8_t>(cpu, n, "dobfs.frontier");
  auto in_next = space.allocate<std::uint8_t>(cpu, n, "dobfs.next");
  auto frontier = space.allocate<VertexId>(cpu, n, "dobfs.queue");
  parent.fill_silent(kNone);
  in_frontier.fill_silent(0);

  parent.store(source_, source_);
  in_frontier.store(source_, 1);
  frontier.store(0, source_);
  std::size_t frontier_size = 1;
  std::uint64_t frontier_edges = graph_.degree(source_);
  std::uint64_t visited = 1;
  const auto total_edges = static_cast<double>(graph_.num_edges());

  while (frontier_size > 0) {
    const bool bottom_up =
        static_cast<double>(frontier_edges) > total_edges / alpha_;
    std::size_t next_size = 0;
    std::uint64_t next_edges = 0;
    for (VertexId v = 0; v < n; ++v) in_next.store(v, 0);

    if (bottom_up) {
      // Bottom-up: every unvisited vertex scans its neighbors for a
      // frontier member — sequential sweeps over parent[] plus short
      // adjacency probes.
      for (VertexId v = 0; v < n; ++v) {
        if (parent.load(v) != kNone) continue;
        const std::uint64_t begin = csr.offsets.load(v);
        const std::uint64_t end = csr.offsets.load(v + 1);
        for (std::uint64_t e = begin; e < end; ++e) {
          const VertexId u = csr.neighbors.load(e);
          cpu.compute();
          if (in_frontier.load(u) != 0) {
            parent.store(v, u);
            in_next.store(v, 1);
            frontier.store(next_size++, v);
            next_edges += end - begin;
            ++visited;
            break;
          }
        }
      }
    } else {
      for (std::size_t i = 0; i < frontier_size; ++i) {
        const VertexId u = frontier.load(i);
        const std::uint64_t begin = csr.offsets.load(u);
        const std::uint64_t end = csr.offsets.load(u + 1);
        for (std::uint64_t e = begin; e < end; ++e) {
          const VertexId v = csr.neighbors.load(e);
          cpu.compute();
          if (parent.load(v) == kNone) {
            parent.store(v, u);
            in_next.store(v, 1);
            frontier.store(frontier_size + next_size, v);
            ++next_size;
            next_edges += graph_.degree(v);
            ++visited;
          }
        }
      }
      // Compact the next frontier to the queue head.
      for (std::size_t i = 0; i < next_size; ++i) {
        frontier.store(i, frontier.load(frontier_size + i));
      }
    }

    // Swap frontier bitmaps.
    for (VertexId v = 0; v < n; ++v) {
      in_frontier.store(v, in_next.load(v));
    }
    frontier_size = next_size;
    frontier_edges = next_edges;
    cpu.compute();
  }
  return finish(cpu, space, visited);
}

PageRankWorkload::PageRankWorkload(const graph::CsrGraph& graph,
                                   unsigned iterations)
    : graph_(graph), iterations_(iterations) {
  GMD_REQUIRE(iterations >= 1, "PageRank needs >= 1 iteration");
}

WorkloadResult PageRankWorkload::run(AtomicCpu& cpu) const {
  AddressSpace space;
  SimCsr csr(space, cpu, graph_);
  const VertexId n = graph_.num_vertices();
  if (n == 0) return finish(cpu, space, 0);

  auto rank = space.allocate<double>(cpu, n, "pr.rank");
  auto next = space.allocate<double>(cpu, n, "pr.next");
  rank.fill_silent(1.0 / static_cast<double>(n));

  constexpr double kDamping = 0.85;
  for (unsigned iter = 0; iter < iterations_; ++iter) {
    for (VertexId v = 0; v < n; ++v) next.store(v, 0.0);
    for (VertexId u = 0; u < n; ++u) {
      const std::uint64_t begin = csr.offsets.load(u);
      const std::uint64_t end = csr.offsets.load(u + 1);
      if (begin == end) continue;
      const double share =
          rank.load(u) / static_cast<double>(end - begin);
      cpu.compute();  // division
      for (std::uint64_t e = begin; e < end; ++e) {
        const VertexId v = csr.neighbors.load(e);
        next.store(v, next.load(v) + share);
        cpu.compute();  // add
      }
    }
    for (VertexId v = 0; v < n; ++v) {
      next.store(v, (1.0 - kDamping) / static_cast<double>(n) +
                        kDamping * next.load(v));
      cpu.compute();
    }
    // Swap by copying (the simulated kernel owns both arrays).
    for (VertexId v = 0; v < n; ++v) rank.store(v, next.load(v));
  }
  // Checksum: scaled sum to a stable integer.
  double sum = 0.0;
  for (VertexId v = 0; v < n; ++v) sum += rank.peek(v);
  return finish(cpu, space, static_cast<std::uint64_t>(sum * 1e6));
}

ConnectedComponentsWorkload::ConnectedComponentsWorkload(
    const graph::CsrGraph& graph)
    : graph_(graph) {}

WorkloadResult ConnectedComponentsWorkload::run(AtomicCpu& cpu) const {
  AddressSpace space;
  SimCsr csr(space, cpu, graph_);
  const VertexId n = graph_.num_vertices();
  if (n == 0) return finish(cpu, space, 0);

  auto comp = space.allocate<VertexId>(cpu, n, "cc.component");
  for (VertexId v = 0; v < n; ++v) comp.store(v, v);

  bool changed = true;
  while (changed) {
    changed = false;
    for (VertexId u = 0; u < n; ++u) {
      const std::uint64_t begin = csr.offsets.load(u);
      const std::uint64_t end = csr.offsets.load(u + 1);
      const VertexId cu = comp.load(u);
      for (std::uint64_t e = begin; e < end; ++e) {
        const VertexId v = csr.neighbors.load(e);
        const VertexId cv = comp.load(v);
        cpu.compute();  // compare
        if (cv < cu) {
          comp.store(u, cv);
          changed = true;
        } else if (cu < cv) {
          comp.store(v, cu);
          changed = true;
        }
      }
    }
  }
  std::uint64_t roots = 0;
  for (VertexId v = 0; v < n; ++v)
    if (comp.peek(v) == v) ++roots;
  return finish(cpu, space, roots);
}

SsspWorkload::SsspWorkload(const graph::CsrGraph& graph, VertexId source,
                           unsigned max_rounds)
    : graph_(graph), source_(source), max_rounds_(max_rounds) {
  GMD_REQUIRE(source < graph.num_vertices(),
              "SSSP source " << source << " out of range");
  GMD_REQUIRE(max_rounds >= 1, "SSSP needs >= 1 round");
}

WorkloadResult SsspWorkload::run(AtomicCpu& cpu) const {
  AddressSpace space;
  SimCsr csr(space, cpu, graph_);
  const VertexId n = graph_.num_vertices();

  // Unweighted graphs relax with weight 1; weighted CSRs bring their
  // weights into simulated memory too.
  const bool weighted = graph_.is_weighted();
  auto weights = space.allocate<double>(
      cpu, weighted ? graph_.num_edges() : 1, "sssp.weights");
  if (weighted)
    weights.assign_silent({graph_.weights().begin(), graph_.weights().end()});

  constexpr double kInf = std::numeric_limits<double>::infinity();
  auto dist = space.allocate<double>(cpu, n, "sssp.dist");
  dist.fill_silent(kInf);
  dist.store(source_, 0.0);

  bool changed = true;
  unsigned round = 0;
  while (changed && round < max_rounds_) {
    changed = false;
    ++round;
    for (VertexId u = 0; u < n; ++u) {
      const double du = dist.load(u);
      if (du == kInf) continue;
      const std::uint64_t begin = csr.offsets.load(u);
      const std::uint64_t end = csr.offsets.load(u + 1);
      for (std::uint64_t e = begin; e < end; ++e) {
        const VertexId v = csr.neighbors.load(e);
        const double w = weighted ? weights.load(e) : 1.0;
        cpu.compute();  // add + compare
        if (du + w < dist.load(v)) {
          dist.store(v, du + w);
          changed = true;
        }
      }
    }
  }
  std::uint64_t reached = 0;
  for (VertexId v = 0; v < n; ++v)
    if (dist.peek(v) != kInf) ++reached;
  return finish(cpu, space, reached);
}

TriangleCountWorkload::TriangleCountWorkload(const graph::CsrGraph& graph)
    : graph_(graph) {}

WorkloadResult TriangleCountWorkload::run(AtomicCpu& cpu) const {
  AddressSpace space;
  SimCsr csr(space, cpu, graph_);
  const VertexId n = graph_.num_vertices();

  std::uint64_t triangles = 0;
  for (VertexId u = 0; u < n; ++u) {
    const std::uint64_t u_begin = csr.offsets.load(u);
    const std::uint64_t u_end = csr.offsets.load(u + 1);
    for (std::uint64_t ue = u_begin; ue < u_end; ++ue) {
      const VertexId v = csr.neighbors.load(ue);
      cpu.compute();
      if (v <= u) continue;  // count each triangle once (u < v < w)
      const std::uint64_t v_begin = csr.offsets.load(v);
      const std::uint64_t v_end = csr.offsets.load(v + 1);
      // Sorted intersection of the two adjacency lists above v.
      std::uint64_t i = u_begin;
      std::uint64_t j = v_begin;
      VertexId a = i < u_end ? csr.neighbors.load(i) : 0;
      VertexId b = j < v_end ? csr.neighbors.load(j) : 0;
      while (i < u_end && j < v_end) {
        cpu.compute();
        if (a <= v) {
          ++i;
          if (i < u_end) a = csr.neighbors.load(i);
          continue;
        }
        if (b <= v) {
          ++j;
          if (j < v_end) b = csr.neighbors.load(j);
          continue;
        }
        if (a == b) {
          ++triangles;
          ++i;
          ++j;
          if (i < u_end) a = csr.neighbors.load(i);
          if (j < v_end) b = csr.neighbors.load(j);
        } else if (a < b) {
          ++i;
          if (i < u_end) a = csr.neighbors.load(i);
        } else {
          ++j;
          if (j < v_end) b = csr.neighbors.load(j);
        }
      }
    }
  }
  return finish(cpu, space, triangles);
}

std::unique_ptr<Workload> make_workload(const std::string& name,
                                        const graph::CsrGraph& graph,
                                        VertexId source) {
  const std::string key = to_lower(name);
  if (key == "bfs") return std::make_unique<BfsWorkload>(graph, source);
  if (key == "dobfs")
    return std::make_unique<DirectionOptimizingBfsWorkload>(graph, source);
  if (key == "pagerank")
    return std::make_unique<PageRankWorkload>(graph);
  if (key == "cc")
    return std::make_unique<ConnectedComponentsWorkload>(graph);
  if (key == "sssp") return std::make_unique<SsspWorkload>(graph, source);
  if (key == "triangles")
    return std::make_unique<TriangleCountWorkload>(graph);
  throw Error("unknown workload '" + name +
              "' (expected bfs|dobfs|pagerank|cc|sssp|triangles)");
}

}  // namespace gmd::cpusim
