#include "gmd/cpusim/atomic_cpu.hpp"

#include "gmd/common/deadline.hpp"
#include "gmd/common/error.hpp"

namespace gmd::cpusim {

AtomicCpu::AtomicCpu(const CpuModel& model, TraceSink* sink)
    : model_(model), sink_(sink) {
  GMD_REQUIRE(model.compute_op_ticks > 0, "compute_op_ticks must be positive");
  GMD_REQUIRE(model.memory_op_ticks > 0, "memory_op_ticks must be positive");
  if (model.cache_hierarchy) {
    hierarchy_.emplace(*model.cache_hierarchy);
  } else if (model.cache) {
    cache_.emplace(*model.cache);
  }
}

void AtomicCpu::compute(std::uint64_t ops) {
  stats_.ticks += ops * model_.compute_op_ticks;
  stats_.compute_ops += ops;
}

void AtomicCpu::load(std::uint64_t address, std::uint32_t size) {
  ++stats_.loads;
  access(address, size, /*is_write=*/false);
}

void AtomicCpu::store(std::uint64_t address, std::uint32_t size) {
  ++stats_.stores;
  access(address, size, /*is_write=*/true);
}

void AtomicCpu::access(std::uint64_t address, std::uint32_t size,
                       bool is_write) {
  GMD_REQUIRE(size > 0, "memory access size must be positive");
  // Every memory access polls the deadline; check() amortizes the clock
  // read internally, so the hot loop stays cheap.  A workload stuck in
  // a tight access loop unwinds with kTimeout/kCancelled here.
  if (deadline_ != nullptr) deadline_->check();
  stats_.ticks += model_.memory_op_ticks;
  if (hierarchy_) {
    const HierarchyTraffic traffic = hierarchy_->access(address, is_write);
    const std::uint32_t line = hierarchy_->l2().config().line_bytes;
    for (const std::uint64_t wb : traffic.writebacks) {
      emit(wb, line, /*is_write=*/true);
    }
    for (const std::uint64_t fill : traffic.fills) {
      emit(fill, line, /*is_write=*/false);
    }
    return;
  }
  if (!cache_) {
    emit(address, size, is_write);
    return;
  }
  const CacheAccessResult result = cache_->access(address, is_write);
  if (result.writeback) {
    emit(result.writeback_address, cache_->config().line_bytes,
         /*is_write=*/true);
  }
  if (result.fill) {
    // Misses fetch a whole line; write misses fetch then dirty the line
    // (write-allocate), so the memory sees a read here and the write at
    // eviction time.
    emit(result.fill_address, cache_->config().line_bytes,
         /*is_write=*/false);
  }
}

void AtomicCpu::flush_cache() {
  if (hierarchy_) {
    const std::uint32_t line_bytes = hierarchy_->l2().config().line_bytes;
    for (const std::uint64_t line : hierarchy_->flush()) {
      emit(line, line_bytes, /*is_write=*/true);
    }
    return;
  }
  if (!cache_) return;
  for (const std::uint64_t line : cache_->flush()) {
    emit(line, cache_->config().line_bytes, /*is_write=*/true);
  }
}

void AtomicCpu::emit(std::uint64_t address, std::uint32_t size,
                     bool is_write) {
  ++stats_.memory_events;
  if (sink_ != nullptr) {
    sink_->on_event(MemoryEvent{stats_.ticks, address, size, is_write});
  }
}

}  // namespace gmd::cpusim
