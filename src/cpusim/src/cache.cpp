#include "gmd/cpusim/cache.hpp"

#include <bit>

#include "gmd/common/error.hpp"

namespace gmd::cpusim {

Cache::Cache(const CacheConfig& config) : config_(config) {
  GMD_REQUIRE(std::has_single_bit(config.line_bytes),
              "cache line size must be a power of two");
  GMD_REQUIRE(config.associativity >= 1, "associativity must be >= 1");
  GMD_REQUIRE(config.size_bytes % (static_cast<std::uint64_t>(config.line_bytes) *
                                   config.associativity) ==
                  0,
              "cache size must be a multiple of line_bytes * associativity");
  num_sets_ = static_cast<std::uint32_t>(
      config.size_bytes /
      (static_cast<std::uint64_t>(config.line_bytes) * config.associativity));
  GMD_REQUIRE(num_sets_ >= 1 && std::has_single_bit(num_sets_),
              "number of cache sets must be a power of two");
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(config.line_bytes));
  lines_.resize(static_cast<std::size_t>(num_sets_) * config.associativity);
}

std::uint64_t Cache::line_address(std::uint64_t tag, std::uint32_t set) const {
  return ((tag * num_sets_) + set) << line_shift_;
}

CacheAccessResult Cache::access(std::uint64_t address, bool is_write) {
  ++clock_;
  const std::uint64_t line_number = address >> line_shift_;
  const auto set = static_cast<std::uint32_t>(line_number % num_sets_);
  const std::uint64_t tag = line_number / num_sets_;
  Line* const set_begin = &lines_[static_cast<std::size_t>(set) *
                                  config_.associativity];

  CacheAccessResult result;
  Line* victim = set_begin;
  for (std::uint32_t way = 0; way < config_.associativity; ++way) {
    Line& line = set_begin[way];
    if (line.valid && line.tag == tag) {
      line.last_use = clock_;
      line.dirty = line.dirty || is_write;
      ++hits_;
      result.hit = true;
      return result;
    }
    // Prefer invalid victims, then least-recently-used.
    if (!victim->valid) continue;
    if (!line.valid || line.last_use < victim->last_use) victim = &line;
  }

  ++misses_;
  if (victim->valid && victim->dirty) {
    ++writebacks_;
    result.writeback = true;
    result.writeback_address = line_address(victim->tag, set);
  }
  result.fill = true;
  result.fill_address = line_number << line_shift_;
  victim->valid = true;
  victim->dirty = is_write;  // write-allocate
  victim->tag = tag;
  victim->last_use = clock_;
  return result;
}

std::vector<std::uint64_t> Cache::flush() {
  std::vector<std::uint64_t> dirty_lines;
  for (std::uint32_t set = 0; set < num_sets_; ++set) {
    for (std::uint32_t way = 0; way < config_.associativity; ++way) {
      Line& line = lines_[static_cast<std::size_t>(set) *
                              config_.associativity +
                          way];
      if (line.valid && line.dirty) {
        dirty_lines.push_back(line_address(line.tag, set));
        ++writebacks_;
      }
      line = Line{};
    }
  }
  return dirty_lines;
}

}  // namespace gmd::cpusim
