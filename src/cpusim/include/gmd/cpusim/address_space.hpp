#pragma once

/// \file address_space.hpp
/// Simulated physical address space with instrumented arrays.
///
/// Workload kernels operate on `SimArray<T>` objects: each element
/// access performs the real computation on host memory *and* reports a
/// load/store at the element's simulated physical address to the
/// AtomicCpu.  This is how the repo reproduces gem5's role — the address
/// stream of the actual BFS data structures in program order.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "gmd/common/error.hpp"
#include "gmd/cpusim/atomic_cpu.hpp"

namespace gmd::cpusim {

template <typename T>
class SimArray;

/// Bump allocator over a simulated physical range.  Allocations are
/// aligned and never freed (workloads are run-to-completion).
class AddressSpace {
 public:
  /// \param base       First simulated physical address handed out.
  /// \param alignment  Allocation alignment (typically a cache line).
  explicit AddressSpace(std::uint64_t base = 0x1000'0000,
                        std::uint64_t alignment = 64)
      : next_(base), base_(base), alignment_(alignment) {
    GMD_REQUIRE(alignment >= 1, "alignment must be >= 1");
  }

  /// Allocates a simulated array of `count` elements.
  template <typename T>
  SimArray<T> allocate(AtomicCpu& cpu, std::size_t count,
                       std::string name = {}) {
    const std::uint64_t address = next_;
    const std::uint64_t bytes = count * sizeof(T);
    next_ = align_up(next_ + bytes);
    allocations_.push_back({std::move(name), address, bytes});
    return SimArray<T>(cpu, address, count);
  }

  /// Total simulated bytes handed out so far.
  std::uint64_t bytes_allocated() const { return next_ - base_; }

  struct Allocation {
    std::string name;
    std::uint64_t address = 0;
    std::uint64_t bytes = 0;
  };
  const std::vector<Allocation>& allocations() const { return allocations_; }

 private:
  std::uint64_t align_up(std::uint64_t value) const {
    return (value + alignment_ - 1) / alignment_ * alignment_;
  }

  std::uint64_t next_;
  std::uint64_t base_;
  std::uint64_t alignment_;
  std::vector<Allocation> allocations_;
};

/// A host array shadowed by a simulated address range.  All element
/// accesses go through load()/store(), which notify the CPU model.
template <typename T>
class SimArray {
 public:
  SimArray(AtomicCpu& cpu, std::uint64_t base_address, std::size_t count)
      : cpu_(&cpu), base_(base_address), data_(count) {}

  std::size_t size() const { return data_.size(); }
  std::uint64_t base_address() const { return base_; }
  std::uint64_t address_of(std::size_t index) const {
    return base_ + index * sizeof(T);
  }

  /// Instrumented element read.
  T load(std::size_t index) const {
    GMD_ASSERT(index < data_.size(), "SimArray load out of range");
    cpu_->load(address_of(index), sizeof(T));
    return data_[index];
  }

  /// Instrumented element write.
  void store(std::size_t index, const T& value) {
    GMD_ASSERT(index < data_.size(), "SimArray store out of range");
    cpu_->store(address_of(index), sizeof(T));
    data_[index] = value;
  }

  /// Bulk initialization *without* traffic; models data that is already
  /// resident before the region of interest starts (e.g. the graph was
  /// loaded before BFS timing begins, as in Graph500).
  void fill_silent(const T& value) {
    std::fill(data_.begin(), data_.end(), value);
  }
  void assign_silent(const std::vector<T>& values) {
    GMD_REQUIRE(values.size() == data_.size(),
                "assign_silent size mismatch");
    data_ = values;
  }

  /// Uninstrumented peek for result checking after the run.
  const T& peek(std::size_t index) const {
    GMD_ASSERT(index < data_.size(), "SimArray peek out of range");
    return data_[index];
  }
  const std::vector<T>& host_data() const { return data_; }

 private:
  AtomicCpu* cpu_;
  std::uint64_t base_;
  std::vector<T> data_;
};

}  // namespace gmd::cpusim
