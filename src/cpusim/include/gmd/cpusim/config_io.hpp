#pragma once

/// \file config_io.hpp
/// gem5-style system configuration files for the CPU side.  The paper
/// "specif[ies] to the Gem5 simulator the system configuration (i.e.
/// CPUs, memory size, etc.) via a system configuration file"; this
/// module gives the atomic CPU model the same file-driven workflow
/// (`KEY value` lines, `;`/`#` comments).
///
/// Keys: CPUFreqMHz, ComputeOpTicks, MemoryOpTicks,
///       L1Size/L1Line/L1Assoc (single-level filter),
///       L2Size/L2Line/L2Assoc (adding these selects the two-level
///       hierarchy), CacheEnable (false strips any cache keys).

#include <iosfwd>
#include <string>

#include "gmd/cpusim/atomic_cpu.hpp"

namespace gmd::cpusim {

void write_cpu_config(std::ostream& os, const CpuModel& model);
void save_cpu_config(const std::string& path, const CpuModel& model);

/// Parses a system configuration; unknown keys throw, missing keys keep
/// defaults (no cache unless cache keys appear).
CpuModel read_cpu_config(std::istream& is);
CpuModel load_cpu_config(const std::string& path);

}  // namespace gmd::cpusim
