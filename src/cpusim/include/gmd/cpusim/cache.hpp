#pragma once

/// \file cache.hpp
/// Set-associative write-back/write-allocate cache filter.
///
/// gem5's memory trace reflects accesses that reach physical memory;
/// with a cache configured, only misses and dirty write-backs do.  This
/// model lets the workflow choose between "no cache" (every access goes
/// to memory — gem5's default atomic setup in the paper) and a filtered
/// trace for the cache-configuration future-work ablation.

#include <cstdint>
#include <vector>

namespace gmd::cpusim {

struct CacheConfig {
  std::uint64_t size_bytes = 32 * 1024;
  std::uint32_t line_bytes = 64;
  std::uint32_t associativity = 4;
};

/// Result of presenting one access to the cache.
struct CacheAccessResult {
  bool hit = false;
  bool fill = false;              ///< A line is fetched from memory.
  bool writeback = false;         ///< A dirty victim goes to memory.
  std::uint64_t fill_address = 0;       ///< Line-aligned address fetched.
  std::uint64_t writeback_address = 0;  ///< Line-aligned victim address.
};

/// LRU set-associative cache (true-LRU via access counters).
class Cache {
 public:
  explicit Cache(const CacheConfig& config);

  const CacheConfig& config() const { return config_; }
  std::uint32_t num_sets() const { return num_sets_; }

  /// Presents one access; updates internal state and reports which
  /// memory traffic (fill / writeback) the access generates.
  CacheAccessResult access(std::uint64_t address, bool is_write);

  /// Writes back every dirty line; returns their line addresses.
  std::vector<std::uint64_t> flush();

  std::uint64_t hits() const { return hits_; }
  std::uint64_t misses() const { return misses_; }
  std::uint64_t writebacks() const { return writebacks_; }

 private:
  struct Line {
    std::uint64_t tag = 0;
    std::uint64_t last_use = 0;
    bool valid = false;
    bool dirty = false;
  };

  std::uint64_t line_address(std::uint64_t tag, std::uint32_t set) const;

  CacheConfig config_;
  std::uint32_t num_sets_ = 0;
  std::uint32_t line_shift_ = 0;
  std::vector<Line> lines_;  // num_sets_ * associativity, set-major
  std::uint64_t clock_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t writebacks_ = 0;
};

}  // namespace gmd::cpusim
