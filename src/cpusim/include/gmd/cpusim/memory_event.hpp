#pragma once

/// \file memory_event.hpp
/// The unit of information flowing from the CPU simulator to the memory
/// simulator: one memory access with its issue time in CPU ticks.
/// This is the same information gem5's SE-mode atomic CPU emits in its
/// physmem trace (tick, address, size, read/write).

#include <cstdint>

namespace gmd::cpusim {

struct MemoryEvent {
  std::uint64_t tick = 0;     ///< CPU cycle at which the access issues.
  std::uint64_t address = 0;  ///< Physical byte address.
  std::uint32_t size = 0;     ///< Access size in bytes.
  bool is_write = false;

  friend bool operator==(const MemoryEvent&, const MemoryEvent&) = default;
};

/// Consumer of the CPU's memory-event stream.  Implementations include
/// in-memory collectors and the gem5-format trace writers in gmd::trace.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void on_event(const MemoryEvent& event) = 0;
};

}  // namespace gmd::cpusim
