#pragma once

/// \file cache_hierarchy.hpp
/// Two-level (L1 + L2) inclusive cache hierarchy.
///
/// The paper ran gem5 without a cache configuration and flags "specific
/// CPUs and cache configurations" as future work; the single-level
/// filter in CpuModel::cache covers the first step, and this hierarchy
/// covers the realistic L1/L2 case: only L2 misses and L2 write-backs
/// reach the memory system.

#include <cstdint>
#include <vector>

#include "gmd/cpusim/cache.hpp"

namespace gmd::cpusim {

struct CacheHierarchyConfig {
  CacheConfig l1{32 * 1024, 64, 4};
  CacheConfig l2{256 * 1024, 64, 8};
};

/// Memory traffic produced by one access to the hierarchy.
struct HierarchyTraffic {
  /// Line-aligned fills fetched from memory (0 or 1 entries).
  std::vector<std::uint64_t> fills;
  /// Line-aligned dirty lines written back to memory (0..2 entries:
  /// an L1 victim can force an L2 write-back on a conflicting set).
  std::vector<std::uint64_t> writebacks;
  bool l1_hit = false;
  bool l2_hit = false;
};

class CacheHierarchy {
 public:
  explicit CacheHierarchy(const CacheHierarchyConfig& config);

  /// Presents one access; returns the traffic that reaches memory.
  HierarchyTraffic access(std::uint64_t address, bool is_write);

  /// Flushes both levels; returns every dirty line (memory-bound).
  std::vector<std::uint64_t> flush();

  const Cache& l1() const { return l1_; }
  const Cache& l2() const { return l2_; }

 private:
  Cache l1_;
  Cache l2_;
};

}  // namespace gmd::cpusim
