#pragma once

/// \file workloads.hpp
/// Graph workload drivers: the programs the simulated CPU "runs".
///
/// Each driver copies a CSR graph into the simulated address space and
/// executes its kernel through instrumented arrays, producing the memory
/// trace the paper obtained from gem5.  BFS is the paper's benchmark;
/// PageRank / connected components / SSSP power the "other graph
/// algorithms" future-work ablation.

#include <cstdint>
#include <memory>
#include <string>

#include "gmd/cpusim/address_space.hpp"
#include "gmd/cpusim/atomic_cpu.hpp"
#include "gmd/graph/csr.hpp"

namespace gmd::cpusim {

/// Outcome of one workload execution.
struct WorkloadResult {
  CpuStats cpu;                    ///< Tick/operation counters.
  std::uint64_t sim_bytes = 0;     ///< Simulated footprint allocated.
  std::uint64_t kernel_output = 0; ///< Kernel checksum (e.g. vertices visited).
};

/// A runnable workload bound to a graph.
class Workload {
 public:
  virtual ~Workload() = default;
  virtual std::string name() const = 0;
  /// Executes the kernel on `cpu`; the graph structure traffic and all
  /// kernel data-structure traffic flow through the CPU's sink.
  virtual WorkloadResult run(AtomicCpu& cpu) const = 0;
};

/// Graph500-style BFS from a fixed source ("computed the BFS kernel as
/// specified in the Graph500 benchmark by starting from a random vertex
/// ID" — the source is chosen by the caller, typically rng-drawn).
class BfsWorkload final : public Workload {
 public:
  BfsWorkload(const graph::CsrGraph& graph, graph::VertexId source);
  std::string name() const override { return "bfs"; }
  WorkloadResult run(AtomicCpu& cpu) const override;

 private:
  const graph::CsrGraph& graph_;
  graph::VertexId source_;
};

/// Direction-optimizing BFS (Beamer's algorithm, used by the Graph500
/// reference code): switches between top-down frontier expansion and
/// bottom-up parent search based on frontier size.  Bottom-up phases
/// scan the full vertex range — a very different (more sequential)
/// address stream than top-down's pointer chasing, which is exactly why
/// the traced variant matters for memory co-design.
class DirectionOptimizingBfsWorkload final : public Workload {
 public:
  DirectionOptimizingBfsWorkload(const graph::CsrGraph& graph,
                                 graph::VertexId source, double alpha = 15.0);
  std::string name() const override { return "dobfs"; }
  WorkloadResult run(AtomicCpu& cpu) const override;

 private:
  const graph::CsrGraph& graph_;
  graph::VertexId source_;
  double alpha_;
};

/// Fixed-iteration power-method PageRank.
class PageRankWorkload final : public Workload {
 public:
  PageRankWorkload(const graph::CsrGraph& graph, unsigned iterations = 10);
  std::string name() const override { return "pagerank"; }
  WorkloadResult run(AtomicCpu& cpu) const override;

 private:
  const graph::CsrGraph& graph_;
  unsigned iterations_;
};

/// Label-propagation connected components.
class ConnectedComponentsWorkload final : public Workload {
 public:
  explicit ConnectedComponentsWorkload(const graph::CsrGraph& graph);
  std::string name() const override { return "cc"; }
  WorkloadResult run(AtomicCpu& cpu) const override;

 private:
  const graph::CsrGraph& graph_;
};

/// Bellman-Ford-style SSSP (round-based relaxation; regular access
/// pattern per round, contrasting with BFS's frontier irregularity).
class SsspWorkload final : public Workload {
 public:
  SsspWorkload(const graph::CsrGraph& graph, graph::VertexId source,
               unsigned max_rounds = 32);
  std::string name() const override { return "sssp"; }
  WorkloadResult run(AtomicCpu& cpu) const override;

 private:
  const graph::CsrGraph& graph_;
  graph::VertexId source_;
  unsigned max_rounds_;
};

/// Triangle counting (node-iterator with sorted-list intersection):
/// the most irregular kernel here — long dependent pointer chases over
/// two adjacency lists at once.
class TriangleCountWorkload final : public Workload {
 public:
  explicit TriangleCountWorkload(const graph::CsrGraph& graph);
  std::string name() const override { return "triangles"; }
  WorkloadResult run(AtomicCpu& cpu) const override;

 private:
  const graph::CsrGraph& graph_;
};

/// Factory keyed by name ("bfs", "dobfs", "pagerank", "cc", "sssp",
/// "triangles").
std::unique_ptr<Workload> make_workload(const std::string& name,
                                        const graph::CsrGraph& graph,
                                        graph::VertexId source = 0);

}  // namespace gmd::cpusim
