#pragma once

/// \file atomic_cpu.hpp
/// Atomic (functional, fixed-cost) CPU model — the gem5 SE-mode
/// substitute.  It keeps a tick counter, charges a fixed cost per
/// compute operation and per memory access, optionally filters the
/// access stream through a cache model, and forwards the resulting
/// memory traffic to a TraceSink.

#include <cstdint>
#include <optional>
#include <vector>

#include "gmd/cpusim/cache.hpp"
#include "gmd/cpusim/cache_hierarchy.hpp"
#include "gmd/cpusim/memory_event.hpp"

namespace gmd {
class Deadline;
}

namespace gmd::cpusim {

/// Fixed-cost CPU timing parameters (gem5 "atomic" mode analog).
struct CpuModel {
  std::uint64_t freq_mhz = 2000;      ///< Informational; ticks are cycles.
  std::uint32_t compute_op_ticks = 1; ///< Cost of one ALU-ish operation.
  /// Cost of one memory access in CPU ticks.  In gem5's atomic mode a
  /// memory instruction carries the cost of the surrounding dependent
  /// instruction stream, so the default puts the generated request rate
  /// *near* a realistic memory system's capacity: low-clock
  /// configurations saturate (bandwidth scales with controller
  /// frequency) while high-clock ones stay demand-bound (bandwidth
  /// scales with CPU frequency) — the two trends of the paper's Fig. 2.
  std::uint32_t memory_op_ticks = 10;
  std::optional<CacheConfig> cache;   ///< Absent: every access hits memory.
  /// Two-level L1/L2 filter; takes precedence over `cache` when set.
  std::optional<CacheHierarchyConfig> cache_hierarchy;
};

/// Aggregate counters for one workload run.
struct CpuStats {
  std::uint64_t ticks = 0;
  std::uint64_t compute_ops = 0;
  std::uint64_t loads = 0;
  std::uint64_t stores = 0;
  std::uint64_t memory_events = 0;  ///< Events actually sent to the sink.
};

class AtomicCpu {
 public:
  /// \param sink  Receives memory traffic; may be nullptr (count-only runs).
  explicit AtomicCpu(const CpuModel& model, TraceSink* sink = nullptr);

  const CpuModel& model() const { return model_; }
  const CpuStats& stats() const { return stats_; }
  std::uint64_t ticks() const { return stats_.ticks; }
  const Cache* cache() const { return cache_ ? &*cache_ : nullptr; }
  const CacheHierarchy* hierarchy() const {
    return hierarchy_ ? &*hierarchy_ : nullptr;
  }

  /// Advances time by `ops` compute operations.
  void compute(std::uint64_t ops = 1);

  /// Issues one load/store of `size` bytes at `address`.
  void load(std::uint64_t address, std::uint32_t size);
  void store(std::uint64_t address, std::uint32_t size);

  /// Flushes dirty cache lines to the sink (end of workload), so the
  /// memory trace accounts for every store even with a cache configured.
  void flush_cache();

  /// Cooperative cancellation: the memory-access path polls `deadline`
  /// (amortized — the clock is read every few hundred accesses) and
  /// throws Error(kTimeout/kCancelled) once it trips, so a hung or
  /// oversized workload honors wall budgets instead of running
  /// unbounded.  Non-owning; nullptr (the default) disables polling.
  void set_deadline(Deadline* deadline) { deadline_ = deadline; }

 private:
  void access(std::uint64_t address, std::uint32_t size, bool is_write);
  void emit(std::uint64_t address, std::uint32_t size, bool is_write);

  CpuModel model_;
  TraceSink* sink_;
  Deadline* deadline_ = nullptr;
  std::optional<Cache> cache_;
  std::optional<CacheHierarchy> hierarchy_;
  CpuStats stats_;
};

/// TraceSink that buffers events in memory (tests, small workloads).
class VectorSink final : public TraceSink {
 public:
  void on_event(const MemoryEvent& event) override {
    events_.push_back(event);
  }
  const std::vector<MemoryEvent>& events() const { return events_; }
  std::vector<MemoryEvent> take() { return std::move(events_); }

 private:
  std::vector<MemoryEvent> events_;
};

}  // namespace gmd::cpusim
