#include "gmd/ml/tree.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <string>

#include "gmd/common/error.hpp"

namespace gmd::ml {

DecisionTree::DecisionTree(const TreeParams& params) : params_(params) {
  GMD_REQUIRE(params.max_depth >= 1, "max_depth must be >= 1");
  GMD_REQUIRE(params.min_samples_split >= 2, "min_samples_split must be >= 2");
  GMD_REQUIRE(params.min_samples_leaf >= 1, "min_samples_leaf must be >= 1");
}

void DecisionTree::fit(const Matrix& x, std::span<const double> y) {
  fit_weighted(x, y, {});
}

void DecisionTree::fit_weighted(const Matrix& x, std::span<const double> y,
                                std::span<const double> weights) {
  GMD_REQUIRE(x.rows() == y.size(), "X/y row mismatch");
  GMD_REQUIRE(x.rows() >= 1, "empty training data");
  GMD_REQUIRE(weights.empty() || weights.size() == y.size(),
              "weights size mismatch");
  nodes_.clear();
  depth_ = 0;
  std::vector<std::size_t> indices(x.rows());
  std::iota(indices.begin(), indices.end(), std::size_t{0});
  Rng rng(params_.seed);
  build(x, y, weights, indices, 0, indices.size(), 1, rng);
}

namespace {

/// Weighted mean of y over indices[begin, end).
double subset_mean(std::span<const double> y, std::span<const double> w,
                   std::span<const std::size_t> indices, std::size_t begin,
                   std::size_t end) {
  double sum = 0.0;
  double weight = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double wi = w.empty() ? 1.0 : w[indices[i]];
    sum += wi * y[indices[i]];
    weight += wi;
  }
  return weight > 0.0 ? sum / weight : 0.0;
}

}  // namespace

std::uint32_t DecisionTree::build(const Matrix& x, std::span<const double> y,
                                  std::span<const double> w,
                                  std::vector<std::size_t>& indices,
                                  std::size_t begin, std::size_t end,
                                  unsigned depth, gmd::Rng& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t count = end - begin;
  const auto node_id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].value = subset_mean(y, w, indices, begin, end);

  if (depth >= params_.max_depth || count < params_.min_samples_split) {
    return node_id;
  }

  // Candidate features: all, or a random subset (random-forest mode).
  const std::size_t p = x.cols();
  std::vector<std::size_t> features(p);
  std::iota(features.begin(), features.end(), std::size_t{0});
  std::size_t feature_count = p;
  if (params_.max_features > 0 && params_.max_features < p) {
    rng.shuffle(features);
    feature_count = params_.max_features;
  }

  // Best split: exact search per candidate feature over sorted values.
  double best_gain = 0.0;
  std::size_t best_feature = p;
  double best_threshold = 0.0;

  std::vector<std::pair<double, std::size_t>> sorted;  // (value, index)
  sorted.reserve(count);
  for (std::size_t fi = 0; fi < feature_count; ++fi) {
    const std::size_t feature = features[fi];
    sorted.clear();
    for (std::size_t i = begin; i < end; ++i) {
      sorted.emplace_back(x.at(indices[i], feature), indices[i]);
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;  // constant

    // Prefix sums of w, w*y, w*y^2 for O(1) SSE at every cut.
    double left_w = 0.0, left_sum = 0.0, left_sq = 0.0;
    double total_w = 0.0, total_sum = 0.0, total_sq = 0.0;
    for (const auto& [value, idx] : sorted) {
      const double wi = w.empty() ? 1.0 : w[idx];
      total_w += wi;
      total_sum += wi * y[idx];
      total_sq += wi * y[idx] * y[idx];
      (void)value;
    }
    const double parent_sse =
        total_sq - total_sum * total_sum / total_w;

    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const auto& [value, idx] = sorted[i];
      const double wi = w.empty() ? 1.0 : w[idx];
      left_w += wi;
      left_sum += wi * y[idx];
      left_sq += wi * y[idx] * y[idx];
      if (value == sorted[i + 1].first) continue;  // not a valid cut
      const std::size_t left_n = i + 1;
      const std::size_t right_n = count - left_n;
      if (left_n < params_.min_samples_leaf ||
          right_n < params_.min_samples_leaf) {
        continue;
      }
      const double right_w = total_w - left_w;
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double sse = (left_sq - left_sum * left_sum / left_w) +
                         (right_sq - right_sum * right_sum / right_w);
      const double gain = parent_sse - sse;
      if (gain > best_gain + 1e-15) {
        best_gain = gain;
        best_feature = feature;
        best_threshold = (value + sorted[i + 1].first) / 2.0;
      }
    }
  }

  if (best_feature == p) return node_id;  // no useful split found

  // Partition indices[begin, end) by the chosen split.
  const auto mid_iter = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t idx) {
        return x.at(idx, best_feature) <= best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_iter - indices.begin());
  GMD_ASSERT(mid > begin && mid < end, "degenerate partition");

  const std::uint32_t left =
      build(x, y, w, indices, begin, mid, depth + 1, rng);
  const std::uint32_t right =
      build(x, y, w, indices, mid, end, depth + 1, rng);
  nodes_[node_id].feature = static_cast<std::uint32_t>(best_feature);
  nodes_[node_id].threshold = best_threshold;
  nodes_[node_id].gain = best_gain;
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTree::predict_one(std::span<const double> x) const {
  GMD_REQUIRE(is_fitted(), "predict before fit");
  std::uint32_t node = 0;
  while (nodes_[node].feature != Node::kLeaf) {
    GMD_REQUIRE(nodes_[node].feature < x.size(), "feature count mismatch");
    node = x[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

std::unique_ptr<Regressor> DecisionTree::clone() const {
  return std::make_unique<DecisionTree>(*this);
}

std::vector<double> DecisionTree::feature_importances(
    std::size_t num_features) const {
  std::vector<double> importances(num_features, 0.0);
  double total = 0.0;
  for (const Node& node : nodes_) {
    if (node.feature == Node::kLeaf) continue;
    GMD_REQUIRE(node.feature < num_features,
                "tree uses feature " << node.feature
                                     << " beyond num_features "
                                     << num_features);
    importances[node.feature] += node.gain;
    total += node.gain;
  }
  if (total > 0.0) {
    for (double& value : importances) value /= total;
  }
  return importances;
}

void DecisionTree::write(std::ostream& os) const {
  os << "tree " << nodes_.size() << " " << depth_ << "\n";
  os.precision(17);
  for (const Node& node : nodes_) {
    os << node.feature << " " << node.threshold << " " << node.value << " "
       << node.gain << " " << node.left << " " << node.right << "\n";
  }
}

DecisionTree DecisionTree::read(std::istream& is) {
  std::string tag;
  std::size_t count = 0;
  unsigned depth = 0;
  is >> tag >> count >> depth;
  GMD_REQUIRE(is.good() && tag == "tree", "not a serialized tree");
  DecisionTree tree;
  tree.depth_ = depth;
  tree.nodes_.resize(count);
  for (Node& node : tree.nodes_) {
    is >> node.feature >> node.threshold >> node.value >> node.gain >>
        node.left >> node.right;
    GMD_REQUIRE(!is.fail(), "truncated serialized tree");
    GMD_REQUIRE(node.feature == Node::kLeaf ||
                    (node.left < count && node.right < count),
                "serialized tree has dangling child links");
  }
  GMD_REQUIRE(count >= 1, "serialized tree is empty");
  return tree;
}

}  // namespace gmd::ml
