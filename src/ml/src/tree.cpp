#include "gmd/ml/tree.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <string>

#include "gmd/common/error.hpp"
#include "gmd/common/thread_pool.hpp"

namespace gmd::ml {

DecisionTree::DecisionTree(const TreeParams& params) : params_(params) {
  GMD_REQUIRE(params.max_depth >= 1, "max_depth must be >= 1");
  GMD_REQUIRE(params.min_samples_split >= 2, "min_samples_split must be >= 2");
  GMD_REQUIRE(params.min_samples_leaf >= 1, "min_samples_leaf must be >= 1");
  GMD_REQUIRE(params.max_bins >= 2 && params.max_bins <= 256,
              "max_bins must be in [2, 256]");
}

namespace {

/// Weighted mean of y over indices[begin, end).
double subset_mean(std::span<const double> y, std::span<const double> w,
                   std::span<const std::size_t> indices, std::size_t begin,
                   std::size_t end) {
  double sum = 0.0;
  double weight = 0.0;
  for (std::size_t i = begin; i < end; ++i) {
    const double wi = w.empty() ? 1.0 : w[indices[i]];
    sum += wi * y[indices[i]];
    weight += wi;
  }
  return weight > 0.0 ? sum / weight : 0.0;
}

}  // namespace

namespace detail {

/// Grows one tree over a presorted TrainingWorkspace.  Node-local state
/// is three parallel structures kept in lockstep:
///   - indices_: the seed engine's row array, partitioned with the same
///     std::partition call so leaf means sum in the identical order;
///   - order_/values_ (exact mode): per-feature mutable copies of the
///     workspace's sorted rows, split stably at each node so a node's
///     segment is always sorted by (value, row) without re-sorting;
///   - the workspace's immutable bin codes (histogram mode).
/// Per-feature split search is side-effect free, so it can fan out on a
/// ThreadPool; candidates are reduced in feature order with the same
/// "improves by > 1e-15" rule, making the result independent of thread
/// count.
class TreeBuilder {
 public:
  TreeBuilder(DecisionTree& tree, const TrainingWorkspace& ws,
              const Matrix& x, std::span<const double> y,
              std::span<const double> w)
      : tree_(tree), ws_(ws), x_(x), y_(y), w_(w),
        histogram_(tree.params_.split_mode ==
                   TreeParams::SplitMode::kHistogram) {}

  void run() {
    const std::size_t n = x_.rows();
    const std::size_t p = x_.cols();
    indices_.resize(n);
    std::iota(indices_.begin(), indices_.end(), std::size_t{0});
    if (!histogram_) {
      order_.resize(p);
      values_.resize(p);
      for (std::size_t f = 0; f < p; ++f) {
        const auto order = ws_.sorted_order(f);
        const auto values = ws_.sorted_values(f);
        order_[f].assign(order.begin(), order.end());
        values_[f].assign(values.begin(), values.end());
      }
      scratch_order_.resize(n);
      scratch_values_.resize(n);
    }
    mark_.assign(n, 0);
    Rng rng(tree_.params_.seed);
    build_node(0, n, 1, rng);
  }

 private:
  struct Candidate {
    double gain = 0.0;
    double threshold = 0.0;
    bool found = false;
  };

  std::uint32_t build_node(std::size_t begin, std::size_t end, unsigned depth,
                           Rng& rng) {
    const TreeParams& params = tree_.params_;
    tree_.depth_ = std::max(tree_.depth_, depth);
    const std::size_t count = end - begin;
    const auto node_id = static_cast<std::uint32_t>(tree_.nodes_.size());
    tree_.nodes_.emplace_back();
    tree_.nodes_[node_id].value = subset_mean(y_, w_, indices_, begin, end);

    if (depth >= params.max_depth || count < params.min_samples_split) {
      return node_id;
    }

    // Candidate features: all, or a random subset (random-forest mode).
    const std::size_t p = x_.cols();
    std::vector<std::size_t> features(p);
    std::iota(features.begin(), features.end(), std::size_t{0});
    std::size_t feature_count = p;
    if (params.max_features > 0 && params.max_features < p) {
      rng.shuffle(features);
      feature_count = params.max_features;
    }

    std::vector<Candidate> candidates(feature_count);
    const auto search_one = [&](std::size_t fi) {
      candidates[fi] = histogram_ ? search_histogram(features[fi], begin, end)
                                  : search_exact(features[fi], begin, end);
    };
    if (params.pool != nullptr && count >= params.parallel_min_rows &&
        feature_count > 1) {
      params.pool->parallel_for(0, feature_count, search_one);
    } else {
      for (std::size_t fi = 0; fi < feature_count; ++fi) search_one(fi);
    }

    double best_gain = 0.0;
    std::size_t best_feature = p;
    double best_threshold = 0.0;
    for (std::size_t fi = 0; fi < feature_count; ++fi) {
      const Candidate& c = candidates[fi];
      if (c.found && c.gain > best_gain + 1e-15) {
        best_gain = c.gain;
        best_feature = features[fi];
        best_threshold = c.threshold;
      }
    }
    if (best_feature == p) return node_id;  // no useful split found

    const std::size_t mid =
        partition_node(begin, end, best_feature, best_threshold);
    GMD_ASSERT(mid > begin && mid < end, "degenerate partition");

    const std::uint32_t left = build_node(begin, mid, depth + 1, rng);
    const std::uint32_t right = build_node(mid, end, depth + 1, rng);
    tree_.nodes_[node_id].feature = static_cast<std::uint32_t>(best_feature);
    tree_.nodes_[node_id].threshold = best_threshold;
    tree_.nodes_[node_id].gain = best_gain;
    tree_.nodes_[node_id].left = left;
    tree_.nodes_[node_id].right = right;
    return node_id;
  }

  /// Exact mode: one pass over the node's presorted segment replaces
  /// the reference engine's gather + sort, with the identical
  /// prefix-sum arithmetic in the identical order.
  Candidate search_exact(std::size_t feature, std::size_t begin,
                         std::size_t end) const {
    const TreeParams& params = tree_.params_;
    const std::uint32_t* ord = order_[feature].data();
    const double* vals = values_[feature].data();
    Candidate cand;
    if (vals[begin] == vals[end - 1]) return cand;  // constant
    const std::size_t count = end - begin;

    // Prefix sums of w, w*y, w*y^2 for O(1) SSE at every cut.
    double total_w = 0.0, total_sum = 0.0, total_sq = 0.0;
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t idx = ord[i];
      const double wi = w_.empty() ? 1.0 : w_[idx];
      total_w += wi;
      total_sum += wi * y_[idx];
      total_sq += wi * y_[idx] * y_[idx];
    }
    const double parent_sse = total_sq - total_sum * total_sum / total_w;

    double left_w = 0.0, left_sum = 0.0, left_sq = 0.0;
    for (std::size_t i = begin; i + 1 < end; ++i) {
      const std::size_t idx = ord[i];
      const double wi = w_.empty() ? 1.0 : w_[idx];
      left_w += wi;
      left_sum += wi * y_[idx];
      left_sq += wi * y_[idx] * y_[idx];
      if (vals[i] == vals[i + 1]) continue;  // not a valid cut
      const std::size_t left_n = i + 1 - begin;
      const std::size_t right_n = count - left_n;
      if (left_n < params.min_samples_leaf ||
          right_n < params.min_samples_leaf) {
        continue;
      }
      const double right_w = total_w - left_w;
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double sse = (left_sq - left_sum * left_sum / left_w) +
                         (right_sq - right_sum * right_sum / right_w);
      const double gain = parent_sse - sse;
      if (gain > cand.gain + 1e-15) {
        cand.gain = gain;
        cand.threshold = (vals[i] + vals[i + 1]) / 2.0;
        cand.found = true;
      }
    }
    return cand;
  }

  /// Histogram mode: accumulate the node's rows into <= 256 buckets,
  /// then scan bucket boundaries — O(rows + bins) per feature.
  Candidate search_histogram(std::size_t feature, std::size_t begin,
                             std::size_t end) const {
    const TreeParams& params = tree_.params_;
    Candidate cand;
    const std::size_t bins = ws_.num_bins(feature);
    if (bins < 2) return cand;  // constant feature

    struct Acc {
      double w = 0.0, sum = 0.0, sq = 0.0;
      std::size_t n = 0;
    };
    std::array<Acc, 256> acc{};
    const std::uint8_t* codes = ws_.bin_codes(feature).data();
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t idx = indices_[i];
      const double wi = w_.empty() ? 1.0 : w_[idx];
      Acc& a = acc[codes[idx]];
      a.w += wi;
      a.sum += wi * y_[idx];
      a.sq += wi * y_[idx] * y_[idx];
      ++a.n;
    }

    double total_w = 0.0, total_sum = 0.0, total_sq = 0.0;
    std::size_t occupied = 0;
    for (std::size_t b = 0; b < bins; ++b) {
      if (acc[b].n > 0) ++occupied;
      total_w += acc[b].w;
      total_sum += acc[b].sum;
      total_sq += acc[b].sq;
    }
    if (occupied < 2) return cand;  // node is constant in this feature
    const double parent_sse = total_sq - total_sum * total_sum / total_w;
    const std::size_t count = end - begin;

    double left_w = 0.0, left_sum = 0.0, left_sq = 0.0;
    std::size_t left_n = 0;
    for (std::size_t b = 0; b + 1 < bins; ++b) {
      left_w += acc[b].w;
      left_sum += acc[b].sum;
      left_sq += acc[b].sq;
      left_n += acc[b].n;
      const std::size_t right_n = count - left_n;
      if (left_n < params.min_samples_leaf ||
          right_n < params.min_samples_leaf) {
        continue;
      }
      const double right_w = total_w - left_w;
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double sse = (left_sq - left_sum * left_sum / left_w) +
                         (right_sq - right_sum * right_sum / right_w);
      const double gain = parent_sse - sse;
      if (gain > cand.gain + 1e-15) {
        cand.gain = gain;
        cand.threshold = ws_.bin_threshold(feature, b);
        cand.found = true;
      }
    }
    return cand;
  }

  /// Partitions indices_[begin, end) exactly as the reference engine
  /// (same std::partition, same predicate outcomes), then splits every
  /// feature's sorted segment stably so both children stay presorted.
  std::size_t partition_node(std::size_t begin, std::size_t end,
                             std::size_t feature, double threshold) {
    for (std::size_t i = begin; i < end; ++i) {
      const std::size_t idx = indices_[i];
      mark_[idx] = x_.at(idx, feature) <= threshold ? 1 : 0;
    }
    const auto mid_iter = std::partition(
        indices_.begin() + static_cast<std::ptrdiff_t>(begin),
        indices_.begin() + static_cast<std::ptrdiff_t>(end),
        [this](std::size_t idx) { return mark_[idx] != 0; });
    const auto mid = static_cast<std::size_t>(mid_iter - indices_.begin());

    if (!histogram_) {
      for (std::size_t f = 0; f < order_.size(); ++f) {
        std::uint32_t* ord = order_[f].data();
        double* vals = values_[f].data();
        std::size_t out = begin;
        std::size_t spill = 0;
        for (std::size_t i = begin; i < end; ++i) {
          if (mark_[ord[i]] != 0) {
            ord[out] = ord[i];
            vals[out] = vals[i];
            ++out;
          } else {
            scratch_order_[spill] = ord[i];
            scratch_values_[spill] = vals[i];
            ++spill;
          }
        }
        GMD_ASSERT(out == mid, "feature order out of sync with indices");
        std::copy_n(scratch_order_.data(), spill, ord + out);
        std::copy_n(scratch_values_.data(), spill, vals + out);
      }
    }
    return mid;
  }

  DecisionTree& tree_;
  const TrainingWorkspace& ws_;
  const Matrix& x_;
  std::span<const double> y_;
  std::span<const double> w_;
  bool histogram_;

  std::vector<std::size_t> indices_;
  std::vector<std::vector<std::uint32_t>> order_;  ///< Exact mode only.
  std::vector<std::vector<double>> values_;        ///< Aligned with order_.
  std::vector<std::uint8_t> mark_;                 ///< Left membership by row.
  std::vector<std::uint32_t> scratch_order_;
  std::vector<double> scratch_values_;
};

}  // namespace detail

void DecisionTree::fit(const Matrix& x, std::span<const double> y) {
  fit_weighted(x, y, {});
}

void DecisionTree::fit_weighted(const Matrix& x, std::span<const double> y,
                                std::span<const double> weights) {
  GMD_REQUIRE(x.rows() == y.size(), "X/y row mismatch");
  GMD_REQUIRE(x.rows() >= 1, "empty training data");
  GMD_REQUIRE(weights.empty() || weights.size() == y.size(),
              "weights size mismatch");
  if (params_.reference_mode) {
    nodes_.clear();
    depth_ = 0;
    std::vector<std::size_t> indices(x.rows());
    std::iota(indices.begin(), indices.end(), std::size_t{0});
    Rng rng(params_.seed);
    build_reference(x, y, weights, indices, 0, indices.size(), 1, rng);
    return;
  }
  TrainingWorkspace workspace = TrainingWorkspace::build(x);
  if (params_.split_mode == TreeParams::SplitMode::kHistogram) {
    workspace.build_histograms(params_.max_bins);
  }
  fit_with_workspace(workspace, x, y, weights);
}

void DecisionTree::fit_with_workspace(const TrainingWorkspace& workspace,
                                      const Matrix& x,
                                      std::span<const double> y,
                                      std::span<const double> weights) {
  GMD_REQUIRE(x.rows() == y.size(), "X/y row mismatch");
  GMD_REQUIRE(x.rows() >= 1, "empty training data");
  GMD_REQUIRE(weights.empty() || weights.size() == y.size(),
              "weights size mismatch");
  GMD_REQUIRE(workspace.rows() == x.rows() &&
                  workspace.features() == x.cols(),
              "workspace shape mismatch");
  GMD_REQUIRE(!params_.reference_mode,
              "reference_mode trees do not take a workspace");
  GMD_REQUIRE(params_.split_mode != TreeParams::SplitMode::kHistogram ||
                  workspace.has_histograms(),
              "histogram split mode needs workspace histograms");
  nodes_.clear();
  depth_ = 0;
  detail::TreeBuilder(*this, workspace, x, y, weights).run();
}

std::uint32_t DecisionTree::build_reference(
    const Matrix& x, std::span<const double> y, std::span<const double> w,
    std::vector<std::size_t>& indices, std::size_t begin, std::size_t end,
    unsigned depth, gmd::Rng& rng) {
  depth_ = std::max(depth_, depth);
  const std::size_t count = end - begin;
  const auto node_id = static_cast<std::uint32_t>(nodes_.size());
  nodes_.emplace_back();
  nodes_[node_id].value = subset_mean(y, w, indices, begin, end);

  if (depth >= params_.max_depth || count < params_.min_samples_split) {
    return node_id;
  }

  // Candidate features: all, or a random subset (random-forest mode).
  const std::size_t p = x.cols();
  std::vector<std::size_t> features(p);
  std::iota(features.begin(), features.end(), std::size_t{0});
  std::size_t feature_count = p;
  if (params_.max_features > 0 && params_.max_features < p) {
    rng.shuffle(features);
    feature_count = params_.max_features;
  }

  // Best split: exact search per candidate feature over sorted values.
  double best_gain = 0.0;
  std::size_t best_feature = p;
  double best_threshold = 0.0;

  std::vector<std::pair<double, std::size_t>> sorted;  // (value, index)
  sorted.reserve(count);
  for (std::size_t fi = 0; fi < feature_count; ++fi) {
    const std::size_t feature = features[fi];
    sorted.clear();
    for (std::size_t i = begin; i < end; ++i) {
      sorted.emplace_back(x.at(indices[i], feature), indices[i]);
    }
    std::sort(sorted.begin(), sorted.end());
    if (sorted.front().first == sorted.back().first) continue;  // constant

    // Prefix sums of w, w*y, w*y^2 for O(1) SSE at every cut.
    double left_w = 0.0, left_sum = 0.0, left_sq = 0.0;
    double total_w = 0.0, total_sum = 0.0, total_sq = 0.0;
    for (const auto& [value, idx] : sorted) {
      const double wi = w.empty() ? 1.0 : w[idx];
      total_w += wi;
      total_sum += wi * y[idx];
      total_sq += wi * y[idx] * y[idx];
      (void)value;
    }
    const double parent_sse =
        total_sq - total_sum * total_sum / total_w;

    for (std::size_t i = 0; i + 1 < sorted.size(); ++i) {
      const auto& [value, idx] = sorted[i];
      const double wi = w.empty() ? 1.0 : w[idx];
      left_w += wi;
      left_sum += wi * y[idx];
      left_sq += wi * y[idx] * y[idx];
      if (value == sorted[i + 1].first) continue;  // not a valid cut
      const std::size_t left_n = i + 1;
      const std::size_t right_n = count - left_n;
      if (left_n < params_.min_samples_leaf ||
          right_n < params_.min_samples_leaf) {
        continue;
      }
      const double right_w = total_w - left_w;
      const double right_sum = total_sum - left_sum;
      const double right_sq = total_sq - left_sq;
      const double sse = (left_sq - left_sum * left_sum / left_w) +
                         (right_sq - right_sum * right_sum / right_w);
      const double gain = parent_sse - sse;
      if (gain > best_gain + 1e-15) {
        best_gain = gain;
        best_feature = feature;
        best_threshold = (value + sorted[i + 1].first) / 2.0;
      }
    }
  }

  if (best_feature == p) return node_id;  // no useful split found

  // Partition indices[begin, end) by the chosen split.
  const auto mid_iter = std::partition(
      indices.begin() + static_cast<std::ptrdiff_t>(begin),
      indices.begin() + static_cast<std::ptrdiff_t>(end),
      [&](std::size_t idx) {
        return x.at(idx, best_feature) <= best_threshold;
      });
  const auto mid = static_cast<std::size_t>(mid_iter - indices.begin());
  GMD_ASSERT(mid > begin && mid < end, "degenerate partition");

  const std::uint32_t left =
      build_reference(x, y, w, indices, begin, mid, depth + 1, rng);
  const std::uint32_t right =
      build_reference(x, y, w, indices, mid, end, depth + 1, rng);
  nodes_[node_id].feature = static_cast<std::uint32_t>(best_feature);
  nodes_[node_id].threshold = best_threshold;
  nodes_[node_id].gain = best_gain;
  nodes_[node_id].left = left;
  nodes_[node_id].right = right;
  return node_id;
}

double DecisionTree::predict_one(std::span<const double> x) const {
  GMD_REQUIRE(is_fitted(), "predict before fit");
  std::uint32_t node = 0;
  while (nodes_[node].feature != Node::kLeaf) {
    GMD_REQUIRE(nodes_[node].feature < x.size(), "feature count mismatch");
    node = x[nodes_[node].feature] <= nodes_[node].threshold
               ? nodes_[node].left
               : nodes_[node].right;
  }
  return nodes_[node].value;
}

double DecisionTree::traverse(const double* features) const {
  const Node* nodes = nodes_.data();
  std::uint32_t node = 0;
  while (nodes[node].feature != Node::kLeaf) {
    node = features[nodes[node].feature] <= nodes[node].threshold
               ? nodes[node].left
               : nodes[node].right;
  }
  return nodes[node].value;
}

std::vector<double> DecisionTree::predict(const Matrix& x) const {
  GMD_REQUIRE(is_fitted(), "predict before fit");
  // Validate feature bounds once, then traverse check-free.
  for (const Node& node : nodes_) {
    GMD_REQUIRE(node.feature == Node::kLeaf || node.feature < x.cols(),
                "feature count mismatch");
  }
  std::vector<double> out(x.rows());
  const InferencePlan plan = make_plan();
  traverse_block(plan, x, 0, x.rows(), out.data());
  return out;
}

DecisionTree::InferencePlan DecisionTree::make_plan() const {
  InferencePlan plan;
  plan.nodes.resize(nodes_.size());
  plan.values.resize(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    PlanNode& out = plan.nodes[i];
    plan.values[i] = node.value;
    if (node.feature == Node::kLeaf) {
      // Self-loop: x[0] <= +inf always holds, and a NaN feature (which
      // compares false) still lands on `right` = self.
      out.threshold = std::numeric_limits<double>::infinity();
      out.feature = 0;
      out.left = static_cast<std::uint32_t>(i);
      out.right = static_cast<std::uint32_t>(i);
    } else {
      out.threshold = node.threshold;
      out.feature = node.feature;
      out.left = node.left;
      out.right = node.right;
    }
  }
  plan.steps = depth_;
  return plan;
}

void DecisionTree::traverse_block(const InferencePlan& plan, const Matrix& x,
                                  std::size_t begin, std::size_t end,
                                  double* out) {
  if (begin == end) return;
  const PlanNode* nodes = plan.nodes.data();
  const double* values = plan.values.data();
  // Row-major matrix: rows are base + r * stride, no per-row calls.
  const double* base = x.row(0).data();
  const std::size_t stride = x.cols();
  constexpr std::size_t kLanes = 16;
  std::size_t r = begin;
  for (; r + kLanes <= end; r += kLanes) {
    const double* rows[kLanes];
    std::uint32_t node[kLanes];
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      rows[lane] = base + (r + lane) * stride;
      node[lane] = 0;
    }
    for (unsigned step = 0; step < plan.steps; ++step) {
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        const PlanNode& current = nodes[node[lane]];
        // Arithmetic select: the ternary compiles to a data-dependent
        // branch that mispredicts ~50% of the time; the mask keeps the
        // step branch-free.  NaN compares false and goes right, exactly
        // like the reference traversal.
        const std::uint32_t mask = 0U - static_cast<std::uint32_t>(
            rows[lane][current.feature] <= current.threshold);
        node[lane] = (current.left & mask) | (current.right & ~mask);
      }
    }
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      out[r - begin + lane] = values[node[lane]];
    }
  }
  for (; r < end; ++r) {
    std::uint32_t node = 0;
    const double* row = base + r * stride;
    for (unsigned step = 0; step < plan.steps; ++step) {
      const PlanNode& current = nodes[node];
      const std::uint32_t mask = 0U - static_cast<std::uint32_t>(
          row[current.feature] <= current.threshold);
      node = (current.left & mask) | (current.right & ~mask);
    }
    out[r - begin] = values[node];
  }
}

void DecisionTree::accumulate_block(std::span<const InferencePlan> plans,
                                    double scale, const Matrix& x,
                                    std::size_t begin, std::size_t end,
                                    double* inout) {
  if (begin == end || plans.empty()) return;
  const double* base = x.row(0).data();
  const std::size_t stride = x.cols();
  constexpr std::size_t kLanes = 16;
  std::size_t r = begin;
  for (; r + kLanes <= end; r += kLanes) {
    const double* rows[kLanes];
    double acc[kLanes];
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      rows[lane] = base + (r + lane) * stride;
      acc[lane] = inout[r - begin + lane];
    }
    for (const InferencePlan& plan : plans) {
      const PlanNode* nodes = plan.nodes.data();
      std::uint32_t node[kLanes] = {};
      for (unsigned step = 0; step < plan.steps; ++step) {
        for (std::size_t lane = 0; lane < kLanes; ++lane) {
          const PlanNode& current = nodes[node[lane]];
          const std::uint32_t mask = 0U - static_cast<std::uint32_t>(
              rows[lane][current.feature] <= current.threshold);
          node[lane] = (current.left & mask) | (current.right & ~mask);
        }
      }
      const double* values = plan.values.data();
      for (std::size_t lane = 0; lane < kLanes; ++lane) {
        acc[lane] += scale * values[node[lane]];
      }
    }
    for (std::size_t lane = 0; lane < kLanes; ++lane) {
      inout[r - begin + lane] = acc[lane];
    }
  }
  for (; r < end; ++r) {
    const double* row = base + r * stride;
    double acc = inout[r - begin];
    for (const InferencePlan& plan : plans) {
      const PlanNode* nodes = plan.nodes.data();
      std::uint32_t node = 0;
      for (unsigned step = 0; step < plan.steps; ++step) {
        const PlanNode& current = nodes[node];
        const std::uint32_t mask = 0U - static_cast<std::uint32_t>(
            row[current.feature] <= current.threshold);
        node = (current.left & mask) | (current.right & ~mask);
      }
      acc += scale * plan.values[node];
    }
    inout[r - begin] = acc;
  }
}

std::unique_ptr<Regressor> DecisionTree::clone() const {
  return std::make_unique<DecisionTree>(*this);
}

std::vector<double> DecisionTree::feature_importances(
    std::size_t num_features) const {
  std::vector<double> importances(num_features, 0.0);
  double total = 0.0;
  for (const Node& node : nodes_) {
    if (node.feature == Node::kLeaf) continue;
    GMD_REQUIRE(node.feature < num_features,
                "tree uses feature " << node.feature
                                     << " beyond num_features "
                                     << num_features);
    importances[node.feature] += node.gain;
    total += node.gain;
  }
  if (total > 0.0) {
    for (double& value : importances) value /= total;
  }
  return importances;
}

void DecisionTree::write(std::ostream& os) const {
  os << "tree " << nodes_.size() << " " << depth_ << "\n";
  os.precision(17);
  for (const Node& node : nodes_) {
    os << node.feature << " " << node.threshold << " " << node.value << " "
       << node.gain << " " << node.left << " " << node.right << "\n";
  }
}

DecisionTree DecisionTree::read(std::istream& is) {
  std::string tag;
  std::size_t count = 0;
  unsigned depth = 0;
  is >> tag >> count >> depth;
  GMD_REQUIRE(is.good() && tag == "tree", "not a serialized tree");
  DecisionTree tree;
  tree.depth_ = depth;
  tree.nodes_.resize(count);
  for (Node& node : tree.nodes_) {
    is >> node.feature >> node.threshold >> node.value >> node.gain >>
        node.left >> node.right;
    GMD_REQUIRE(!is.fail(), "truncated serialized tree");
    GMD_REQUIRE(node.feature == Node::kLeaf ||
                    (node.left < count && node.right < count),
                "serialized tree has dangling child links");
  }
  GMD_REQUIRE(count >= 1, "serialized tree is empty");
  return tree;
}

}  // namespace gmd::ml
