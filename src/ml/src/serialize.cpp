#include "gmd/ml/serialize.hpp"

#include <fstream>
#include <istream>
#include <ostream>

#include "gmd/common/atomic_file.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/faultinject.hpp"
#include "gmd/ml/forest.hpp"
#include "gmd/ml/gbt.hpp"
#include "gmd/ml/linear.hpp"
#include "gmd/ml/svr.hpp"
#include "gmd/ml/tree.hpp"

namespace gmd::ml {

namespace {

constexpr const char* kHeader = "gmd-model-v1";
constexpr const char* kScalerHeader = "gmd-scaler-v1";

}  // namespace

void save_model(std::ostream& os, const Regressor& model) {
  GMD_REQUIRE(model.is_fitted(), "cannot serialize an unfitted model");
  os << kHeader << " " << model.name() << "\n";
  if (const auto* linear = dynamic_cast<const LinearRegression*>(&model)) {
    linear->write(os);
  } else if (const auto* svr = dynamic_cast<const Svr*>(&model)) {
    svr->write(os);
  } else if (const auto* tree = dynamic_cast<const DecisionTree*>(&model)) {
    tree->write(os);
  } else if (const auto* forest = dynamic_cast<const RandomForest*>(&model)) {
    forest->write(os);
  } else if (const auto* gbt = dynamic_cast<const GradientBoosting*>(&model)) {
    gbt->write(os);
  } else {
    throw Error("model family '" + model.name() +
                "' does not support serialization");
  }
  GMD_REQUIRE(os.good(), "model serialization stream failed");
}

void save_model_file(const std::string& path, const Regressor& model) {
  // Temp-then-rename: a crash mid-serialization never leaves a torn
  // model file where a previous good one stood.
  atomic_write_file(path,
                    [&model](std::ostream& out) { save_model(out, model); });
}

std::unique_ptr<Regressor> load_model(std::istream& is) {
  std::string header;
  std::string family;
  is >> header >> family;
  GMD_REQUIRE(is.good() && header == kHeader,
              "not a graphmemdse model file");
  if (family == "linear") {
    return std::make_unique<LinearRegression>(LinearRegression::read(is));
  }
  if (family == "svr") {
    return std::make_unique<Svr>(Svr::read(is));
  }
  if (family == "tree") {
    return std::make_unique<DecisionTree>(DecisionTree::read(is));
  }
  if (family == "rf") {
    return std::make_unique<RandomForest>(RandomForest::read(is));
  }
  if (family == "gb") {
    return std::make_unique<GradientBoosting>(GradientBoosting::read(is));
  }
  throw Error("model file declares unknown family '" + family + "'");
}

std::unique_ptr<Regressor> load_model_file(const std::string& path) {
  std::ifstream in(path);
  GMD_REQUIRE(in.good(), "cannot open '" << path << "' for reading");
  return load_model(in);
}

void save_scaler(std::ostream& os, const MinMaxScaler& scaler) {
  GMD_FAULT_POINT("serialize.save_scaler");
  GMD_REQUIRE(scaler.fitted(), "cannot serialize an unfitted scaler");
  os.precision(17);
  os << kScalerHeader << " minmax " << scaler.mins().size() << "\n";
  for (const double v : scaler.mins()) os << v << " ";
  os << "\n";
  for (const double v : scaler.maxs()) os << v << " ";
  os << "\n";
  GMD_REQUIRE(os.good(), "scaler serialization stream failed");
}

MinMaxScaler load_scaler(std::istream& is) {
  GMD_FAULT_POINT("serialize.load_scaler");
  std::string header;
  std::string kind;
  std::size_t cols = 0;
  is >> header >> kind >> cols;
  GMD_REQUIRE(is.good() && header == kScalerHeader && kind == "minmax" &&
                  cols > 0,
              "not a graphmemdse scaler record");
  std::vector<double> mins(cols);
  std::vector<double> maxs(cols);
  for (double& v : mins) is >> v;
  for (double& v : maxs) is >> v;
  GMD_REQUIRE(is.good(), "truncated scaler record");
  return MinMaxScaler::from_bounds(std::move(mins), std::move(maxs));
}

}  // namespace gmd::ml
