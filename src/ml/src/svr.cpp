#include "gmd/ml/svr.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <string>

#include "gmd/common/error.hpp"

namespace gmd::ml {

Svr::Svr(const SvrParams& params) : params_(params) {
  GMD_REQUIRE(params.c > 0.0, "SVR C must be positive");
  GMD_REQUIRE(params.epsilon >= 0.0, "SVR epsilon must be non-negative");
  GMD_REQUIRE(params.max_passes >= 1, "SVR needs at least one pass");
}

void Svr::fit(const Matrix& x, std::span<const double> y) {
  GMD_REQUIRE(x.rows() == y.size(), "X/y row mismatch");
  GMD_REQUIRE(x.rows() >= 1, "empty training data");
  const std::size_t n = x.rows();
  support_ = x;
  beta_.assign(n, 0.0);

  // Gram matrix with the bias folded in: K~ = K + 1.
  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(params_.kernel, x.row(i), x.row(j)) + 1.0;
      k.at(i, j) = v;
      k.at(j, i) = v;
    }
  }

  // f_i = sum_j beta_j K~(i, j), maintained incrementally.
  std::vector<double> f(n, 0.0);

  // Coordinate descent with soft-thresholding: for coordinate i the
  // objective restricted to beta_i is
  //   0.5 K_ii b^2 + b (f_i - beta_i K_ii - y_i) + eps |b|,
  // minimized in closed form, then clipped to [-C, C].
  passes_used_ = 0;
  for (unsigned pass = 0; pass < params_.max_passes; ++pass) {
    double max_delta = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double kii = k.at(i, i);
      GMD_ASSERT(kii > 0.0, "kernel diagonal must be positive");
      const double g = f[i] - beta_[i] * kii - y[i];
      double b_new;
      if (-g - params_.epsilon > 0.0) {
        b_new = (-g - params_.epsilon) / kii;
      } else if (-g + params_.epsilon < 0.0) {
        b_new = (-g + params_.epsilon) / kii;
      } else {
        b_new = 0.0;
      }
      b_new = std::clamp(b_new, -params_.c, params_.c);
      const double delta = b_new - beta_[i];
      if (delta != 0.0) {
        beta_[i] = b_new;
        for (std::size_t j = 0; j < n; ++j) f[j] += delta * k.at(i, j);
        max_delta = std::max(max_delta, std::abs(delta));
      }
    }
    passes_used_ = pass + 1;
    if (max_delta < params_.tolerance) break;
  }
  fitted_ = true;
}

double Svr::predict_one(std::span<const double> x) const {
  GMD_REQUIRE(fitted_, "predict before fit");
  GMD_REQUIRE(x.size() == support_.cols(), "feature count mismatch");
  double out = 0.0;
  for (std::size_t i = 0; i < support_.rows(); ++i) {
    if (beta_[i] == 0.0) continue;
    out += beta_[i] * (kernel(params_.kernel, support_.row(i), x) + 1.0);
  }
  return out;
}

std::vector<double> Svr::predict(const Matrix& x) const {
  GMD_REQUIRE(fitted_, "predict before fit");
  GMD_REQUIRE(x.cols() == support_.cols(), "feature count mismatch");
  const std::size_t n = support_.rows();
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    double v = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (beta_[i] == 0.0) continue;
      v += beta_[i] * (kernel(params_.kernel, support_.row(i), row) + 1.0);
    }
    out[r] = v;
  }
  return out;
}

std::unique_ptr<Regressor> Svr::clone() const {
  return std::make_unique<Svr>(*this);
}

std::size_t Svr::num_support_vectors() const {
  return static_cast<std::size_t>(
      std::count_if(beta_.begin(), beta_.end(),
                    [](double b) { return b != 0.0; }));
}

void Svr::write(std::ostream& os) const {
  GMD_REQUIRE(fitted_, "cannot serialize an unfitted model");
  os.precision(17);
  os << "svr " << static_cast<int>(params_.kernel.type) << " "
     << params_.kernel.gamma << " " << params_.kernel.coef0 << " "
     << params_.kernel.degree << " " << num_support_vectors() << " "
     << support_.cols() << "\n";
  for (std::size_t i = 0; i < support_.rows(); ++i) {
    if (beta_[i] == 0.0) continue;
    os << beta_[i];
    for (const double v : support_.row(i)) os << " " << v;
    os << "\n";
  }
}

Svr Svr::read(std::istream& is) {
  std::string tag;
  int kernel_type = 0;
  SvrParams params;
  std::size_t vectors = 0;
  std::size_t features = 0;
  is >> tag >> kernel_type >> params.kernel.gamma >> params.kernel.coef0 >>
      params.kernel.degree >> vectors >> features;
  GMD_REQUIRE(is.good() && tag == "svr", "not a serialized SVR model");
  GMD_REQUIRE(kernel_type >= 0 && kernel_type <= 2,
              "serialized SVR has an unknown kernel");
  params.kernel.type = static_cast<KernelType>(kernel_type);

  Svr model(params);
  model.support_ = Matrix(vectors, features);
  model.beta_.resize(vectors);
  for (std::size_t i = 0; i < vectors; ++i) {
    is >> model.beta_[i];
    for (double& v : model.support_.row(i)) is >> v;
    GMD_REQUIRE(!is.fail(), "truncated serialized SVR model");
  }
  model.fitted_ = true;
  return model;
}

}  // namespace gmd::ml
