#include "gmd/ml/gbt.hpp"

#include <algorithm>
#include <istream>
#include <memory>
#include <numeric>
#include <ostream>
#include <string>

#include "gmd/common/deadline.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/common/thread_pool.hpp"

namespace gmd::ml {

GradientBoosting::GradientBoosting(const GbtParams& params)
    : params_(params) {
  GMD_REQUIRE(params.num_stages >= 1, "boosting needs at least one stage");
  GMD_REQUIRE(params.learning_rate > 0.0 && params.learning_rate <= 1.0,
              "learning_rate must be in (0, 1]");
  GMD_REQUIRE(params.subsample > 0.0 && params.subsample <= 1.0,
              "subsample must be in (0, 1]");
}

void GradientBoosting::fit(const Matrix& x, std::span<const double> y) {
  GMD_REQUIRE(x.rows() == y.size(), "X/y row mismatch");
  GMD_REQUIRE(x.rows() >= 1, "empty training data");
  const std::size_t n = x.rows();

  f0_ = 0.0;
  for (const double v : y) f0_ += v;
  f0_ /= static_cast<double>(n);

  std::vector<double> prediction(n, f0_);
  std::vector<double> residual(n);
  stages_.clear();
  stages_.reserve(params_.num_stages);

  Rng rng(params_.seed);
  std::vector<std::size_t> all(n);
  std::iota(all.begin(), all.end(), std::size_t{0});

  // One presort shared across all boosting stages (the targets change
  // every stage, the feature order never does), plus a worker pool for
  // per-feature split search once nodes are large enough to benefit.
  TrainingWorkspace base;
  std::unique_ptr<ThreadPool> pool;
  if (!params_.reference_mode) {
    base = TrainingWorkspace::build(x);
    if (params_.split_mode == TreeParams::SplitMode::kHistogram) {
      base.build_histograms(params_.max_bins);
    }
    if (params_.num_threads != 1 && n >= params_.parallel_min_rows) {
      pool = std::make_unique<ThreadPool>(params_.num_threads);
    }
  }

  std::vector<double> stage_update;
  for (std::size_t stage = 0; stage < params_.num_stages; ++stage) {
    // One boosting stage is the cancellation granularity.
    if (params_.deadline != nullptr) params_.deadline->check_now();
    for (std::size_t i = 0; i < n; ++i) residual[i] = y[i] - prediction[i];

    TreeParams tree_params;
    tree_params.max_depth = params_.max_depth;
    tree_params.min_samples_leaf = params_.min_samples_leaf;
    tree_params.seed = rng();
    tree_params.split_mode = params_.split_mode;
    tree_params.max_bins = params_.max_bins;
    tree_params.reference_mode = params_.reference_mode;
    tree_params.pool = pool.get();
    tree_params.parallel_min_rows = params_.parallel_min_rows;
    DecisionTree tree(tree_params);

    if (params_.subsample < 1.0) {
      rng.shuffle(all);
      const auto take = std::max<std::size_t>(
          1, static_cast<std::size_t>(static_cast<double>(n) *
                                      params_.subsample));
      const std::span<const std::size_t> sample(all.data(), take);
      const Matrix xs = x.gather_rows(sample);
      std::vector<double> rs(take);
      for (std::size_t i = 0; i < take; ++i) rs[i] = residual[sample[i]];
      if (params_.reference_mode) {
        tree.fit(xs, rs);
      } else {
        const TrainingWorkspace ws = base.for_sample(sample);
        tree.fit_with_workspace(ws, xs, rs);
      }
    } else if (params_.reference_mode) {
      tree.fit(x, residual);
    } else {
      tree.fit_with_workspace(base, x, residual);
    }

    if (params_.reference_mode) {
      for (std::size_t i = 0; i < n; ++i) {
        prediction[i] += params_.learning_rate * tree.predict_one(x.row(i));
      }
    } else {
      // Batch traversal; each update is the same lr * leaf value the
      // per-row loop adds.
      stage_update = tree.predict(x);
      for (std::size_t i = 0; i < n; ++i) {
        prediction[i] += params_.learning_rate * stage_update[i];
      }
    }
    stages_.push_back(std::move(tree));
  }
  fitted_ = true;
}

double GradientBoosting::predict_one(std::span<const double> x) const {
  GMD_REQUIRE(fitted_, "predict before fit");
  double out = f0_;
  for (const DecisionTree& tree : stages_) {
    out += params_.learning_rate * tree.predict_one(x);
  }
  return out;
}

std::vector<double> GradientBoosting::predict(const Matrix& x) const {
  GMD_REQUIRE(fitted_, "predict before fit");
  for (const DecisionTree& tree : stages_) {
    for (const auto& node : tree.nodes_) {
      GMD_REQUIRE(node.feature == DecisionTree::Node::kLeaf ||
                      node.feature < x.cols(),
                  "feature count mismatch");
    }
  }
  // Row-group-major traversal with every stage's compact plan inner:
  // the shallow stage trees all stay cache-resident while each row
  // group's accumulators sit in registers.  Per row the accumulation
  // is the same stage-order f0 + lr * leaf sum predict_one computes,
  // so the values are bit-identical.
  std::vector<DecisionTree::InferencePlan> plans;
  plans.reserve(stages_.size());
  for (const DecisionTree& tree : stages_) plans.push_back(tree.make_plan());
  const std::size_t n = x.rows();
  std::vector<double> out(n, f0_);
  DecisionTree::accumulate_block(plans, params_.learning_rate, x, 0, n,
                                 out.data());
  return out;
}

std::unique_ptr<Regressor> GradientBoosting::clone() const {
  return std::make_unique<GradientBoosting>(*this);
}

void GradientBoosting::write(std::ostream& os) const {
  GMD_REQUIRE(fitted_, "cannot serialize an unfitted model");
  os.precision(17);
  os << "gbt " << params_.learning_rate << " " << f0_ << " "
     << stages_.size() << "\n";
  for (const DecisionTree& tree : stages_) tree.write(os);
}

GradientBoosting GradientBoosting::read(std::istream& is) {
  std::string tag;
  double learning_rate = 0.0;
  double f0 = 0.0;
  std::size_t count = 0;
  is >> tag >> learning_rate >> f0 >> count;
  GMD_REQUIRE(is.good() && tag == "gbt" && count >= 1,
              "not a serialized gradient-boosting model");
  GbtParams params;
  params.learning_rate = learning_rate;
  params.num_stages = count;
  GradientBoosting model(params);
  model.f0_ = f0;
  model.stages_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    model.stages_.push_back(DecisionTree::read(is));
  }
  model.fitted_ = true;
  return model;
}

}  // namespace gmd::ml
