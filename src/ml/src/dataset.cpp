#include "gmd/ml/dataset.hpp"

#include <algorithm>
#include <numeric>

#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"

namespace gmd::ml {

void Dataset::validate() const {
  GMD_REQUIRE(X.rows() == y.size(),
              "dataset X rows (" << X.rows() << ") != y size (" << y.size()
                                 << ")");
  GMD_REQUIRE(feature_names.empty() || feature_names.size() == X.cols(),
              "feature_names size mismatch");
}

Dataset Dataset::subset(std::span<const std::size_t> indices) const {
  Dataset out;
  out.X = X.gather_rows(indices);
  out.y.reserve(indices.size());
  for (const std::size_t i : indices) {
    GMD_REQUIRE(i < y.size(), "subset index out of range");
    out.y.push_back(y[i]);
  }
  out.feature_names = feature_names;
  out.target_name = target_name;
  return out;
}

std::pair<Dataset, Dataset> train_test_split(const Dataset& data,
                                             double test_fraction,
                                             std::uint64_t seed) {
  data.validate();
  GMD_REQUIRE(test_fraction > 0.0 && test_fraction < 1.0,
              "test_fraction must be in (0, 1)");
  const std::size_t n = data.size();
  GMD_REQUIRE(n >= 2, "need at least two rows to split");

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(seed);
  rng.shuffle(order);

  std::size_t test_count = static_cast<std::size_t>(
      static_cast<double>(n) * test_fraction + 0.5);
  test_count = std::min(std::max<std::size_t>(test_count, 1), n - 1);

  const std::span<const std::size_t> all(order);
  const auto test_idx = all.subspan(0, test_count);
  const auto train_idx = all.subspan(test_count);
  return {data.subset(train_idx), data.subset(test_idx)};
}

std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
kfold_indices(std::size_t n, std::size_t k, std::uint64_t seed) {
  GMD_REQUIRE(k >= 2, "k-fold needs k >= 2");
  GMD_REQUIRE(n >= k, "k-fold needs at least k rows");

  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  Rng rng(seed);
  rng.shuffle(order);

  std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
      folds(k);
  for (std::size_t fold = 0; fold < k; ++fold) {
    const std::size_t lo = fold * n / k;
    const std::size_t hi = (fold + 1) * n / k;
    auto& [train, test] = folds[fold];
    test.assign(order.begin() + static_cast<std::ptrdiff_t>(lo),
                order.begin() + static_cast<std::ptrdiff_t>(hi));
    train.reserve(n - (hi - lo));
    train.insert(train.end(), order.begin(),
                 order.begin() + static_cast<std::ptrdiff_t>(lo));
    train.insert(train.end(),
                 order.begin() + static_cast<std::ptrdiff_t>(hi),
                 order.end());
  }
  return folds;
}

}  // namespace gmd::ml
