#include "gmd/ml/linear.hpp"

#include <istream>
#include <ostream>
#include <string>

#include "gmd/common/error.hpp"

namespace gmd::ml {

LinearRegression::LinearRegression(double ridge_lambda)
    : lambda_(ridge_lambda) {
  GMD_REQUIRE(ridge_lambda >= 0.0, "ridge lambda must be non-negative");
}

void LinearRegression::fit(const Matrix& x, std::span<const double> y) {
  GMD_REQUIRE(x.rows() == y.size(), "X/y row mismatch");
  GMD_REQUIRE(x.rows() >= 1 && x.cols() >= 1, "empty training data");

  // Center to fit the intercept separately: keeps the normal equations
  // better conditioned than an explicit ones-column.
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  std::vector<double> x_mean(p, 0.0);
  double y_mean = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < p; ++c) x_mean[c] += row[c];
    y_mean += y[r];
  }
  for (double& m : x_mean) m /= static_cast<double>(n);
  y_mean /= static_cast<double>(n);

  Matrix centered(n, p);
  std::vector<double> y_centered(n);
  for (std::size_t r = 0; r < n; ++r) {
    const auto src = x.row(r);
    const auto dst = centered.row(r);
    for (std::size_t c = 0; c < p; ++c) dst[c] = src[c] - x_mean[c];
    y_centered[r] = y[r] - y_mean;
  }

  // Normal equations: (X^T X + lambda I) w = X^T y.
  Matrix gram = centered.gram();
  const std::vector<double> xty =
      centered.transpose_multiply(y_centered);
  // Regularize; for OLS, retry with growing jitter if singular.
  double jitter = lambda_;
  for (int attempt = 0;; ++attempt) {
    Matrix a = gram;
    for (std::size_t i = 0; i < p; ++i) a.at(i, i) += jitter;
    try {
      coef_ = cholesky_solve(a, xty);
      break;
    } catch (const Error&) {
      GMD_REQUIRE(attempt < 8, "normal equations remain singular");
      jitter = jitter == 0.0 ? 1e-10 : jitter * 100.0;
    }
  }

  intercept_ = y_mean;
  for (std::size_t c = 0; c < p; ++c) intercept_ -= coef_[c] * x_mean[c];
  fitted_ = true;
}

double LinearRegression::predict_one(std::span<const double> x) const {
  GMD_REQUIRE(fitted_, "predict before fit");
  GMD_REQUIRE(x.size() == coef_.size(), "feature count mismatch");
  double out = intercept_;
  for (std::size_t c = 0; c < x.size(); ++c) out += coef_[c] * x[c];
  return out;
}

std::vector<double> LinearRegression::predict(const Matrix& x) const {
  GMD_REQUIRE(fitted_, "predict before fit");
  GMD_REQUIRE(x.cols() == coef_.size(), "feature count mismatch");
  const std::size_t p = coef_.size();
  std::vector<double> out(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    double v = intercept_;
    for (std::size_t c = 0; c < p; ++c) v += coef_[c] * row[c];
    out[r] = v;
  }
  return out;
}

std::unique_ptr<Regressor> LinearRegression::clone() const {
  return std::make_unique<LinearRegression>(*this);
}

void LinearRegression::write(std::ostream& os) const {
  GMD_REQUIRE(fitted_, "cannot serialize an unfitted model");
  os.precision(17);
  os << "linear " << lambda_ << " " << intercept_ << " " << coef_.size()
     << "\n";
  for (const double c : coef_) os << c << "\n";
}

LinearRegression LinearRegression::read(std::istream& is) {
  std::string tag;
  double lambda = 0.0;
  double intercept = 0.0;
  std::size_t count = 0;
  is >> tag >> lambda >> intercept >> count;
  GMD_REQUIRE(is.good() && tag == "linear",
              "not a serialized linear model");
  LinearRegression model(lambda);
  model.intercept_ = intercept;
  model.coef_.resize(count);
  for (double& c : model.coef_) {
    is >> c;
    GMD_REQUIRE(!is.fail(), "truncated serialized linear model");
  }
  model.fitted_ = true;
  return model;
}

}  // namespace gmd::ml
