#include "gmd/ml/scaler.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "gmd/common/error.hpp"

namespace gmd::ml {

void MinMaxScaler::fit(const Matrix& x) {
  GMD_REQUIRE(x.rows() >= 1, "cannot fit scaler on empty data");
  // Scan into locals and publish only on success, so a failed fit
  // leaves the scaler unfitted rather than holding sentinel bounds.
  std::vector<double> mins(x.cols(), std::numeric_limits<double>::infinity());
  std::vector<double> maxs(x.cols(), -std::numeric_limits<double>::infinity());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) {
      // A single NaN would silently poison min/max (and through them
      // every transformed value), so fitting on non-finite data is a
      // typed error the caller can quarantine around.
      GMD_REQUIRE_AS(ErrorCode::kInvalidData, std::isfinite(row[c]),
                     "non-finite value at row " << r << ", column " << c
                                                << " while fitting scaler");
      mins[c] = std::min(mins[c], row[c]);
      maxs[c] = std::max(maxs[c], row[c]);
    }
  }
  mins_ = std::move(mins);
  maxs_ = std::move(maxs);
}

Matrix MinMaxScaler::transform(const Matrix& x) const {
  GMD_REQUIRE(fitted(), "scaler not fitted");
  GMD_REQUIRE(x.cols() == mins_.size(), "column count mismatch");
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto src = x.row(r);
    const auto dst = out.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const double range = maxs_[c] - mins_[c];
      dst[c] = range > 0.0 ? (src[c] - mins_[c]) / range : 0.0;
    }
  }
  return out;
}

Matrix MinMaxScaler::fit_transform(const Matrix& x) {
  fit(x);
  return transform(x);
}

MinMaxScaler MinMaxScaler::from_bounds(std::vector<double> mins,
                                       std::vector<double> maxs) {
  GMD_REQUIRE_AS(ErrorCode::kInvalidData,
                 !mins.empty() && mins.size() == maxs.size(),
                 "scaler bounds must be equal-length and non-empty (got "
                     << mins.size() << " mins, " << maxs.size() << " maxs)");
  for (std::size_t c = 0; c < mins.size(); ++c) {
    GMD_REQUIRE_AS(ErrorCode::kInvalidData,
                   std::isfinite(mins[c]) && std::isfinite(maxs[c]) &&
                       mins[c] <= maxs[c],
                   "invalid scaler bounds at column " << c << ": ["
                                                      << mins[c] << ", "
                                                      << maxs[c] << "]");
  }
  MinMaxScaler scaler;
  scaler.mins_ = std::move(mins);
  scaler.maxs_ = std::move(maxs);
  return scaler;
}

void MinMaxScaler::fit(std::span<const double> values) {
  GMD_REQUIRE(!values.empty(), "cannot fit scaler on empty data");
  for (std::size_t i = 0; i < values.size(); ++i) {
    GMD_REQUIRE_AS(ErrorCode::kInvalidData, std::isfinite(values[i]),
                   "non-finite value at index " << i
                                                << " while fitting scaler");
  }
  mins_.assign(1, *std::min_element(values.begin(), values.end()));
  maxs_.assign(1, *std::max_element(values.begin(), values.end()));
}

std::vector<double> MinMaxScaler::transform(
    std::span<const double> values) const {
  GMD_REQUIRE(fitted() && mins_.size() == 1,
              "scaler not fitted on a scalar series");
  const double range = maxs_[0] - mins_[0];
  std::vector<double> out(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out[i] = range > 0.0 ? (values[i] - mins_[0]) / range : 0.0;
  }
  return out;
}

std::vector<double> MinMaxScaler::inverse_transform(
    std::span<const double> scaled) const {
  GMD_REQUIRE(fitted() && mins_.size() == 1,
              "scaler not fitted on a scalar series");
  const double range = maxs_[0] - mins_[0];
  std::vector<double> out(scaled.size());
  for (std::size_t i = 0; i < scaled.size(); ++i) {
    out[i] = mins_[0] + scaled[i] * range;
  }
  return out;
}

void StandardScaler::fit(const Matrix& x) {
  GMD_REQUIRE(x.rows() >= 1, "cannot fit scaler on empty data");
  means_.assign(x.cols(), 0.0);
  stddevs_.assign(x.cols(), 0.0);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) means_[c] += row[c];
  }
  const auto n = static_cast<double>(x.rows());
  for (double& m : means_) m /= n;
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const double d = row[c] - means_[c];
      stddevs_[c] += d * d;
    }
  }
  for (double& s : stddevs_) s = std::sqrt(s / n);
}

Matrix StandardScaler::transform(const Matrix& x) const {
  GMD_REQUIRE(fitted(), "scaler not fitted");
  GMD_REQUIRE(x.cols() == means_.size(), "column count mismatch");
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto src = x.row(r);
    const auto dst = out.row(r);
    for (std::size_t c = 0; c < x.cols(); ++c) {
      dst[c] = stddevs_[c] > 0.0 ? (src[c] - means_[c]) / stddevs_[c] : 0.0;
    }
  }
  return out;
}

Matrix StandardScaler::fit_transform(const Matrix& x) {
  fit(x);
  return transform(x);
}

}  // namespace gmd::ml
