#include "gmd/ml/kernel.hpp"

#include <cmath>

#include "gmd/common/error.hpp"

namespace gmd::ml {

double kernel(const KernelParams& params, std::span<const double> a,
              std::span<const double> b) {
  GMD_REQUIRE(a.size() == b.size(), "kernel input length mismatch");
  switch (params.type) {
    case KernelType::kLinear: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return params.gamma * dot;
    }
    case KernelType::kRbf: {
      double dist2 = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        dist2 += d * d;
      }
      return std::exp(-params.gamma * dist2);
    }
    case KernelType::kPolynomial: {
      double dot = 0.0;
      for (std::size_t i = 0; i < a.size(); ++i) dot += a[i] * b[i];
      return std::pow(params.gamma * dot + params.coef0, params.degree);
    }
  }
  throw Error("unknown kernel type");
}

std::string to_string(KernelType type) {
  switch (type) {
    case KernelType::kLinear:
      return "linear";
    case KernelType::kRbf:
      return "rbf";
    case KernelType::kPolynomial:
      return "poly";
  }
  return "?";
}

}  // namespace gmd::ml
