#include "gmd/ml/regressor.hpp"

#include "gmd/common/error.hpp"
#include "gmd/common/string_util.hpp"
#include "gmd/ml/forest.hpp"
#include "gmd/ml/gbt.hpp"
#include "gmd/ml/gp.hpp"
#include "gmd/ml/linear.hpp"
#include "gmd/ml/svr.hpp"
#include "gmd/ml/tree.hpp"

namespace gmd::ml {

std::vector<double> Regressor::predict(const Matrix& x) const {
  std::vector<double> out;
  out.reserve(x.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    out.push_back(predict_one(x.row(r)));
  }
  return out;
}

std::unique_ptr<Regressor> make_regressor(const std::string& name,
                                          std::uint64_t seed) {
  return make_regressor(name, seed, nullptr);
}

std::unique_ptr<Regressor> make_regressor(const std::string& name,
                                          std::uint64_t seed,
                                          Deadline* deadline) {
  return make_regressor(name, seed, deadline, 0);
}

std::unique_ptr<Regressor> make_regressor(const std::string& name,
                                          std::uint64_t seed,
                                          Deadline* deadline,
                                          std::size_t num_threads) {
  const std::string key = to_lower(name);
  if (key == "linear") return std::make_unique<LinearRegression>();
  if (key == "svr" || key == "svm") {
    SvrParams params;
    // Inputs are min-max scaled: an RBF width of ~O(1) per dimension
    // works across the DSE feature spaces.
    params.kernel.gamma = 2.0;
    return std::make_unique<Svr>(params);
  }
  if (key == "rf") {
    ForestParams params;
    params.seed = seed;
    params.deadline = deadline;
    params.num_threads = num_threads;
    return std::make_unique<RandomForest>(params);
  }
  if (key == "gb") {
    GbtParams params;
    params.seed = seed;
    params.deadline = deadline;
    params.num_threads = num_threads;
    return std::make_unique<GradientBoosting>(params);
  }
  if (key == "gp") {
    GpParams params;
    params.kernel.gamma = 2.0;
    return std::make_unique<GaussianProcess>(params);
  }
  if (key == "tree") {
    TreeParams params;
    params.seed = seed;
    return std::make_unique<DecisionTree>(params);
  }
  throw Error("unknown regressor '" + name +
              "' (expected linear|svr|rf|gb|gp|tree)");
}

const std::vector<std::string>& table1_model_names() {
  static const std::vector<std::string> names = {"linear", "svr", "rf", "gb"};
  return names;
}

}  // namespace gmd::ml
