#include "gmd/ml/workspace.hpp"

#include <algorithm>
#include <numeric>

#include "gmd/common/error.hpp"

namespace gmd::ml {

TrainingWorkspace TrainingWorkspace::build(const Matrix& x) {
  GMD_REQUIRE(x.rows() >= 1, "empty training data");
  GMD_REQUIRE(x.rows() <= UINT32_MAX, "training data too large for workspace");
  TrainingWorkspace ws;
  ws.rows_ = x.rows();
  ws.features_ = x.cols();
  ws.order_.resize(ws.features_);
  ws.values_.resize(ws.features_);
  const std::size_t n = ws.rows_;
  for (std::size_t f = 0; f < ws.features_; ++f) {
    auto& order = ws.order_[f];
    order.resize(n);
    std::iota(order.begin(), order.end(), std::uint32_t{0});
    // Ascending (value, row): ties break on the row index, matching the
    // total order std::sort imposes on (value, index) pairs.
    std::sort(order.begin(), order.end(),
              [&x, f](std::uint32_t a, std::uint32_t b) {
                const double va = x.at(a, f);
                const double vb = x.at(b, f);
                return va < vb || (va == vb && a < b);
              });
    auto& values = ws.values_[f];
    values.resize(n);
    for (std::size_t i = 0; i < n; ++i) values[i] = x.at(order[i], f);
  }
  return ws;
}

void TrainingWorkspace::build_histograms(std::size_t max_bins) {
  GMD_REQUIRE(max_bins >= 2 && max_bins <= 256,
              "histogram bins must be in [2, 256], got " << max_bins);
  GMD_REQUIRE(!empty(), "build_histograms before build");
  if (max_bins_ == max_bins) return;  // already built at this resolution
  max_bins_ = max_bins;
  codes_.assign(features_, {});
  bin_edges_.assign(features_, {});
  const std::size_t n = rows_;
  for (std::size_t f = 0; f < features_; ++f) {
    const auto& order = order_[f];
    const auto& values = values_[f];
    auto& codes = codes_[f];
    auto& edges = bin_edges_[f];
    codes.resize(n);

    // Count distinct values to pick between one-bucket-per-value
    // (lossless) and quantile cuts.
    std::size_t distinct = 1;
    for (std::size_t i = 1; i < n; ++i) {
      if (values[i] != values[i - 1]) ++distinct;
    }
    const bool lossless = distinct <= max_bins;

    std::size_t bin = 0;
    std::size_t filled = 0;  // rows assigned to closed bins + current one
    std::size_t i = 0;
    while (i < n) {
      std::size_t run_end = i + 1;
      while (run_end < n && values[run_end] == values[i]) ++run_end;
      for (std::size_t k = i; k < run_end; ++k) {
        codes[order[k]] = static_cast<std::uint8_t>(bin);
      }
      filled += run_end - i;
      if (run_end < n) {
        // Close the bucket after this value run?  Lossless mode always
        // does; quantile mode closes once the bucket reached its share
        // of rows (never splitting a value run, and leaving at least
        // one run per remaining bucket).
        const bool close =
            lossless ||
            (filled * max_bins >= n * (bin + 1) && bin + 1 < max_bins);
        if (close) {
          edges.push_back((values[run_end - 1] + values[run_end]) / 2.0);
          ++bin;
        }
      }
      i = run_end;
    }
  }
}

TrainingWorkspace TrainingWorkspace::for_sample(
    std::span<const std::size_t> sample) const {
  GMD_REQUIRE(!empty(), "for_sample before build");
  GMD_REQUIRE(!sample.empty(), "empty sample");
  GMD_REQUIRE(sample.size() <= UINT32_MAX, "sample too large for workspace");
  const std::size_t n = rows_;
  const std::size_t m = sample.size();

  // CSR of gathered positions per base row; position lists are built in
  // ascending gathered order.
  std::vector<std::uint32_t> counts(n + 1, 0);
  for (const std::size_t r : sample) {
    GMD_REQUIRE(r < n, "sample index out of range");
    ++counts[r + 1];
  }
  for (std::size_t r = 0; r < n; ++r) counts[r + 1] += counts[r];
  std::vector<std::uint32_t> positions(m);
  {
    std::vector<std::uint32_t> cursor(counts.begin(), counts.end() - 1);
    for (std::size_t g = 0; g < m; ++g) {
      positions[cursor[sample[g]]++] = static_cast<std::uint32_t>(g);
    }
  }

  TrainingWorkspace ws;
  ws.rows_ = m;
  ws.features_ = features_;
  ws.order_.resize(features_);
  ws.values_.resize(features_);
  for (std::size_t f = 0; f < features_; ++f) {
    const auto& order = order_[f];
    const auto& values = values_[f];
    auto& out_order = ws.order_[f];
    auto& out_values = ws.values_[f];
    out_order.reserve(m);
    out_values.reserve(m);
    std::size_t i = 0;
    while (i < n) {
      std::size_t run_end = i + 1;
      while (run_end < n && values[run_end] == values[i]) ++run_end;
      // Emit every gathered position of the run's base rows.  Within an
      // equal-value run the required order is ascending gathered index;
      // a single contributing base row is already ascending, multiple
      // rows' lists are merged by sorting the emitted segment.
      const std::size_t start = out_order.size();
      std::size_t contributing = 0;
      for (std::size_t k = i; k < run_end; ++k) {
        const std::uint32_t r = order[k];
        const std::uint32_t lo = counts[r];
        const std::uint32_t hi = counts[r + 1];
        if (lo != hi) ++contributing;
        out_order.insert(out_order.end(), positions.begin() + lo,
                         positions.begin() + hi);
      }
      if (contributing > 1) {
        std::sort(out_order.begin() + static_cast<std::ptrdiff_t>(start),
                  out_order.end());
      }
      out_values.insert(out_values.end(), out_order.size() - start,
                        values[i]);
      i = run_end;
    }
  }

  if (has_histograms()) {
    ws.max_bins_ = max_bins_;
    ws.bin_edges_ = bin_edges_;
    ws.codes_.resize(features_);
    for (std::size_t f = 0; f < features_; ++f) {
      auto& codes = ws.codes_[f];
      codes.resize(m);
      for (std::size_t g = 0; g < m; ++g) codes[g] = codes_[f][sample[g]];
    }
  }
  return ws;
}

}  // namespace gmd::ml
