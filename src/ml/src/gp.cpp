#include "gmd/ml/gp.hpp"

#include <algorithm>
#include <cmath>

#include "gmd/common/error.hpp"
#include "gmd/common/thread_pool.hpp"

namespace gmd::ml {

GaussianProcess::GaussianProcess(const GpParams& params) : params_(params) {
  GMD_REQUIRE(params.noise > 0.0, "GP noise must be positive");
}

void GaussianProcess::fit(const Matrix& x, std::span<const double> y) {
  GMD_REQUIRE(x.rows() == y.size(), "X/y row mismatch");
  GMD_REQUIRE(x.rows() >= 1, "empty training data");
  const std::size_t n = x.rows();
  train_ = x;

  y_mean_ = 0.0;
  for (const double v : y) y_mean_ += v;
  y_mean_ /= static_cast<double>(n);

  Matrix k(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = kernel(params_.kernel, x.row(i), x.row(j));
      k.at(i, j) = v;
      k.at(j, i) = v;
    }
    k.at(i, i) += params_.noise;
  }
  chol_ = cholesky(std::move(k));

  std::vector<double> centered(n);
  for (std::size_t i = 0; i < n; ++i) centered[i] = y[i] - y_mean_;
  alpha_ = cholesky_solve_factored(chol_, centered);
  fitted_ = true;
}

std::vector<double> GaussianProcess::kernel_row(
    std::span<const double> x) const {
  std::vector<double> k(train_.rows());
  for (std::size_t i = 0; i < train_.rows(); ++i) {
    k[i] = kernel(params_.kernel, train_.row(i), x);
  }
  return k;
}

double GaussianProcess::predict_one(std::span<const double> x) const {
  return predict_with_variance(x).first;
}

std::vector<double> GaussianProcess::predict(const Matrix& x) const {
  GMD_REQUIRE(fitted_, "predict before fit");
  GMD_REQUIRE(x.cols() == train_.cols(), "feature count mismatch");
  std::vector<double> out(x.rows());
  std::vector<double> k(train_.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto row = x.row(r);
    for (std::size_t i = 0; i < train_.rows(); ++i) {
      k[i] = kernel(params_.kernel, train_.row(i), row);
    }
    double mean = y_mean_;
    for (std::size_t i = 0; i < k.size(); ++i) mean += k[i] * alpha_[i];
    out[r] = mean;
  }
  return out;
}

std::pair<double, double> GaussianProcess::predict_row(
    std::span<const double> row, std::vector<double>& k) const {
  k.resize(train_.rows());
  for (std::size_t i = 0; i < train_.rows(); ++i) {
    k[i] = kernel(params_.kernel, train_.row(i), row);
  }
  double mean = y_mean_;
  for (std::size_t i = 0; i < k.size(); ++i) mean += k[i] * alpha_[i];

  // var = k(x,x) - k^T (K + nI)^-1 k, via the Cholesky factor.
  const std::vector<double> v = cholesky_solve_factored(chol_, k);
  double reduction = 0.0;
  for (std::size_t i = 0; i < k.size(); ++i) reduction += k[i] * v[i];
  const double prior = kernel(params_.kernel, row, row) + params_.noise;
  return {mean, std::max(0.0, prior - reduction)};
}

std::pair<double, double> GaussianProcess::predict_with_variance(
    std::span<const double> x) const {
  GMD_REQUIRE(fitted_, "predict before fit");
  GMD_REQUIRE(x.size() == train_.cols(), "feature count mismatch");
  std::vector<double> k;
  return predict_row(x, k);
}

void GaussianProcess::predict_with_variance(
    const Matrix& x, std::vector<double>& means,
    std::vector<double>& variances) const {
  GMD_REQUIRE(fitted_, "predict before fit");
  GMD_REQUIRE(x.cols() == train_.cols(), "feature count mismatch");
  means.resize(x.rows());
  variances.resize(x.rows());
  std::vector<double> k(train_.rows());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    const auto [mean, variance] = predict_row(x.row(r), k);
    means[r] = mean;
    variances[r] = variance;
  }
}

void GaussianProcess::predict_with_variance(const Matrix& x,
                                            std::vector<double>& means,
                                            std::vector<double>& variances,
                                            std::size_t num_threads) const {
  GMD_REQUIRE(fitted_, "predict before fit");
  GMD_REQUIRE(x.cols() == train_.cols(), "feature count mismatch");
  means.resize(x.rows());
  variances.resize(x.rows());
  if (x.rows() == 0) return;
  // Each row's math reads only fitted state and writes only its own
  // output slot, so sharding rows across workers cannot change any
  // value — there is no cross-row accumulation to reorder.
  ThreadPool pool(num_threads);
  pool.parallel_for(
      0, x.rows(),
      [&](std::size_t r) {
        thread_local std::vector<double> k;
        const auto [mean, variance] = predict_row(x.row(r), k);
        means[r] = mean;
        variances[r] = variance;
      },
      /*grain=*/16);
}

std::unique_ptr<Regressor> GaussianProcess::clone() const {
  return std::make_unique<GaussianProcess>(*this);
}

}  // namespace gmd::ml
