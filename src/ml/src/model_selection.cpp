#include "gmd/ml/model_selection.hpp"

#include <algorithm>
#include <utility>

#include "gmd/common/deadline.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/thread_pool.hpp"
#include "gmd/ml/metrics.hpp"
#include "gmd/ml/svr.hpp"

namespace gmd::ml {

double CvScores::mean_mse() const {
  GMD_REQUIRE(!fold_mse.empty(), "no folds scored");
  double sum = 0.0;
  for (const double v : fold_mse) sum += v;
  return sum / static_cast<double>(fold_mse.size());
}

double CvScores::mean_r2() const {
  GMD_REQUIRE(!fold_r2.empty(), "no folds scored");
  double sum = 0.0;
  for (const double v : fold_r2) sum += v;
  return sum / static_cast<double>(fold_r2.size());
}

CvScores cross_validate(const Regressor& prototype, const Dataset& data,
                        std::size_t folds, std::uint64_t seed) {
  CvOptions options;
  options.folds = folds;
  options.seed = seed;
  return cross_validate(prototype, data, options);
}

CvScores cross_validate(const Regressor& prototype, const Dataset& data,
                        const CvOptions& options) {
  data.validate();
  const auto splits =
      kfold_indices(data.size(), options.folds, options.seed);
  CvScores scores;
  scores.fold_mse.resize(splits.size());
  scores.fold_r2.resize(splits.size());
  const auto eval_fold = [&](std::size_t f) {
    // One fold is the cancellation granularity; pool workers use the
    // thread-safe unamortized poll.
    if (options.deadline != nullptr) options.deadline->check_now();
    const Dataset train = data.subset(splits[f].first);
    const Dataset test = data.subset(splits[f].second);
    const auto model = prototype.clone();
    model->fit(train.X, train.y);
    const std::vector<double> predicted = model->predict(test.X);
    scores.fold_mse[f] = mse(test.y, predicted);
    scores.fold_r2[f] = r2_score(test.y, predicted);
  };
  if (options.num_threads == 1 || splits.size() <= 1) {
    for (std::size_t f = 0; f < splits.size(); ++f) eval_fold(f);
  } else {
    ThreadPool pool(options.num_threads);
    pool.parallel_for(0, splits.size(), eval_fold);
  }
  return scores;
}

std::vector<ParamPoint> cartesian_grid(
    const std::map<std::string, std::vector<double>>& axes) {
  GMD_REQUIRE(!axes.empty(), "grid needs at least one axis");
  for (const auto& [name, values] : axes) {
    GMD_REQUIRE(!values.empty(), "grid axis '" << name << "' is empty");
  }
  std::vector<ParamPoint> grid{{}};
  for (const auto& [name, values] : axes) {
    std::vector<ParamPoint> expanded;
    expanded.reserve(grid.size() * values.size());
    for (const ParamPoint& point : grid) {
      for (const double value : values) {
        ParamPoint next = point;
        next[name] = value;
        expanded.push_back(std::move(next));
      }
    }
    grid = std::move(expanded);
  }
  return grid;
}

const GridSearchResult::Candidate& GridSearchResult::best() const {
  GMD_REQUIRE(!candidates.empty(), "grid search produced no candidates");
  return candidates.front();
}

GridSearchResult grid_search(const ModelFactory& factory,
                             const std::vector<ParamPoint>& grid,
                             const Dataset& data, std::size_t folds,
                             std::uint64_t seed) {
  CvOptions options;
  options.folds = folds;
  options.seed = seed;
  return grid_search(factory, grid, data, options);
}

GridSearchResult grid_search(const ModelFactory& factory,
                             const std::vector<ParamPoint>& grid,
                             const Dataset& data, const CvOptions& options) {
  GMD_REQUIRE(!grid.empty(), "empty hyperparameter grid");
  data.validate();

  // The fold splits (and their materialized datasets) are drawn once
  // and shared by every candidate.
  const auto splits =
      kfold_indices(data.size(), options.folds, options.seed);
  std::vector<std::pair<Dataset, Dataset>> fold_data;
  fold_data.reserve(splits.size());
  for (const auto& [train_idx, test_idx] : splits) {
    fold_data.emplace_back(data.subset(train_idx), data.subset(test_idx));
  }

  GridSearchResult result;
  result.candidates.resize(grid.size());
  for (std::size_t c = 0; c < grid.size(); ++c) {
    result.candidates[c].params = grid[c];
    result.candidates[c].scores.fold_mse.resize(splits.size());
    result.candidates[c].scores.fold_r2.resize(splits.size());
  }

  // Every (candidate, fold) pair is one independent task; scores land
  // at their (c, f) slot, so the fan-out order cannot affect ranking.
  const std::size_t tasks = grid.size() * splits.size();
  const auto eval = [&](std::size_t task) {
    const std::size_t c = task / splits.size();
    const std::size_t f = task % splits.size();
    if (options.deadline != nullptr) options.deadline->check_now();
    const auto model = factory(grid[c]);
    GMD_REQUIRE(model != nullptr, "model factory returned null");
    const auto& [train, test] = fold_data[f];
    model->fit(train.X, train.y);
    const std::vector<double> predicted = model->predict(test.X);
    result.candidates[c].scores.fold_mse[f] = mse(test.y, predicted);
    result.candidates[c].scores.fold_r2[f] = r2_score(test.y, predicted);
  };
  if (options.num_threads == 1 || tasks <= 1) {
    for (std::size_t task = 0; task < tasks; ++task) eval(task);
  } else {
    ThreadPool pool(options.num_threads);
    pool.parallel_for(0, tasks, eval);
  }

  std::stable_sort(result.candidates.begin(), result.candidates.end(),
                   [](const auto& a, const auto& b) {
                     return a.scores.mean_mse() < b.scores.mean_mse();
                   });
  return result;
}

GridSearchResult grid_search_svr(const Dataset& data,
                                 const std::vector<double>& c_values,
                                 const std::vector<double>& gamma_values,
                                 const std::vector<double>& epsilon_values,
                                 std::size_t folds, std::uint64_t seed) {
  CvOptions options;
  options.folds = folds;
  options.seed = seed;
  return grid_search_svr(data, c_values, gamma_values, epsilon_values,
                         options);
}

GridSearchResult grid_search_svr(const Dataset& data,
                                 const std::vector<double>& c_values,
                                 const std::vector<double>& gamma_values,
                                 const std::vector<double>& epsilon_values,
                                 const CvOptions& options) {
  const auto grid = cartesian_grid({{"C", c_values},
                                    {"gamma", gamma_values},
                                    {"epsilon", epsilon_values}});
  const ModelFactory factory = [](const ParamPoint& params) {
    SvrParams svr;
    svr.c = params.at("C");
    svr.kernel.gamma = params.at("gamma");
    svr.epsilon = params.at("epsilon");
    return std::make_unique<Svr>(svr);
  };
  return grid_search(factory, grid, data, options);
}

}  // namespace gmd::ml
