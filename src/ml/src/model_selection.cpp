#include "gmd/ml/model_selection.hpp"

#include <algorithm>

#include "gmd/common/error.hpp"
#include "gmd/ml/metrics.hpp"
#include "gmd/ml/svr.hpp"

namespace gmd::ml {

double CvScores::mean_mse() const {
  GMD_REQUIRE(!fold_mse.empty(), "no folds scored");
  double sum = 0.0;
  for (const double v : fold_mse) sum += v;
  return sum / static_cast<double>(fold_mse.size());
}

double CvScores::mean_r2() const {
  GMD_REQUIRE(!fold_r2.empty(), "no folds scored");
  double sum = 0.0;
  for (const double v : fold_r2) sum += v;
  return sum / static_cast<double>(fold_r2.size());
}

CvScores cross_validate(const Regressor& prototype, const Dataset& data,
                        std::size_t folds, std::uint64_t seed) {
  data.validate();
  CvScores scores;
  for (const auto& [train_idx, test_idx] :
       kfold_indices(data.size(), folds, seed)) {
    const Dataset train = data.subset(train_idx);
    const Dataset test = data.subset(test_idx);
    const auto model = prototype.clone();
    model->fit(train.X, train.y);
    const std::vector<double> predicted = model->predict(test.X);
    scores.fold_mse.push_back(mse(test.y, predicted));
    scores.fold_r2.push_back(r2_score(test.y, predicted));
  }
  return scores;
}

std::vector<ParamPoint> cartesian_grid(
    const std::map<std::string, std::vector<double>>& axes) {
  GMD_REQUIRE(!axes.empty(), "grid needs at least one axis");
  for (const auto& [name, values] : axes) {
    GMD_REQUIRE(!values.empty(), "grid axis '" << name << "' is empty");
  }
  std::vector<ParamPoint> grid{{}};
  for (const auto& [name, values] : axes) {
    std::vector<ParamPoint> expanded;
    expanded.reserve(grid.size() * values.size());
    for (const ParamPoint& point : grid) {
      for (const double value : values) {
        ParamPoint next = point;
        next[name] = value;
        expanded.push_back(std::move(next));
      }
    }
    grid = std::move(expanded);
  }
  return grid;
}

const GridSearchResult::Candidate& GridSearchResult::best() const {
  GMD_REQUIRE(!candidates.empty(), "grid search produced no candidates");
  return candidates.front();
}

GridSearchResult grid_search(const ModelFactory& factory,
                             const std::vector<ParamPoint>& grid,
                             const Dataset& data, std::size_t folds,
                             std::uint64_t seed) {
  GMD_REQUIRE(!grid.empty(), "empty hyperparameter grid");
  GridSearchResult result;
  result.candidates.reserve(grid.size());
  for (const ParamPoint& params : grid) {
    const auto model = factory(params);
    GMD_REQUIRE(model != nullptr, "model factory returned null");
    GridSearchResult::Candidate candidate;
    candidate.params = params;
    candidate.scores = cross_validate(*model, data, folds, seed);
    result.candidates.push_back(std::move(candidate));
  }
  std::stable_sort(result.candidates.begin(), result.candidates.end(),
                   [](const auto& a, const auto& b) {
                     return a.scores.mean_mse() < b.scores.mean_mse();
                   });
  return result;
}

GridSearchResult grid_search_svr(const Dataset& data,
                                 const std::vector<double>& c_values,
                                 const std::vector<double>& gamma_values,
                                 const std::vector<double>& epsilon_values,
                                 std::size_t folds, std::uint64_t seed) {
  const auto grid = cartesian_grid({{"C", c_values},
                                    {"gamma", gamma_values},
                                    {"epsilon", epsilon_values}});
  const ModelFactory factory = [](const ParamPoint& params) {
    SvrParams svr;
    svr.c = params.at("C");
    svr.kernel.gamma = params.at("gamma");
    svr.epsilon = params.at("epsilon");
    return std::make_unique<Svr>(svr);
  };
  return grid_search(factory, grid, data, folds, seed);
}

}  // namespace gmd::ml
