#include "gmd/ml/metrics.hpp"

#include <cmath>

#include "gmd/common/error.hpp"

namespace gmd::ml {

namespace {

void check_shapes(std::span<const double> a, std::span<const double> b) {
  GMD_REQUIRE(!a.empty(), "metric on empty series");
  GMD_REQUIRE(a.size() == b.size(), "series length mismatch: "
                                        << a.size() << " vs " << b.size());
}

}  // namespace

double mse(std::span<const double> truth, std::span<const double> predicted) {
  check_shapes(truth, predicted);
  double sum = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double d = truth[i] - predicted[i];
    sum += d * d;
  }
  return sum / static_cast<double>(truth.size());
}

double rmse(std::span<const double> truth,
            std::span<const double> predicted) {
  return std::sqrt(mse(truth, predicted));
}

double mae(std::span<const double> truth, std::span<const double> predicted) {
  check_shapes(truth, predicted);
  double sum = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    sum += std::abs(truth[i] - predicted[i]);
  }
  return sum / static_cast<double>(truth.size());
}

double r2_score(std::span<const double> truth,
                std::span<const double> predicted) {
  check_shapes(truth, predicted);
  double mean = 0.0;
  for (const double y : truth) mean += y;
  mean /= static_cast<double>(truth.size());

  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < truth.size(); ++i) {
    const double r = truth[i] - predicted[i];
    const double t = truth[i] - mean;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot == 0.0) return ss_res == 0.0 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace gmd::ml
