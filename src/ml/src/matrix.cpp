#include "gmd/ml/matrix.hpp"

#include <algorithm>
#include <cmath>

#include "gmd/common/error.hpp"

namespace gmd::ml {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix Matrix::from_rows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return {};
  Matrix m(rows.size(), rows.front().size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    GMD_REQUIRE(rows[r].size() == m.cols_,
                "ragged row " << r << ": " << rows[r].size() << " vs "
                              << m.cols_);
    for (std::size_t c = 0; c < m.cols_; ++c) m.at(r, c) = rows[r][c];
  }
  return m;
}

double& Matrix::at(std::size_t r, std::size_t c) {
  GMD_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

double Matrix::at(std::size_t r, std::size_t c) const {
  GMD_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
  return data_[r * cols_ + c];
}

std::span<const double> Matrix::row(std::size_t r) const {
  GMD_ASSERT(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

std::span<double> Matrix::row(std::size_t r) {
  GMD_ASSERT(r < rows_, "row index out of range");
  return {data_.data() + r * cols_, cols_};
}

Matrix Matrix::gather_rows(std::span<const std::size_t> indices) const {
  Matrix out(indices.size(), cols_);
  for (std::size_t i = 0; i < indices.size(); ++i) {
    GMD_REQUIRE(indices[i] < rows_, "gather index out of range");
    const auto src = row(indices[i]);
    std::copy(src.begin(), src.end(), out.row(i).begin());
  }
  return out;
}

std::vector<double> Matrix::column(std::size_t c) const {
  GMD_REQUIRE(c < cols_, "column index out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = at(r, c);
  return out;
}

Matrix Matrix::transposed() const {
  Matrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out.at(c, r) = at(r, c);
  return out;
}

Matrix Matrix::multiply(const Matrix& other) const {
  GMD_REQUIRE(cols_ == other.rows_,
              "matrix product shape mismatch: " << cols_ << " vs "
                                                << other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = at(r, k);
      if (a == 0.0) continue;
      for (std::size_t c = 0; c < other.cols_; ++c) {
        out.at(r, c) += a * other.at(k, c);
      }
    }
  }
  return out;
}

std::vector<double> Matrix::multiply(std::span<const double> v) const {
  GMD_REQUIRE(v.size() == cols_, "matvec shape mismatch");
  std::vector<double> out(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto rr = row(r);
    double sum = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) sum += rr[c] * v[c];
    out[r] = sum;
  }
  return out;
}

Matrix Matrix::gram() const {
  Matrix out(cols_, cols_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const auto rr = row(r);
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = rr[i];
      if (a == 0.0) continue;
      for (std::size_t j = i; j < cols_; ++j) out.at(i, j) += a * rr[j];
    }
  }
  for (std::size_t i = 0; i < cols_; ++i)
    for (std::size_t j = 0; j < i; ++j) out.at(i, j) = out.at(j, i);
  return out;
}

std::vector<double> Matrix::transpose_multiply(
    std::span<const double> v) const {
  GMD_REQUIRE(v.size() == rows_, "transpose matvec shape mismatch");
  std::vector<double> out(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double s = v[r];
    if (s == 0.0) continue;
    const auto rr = row(r);
    for (std::size_t c = 0; c < cols_; ++c) out[c] += s * rr[c];
  }
  return out;
}

Matrix cholesky(Matrix a) {
  GMD_REQUIRE(a.rows() == a.cols(), "cholesky needs a square matrix");
  const std::size_t n = a.rows();
  for (std::size_t j = 0; j < n; ++j) {
    double d = a.at(j, j);
    for (std::size_t k = 0; k < j; ++k) d -= a.at(j, k) * a.at(j, k);
    GMD_REQUIRE(d > 0.0, "matrix is not positive definite (pivot " << j
                                                                   << ")");
    const double l = std::sqrt(d);
    a.at(j, j) = l;
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a.at(i, j);
      for (std::size_t k = 0; k < j; ++k) s -= a.at(i, k) * a.at(j, k);
      a.at(i, j) = s / l;
    }
    for (std::size_t c = j + 1; c < n; ++c) a.at(j, c) = 0.0;  // zero upper
  }
  return a;
}

std::vector<double> cholesky_solve_factored(const Matrix& l,
                                            std::span<const double> b) {
  const std::size_t n = l.rows();
  GMD_REQUIRE(b.size() == n, "rhs size mismatch");
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= l.at(i, k) * y[k];
    y[i] = s / l.at(i, i);
  }
  std::vector<double> x(n);
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = y[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= l.at(k, i) * x[k];
    x[i] = s / l.at(i, i);
  }
  return x;
}

std::vector<double> cholesky_solve(const Matrix& a,
                                   std::span<const double> b) {
  return cholesky_solve_factored(cholesky(a), b);
}

}  // namespace gmd::ml
