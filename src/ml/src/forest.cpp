#include "gmd/ml/forest.hpp"

#include <algorithm>
#include <istream>
#include <numeric>
#include <ostream>
#include <string>

#include "gmd/common/deadline.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/common/thread_pool.hpp"

namespace gmd::ml {

RandomForest::RandomForest(const ForestParams& params) : params_(params) {
  GMD_REQUIRE(params.num_trees >= 1, "forest needs at least one tree");
}

void RandomForest::fit(const Matrix& x, std::span<const double> y) {
  GMD_REQUIRE(x.rows() == y.size(), "X/y row mismatch");
  GMD_REQUIRE(x.rows() >= 1, "empty training data");
  const std::size_t n = x.rows();
  const std::size_t p = x.cols();
  const std::size_t max_features =
      params_.max_features > 0 ? params_.max_features : p;

  // Pre-draw per-tree seeds and bootstrap samples deterministically so
  // the parallel build order cannot affect the result.
  Rng rng(params_.seed);
  struct TreeJob {
    std::uint64_t seed = 0;
    std::vector<std::size_t> sample;
  };
  std::vector<TreeJob> jobs(params_.num_trees);
  for (auto& job : jobs) {
    job.seed = rng();
    job.sample.resize(n);
    if (params_.bootstrap) {
      for (auto& idx : job.sample) idx = rng.next_below(n);
    } else {
      std::iota(job.sample.begin(), job.sample.end(), std::size_t{0});
    }
  }

  // One presort of the full training matrix, shared across every tree:
  // bootstrap draws derive their view in O(n) per feature instead of
  // re-sorting.
  TrainingWorkspace base;
  if (!params_.reference_mode) {
    base = TrainingWorkspace::build(x);
    if (params_.split_mode == TreeParams::SplitMode::kHistogram) {
      base.build_histograms(params_.max_bins);
    }
  }

  trees_.assign(params_.num_trees, DecisionTree(TreeParams{}));
  ThreadPool pool(params_.num_threads);
  pool.parallel_for(0, jobs.size(), [&](std::size_t t) {
    // Deadline::check() is owner-thread-only; pool workers use the
    // thread-safe unamortized poll.  One tree is the cancellation
    // granularity — parallel_for rethrows the kTimeout/kCancelled
    // Error to the fit() caller.
    if (params_.deadline != nullptr) params_.deadline->check_now();
    TreeParams tree_params;
    tree_params.max_depth = params_.max_depth;
    tree_params.min_samples_leaf = params_.min_samples_leaf;
    tree_params.max_features = max_features;
    tree_params.seed = jobs[t].seed;
    tree_params.split_mode = params_.split_mode;
    tree_params.max_bins = params_.max_bins;
    tree_params.reference_mode = params_.reference_mode;
    DecisionTree tree(tree_params);
    if (params_.reference_mode) {
      const Matrix xs = x.gather_rows(jobs[t].sample);
      std::vector<double> ys(jobs[t].sample.size());
      for (std::size_t i = 0; i < ys.size(); ++i) ys[i] = y[jobs[t].sample[i]];
      tree.fit(xs, ys);
    } else if (params_.bootstrap) {
      const TrainingWorkspace ws = base.for_sample(jobs[t].sample);
      const Matrix xs = x.gather_rows(jobs[t].sample);
      std::vector<double> ys(jobs[t].sample.size());
      for (std::size_t i = 0; i < ys.size(); ++i) ys[i] = y[jobs[t].sample[i]];
      tree.fit_with_workspace(ws, xs, ys);
    } else {
      tree.fit_with_workspace(base, x, y);
    }
    trees_[t] = std::move(tree);
  });
}

void RandomForest::fit_with_workspace(const TrainingWorkspace& base,
                                      const Matrix& pool_x,
                                      std::span<const std::size_t> sample,
                                      std::span<const double> y) {
  GMD_REQUIRE(!params_.reference_mode,
              "fit_with_workspace is a workspace-engine path");
  GMD_REQUIRE(sample.size() == y.size(), "sample/y row mismatch");
  GMD_REQUIRE(!sample.empty(), "empty training data");
  GMD_REQUIRE(base.rows() == pool_x.rows() && base.features() == pool_x.cols(),
              "workspace does not match the pool matrix");
  GMD_REQUIRE(
      params_.split_mode != TreeParams::SplitMode::kHistogram ||
          base.has_histograms(),
      "histogram mode needs a workspace built with build_histograms()");
  for (const std::size_t idx : sample) {
    GMD_REQUIRE(idx < pool_x.rows(), "sample index out of range");
  }

  const std::size_t n = sample.size();
  const std::size_t p = pool_x.cols();
  const std::size_t max_features =
      params_.max_features > 0 ? params_.max_features : p;

  // Same deterministic pre-draw as fit() over an n-row training set, so
  // (in exact mode) the trees match fit(pool_x.gather_rows(sample), y)
  // bit for bit: the bootstrap indices into the labeled subset are
  // composed with `sample` to index the pool directly.
  Rng rng(params_.seed);
  struct TreeJob {
    std::uint64_t seed = 0;
    std::vector<std::size_t> draw;       ///< Indices into `sample` / `y`.
    std::vector<std::size_t> pool_rows;  ///< sample[draw[i]].
  };
  std::vector<TreeJob> jobs(params_.num_trees);
  for (auto& job : jobs) {
    job.seed = rng();
    job.draw.resize(n);
    if (params_.bootstrap) {
      for (auto& idx : job.draw) idx = rng.next_below(n);
    } else {
      std::iota(job.draw.begin(), job.draw.end(), std::size_t{0});
    }
    job.pool_rows.resize(n);
    for (std::size_t i = 0; i < n; ++i) job.pool_rows[i] = sample[job.draw[i]];
  }

  trees_.assign(params_.num_trees, DecisionTree(TreeParams{}));
  ThreadPool pool(params_.num_threads);
  pool.parallel_for(0, jobs.size(), [&](std::size_t t) {
    if (params_.deadline != nullptr) params_.deadline->check_now();
    TreeParams tree_params;
    tree_params.max_depth = params_.max_depth;
    tree_params.min_samples_leaf = params_.min_samples_leaf;
    tree_params.max_features = max_features;
    tree_params.seed = jobs[t].seed;
    tree_params.split_mode = params_.split_mode;
    tree_params.max_bins = params_.max_bins;
    DecisionTree tree(tree_params);
    const TrainingWorkspace ws = base.for_sample(jobs[t].pool_rows);
    const Matrix xs = pool_x.gather_rows(jobs[t].pool_rows);
    std::vector<double> ys(n);
    for (std::size_t i = 0; i < n; ++i) ys[i] = y[jobs[t].draw[i]];
    tree.fit_with_workspace(ws, xs, ys);
    trees_[t] = std::move(tree);
  });
}

double RandomForest::predict_one(std::span<const double> x) const {
  GMD_REQUIRE(is_fitted(), "predict before fit");
  double sum = 0.0;
  for (const DecisionTree& tree : trees_) sum += tree.predict_one(x);
  return sum / static_cast<double>(trees_.size());
}

std::vector<double> RandomForest::predict(const Matrix& x) const {
  GMD_REQUIRE(is_fitted(), "predict before fit");
  for (const DecisionTree& tree : trees_) {
    for (const auto& node : tree.nodes_) {
      GMD_REQUIRE(node.feature == DecisionTree::Node::kLeaf ||
                      node.feature < x.cols(),
                  "feature count mismatch");
    }
  }
  // Tree-major traversal: one full-range pass per tree keeps that
  // tree's compact plan cache-hot for every row (the row matrix is the
  // smaller stream), and traverse_block keeps several rows' walks in
  // flight.  Per row the accumulation is the same tree-order sum
  // predict_one computes, so the values are bit-identical.
  const std::size_t n = x.rows();
  std::vector<double> out(n, 0.0);
  std::vector<double> leaves(n);
  for (const DecisionTree& tree : trees_) {
    const DecisionTree::InferencePlan plan = tree.make_plan();
    DecisionTree::traverse_block(plan, x, 0, n, leaves.data());
    for (std::size_t r = 0; r < n; ++r) out[r] += leaves[r];
  }
  const double count = static_cast<double>(trees_.size());
  for (double& v : out) v /= count;
  return out;
}

void RandomForest::predict_with_spread(const Matrix& x,
                                       std::vector<double>& means,
                                       std::vector<double>& variances) const {
  GMD_REQUIRE(is_fitted(), "predict before fit");
  for (const DecisionTree& tree : trees_) {
    for (const auto& node : tree.nodes_) {
      GMD_REQUIRE(node.feature == DecisionTree::Node::kLeaf ||
                      node.feature < x.cols(),
                  "feature count mismatch");
    }
  }
  // Same tree-major plan traversal as predict(), with a second
  // accumulator: per row, sum and sum-of-squares of the per-tree leaf
  // values.  The mean accumulation is the identical tree-order sum, so
  // means match predict() bit for bit.
  const std::size_t n = x.rows();
  means.assign(n, 0.0);
  variances.assign(n, 0.0);
  std::vector<double> leaves(n);
  for (const DecisionTree& tree : trees_) {
    const DecisionTree::InferencePlan plan = tree.make_plan();
    DecisionTree::traverse_block(plan, x, 0, n, leaves.data());
    for (std::size_t r = 0; r < n; ++r) {
      means[r] += leaves[r];
      variances[r] += leaves[r] * leaves[r];
    }
  }
  const double count = static_cast<double>(trees_.size());
  for (std::size_t r = 0; r < n; ++r) {
    means[r] /= count;
    variances[r] =
        std::max(0.0, variances[r] / count - means[r] * means[r]);
  }
}

std::unique_ptr<Regressor> RandomForest::clone() const {
  return std::make_unique<RandomForest>(*this);
}

std::vector<double> RandomForest::feature_importances(
    std::size_t num_features) const {
  GMD_REQUIRE(is_fitted(), "feature_importances before fit");
  std::vector<double> sums(num_features, 0.0);
  for (const DecisionTree& tree : trees_) {
    const auto per_tree = tree.feature_importances(num_features);
    for (std::size_t f = 0; f < num_features; ++f) sums[f] += per_tree[f];
  }
  double total = 0.0;
  for (const double s : sums) total += s;
  if (total > 0.0) {
    for (double& s : sums) s /= total;
  }
  return sums;
}

void RandomForest::write(std::ostream& os) const {
  GMD_REQUIRE(is_fitted(), "cannot serialize an unfitted model");
  os << "forest " << trees_.size() << "\n";
  for (const DecisionTree& tree : trees_) tree.write(os);
}

RandomForest RandomForest::read(std::istream& is) {
  std::string tag;
  std::size_t count = 0;
  is >> tag >> count;
  GMD_REQUIRE(is.good() && tag == "forest" && count >= 1,
              "not a serialized random forest");
  RandomForest forest;
  forest.trees_.clear();
  forest.trees_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    forest.trees_.push_back(DecisionTree::read(is));
  }
  forest.params_.num_trees = count;
  return forest;
}

}  // namespace gmd::ml
