#pragma once

/// \file gp.hpp
/// Gaussian-process regression with an RBF kernel.  Its predictive
/// variance is the acquisition signal for the active-learning DSE loop
/// the paper proposes as future work (§V).

#include <span>
#include <utility>
#include <vector>

#include "gmd/ml/kernel.hpp"
#include "gmd/ml/matrix.hpp"
#include "gmd/ml/regressor.hpp"

namespace gmd::ml {

struct GpParams {
  KernelParams kernel{KernelType::kRbf, 1.0, 1.0, 3};
  double noise = 1e-4;  ///< Observation noise variance (jitter).
};

class GaussianProcess final : public Regressor {
 public:
  explicit GaussianProcess(const GpParams& params = {});

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;

  /// Batch predictive means: skips the per-row O(n^2) variance
  /// back-substitution predict_one pays, returning the same means.
  std::vector<double> predict(const Matrix& x) const override;

  /// Predictive mean and variance at one point.
  std::pair<double, double> predict_with_variance(
      std::span<const double> x) const;

  /// Batch means + variances over every row of `x` (the acquisition
  /// scan of the active-learning loop).  Values match the per-row
  /// overload exactly.
  void predict_with_variance(const Matrix& x, std::vector<double>& means,
                             std::vector<double>& variances) const;

  /// Blockwise-parallel batch variant: rows are sharded across a thread
  /// pool (0: hardware concurrency, 1: serial).  Every row runs the
  /// same independent per-row math as the scalar path and lands at its
  /// own output index, so results are bit-identical to the serial
  /// overload at any thread count.
  void predict_with_variance(const Matrix& x, std::vector<double>& means,
                             std::vector<double>& variances,
                             std::size_t num_threads) const;

  std::string name() const override { return "gp"; }
  std::unique_ptr<Regressor> clone() const override;
  bool is_fitted() const override { return fitted_; }

 private:
  std::vector<double> kernel_row(std::span<const double> x) const;

  /// One row's mean + variance; `k` is a caller-owned scratch buffer of
  /// train_.rows() doubles.  Both batch overloads and the scalar path
  /// funnel through this, so they cannot drift.
  std::pair<double, double> predict_row(std::span<const double> row,
                                        std::vector<double>& k) const;

  GpParams params_;
  Matrix train_;
  Matrix chol_;               ///< Cholesky factor of K + noise I.
  std::vector<double> alpha_; ///< (K + noise I)^-1 (y - mean).
  double y_mean_ = 0.0;
  bool fitted_ = false;
};

}  // namespace gmd::ml
