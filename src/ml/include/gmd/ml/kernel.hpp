#pragma once

/// \file kernel.hpp
/// Kernel functions shared by the SVR and Gaussian-process models.

#include <cstdint>
#include <span>
#include <string>

namespace gmd::ml {

enum class KernelType { kLinear, kRbf, kPolynomial };

struct KernelParams {
  KernelType type = KernelType::kRbf;
  double gamma = 1.0;   ///< RBF width / polynomial & linear scale.
  double coef0 = 1.0;   ///< Polynomial offset.
  unsigned degree = 3;  ///< Polynomial degree.
};

/// k(a, b) for equal-length feature vectors.
double kernel(const KernelParams& params, std::span<const double> a,
              std::span<const double> b);

std::string to_string(KernelType type);

}  // namespace gmd::ml
