#pragma once

/// \file model_selection.hpp
/// Cross-validation and hyperparameter grid search — the tooling a
/// practitioner needs on top of fit/predict to pick the surrogate
/// configuration honestly (instead of hand-tuning on the test set).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gmd/ml/dataset.hpp"
#include "gmd/ml/regressor.hpp"

namespace gmd::ml {

/// K-fold cross-validation scores for one model configuration.
struct CvScores {
  std::vector<double> fold_mse;
  std::vector<double> fold_r2;

  double mean_mse() const;
  double mean_r2() const;
};

/// Runs k-fold CV: clones `prototype` per fold, fits on the training
/// folds, scores on the held-out fold.
CvScores cross_validate(const Regressor& prototype, const Dataset& data,
                        std::size_t folds = 5, std::uint64_t seed = 1);

/// A named hyperparameter assignment (e.g. {"C": 10, "gamma": 2}).
using ParamPoint = std::map<std::string, double>;

/// Cartesian product of named axes, in deterministic (lexicographic by
/// axis name, row-major) order.
std::vector<ParamPoint> cartesian_grid(
    const std::map<std::string, std::vector<double>>& axes);

/// Builds a model for a hyperparameter assignment.
using ModelFactory =
    std::function<std::unique_ptr<Regressor>(const ParamPoint&)>;

struct GridSearchResult {
  struct Candidate {
    ParamPoint params;
    CvScores scores;
  };
  /// All evaluated candidates, best (lowest mean CV MSE) first.
  std::vector<Candidate> candidates;

  const Candidate& best() const;
};

/// Exhaustive CV grid search.
GridSearchResult grid_search(const ModelFactory& factory,
                             const std::vector<ParamPoint>& grid,
                             const Dataset& data, std::size_t folds = 5,
                             std::uint64_t seed = 1);

/// Convenience: grid search over SVR's C / gamma / epsilon.
GridSearchResult grid_search_svr(
    const Dataset& data, const std::vector<double>& c_values,
    const std::vector<double>& gamma_values,
    const std::vector<double>& epsilon_values, std::size_t folds = 5,
    std::uint64_t seed = 1);

}  // namespace gmd::ml
