#pragma once

/// \file model_selection.hpp
/// Cross-validation and hyperparameter grid search — the tooling a
/// practitioner needs on top of fit/predict to pick the surrogate
/// configuration honestly (instead of hand-tuning on the test set).

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gmd/ml/dataset.hpp"
#include "gmd/ml/regressor.hpp"

namespace gmd {
class Deadline;
}

namespace gmd::ml {

/// K-fold cross-validation scores for one model configuration.
struct CvScores {
  std::vector<double> fold_mse;
  std::vector<double> fold_r2;

  double mean_mse() const;
  double mean_r2() const;
};

/// Shared knobs for cross_validate / grid_search.
struct CvOptions {
  std::size_t folds = 5;
  std::uint64_t seed = 1;
  /// Worker threads for fold / candidate evaluation (1: serial,
  /// 0: hardware concurrency).  Scores are written by fold index and
  /// reduced in index order, so they are bit-identical for any value.
  std::size_t num_threads = 1;
  /// Cooperative cancellation, polled (thread-safely) before each fold
  /// evaluation.  Non-owning; may chain a parent budget.
  Deadline* deadline = nullptr;
};

/// Runs k-fold CV: clones `prototype` per fold, fits on the training
/// folds, scores on the held-out fold.
CvScores cross_validate(const Regressor& prototype, const Dataset& data,
                        std::size_t folds = 5, std::uint64_t seed = 1);

/// Options overload; folds evaluate in parallel when num_threads != 1.
CvScores cross_validate(const Regressor& prototype, const Dataset& data,
                        const CvOptions& options);

/// A named hyperparameter assignment (e.g. {"C": 10, "gamma": 2}).
using ParamPoint = std::map<std::string, double>;

/// Cartesian product of named axes, in deterministic (lexicographic by
/// axis name, row-major) order.
std::vector<ParamPoint> cartesian_grid(
    const std::map<std::string, std::vector<double>>& axes);

/// Builds a model for a hyperparameter assignment.
using ModelFactory =
    std::function<std::unique_ptr<Regressor>(const ParamPoint&)>;

struct GridSearchResult {
  struct Candidate {
    ParamPoint params;
    CvScores scores;
  };
  /// All evaluated candidates, best (lowest mean CV MSE) first.
  std::vector<Candidate> candidates;

  const Candidate& best() const;
};

/// Exhaustive CV grid search.
GridSearchResult grid_search(const ModelFactory& factory,
                             const std::vector<ParamPoint>& grid,
                             const Dataset& data, std::size_t folds = 5,
                             std::uint64_t seed = 1);

/// Options overload: every (candidate, fold) pair is an independent
/// task, so the whole grid fans out when num_threads != 1.  The fold
/// splits are drawn once and shared by all candidates; results are
/// stored by (candidate, fold) index, so ranking is bit-identical for
/// any thread count.  `factory` must be safe to call concurrently when
/// num_threads != 1 (a pure construct-from-params lambda is).
GridSearchResult grid_search(const ModelFactory& factory,
                             const std::vector<ParamPoint>& grid,
                             const Dataset& data, const CvOptions& options);

/// Convenience: grid search over SVR's C / gamma / epsilon.
GridSearchResult grid_search_svr(
    const Dataset& data, const std::vector<double>& c_values,
    const std::vector<double>& gamma_values,
    const std::vector<double>& epsilon_values, std::size_t folds = 5,
    std::uint64_t seed = 1);

/// Options overload of grid_search_svr.
GridSearchResult grid_search_svr(
    const Dataset& data, const std::vector<double>& c_values,
    const std::vector<double>& gamma_values,
    const std::vector<double>& epsilon_values, const CvOptions& options);

}  // namespace gmd::ml
