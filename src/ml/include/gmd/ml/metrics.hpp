#pragma once

/// \file metrics.hpp
/// Regression quality metrics — the paper evaluates its surrogates with
/// MSE (Eq. 1) and the R² coefficient of determination (Eq. 2).

#include <span>

namespace gmd::ml {

/// Mean squared error; requires equal, non-zero lengths.
double mse(std::span<const double> truth, std::span<const double> predicted);

/// Root mean squared error.
double rmse(std::span<const double> truth, std::span<const double> predicted);

/// Mean absolute error.
double mae(std::span<const double> truth, std::span<const double> predicted);

/// Coefficient of determination.  1 is perfect; 0 matches predicting
/// the mean; negative is worse than the mean.  When the truth is
/// constant, returns 1 for an exact prediction and 0 otherwise.
double r2_score(std::span<const double> truth,
                std::span<const double> predicted);

}  // namespace gmd::ml
