#pragma once

/// \file gbt.hpp
/// Least-squares gradient boosting: shallow CART trees fitted to the
/// running residual (scikit-learn GradientBoostingRegressor semantics,
/// which the paper uses).

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "gmd/ml/tree.hpp"

namespace gmd {
class Deadline;
}

namespace gmd::ml {

struct GbtParams {
  std::size_t num_stages = 200;
  double learning_rate = 0.1;
  unsigned max_depth = 3;
  std::size_t min_samples_leaf = 1;
  /// Row subsample fraction per stage (stochastic gradient boosting);
  /// 1.0 disables subsampling.
  double subsample = 1.0;
  std::uint64_t seed = 1;
  /// Worker threads for per-feature split search on large nodes (the
  /// stages themselves are inherently sequential).  0: hardware
  /// concurrency; the result is bit-identical for any value.
  std::size_t num_threads = 0;
  /// Forwarded to TreeParams::parallel_min_rows: nodes below this
  /// search serially even with workers available.
  std::size_t parallel_min_rows = 4096;
  /// Split enumeration mode for every stage; see TreeParams::SplitMode.
  TreeParams::SplitMode split_mode = TreeParams::SplitMode::kExact;
  std::size_t max_bins = 64;
  /// Trains every stage with the pre-workspace reference engine (golden
  /// path for equivalence tests).
  bool reference_mode = false;
  /// Cooperative cancellation: polled before each boosting stage (via
  /// check_now()) so long fits honor wall budgets.  Non-owning; must
  /// outlive fit().
  Deadline* deadline = nullptr;
};

class GradientBoosting final : public Regressor {
 public:
  explicit GradientBoosting(const GbtParams& params = {});

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;
  /// Batch inference: blocked over rows, stages walked check-free; each
  /// row's value is the same stage-order sum predict_one computes.
  std::vector<double> predict(const Matrix& x) const override;
  std::string name() const override { return "gb"; }
  std::unique_ptr<Regressor> clone() const override;
  bool is_fitted() const override { return fitted_; }

  std::size_t num_stages() const { return stages_.size(); }
  double initial_prediction() const { return f0_; }

  /// Text (de)serialization; see serialize.hpp.
  void write(std::ostream& os) const;
  static GradientBoosting read(std::istream& is);

 private:
  GbtParams params_;
  double f0_ = 0.0;
  std::vector<DecisionTree> stages_;
  bool fitted_ = false;
};

}  // namespace gmd::ml
