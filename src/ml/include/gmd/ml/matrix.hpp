#pragma once

/// \file matrix.hpp
/// Dense row-major matrix with the small amount of linear algebra the
/// ML library needs: products, transpose products, and a Cholesky
/// solver for SPD systems (normal equations, Gaussian processes).

#include <cstddef>
#include <span>
#include <vector>

namespace gmd::ml {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  /// Builds from nested initializer rows; all rows must be equal length.
  static Matrix from_rows(const std::vector<std::vector<double>>& rows);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0 || cols_ == 0; }

  double& at(std::size_t r, std::size_t c);
  double at(std::size_t r, std::size_t c) const;

  std::span<const double> row(std::size_t r) const;
  std::span<double> row(std::size_t r);

  /// Returns a new matrix holding the selected rows (e.g. a bootstrap
  /// sample or a train/test partition).
  Matrix gather_rows(std::span<const std::size_t> indices) const;

  /// One column as a vector.
  std::vector<double> column(std::size_t c) const;

  Matrix transposed() const;

  /// this (r x c) * other (c x k) -> (r x k).
  Matrix multiply(const Matrix& other) const;

  /// this (r x c) * v (c) -> (r).
  std::vector<double> multiply(std::span<const double> v) const;

  /// this^T * this, the (c x c) Gram matrix of columns.
  Matrix gram() const;

  /// this^T * v for v of length rows().
  std::vector<double> transpose_multiply(std::span<const double> v) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// In-place Cholesky factorization of an SPD matrix: A = L L^T, L
/// returned in the lower triangle.  Throws gmd::Error when A is not
/// positive definite (within `jitter` tolerance on the diagonal).
Matrix cholesky(Matrix a);

/// Solves A x = b for SPD A via Cholesky.  `a` is the original matrix.
std::vector<double> cholesky_solve(const Matrix& a, std::span<const double> b);

/// Solves L y = b (forward) then L^T x = y (backward) given a Cholesky
/// factor L (lower triangle).
std::vector<double> cholesky_solve_factored(const Matrix& l,
                                            std::span<const double> b);

}  // namespace gmd::ml
