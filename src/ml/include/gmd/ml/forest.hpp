#pragma once

/// \file forest.hpp
/// Random-forest regressor: bagged CART trees with per-split feature
/// subsampling (scikit-learn's RandomForestRegressor semantics, which
/// the paper uses).  Trees train in parallel on a thread pool.

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "gmd/ml/tree.hpp"

namespace gmd {
class Deadline;
}

namespace gmd::ml {

struct ForestParams {
  std::size_t num_trees = 100;
  unsigned max_depth = 16;
  std::size_t min_samples_leaf = 1;
  /// Features per split; 0 means all features — scikit-learn's
  /// RandomForestRegressor default (trees are decorrelated by the
  /// bootstrap alone), which is what the paper used.
  std::size_t max_features = 0;
  bool bootstrap = true;
  std::uint64_t seed = 1;
  std::size_t num_threads = 0;  ///< 0: hardware concurrency.
  /// Split enumeration mode for every tree (exact or <= max_bins
  /// histogram buckets); see TreeParams::SplitMode.
  TreeParams::SplitMode split_mode = TreeParams::SplitMode::kExact;
  std::size_t max_bins = 64;
  /// Trains every tree with the pre-workspace reference engine (golden
  /// path for equivalence tests).
  bool reference_mode = false;
  /// Cooperative cancellation: polled (thread-safely, via check_now())
  /// before each tree is fitted, so a training run honors wall budgets
  /// and Ctrl-C-style cancellation at tree granularity.  Non-owning;
  /// must outlive fit().
  Deadline* deadline = nullptr;
};

class RandomForest final : public Regressor {
 public:
  explicit RandomForest(const ForestParams& params = {});

  void fit(const Matrix& x, std::span<const double> y) override;

  /// Fits against a prebuilt workspace for `x` — the retrain path of
  /// iterative loops (active learning, the adaptive explorer), where
  /// the candidate pool's presorted feature orders are built once and
  /// every round derives its labeled subset in O(rows) per feature via
  /// for_sample().  `base` must be TrainingWorkspace::build(pool_x)
  /// (with histograms when split_mode is kHistogram), and `sample`
  /// selects the labeled pool rows.  In exact split mode the fitted
  /// trees are bit-identical to fit(pool_x.gather_rows(sample), y); in
  /// histogram mode the pool-level bins are reused (consistent across
  /// rounds, not re-quantized per subset).  Incompatible with
  /// reference_mode (which exists to bypass workspaces).
  void fit_with_workspace(const TrainingWorkspace& base, const Matrix& pool_x,
                          std::span<const std::size_t> sample,
                          std::span<const double> y);

  double predict_one(std::span<const double> x) const override;
  /// Batch inference: blocked over rows, trees walked check-free; each
  /// row's value is the same tree-order sum predict_one computes.
  std::vector<double> predict(const Matrix& x) const override;

  /// Batch means + across-tree spread: one plan pass per tree, like
  /// predict(), accumulating each row's per-tree sum and sum of squares.
  /// `means` is bit-identical to predict() (same tree-order sum);
  /// `variances` is the population variance of the per-tree leaf values
  /// — the ensemble-disagreement uncertainty the explorer's acquisition
  /// uses when the surrogate is a forest.
  void predict_with_spread(const Matrix& x, std::vector<double>& means,
                           std::vector<double>& variances) const;
  std::string name() const override { return "rf"; }
  std::unique_ptr<Regressor> clone() const override;
  bool is_fitted() const override { return !trees_.empty(); }

  std::size_t num_trees() const { return trees_.size(); }

  /// Mean impurity-based importance across trees, normalized to sum
  /// to 1 (scikit-learn's feature_importances_).
  std::vector<double> feature_importances(std::size_t num_features) const;

  /// Text (de)serialization; see serialize.hpp.
  void write(std::ostream& os) const;
  static RandomForest read(std::istream& is);

 private:
  ForestParams params_;
  std::vector<DecisionTree> trees_;
};

}  // namespace gmd::ml
