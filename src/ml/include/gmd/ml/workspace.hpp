#pragma once

/// \file workspace.hpp
/// Shared per-fit training representation for the tree ensembles: each
/// feature's rows presorted once (and optionally quantized into <= 256
/// histogram buckets), so tree growth partitions stable index ranges
/// instead of re-sorting every candidate feature at every node.  One
/// workspace is built per ensemble fit and shared across all trees of a
/// forest and all boosting stages of a GBT; bootstrap / subsample draws
/// derive their per-tree view with for_sample() instead of re-sorting.

#include <cstdint>
#include <span>
#include <vector>

#include "gmd/ml/matrix.hpp"

namespace gmd::ml {

class TrainingWorkspace {
 public:
  TrainingWorkspace() = default;

  /// Presorts every feature of `x` by (value, row index) — the same
  /// total order the per-node std::sort of (value, index) pairs used,
  /// so node-local stable splits of these arrays reproduce the exact
  /// split search bit for bit.
  static TrainingWorkspace build(const Matrix& x);

  /// Quantizes every feature into at most `max_bins` (2..256) buckets:
  /// one bucket per distinct value when the feature has few, quantile
  /// cuts otherwise.  Enables TreeParams::SplitMode::kHistogram.
  void build_histograms(std::size_t max_bins);

  /// Derives the workspace of `x.gather_rows(sample)` (duplicates
  /// allowed) from this one in O(rows) per feature instead of a fresh
  /// O(rows log rows) sort — how one presort is shared across all the
  /// bootstrap draws of a forest.  Histogram codes carry over.
  TrainingWorkspace for_sample(std::span<const std::size_t> sample) const;

  std::size_t rows() const { return rows_; }
  std::size_t features() const { return features_; }
  bool empty() const { return features_ == 0; }

  /// Row indices of feature `f` in ascending (value, row) order.
  std::span<const std::uint32_t> sorted_order(std::size_t f) const {
    return order_[f];
  }
  /// Feature values aligned with sorted_order(f).
  std::span<const double> sorted_values(std::size_t f) const {
    return values_[f];
  }

  bool has_histograms() const { return max_bins_ > 0; }
  std::size_t max_bins() const { return max_bins_; }
  std::size_t num_bins(std::size_t f) const { return bin_edges_[f].size() + 1; }
  std::uint8_t bin_of(std::size_t f, std::size_t row) const {
    return codes_[f][row];
  }
  /// Per-row bucket codes of feature `f` (size rows()).
  std::span<const std::uint8_t> bin_codes(std::size_t f) const {
    return codes_[f];
  }
  /// Split threshold between bucket `b` and `b + 1`: the midpoint of
  /// the adjacent distinct values, exactly what the exact search would
  /// emit for that cut.
  double bin_threshold(std::size_t f, std::size_t b) const {
    return bin_edges_[f][b];
  }

 private:
  std::size_t rows_ = 0;
  std::size_t features_ = 0;
  std::vector<std::vector<std::uint32_t>> order_;  ///< Per feature.
  std::vector<std::vector<double>> values_;        ///< Aligned with order_.
  std::size_t max_bins_ = 0;                       ///< 0: no histograms.
  std::vector<std::vector<std::uint8_t>> codes_;   ///< Per feature, by row.
  std::vector<std::vector<double>> bin_edges_;     ///< Per feature, bins-1.
};

}  // namespace gmd::ml
