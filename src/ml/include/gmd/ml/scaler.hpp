#pragma once

/// \file scaler.hpp
/// Feature/target scaling.  The paper min-max scales all performance
/// metrics onto [0, 1] before training so MSEs are comparable across
/// metrics; z-score scaling is provided as the common alternative.

#include <span>
#include <vector>

#include "gmd/ml/matrix.hpp"

namespace gmd::ml {

/// Per-column min-max scaler onto [0, 1].  Constant columns map to 0.
class MinMaxScaler {
 public:
  void fit(const Matrix& x);
  Matrix transform(const Matrix& x) const;
  Matrix fit_transform(const Matrix& x);

  /// Rebuilds a fitted scaler from previously-fitted bounds (the
  /// restore half of model persistence).  Both vectors must be the same
  /// non-zero length, finite, with min <= max per column.
  static MinMaxScaler from_bounds(std::vector<double> mins,
                                  std::vector<double> maxs);

  /// Scalar-series convenience (targets).
  void fit(std::span<const double> values);
  std::vector<double> transform(std::span<const double> values) const;
  std::vector<double> inverse_transform(std::span<const double> scaled) const;

  bool fitted() const { return !mins_.empty(); }
  const std::vector<double>& mins() const { return mins_; }
  const std::vector<double>& maxs() const { return maxs_; }

 private:
  std::vector<double> mins_;
  std::vector<double> maxs_;
};

/// Per-column z-score scaler.  Constant columns map to 0.
class StandardScaler {
 public:
  void fit(const Matrix& x);
  Matrix transform(const Matrix& x) const;
  Matrix fit_transform(const Matrix& x);

  bool fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

}  // namespace gmd::ml
