#pragma once

/// \file regressor.hpp
/// Common interface for all surrogate models, mirroring the fit/predict
/// shape of the scikit-learn regressors the paper uses.

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gmd/ml/matrix.hpp"

namespace gmd {
class Deadline;
}

namespace gmd::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Trains on an n x p feature matrix and n targets.  May be called
  /// again to retrain from scratch.
  virtual void fit(const Matrix& x, std::span<const double> y) = 0;

  /// Predicts one sample (length-p feature vector).
  virtual double predict_one(std::span<const double> x) const = 0;

  /// Predicts every row of `x`.  The base implementation loops
  /// predict_one; models with a cheaper batch path (tree ensembles,
  /// linear, SVR, GP) override it to avoid the per-row virtual
  /// dispatch.  Overrides must return exactly the per-row values.
  virtual std::vector<double> predict(const Matrix& x) const;

  virtual std::string name() const = 0;

  /// Deep copy with hyperparameters (and fitted state) preserved.
  virtual std::unique_ptr<Regressor> clone() const = 0;

  virtual bool is_fitted() const = 0;
};

/// Factory keyed by the paper's model names: "linear", "svr" (SVM),
/// "rf" (random forest), "gb" (gradient boosting), "gp" (Gaussian
/// process, used by the active-learning extension).  Default
/// hyperparameters are tuned for the DSE datasets (hundreds of rows,
/// <= ~10 features, min-max scaled).
std::unique_ptr<Regressor> make_regressor(const std::string& name,
                                          std::uint64_t seed = 1);

/// Like make_regressor, but wires `deadline` into the model families
/// with long training loops (rf polls per tree, gb per boosting stage)
/// so fit() honors wall budgets and cancellation.  `deadline` is
/// non-owning and may be null; families without a training loop worth
/// interrupting ignore it.
std::unique_ptr<Regressor> make_regressor(const std::string& name,
                                          std::uint64_t seed,
                                          Deadline* deadline);

/// Like the deadline overload, and additionally caps the worker threads
/// the ensemble families may use while fitting (0: hardware
/// concurrency, 1: serial).  Fits are bit-identical for any thread
/// count.
std::unique_ptr<Regressor> make_regressor(const std::string& name,
                                          std::uint64_t seed,
                                          Deadline* deadline,
                                          std::size_t num_threads);

/// The model families Table I compares, in its column order.
const std::vector<std::string>& table1_model_names();

}  // namespace gmd::ml
