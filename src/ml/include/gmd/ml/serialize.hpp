#pragma once

/// \file serialize.hpp
/// Generic model persistence: save any fitted regressor to a text
/// stream and load it back without knowing its concrete type.  This is
/// what makes the "train once, reuse across DSE sessions" workflow
/// practical: a surrogate trained on one sweep can be shipped and
/// queried later without retraining.
///
/// Supported families: linear, svr, tree, rf, gb.  (Gaussian processes
/// keep their full training set and are cheap to refit, so they are
/// intentionally not serialized.)

#include <iosfwd>
#include <memory>
#include <string>

#include "gmd/ml/regressor.hpp"
#include "gmd/ml/scaler.hpp"

namespace gmd::ml {

/// Writes `model` (which must be fitted) with a format header.
/// Throws gmd::Error for unsupported families.
void save_model(std::ostream& os, const Regressor& model);
void save_model_file(const std::string& path, const Regressor& model);

/// Reads any supported model back; the concrete type is recovered from
/// the header.  Throws gmd::Error on malformed input.
std::unique_ptr<Regressor> load_model(std::istream& is);
std::unique_ptr<Regressor> load_model_file(const std::string& path);

/// Persists a fitted min-max scaler (17-digit bounds, exact round-trip)
/// so a deployed surrogate's feature/target scaling ships with the
/// model instead of needing the training data to refit.
void save_scaler(std::ostream& os, const MinMaxScaler& scaler);
MinMaxScaler load_scaler(std::istream& is);

}  // namespace gmd::ml
