#pragma once

/// \file tree.hpp
/// CART regression tree: binary splits minimizing squared error.
/// Used directly and as the weak/strong learner inside the random
/// forest and gradient-boosting ensembles.
///
/// Split search runs over a presorted TrainingWorkspace: every feature
/// is sorted once per fit and nodes partition stable index ranges, so
/// finding the best cut is O(rows) per node (exact mode) or O(bins)
/// (opt-in histogram mode) instead of an O(rows log rows) re-sort per
/// candidate feature.  The pre-workspace engine survives behind
/// TreeParams::reference_mode for golden-equivalence testing.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "gmd/common/rng.hpp"
#include "gmd/ml/regressor.hpp"
#include "gmd/ml/workspace.hpp"

namespace gmd {
class ThreadPool;
}

namespace gmd::ml {

namespace detail {
class TreeBuilder;
}

struct TreeParams {
  unsigned max_depth = 16;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Number of features considered per split; 0 means all (plain CART).
  /// Random forests pass ~p/3.
  std::size_t max_features = 0;
  std::uint64_t seed = 1;  ///< Only used when max_features > 0.

  /// How candidate cuts are enumerated over the workspace.
  enum class SplitMode {
    kExact,      ///< Every value boundary; bit-identical to the
                 ///< reference engine.
    kHistogram,  ///< <= max_bins quantile buckets per feature: O(bins)
                 ///< per node, approximate thresholds.  Opt-in.
  };
  SplitMode split_mode = SplitMode::kExact;
  /// Histogram-mode bucket budget per feature (2..256).
  std::size_t max_bins = 64;

  /// Runs the original per-node re-sort engine instead of the
  /// workspace engine (the seed implementation, kept as the golden
  /// reference like MemSimOptions::reference_mode).
  bool reference_mode = false;

  /// Optional worker pool for per-feature split search on large nodes.
  /// Results are reduced in feature order, so the fit is bit-identical
  /// with any thread count.  Non-owning; must outlive fit().
  ThreadPool* pool = nullptr;
  /// Nodes smaller than this search serially even when a pool is set
  /// (task overhead dominates below it).
  std::size_t parallel_min_rows = 4096;
};

class DecisionTree final : public Regressor {
 public:
  explicit DecisionTree(const TreeParams& params = {});

  void fit(const Matrix& x, std::span<const double> y) override;

  /// Weighted fit used by boosting (weights must be positive).
  void fit_weighted(const Matrix& x, std::span<const double> y,
                    std::span<const double> weights);

  /// Fits against a prebuilt workspace for `x` (the ensemble path: the
  /// workspace is built once and shared across trees/stages).  The
  /// workspace must have histograms when split_mode is kHistogram.
  void fit_with_workspace(const TrainingWorkspace& workspace, const Matrix& x,
                          std::span<const double> y,
                          std::span<const double> weights = {});

  double predict_one(std::span<const double> x) const override;
  std::vector<double> predict(const Matrix& x) const override;
  std::string name() const override { return "tree"; }
  std::unique_ptr<Regressor> clone() const override;
  bool is_fitted() const override { return !nodes_.empty(); }

  std::size_t node_count() const { return nodes_.size(); }
  unsigned depth() const { return depth_; }

  /// Impurity-based importance: total SSE reduction attributed to each
  /// feature, normalized to sum to 1 (all-zero for a single leaf).
  /// `num_features` must cover every feature index used in the tree.
  std::vector<double> feature_importances(std::size_t num_features) const;

  /// Text (de)serialization; see serialize.hpp.
  void write(std::ostream& os) const;
  static DecisionTree read(std::istream& is);

 private:
  friend class detail::TreeBuilder;
  friend class RandomForest;
  friend class GradientBoosting;

  struct Node {
    // Leaf when feature == kLeaf.
    static constexpr std::uint32_t kLeaf = UINT32_MAX;
    std::uint32_t feature = kLeaf;
    double threshold = 0.0;  ///< Go left when x[feature] <= threshold.
    double value = 0.0;      ///< Leaf prediction.
    double gain = 0.0;       ///< SSE reduction of this split (0 at leaves).
    std::uint32_t left = 0;
    std::uint32_t right = 0;
  };

  /// The reference (seed) engine: per-node (value, index) sort.
  std::uint32_t build_reference(const Matrix& x, std::span<const double> y,
                                std::span<const double> w,
                                std::vector<std::size_t>& indices,
                                std::size_t begin, std::size_t end,
                                unsigned depth, gmd::Rng& rng);

  /// Walks one already-validated feature row to its leaf value.
  double traverse(const double* features) const;

  /// Compact branch-free traversal layout for batch inference: leaves
  /// self-loop (threshold +inf, both children = self) so every row can
  /// take exactly `steps` unconditional node hops — no per-level leaf
  /// test, so the interleaved lanes' loads stay in flight.
  struct PlanNode {
    double threshold;
    std::uint32_t feature;
    std::uint32_t left;
    std::uint32_t right;
  };
  struct InferencePlan {
    std::vector<PlanNode> nodes;
    std::vector<double> values;  ///< Leaf value per node id.
    unsigned steps = 0;
  };
  InferencePlan make_plan() const;

  /// Walks rows [begin, end) to their leaf values (written to
  /// out[0 .. end-begin)).  Interleaves several rows' traversals so
  /// their node loads overlap — tree walking is latency-bound, and one
  /// row at a time leaves the memory pipeline idle between levels.
  static void traverse_block(const InferencePlan& plan, const Matrix& x,
                             std::size_t begin, std::size_t end, double* out);

  /// Adds scale * leaf(plan, row) for every plan, in plan order, to
  /// inout[0 .. end-begin).  Row-group-major with all plans inner: the
  /// right loop order for many small trees (boosting stages), whose
  /// plans all stay cache-resident while each row group's accumulators
  /// sit in registers.
  static void accumulate_block(std::span<const InferencePlan> plans,
                               double scale, const Matrix& x,
                               std::size_t begin, std::size_t end,
                               double* inout);

  TreeParams params_;
  std::vector<Node> nodes_;
  unsigned depth_ = 0;
};

}  // namespace gmd::ml
