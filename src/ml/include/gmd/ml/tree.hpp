#pragma once

/// \file tree.hpp
/// CART regression tree: binary splits minimizing squared error.
/// Used directly and as the weak/strong learner inside the random
/// forest and gradient-boosting ensembles.

#include <cstdint>
#include <iosfwd>
#include <span>
#include <vector>

#include "gmd/common/rng.hpp"
#include "gmd/ml/regressor.hpp"

namespace gmd::ml {

struct TreeParams {
  unsigned max_depth = 16;
  std::size_t min_samples_split = 2;
  std::size_t min_samples_leaf = 1;
  /// Number of features considered per split; 0 means all (plain CART).
  /// Random forests pass ~p/3.
  std::size_t max_features = 0;
  std::uint64_t seed = 1;  ///< Only used when max_features > 0.
};

class DecisionTree final : public Regressor {
 public:
  explicit DecisionTree(const TreeParams& params = {});

  void fit(const Matrix& x, std::span<const double> y) override;

  /// Weighted fit used by boosting (weights must be positive).
  void fit_weighted(const Matrix& x, std::span<const double> y,
                    std::span<const double> weights);

  double predict_one(std::span<const double> x) const override;
  std::string name() const override { return "tree"; }
  std::unique_ptr<Regressor> clone() const override;
  bool is_fitted() const override { return !nodes_.empty(); }

  std::size_t node_count() const { return nodes_.size(); }
  unsigned depth() const { return depth_; }

  /// Impurity-based importance: total SSE reduction attributed to each
  /// feature, normalized to sum to 1 (all-zero for a single leaf).
  /// `num_features` must cover every feature index used in the tree.
  std::vector<double> feature_importances(std::size_t num_features) const;

  /// Text (de)serialization; see serialize.hpp.
  void write(std::ostream& os) const;
  static DecisionTree read(std::istream& is);

 private:
  struct Node {
    // Leaf when feature == kLeaf.
    static constexpr std::uint32_t kLeaf = UINT32_MAX;
    std::uint32_t feature = kLeaf;
    double threshold = 0.0;  ///< Go left when x[feature] <= threshold.
    double value = 0.0;      ///< Leaf prediction.
    double gain = 0.0;       ///< SSE reduction of this split (0 at leaves).
    std::uint32_t left = 0;
    std::uint32_t right = 0;
  };

  std::uint32_t build(const Matrix& x, std::span<const double> y,
                      std::span<const double> w,
                      std::vector<std::size_t>& indices, std::size_t begin,
                      std::size_t end, unsigned depth, gmd::Rng& rng);

  TreeParams params_;
  std::vector<Node> nodes_;
  unsigned depth_ = 0;
};

}  // namespace gmd::ml
