#pragma once

/// \file dataset.hpp
/// Supervised-learning dataset (features + one target) with the
/// splitting utilities the paper's workflow needs (80/20 holdout,
/// k-fold cross-validation).

#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "gmd/ml/matrix.hpp"

namespace gmd::ml {

struct Dataset {
  Matrix X;                               ///< n x p feature matrix.
  std::vector<double> y;                  ///< n targets.
  std::vector<std::string> feature_names; ///< p names (may be empty).
  std::string target_name;

  std::size_t size() const { return y.size(); }
  std::size_t num_features() const { return X.cols(); }

  /// Rows of this dataset selected by index.
  Dataset subset(std::span<const std::size_t> indices) const;

  /// Throws gmd::Error when X/y shapes disagree.
  void validate() const;
};

/// Deterministic shuffled holdout split.  `test_fraction` in (0, 1);
/// both sides are guaranteed non-empty.
std::pair<Dataset, Dataset> train_test_split(const Dataset& data,
                                             double test_fraction,
                                             std::uint64_t seed);

/// K-fold index sets: k (train_indices, test_indices) pairs covering
/// all rows; test folds are disjoint and exhaustive.
std::vector<std::pair<std::vector<std::size_t>, std::vector<std::size_t>>>
kfold_indices(std::size_t n, std::size_t k, std::uint64_t seed);

}  // namespace gmd::ml
