#pragma once

/// \file linear.hpp
/// Ordinary-least-squares / ridge linear regression — the paper's
/// baseline model (Table I's "Linear" column).

#include <iosfwd>
#include <span>
#include <vector>

#include "gmd/ml/regressor.hpp"

namespace gmd::ml {

class LinearRegression final : public Regressor {
 public:
  /// \param ridge_lambda  L2 regularization strength; 0 is plain OLS
  /// (with a tiny numerical jitter when the normal equations are
  /// singular, e.g. duplicated columns).
  explicit LinearRegression(double ridge_lambda = 0.0);

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;
  std::vector<double> predict(const Matrix& x) const override;
  std::string name() const override { return "linear"; }
  std::unique_ptr<Regressor> clone() const override;
  bool is_fitted() const override { return fitted_; }

  /// Learned weights (length p) and intercept.
  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

  /// Text (de)serialization; see serialize.hpp for the generic entry
  /// points.  Reading a malformed stream throws gmd::Error.
  void write(std::ostream& os) const;
  static LinearRegression read(std::istream& is);

 private:
  double lambda_;
  std::vector<double> coef_;
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace gmd::ml
