#pragma once

/// \file svr.hpp
/// Epsilon-insensitive Support Vector Regression — the paper's best
/// model for bandwidth, power, and latency (Table I's "SVM" column).
///
/// Solver: dual coordinate descent on the epsilon-SVR objective with
/// the bias folded into the kernel (K + 1), which removes the equality
/// constraint and makes each dual coefficient's subproblem a scalar
/// soft-threshold — exact, simple, and fast at this dataset scale
/// (hundreds of samples).

#include <iosfwd>
#include <span>
#include <vector>

#include "gmd/ml/kernel.hpp"
#include "gmd/ml/matrix.hpp"
#include "gmd/ml/regressor.hpp"

namespace gmd::ml {

struct SvrParams {
  KernelParams kernel;       ///< Default: RBF with gamma 1.
  double c = 100.0;          ///< Box constraint (regularization inverse).
  double epsilon = 0.005;    ///< Insensitive-tube half-width (targets
                             ///< are min-max scaled to [0,1]).
  unsigned max_passes = 300; ///< Full coordinate sweeps.
  /// Max coefficient change per sweep to declare convergence.  The fit
  /// quality plateaus orders of magnitude before the coefficients fully
  /// settle on ill-conditioned kernels, so this is deliberately loose.
  double tolerance = 1e-4;
};

class Svr final : public Regressor {
 public:
  explicit Svr(const SvrParams& params = {});

  void fit(const Matrix& x, std::span<const double> y) override;
  double predict_one(std::span<const double> x) const override;
  std::vector<double> predict(const Matrix& x) const override;
  std::string name() const override { return "svr"; }
  std::unique_ptr<Regressor> clone() const override;
  bool is_fitted() const override { return fitted_; }

  /// Dual coefficients beta_i = alpha_i - alpha_i^*; nonzero entries
  /// are the support vectors.
  const std::vector<double>& dual_coefficients() const { return beta_; }
  std::size_t num_support_vectors() const;
  unsigned passes_used() const { return passes_used_; }

  /// Text (de)serialization; see serialize.hpp.  Only the support
  /// vectors with nonzero dual coefficients are stored.
  void write(std::ostream& os) const;
  static Svr read(std::istream& is);

 private:
  SvrParams params_;
  Matrix support_;            ///< Training inputs (all rows kept).
  std::vector<double> beta_;
  bool fitted_ = false;
  unsigned passes_used_ = 0;
};

}  // namespace gmd::ml
