#pragma once

/// \file bfs.hpp
/// Breadth-First Search kernels in the Graph500 style: each search
/// produces a parent (predecessor) array and per-vertex depths, and can
/// be validated against the Graph500 correctness rules.

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "gmd/graph/csr.hpp"

namespace gmd::graph {

/// Sentinel parent/depth for vertices the search did not reach.
inline constexpr VertexId kNoParent = std::numeric_limits<VertexId>::max();
inline constexpr std::uint32_t kUnreachedDepth =
    std::numeric_limits<std::uint32_t>::max();

/// Result of one BFS: the Graph500 "BFS tree".
struct BfsResult {
  VertexId source = 0;
  std::vector<VertexId> parent;      // parent[source] == source
  std::vector<std::uint32_t> depth;  // depth[source] == 0
  std::size_t vertices_visited = 0;
  std::size_t edges_traversed = 0;   // directed edge examinations

  bool reached(VertexId v) const { return parent[v] != kNoParent; }
};

/// Classic queue-based top-down BFS.
BfsResult bfs_top_down(const CsrGraph& graph, VertexId source);

/// Bottom-up BFS: each unvisited vertex scans its (incoming == outgoing,
/// graph must be symmetric) neighbors for a frontier member.
BfsResult bfs_bottom_up(const CsrGraph& graph, VertexId source);

/// Direction-optimizing BFS (Beamer): switches top-down <-> bottom-up
/// based on frontier edge count, as the Graph500 reference code does.
/// `alpha` and `beta` are the standard switching thresholds.
BfsResult bfs_direction_optimizing(const CsrGraph& graph, VertexId source,
                                   double alpha = 15.0, double beta = 18.0);

/// Graph500 result validation:
///  1. the BFS tree contains no cycles and parent edges exist in the graph,
///  2. tree edges connect vertices whose depths differ by exactly one,
///  3. every edge of the graph connects vertices whose depths differ by
///     at most one (or one endpoint is unreached),
///  4. every reached vertex is in the tree and vice versa.
/// Returns true when all checks pass; otherwise false with a reason.
bool validate_bfs(const CsrGraph& graph, const BfsResult& result,
                  std::string* error_reason = nullptr);

}  // namespace gmd::graph
