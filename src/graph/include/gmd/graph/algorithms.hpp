#pragma once

/// \file algorithms.hpp
/// Additional graph kernels beyond BFS.  The paper's future-work section
/// asks "how does the type of graph algorithm influence the choice of
/// memory parameters?" — these kernels power that ablation
/// (bench_ablation_algorithms) and the extra workload drivers in cpusim.

#include <cstdint>
#include <vector>

#include "gmd/graph/csr.hpp"

namespace gmd::graph {

/// Power-iteration PageRank.
struct PageRankParams {
  double damping = 0.85;
  double tolerance = 1e-6;   // L1 change per iteration to declare converged
  unsigned max_iterations = 100;
};
struct PageRankResult {
  std::vector<double> scores;   // sums to ~1
  unsigned iterations = 0;
  bool converged = false;
};
PageRankResult pagerank(const CsrGraph& graph, const PageRankParams& params = {});

/// Connected components via label propagation (Shiloach–Vishkin style
/// hooking + pointer jumping).  The graph is treated as undirected; pass
/// a symmetric CSR for meaningful results.
struct ComponentsResult {
  std::vector<VertexId> component;  // representative vertex per component
  std::size_t num_components = 0;
};
ComponentsResult connected_components(const CsrGraph& graph);

/// Single-source shortest paths (non-negative weights, binary-heap
/// Dijkstra).  Unweighted graphs use weight 1 per edge.
struct SsspResult {
  VertexId source = 0;
  std::vector<double> distance;   // +inf when unreached
  std::vector<VertexId> parent;   // kNoParent when unreached
};
SsspResult sssp_dijkstra(const CsrGraph& graph, VertexId source);

/// Per-vertex triangle participation counts (node-iterator algorithm);
/// a heavier, more irregular reference workload.  Requires a symmetric
/// graph with sorted adjacency lists (CsrGraph guarantees sortedness).
std::uint64_t count_triangles(const CsrGraph& graph);

}  // namespace gmd::graph
