#pragma once

/// \file graph500.hpp
/// Graph500-style benchmark driver: generate a Kronecker graph, run BFS
/// from many sampled roots, validate every search, and report the TEPS
/// (Traversed Edges Per Second) statistics the benchmark specifies —
/// the harness the paper *wanted* to run before falling back to its own
/// BFS kernel (§III-D).

#include <cstdint>
#include <string>
#include <vector>

#include "gmd/graph/bfs.hpp"
#include "gmd/graph/csr.hpp"

namespace gmd::graph {

struct Graph500Params {
  unsigned scale = 10;         ///< 2^scale vertices.
  unsigned edge_factor = 16;
  unsigned num_roots = 64;     ///< Benchmark specifies 64 searches.
  std::uint64_t seed = 1;
  bool validate = true;        ///< Run the result validator per search.
};

struct Graph500Result {
  unsigned scale = 0;
  std::size_t num_vertices = 0;
  std::size_t num_edges = 0;       ///< Directed edges in the CSR.
  unsigned searches_run = 0;
  unsigned validation_failures = 0;
  double construction_seconds = 0.0;

  std::vector<double> teps;        ///< Per-search TEPS.
  double min_teps = 0.0;
  double max_teps = 0.0;
  double mean_teps = 0.0;
  double harmonic_mean_teps = 0.0; ///< The benchmark's headline number.
  double median_teps = 0.0;

  std::string summary() const;
};

/// Runs the benchmark end to end on the host CPU (wall-clock TEPS).
/// Roots are sampled uniformly from vertices with degree >= 1, without
/// replacement, as the specification requires.
Graph500Result run_graph500(const Graph500Params& params);

/// Samples `count` distinct roots with degree >= 1.  Exposed for the
/// benchmark driver and for workload generation.  Throws when the graph
/// has fewer connected vertices than requested.
std::vector<VertexId> sample_bfs_roots(const CsrGraph& graph,
                                       unsigned count, std::uint64_t seed);

}  // namespace gmd::graph
