#pragma once

/// \file io.hpp
/// Graph file I/O.
///
/// * Plain edge-list text — GTGraph's output format: a header line
///   `p <num_vertices> <num_edges>` (GTGraph writes DIMACS-style
///   headers) followed by `a <src> <dst> <weight>` arc lines; bare
///   `<src> <dst> [weight]` lines are accepted too.  `c`/`#`/`%` lines
///   are comments.  Vertices are 1-based in DIMACS files and converted
///   to 0-based in memory.
/// * Binary — a packed format for fast reload of generated graphs.

#include <iosfwd>
#include <string>

#include "gmd/graph/edge_list.hpp"

namespace gmd::graph {

/// Writes DIMACS-style text (`p`/`a` lines, 1-based vertices).
void write_edge_list(std::ostream& os, const EdgeList& list);
void save_edge_list(const std::string& path, const EdgeList& list);

/// Reads DIMACS-style or bare edge-list text.  Throws gmd::Error on
/// malformed lines or out-of-range vertices.
EdgeList read_edge_list(std::istream& is);
EdgeList load_edge_list(const std::string& path);

/// Packed binary round-trip.
void write_edge_list_binary(std::ostream& os, const EdgeList& list);
EdgeList read_edge_list_binary(std::istream& is);

}  // namespace gmd::graph
