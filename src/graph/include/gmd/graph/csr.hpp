#pragma once

/// \file csr.hpp
/// Compressed Sparse Row graph — the in-memory layout all kernels run
/// over, and the layout whose address stream the CPU simulator traces.

#include <cstdint>
#include <span>
#include <vector>

#include "gmd/graph/edge_list.hpp"

namespace gmd::graph {

/// Immutable CSR adjacency structure.
///
/// `offsets()[v] .. offsets()[v+1]` indexes into `neighbors()` (and
/// `weights()` when the graph is weighted).  Neighbor lists are sorted
/// by destination for deterministic traversal order.
class CsrGraph {
 public:
  CsrGraph() = default;

  /// Builds from an edge list.  The input is interpreted as directed;
  /// symmetrize the list first for an undirected graph (Graph500 does).
  /// \param keep_weights  When false, the weight array is left empty.
  static CsrGraph from_edge_list(const EdgeList& list,
                                 bool keep_weights = false);

  VertexId num_vertices() const {
    return offsets_.empty() ? 0 : static_cast<VertexId>(offsets_.size() - 1);
  }
  std::size_t num_edges() const { return neighbors_.size(); }
  bool is_weighted() const { return !weights_.empty(); }

  std::span<const std::uint64_t> offsets() const { return offsets_; }
  std::span<const VertexId> neighbors() const { return neighbors_; }
  std::span<const double> weights() const { return weights_; }

  std::uint64_t degree(VertexId v) const {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Neighbor list of `v` as a span.
  std::span<const VertexId> neighbors_of(VertexId v) const {
    return std::span<const VertexId>(neighbors_)
        .subspan(offsets_[v], degree(v));
  }

  /// Edge weights of `v` (parallel to neighbors_of); empty when unweighted.
  std::span<const double> weights_of(VertexId v) const {
    if (weights_.empty()) return {};
    return std::span<const double>(weights_).subspan(offsets_[v], degree(v));
  }

 private:
  std::vector<std::uint64_t> offsets_;   // size num_vertices + 1
  std::vector<VertexId> neighbors_;      // size num_edges
  std::vector<double> weights_;          // empty or size num_edges
};

}  // namespace gmd::graph
