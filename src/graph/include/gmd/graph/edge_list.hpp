#pragma once

/// \file edge_list.hpp
/// Edge-list graph representation produced by the synthetic generators
/// and consumed by the CSR builder.

#include <cstdint>
#include <vector>

namespace gmd::graph {

/// Vertex identifier.  32 bits covers every graph scale this study uses
/// (the paper's largest graph has 1,024 vertices) with headroom to the
/// multi-million-vertex ablation range.
using VertexId = std::uint32_t;

/// A directed edge with an optional weight (used by SSSP; BFS ignores it).
struct Edge {
  VertexId src = 0;
  VertexId dst = 0;
  double weight = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// A bag of edges plus the vertex-count bound.
struct EdgeList {
  VertexId num_vertices = 0;
  std::vector<Edge> edges;

  std::size_t num_edges() const { return edges.size(); }
};

/// Removes self-loops and (src,dst) duplicates in place (weights of
/// duplicates: first occurrence wins).  Returns the number removed.
std::size_t remove_self_loops_and_duplicates(EdgeList& list);

/// Appends the reverse of every edge, making the list symmetric.
/// Self-loops are not duplicated.
void symmetrize(EdgeList& list);

}  // namespace gmd::graph
