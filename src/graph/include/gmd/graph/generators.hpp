#pragma once

/// \file generators.hpp
/// Synthetic graph generators.
///
/// The paper generates its workload graph with GTGraph's "random" model
/// (1,024 vertices, edge factor 16).  We implement that model plus the
/// R-MAT / Graph500 Kronecker model GTGraph also ships, and a classic
/// Erdos–Renyi G(n, p) generator for tests.

#include <cstdint>

#include "gmd/graph/edge_list.hpp"

namespace gmd::graph {

/// GTGraph "random" model: `edge_factor * n` directed edges whose
/// endpoints are drawn uniformly at random (self-loops excluded).
/// Weights are uniform in [1, max_weight].
struct UniformRandomParams {
  VertexId num_vertices = 1024;
  unsigned edge_factor = 16;
  double max_weight = 1.0;
  std::uint64_t seed = 1;
};
EdgeList generate_uniform_random(const UniformRandomParams& params);

/// R-MAT recursive-matrix model (GTGraph's "rmat" generator).
/// Probabilities (a, b, c, d) must be positive and sum to ~1.
struct RmatParams {
  unsigned scale = 10;           // num_vertices = 2^scale
  unsigned edge_factor = 16;
  double a = 0.45, b = 0.15, c = 0.15, d = 0.25;
  double max_weight = 1.0;
  std::uint64_t seed = 1;
};
EdgeList generate_rmat(const RmatParams& params);

/// Graph500 Kronecker generator: R-MAT with the benchmark's fixed
/// (0.57, 0.19, 0.19, 0.05) initiator, symmetrized, with vertex-label
/// permutation as the spec requires.
struct KroneckerParams {
  unsigned scale = 10;
  unsigned edge_factor = 16;
  std::uint64_t seed = 1;
};
EdgeList generate_graph500_kronecker(const KroneckerParams& params);

/// Erdos–Renyi G(n, p): every ordered pair (u, v), u != v, is an edge
/// independently with probability p.  Intended for small test graphs.
struct ErdosRenyiParams {
  VertexId num_vertices = 64;
  double edge_probability = 0.1;
  std::uint64_t seed = 1;
};
EdgeList generate_erdos_renyi(const ErdosRenyiParams& params);

}  // namespace gmd::graph
