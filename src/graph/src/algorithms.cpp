#include "gmd/graph/algorithms.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <queue>

#include "gmd/common/error.hpp"
#include "gmd/graph/bfs.hpp"

namespace gmd::graph {

PageRankResult pagerank(const CsrGraph& graph, const PageRankParams& params) {
  GMD_REQUIRE(params.damping > 0.0 && params.damping < 1.0,
              "damping must be in (0, 1)");
  const VertexId n = graph.num_vertices();
  PageRankResult result;
  if (n == 0) return result;

  const double base = (1.0 - params.damping) / static_cast<double>(n);
  std::vector<double> rank(n, 1.0 / static_cast<double>(n));
  std::vector<double> next(n, 0.0);

  for (unsigned iter = 0; iter < params.max_iterations; ++iter) {
    std::fill(next.begin(), next.end(), 0.0);
    double dangling = 0.0;
    for (VertexId u = 0; u < n; ++u) {
      const auto deg = graph.degree(u);
      if (deg == 0) {
        dangling += rank[u];
        continue;
      }
      const double share = rank[u] / static_cast<double>(deg);
      for (const VertexId v : graph.neighbors_of(u)) next[v] += share;
    }
    const double dangling_share = dangling / static_cast<double>(n);
    double delta = 0.0;
    for (VertexId v = 0; v < n; ++v) {
      next[v] = base + params.damping * (next[v] + dangling_share);
      delta += std::abs(next[v] - rank[v]);
    }
    rank.swap(next);
    result.iterations = iter + 1;
    if (delta < params.tolerance) {
      result.converged = true;
      break;
    }
  }
  result.scores = std::move(rank);
  return result;
}

ComponentsResult connected_components(const CsrGraph& graph) {
  const VertexId n = graph.num_vertices();
  ComponentsResult result;
  result.component.resize(n);
  for (VertexId v = 0; v < n; ++v) result.component[v] = v;
  if (n == 0) return result;

  auto& comp = result.component;
  bool changed = true;
  while (changed) {
    changed = false;
    // Hooking: adopt the smaller label across each edge.
    for (VertexId u = 0; u < n; ++u) {
      for (const VertexId v : graph.neighbors_of(u)) {
        const VertexId cu = comp[u];
        const VertexId cv = comp[v];
        if (cu < cv) {
          comp[comp[v]] = cu;
          changed = true;
        } else if (cv < cu) {
          comp[comp[u]] = cv;
          changed = true;
        }
      }
    }
    // Pointer jumping: compress label chains.
    for (VertexId v = 0; v < n; ++v) {
      while (comp[v] != comp[comp[v]]) comp[v] = comp[comp[v]];
    }
  }

  std::size_t count = 0;
  for (VertexId v = 0; v < n; ++v)
    if (comp[v] == v) ++count;
  result.num_components = count;
  return result;
}

SsspResult sssp_dijkstra(const CsrGraph& graph, VertexId source) {
  GMD_REQUIRE(source < graph.num_vertices(),
              "SSSP source " << source << " out of range");
  const VertexId n = graph.num_vertices();
  SsspResult result;
  result.source = source;
  result.distance.assign(n, std::numeric_limits<double>::infinity());
  result.parent.assign(n, kNoParent);
  result.distance[source] = 0.0;
  result.parent[source] = source;

  using Item = std::pair<double, VertexId>;  // (distance, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [dist, u] = heap.top();
    heap.pop();
    if (dist > result.distance[u]) continue;  // stale entry
    const auto neighbors = graph.neighbors_of(u);
    const auto weights = graph.weights_of(u);
    for (std::size_t i = 0; i < neighbors.size(); ++i) {
      const double w = weights.empty() ? 1.0 : weights[i];
      GMD_REQUIRE(w >= 0.0, "Dijkstra requires non-negative weights");
      const VertexId v = neighbors[i];
      const double candidate = dist + w;
      if (candidate < result.distance[v]) {
        result.distance[v] = candidate;
        result.parent[v] = u;
        heap.push({candidate, v});
      }
    }
  }
  return result;
}

std::uint64_t count_triangles(const CsrGraph& graph) {
  const VertexId n = graph.num_vertices();
  std::uint64_t triangles = 0;
  for (VertexId u = 0; u < n; ++u) {
    const auto nu = graph.neighbors_of(u);
    for (const VertexId v : nu) {
      if (v <= u) continue;  // order u < v < w to count each once
      const auto nv = graph.neighbors_of(v);
      // Sorted-list intersection of neighbors above v.
      std::size_t i = 0, j = 0;
      while (i < nu.size() && j < nv.size()) {
        const VertexId a = nu[i];
        const VertexId b = nv[j];
        if (a <= v) {
          ++i;
          continue;
        }
        if (b <= v) {
          ++j;
          continue;
        }
        if (a == b) {
          ++triangles;
          ++i;
          ++j;
        } else if (a < b) {
          ++i;
        } else {
          ++j;
        }
      }
    }
  }
  return triangles;
}

}  // namespace gmd::graph
