#include "gmd/graph/csr.hpp"

#include <algorithm>
#include <numeric>

#include "gmd/common/error.hpp"

namespace gmd::graph {

CsrGraph CsrGraph::from_edge_list(const EdgeList& list, bool keep_weights) {
  for (const Edge& e : list.edges) {
    GMD_REQUIRE(e.src < list.num_vertices && e.dst < list.num_vertices,
                "edge (" << e.src << "," << e.dst
                         << ") exceeds num_vertices=" << list.num_vertices);
  }

  CsrGraph g;
  const std::size_t n = list.num_vertices;
  g.offsets_.assign(n + 1, 0);
  for (const Edge& e : list.edges) ++g.offsets_[e.src + 1];
  std::partial_sum(g.offsets_.begin(), g.offsets_.end(), g.offsets_.begin());

  g.neighbors_.resize(list.edges.size());
  if (keep_weights) g.weights_.resize(list.edges.size());
  std::vector<std::uint64_t> cursor(g.offsets_.begin(), g.offsets_.end() - 1);
  for (const Edge& e : list.edges) {
    const std::uint64_t slot = cursor[e.src]++;
    g.neighbors_[slot] = e.dst;
    if (keep_weights) g.weights_[slot] = e.weight;
  }

  // Sort each adjacency list by destination for deterministic kernels.
  for (std::size_t v = 0; v < n; ++v) {
    const auto lo = g.offsets_[v];
    const auto hi = g.offsets_[v + 1];
    if (keep_weights) {
      std::vector<std::pair<VertexId, double>> adj;
      adj.reserve(hi - lo);
      for (auto i = lo; i < hi; ++i)
        adj.emplace_back(g.neighbors_[i], g.weights_[i]);
      std::sort(adj.begin(), adj.end());
      for (auto i = lo; i < hi; ++i) {
        g.neighbors_[i] = adj[i - lo].first;
        g.weights_[i] = adj[i - lo].second;
      }
    } else {
      std::sort(g.neighbors_.begin() + static_cast<std::ptrdiff_t>(lo),
                g.neighbors_.begin() + static_cast<std::ptrdiff_t>(hi));
    }
  }
  return g;
}

}  // namespace gmd::graph
