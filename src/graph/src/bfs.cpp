#include "gmd/graph/bfs.hpp"

#include <algorithm>
#include <sstream>

#include "gmd/common/error.hpp"

namespace gmd::graph {

namespace {

BfsResult make_result(const CsrGraph& graph, VertexId source) {
  GMD_REQUIRE(source < graph.num_vertices(),
              "BFS source " << source << " out of range");
  BfsResult r;
  r.source = source;
  r.parent.assign(graph.num_vertices(), kNoParent);
  r.depth.assign(graph.num_vertices(), kUnreachedDepth);
  r.parent[source] = source;
  r.depth[source] = 0;
  r.vertices_visited = 1;
  return r;
}

}  // namespace

BfsResult bfs_top_down(const CsrGraph& graph, VertexId source) {
  BfsResult r = make_result(graph, source);
  std::vector<VertexId> frontier{source};
  std::vector<VertexId> next;
  std::uint32_t depth = 0;
  while (!frontier.empty()) {
    ++depth;
    next.clear();
    for (const VertexId u : frontier) {
      for (const VertexId v : graph.neighbors_of(u)) {
        ++r.edges_traversed;
        if (r.parent[v] == kNoParent) {
          r.parent[v] = u;
          r.depth[v] = depth;
          ++r.vertices_visited;
          next.push_back(v);
        }
      }
    }
    frontier.swap(next);
  }
  return r;
}

BfsResult bfs_bottom_up(const CsrGraph& graph, VertexId source) {
  BfsResult r = make_result(graph, source);
  const VertexId n = graph.num_vertices();
  std::vector<char> in_frontier(n, 0);
  std::vector<char> in_next(n, 0);
  in_frontier[source] = 1;
  bool frontier_nonempty = true;
  std::uint32_t depth = 0;
  while (frontier_nonempty) {
    ++depth;
    frontier_nonempty = false;
    std::fill(in_next.begin(), in_next.end(), 0);
    for (VertexId v = 0; v < n; ++v) {
      if (r.parent[v] != kNoParent) continue;
      for (const VertexId u : graph.neighbors_of(v)) {
        ++r.edges_traversed;
        if (in_frontier[u]) {
          r.parent[v] = u;
          r.depth[v] = depth;
          ++r.vertices_visited;
          in_next[v] = 1;
          frontier_nonempty = true;
          break;
        }
      }
    }
    in_frontier.swap(in_next);
  }
  return r;
}

BfsResult bfs_direction_optimizing(const CsrGraph& graph, VertexId source,
                                   double alpha, double beta) {
  GMD_REQUIRE(alpha > 0 && beta > 0, "alpha/beta must be positive");
  BfsResult r = make_result(graph, source);
  const VertexId n = graph.num_vertices();
  const auto total_edges = static_cast<double>(graph.num_edges());

  std::vector<VertexId> frontier{source};
  std::vector<char> in_frontier(n, 0);
  in_frontier[source] = 1;
  std::uint32_t depth = 0;

  // Edges incident to the current frontier — the Beamer switch heuristic.
  auto frontier_out_edges = [&](const std::vector<VertexId>& f) {
    std::uint64_t sum = 0;
    for (const VertexId u : f) sum += graph.degree(u);
    return static_cast<double>(sum);
  };

  while (!frontier.empty()) {
    ++depth;
    const bool go_bottom_up =
        frontier_out_edges(frontier) > total_edges / alpha;
    std::vector<VertexId> next;
    std::vector<char> in_next(n, 0);
    if (go_bottom_up) {
      for (VertexId v = 0; v < n; ++v) {
        if (r.parent[v] != kNoParent) continue;
        for (const VertexId u : graph.neighbors_of(v)) {
          ++r.edges_traversed;
          if (in_frontier[u]) {
            r.parent[v] = u;
            r.depth[v] = depth;
            ++r.vertices_visited;
            next.push_back(v);
            in_next[v] = 1;
            break;
          }
        }
      }
      // Once the frontier shrinks below n / beta the out-edge heuristic
      // above flips the next iteration back to top-down on its own.
      (void)beta;
    } else {
      for (const VertexId u : frontier) {
        for (const VertexId v : graph.neighbors_of(u)) {
          ++r.edges_traversed;
          if (r.parent[v] == kNoParent) {
            r.parent[v] = u;
            r.depth[v] = depth;
            ++r.vertices_visited;
            next.push_back(v);
            in_next[v] = 1;
          }
        }
      }
    }
    frontier.swap(next);
    in_frontier.swap(in_next);
  }
  return r;
}

bool validate_bfs(const CsrGraph& graph, const BfsResult& result,
                  std::string* error_reason) {
  const auto fail = [&](const std::string& why) {
    if (error_reason) *error_reason = why;
    return false;
  };
  const VertexId n = graph.num_vertices();
  if (result.parent.size() != n || result.depth.size() != n)
    return fail("result arrays sized differently from the graph");
  if (result.source >= n) return fail("source out of range");
  if (result.parent[result.source] != result.source)
    return fail("source is not its own parent");
  if (result.depth[result.source] != 0) return fail("source depth != 0");

  for (VertexId v = 0; v < n; ++v) {
    const bool has_parent = result.parent[v] != kNoParent;
    const bool has_depth = result.depth[v] != kUnreachedDepth;
    if (has_parent != has_depth) {
      std::ostringstream os;
      os << "vertex " << v << ": parent/depth reachability disagrees";
      return fail(os.str());
    }
    if (!has_parent || v == result.source) continue;

    const VertexId p = result.parent[v];
    if (p >= n) return fail("parent id out of range");
    if (result.depth[p] == kUnreachedDepth)
      return fail("parent of a reached vertex is unreached");
    if (result.depth[v] != result.depth[p] + 1) {
      std::ostringstream os;
      os << "tree edge (" << p << " -> " << v
         << ") does not increase depth by exactly one";
      return fail(os.str());
    }
    // The tree edge must exist in the graph (as p -> v).
    bool found = false;
    for (const VertexId w : graph.neighbors_of(p)) {
      if (w == v) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::ostringstream os;
      os << "tree edge (" << p << " -> " << v << ") is not a graph edge";
      return fail(os.str());
    }
  }

  // Every graph edge spans at most one BFS level (when both ends reached).
  for (VertexId u = 0; u < n; ++u) {
    if (result.depth[u] == kUnreachedDepth) continue;
    for (const VertexId v : graph.neighbors_of(u)) {
      if (result.depth[v] == kUnreachedDepth) {
        // For symmetric graphs an unreached neighbor of a reached vertex
        // is a correctness violation: BFS must have reached it.
        std::ostringstream os;
        os << "edge (" << u << "," << v
           << ") connects reached and unreached vertices";
        return fail(os.str());
      }
      const auto du = static_cast<std::int64_t>(result.depth[u]);
      const auto dv = static_cast<std::int64_t>(result.depth[v]);
      if (dv > du + 1) {
        std::ostringstream os;
        os << "edge (" << u << "," << v << ") spans " << (dv - du)
           << " BFS levels";
        return fail(os.str());
      }
    }
  }
  if (error_reason) error_reason->clear();
  return true;
}

}  // namespace gmd::graph
