#include "gmd/graph/io.hpp"

#include <algorithm>
#include <array>
#include <fstream>
#include <istream>
#include <ostream>

#include "gmd/common/error.hpp"
#include "gmd/common/string_util.hpp"

namespace gmd::graph {

void write_edge_list(std::ostream& os, const EdgeList& list) {
  os << "c graphmemdse edge list (DIMACS-style, 1-based vertices)\n";
  os << "p sp " << list.num_vertices << " " << list.edges.size() << "\n";
  os.precision(17);
  for (const Edge& e : list.edges) {
    os << "a " << (e.src + 1) << " " << (e.dst + 1) << " " << e.weight
       << "\n";
  }
}

void save_edge_list(const std::string& path, const EdgeList& list) {
  std::ofstream out(path);
  GMD_REQUIRE(out.good(), "cannot open '" << path << "' for writing");
  write_edge_list(out, list);
  GMD_REQUIRE(out.good(), "write to '" << path << "' failed");
}

EdgeList read_edge_list(std::istream& is) {
  EdgeList list;
  bool saw_header = false;
  VertexId max_vertex = 0;

  std::string line;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const std::string_view text = trim(line);
    if (text.empty() || text[0] == 'c' || text[0] == '#' || text[0] == '%')
      continue;

    const auto fields = split_whitespace(text);
    if (fields[0] == "p") {
      // "p <problem> <vertices> <edges>" or "p <vertices> <edges>".
      GMD_REQUIRE(fields.size() >= 3,
                  "line " << line_no << ": malformed problem line");
      const auto vertices = parse_uint(fields[fields.size() - 2]);
      GMD_REQUIRE(vertices.has_value() && *vertices > 0 &&
                      *vertices <= UINT32_MAX,
                  "line " << line_no << ": bad vertex count");
      list.num_vertices = static_cast<VertexId>(*vertices);
      saw_header = true;
      continue;
    }

    // Arc lines: "a u v [w]" (1-based) or bare "u v [w]" (0-based).
    std::size_t first = 0;
    bool one_based = false;
    if (fields[0] == "a") {
      first = 1;
      one_based = true;
    }
    GMD_REQUIRE(fields.size() >= first + 2,
                "line " << line_no << ": expected two vertex ids");
    const auto u = parse_uint(fields[first]);
    const auto v = parse_uint(fields[first + 1]);
    GMD_REQUIRE(u.has_value() && v.has_value(),
                "line " << line_no << ": bad vertex id");
    double weight = 1.0;
    if (fields.size() > first + 2) {
      const auto w = parse_double(fields[first + 2]);
      GMD_REQUIRE(w.has_value(), "line " << line_no << ": bad weight");
      weight = *w;
    }
    std::uint64_t src = *u;
    std::uint64_t dst = *v;
    if (one_based) {
      GMD_REQUIRE(src >= 1 && dst >= 1,
                  "line " << line_no << ": DIMACS vertices are 1-based");
      --src;
      --dst;
    }
    GMD_REQUIRE(src <= UINT32_MAX && dst <= UINT32_MAX,
                "line " << line_no << ": vertex id overflow");
    list.edges.push_back(
        {static_cast<VertexId>(src), static_cast<VertexId>(dst), weight});
    max_vertex = std::max({max_vertex, static_cast<VertexId>(src),
                           static_cast<VertexId>(dst)});
  }

  if (!saw_header) {
    list.num_vertices = list.edges.empty() ? 0 : max_vertex + 1;
  } else {
    GMD_REQUIRE(list.edges.empty() || max_vertex < list.num_vertices,
                "edge references vertex " << max_vertex
                                          << " beyond declared count "
                                          << list.num_vertices);
  }
  return list;
}

EdgeList load_edge_list(const std::string& path) {
  std::ifstream in(path);
  GMD_REQUIRE(in.good(), "cannot open '" << path << "' for reading");
  return read_edge_list(in);
}

namespace {

constexpr std::array<char, 8> kMagic = {'G', 'M', 'D', 'G', 'R', 'F',
                                        '0', '1'};

struct PackedEdge {
  std::uint32_t src;
  std::uint32_t dst;
  double weight;
};
static_assert(sizeof(PackedEdge) == 16);

}  // namespace

void write_edge_list_binary(std::ostream& os, const EdgeList& list) {
  os.write(kMagic.data(), kMagic.size());
  const std::uint64_t vertices = list.num_vertices;
  const std::uint64_t edges = list.edges.size();
  os.write(reinterpret_cast<const char*>(&vertices), sizeof(vertices));
  os.write(reinterpret_cast<const char*>(&edges), sizeof(edges));
  for (const Edge& e : list.edges) {
    const PackedEdge packed{e.src, e.dst, e.weight};
    os.write(reinterpret_cast<const char*>(&packed), sizeof(packed));
  }
  GMD_REQUIRE(os.good(), "binary graph write failed");
}

EdgeList read_edge_list_binary(std::istream& is) {
  std::array<char, 8> magic{};
  is.read(magic.data(), magic.size());
  GMD_REQUIRE(is.good() && magic == kMagic,
              "not a graphmemdse binary graph (bad magic)");
  std::uint64_t vertices = 0;
  std::uint64_t edges = 0;
  is.read(reinterpret_cast<char*>(&vertices), sizeof(vertices));
  is.read(reinterpret_cast<char*>(&edges), sizeof(edges));
  GMD_REQUIRE(is.good(), "binary graph truncated (header)");
  GMD_REQUIRE(vertices <= UINT32_MAX, "vertex count overflow");
  EdgeList list;
  list.num_vertices = static_cast<VertexId>(vertices);
  list.edges.reserve(edges);
  for (std::uint64_t i = 0; i < edges; ++i) {
    PackedEdge packed{};
    is.read(reinterpret_cast<char*>(&packed), sizeof(packed));
    GMD_REQUIRE(is.good(), "binary graph truncated at edge " << i);
    list.edges.push_back({packed.src, packed.dst, packed.weight});
  }
  return list;
}

}  // namespace gmd::graph
