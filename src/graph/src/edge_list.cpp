#include "gmd/graph/edge_list.hpp"

#include <algorithm>

namespace gmd::graph {

std::size_t remove_self_loops_and_duplicates(EdgeList& list) {
  auto& edges = list.edges;
  const std::size_t before = edges.size();
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const Edge& e) { return e.src == e.dst; }),
              edges.end());
  std::stable_sort(edges.begin(), edges.end(),
                   [](const Edge& a, const Edge& b) {
                     return a.src != b.src ? a.src < b.src : a.dst < b.dst;
                   });
  edges.erase(std::unique(edges.begin(), edges.end(),
                          [](const Edge& a, const Edge& b) {
                            return a.src == b.src && a.dst == b.dst;
                          }),
              edges.end());
  return before - edges.size();
}

void symmetrize(EdgeList& list) {
  const std::size_t original = list.edges.size();
  list.edges.reserve(original * 2);
  for (std::size_t i = 0; i < original; ++i) {
    const Edge e = list.edges[i];
    if (e.src != e.dst) list.edges.push_back({e.dst, e.src, e.weight});
  }
}

}  // namespace gmd::graph
