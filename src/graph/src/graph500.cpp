#include "gmd/graph/graph500.hpp"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <sstream>

#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/common/stats.hpp"
#include "gmd/graph/generators.hpp"

namespace gmd::graph {

std::vector<VertexId> sample_bfs_roots(const CsrGraph& graph, unsigned count,
                                       std::uint64_t seed) {
  std::vector<VertexId> connected;
  for (VertexId v = 0; v < graph.num_vertices(); ++v) {
    if (graph.degree(v) > 0) connected.push_back(v);
  }
  GMD_REQUIRE(connected.size() >= count,
              "graph has only " << connected.size()
                                << " connected vertices; need " << count);
  Rng rng(seed);
  rng.shuffle(connected);
  connected.resize(count);
  return connected;
}

Graph500Result run_graph500(const Graph500Params& params) {
  GMD_REQUIRE(params.num_roots >= 1, "need at least one search root");
  using Clock = std::chrono::steady_clock;

  Graph500Result result;
  result.scale = params.scale;

  // Kernel 1: construction (generation + CSR build are both timed, as
  // in the specification's "graph construction" kernel).
  const auto construct_begin = Clock::now();
  KroneckerParams gen;
  gen.scale = params.scale;
  gen.edge_factor = params.edge_factor;
  gen.seed = params.seed;
  EdgeList list = generate_graph500_kronecker(gen);
  remove_self_loops_and_duplicates(list);
  const CsrGraph graph = CsrGraph::from_edge_list(list);
  result.construction_seconds =
      std::chrono::duration<double>(Clock::now() - construct_begin).count();
  result.num_vertices = graph.num_vertices();
  result.num_edges = graph.num_edges();

  // Kernel 2: BFS from sampled roots; TEPS counts input-scale edges
  // (undirected edges = directed / 2), per the specification.
  const auto roots =
      sample_bfs_roots(graph, params.num_roots, params.seed ^ 0x5bd1e995);
  const double input_edges = static_cast<double>(graph.num_edges()) / 2.0;
  for (const VertexId root : roots) {
    const auto begin = Clock::now();
    const BfsResult bfs = bfs_direction_optimizing(graph, root);
    const double seconds =
        std::chrono::duration<double>(Clock::now() - begin).count();
    ++result.searches_run;
    if (params.validate) {
      std::string reason;
      if (!validate_bfs(graph, bfs, &reason)) ++result.validation_failures;
    }
    result.teps.push_back(input_edges / std::max(seconds, 1e-9));
  }

  std::vector<double> sorted = result.teps;
  std::sort(sorted.begin(), sorted.end());
  result.min_teps = sorted.front();
  result.max_teps = sorted.back();
  result.mean_teps = mean(sorted);
  result.median_teps = percentile(sorted, 50.0);
  double inverse_sum = 0.0;
  for (const double teps : sorted) inverse_sum += 1.0 / teps;
  result.harmonic_mean_teps =
      static_cast<double>(sorted.size()) / inverse_sum;
  return result;
}

std::string Graph500Result::summary() const {
  std::ostringstream os;
  os << "Graph500 scale " << scale << ": " << num_vertices << " vertices, "
     << num_edges << " directed edges\n"
     << "construction:      " << construction_seconds << " s\n"
     << "searches:          " << searches_run << " ("
     << validation_failures << " validation failures)\n"
     << "harmonic mean TEPS " << harmonic_mean_teps << "\n"
     << "median TEPS        " << median_teps << "\n"
     << "min / max TEPS     " << min_teps << " / " << max_teps << "\n";
  return os.str();
}

}  // namespace gmd::graph
