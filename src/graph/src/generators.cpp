#include "gmd/graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"

namespace gmd::graph {

EdgeList generate_uniform_random(const UniformRandomParams& params) {
  GMD_REQUIRE(params.num_vertices >= 2, "uniform-random graph needs >= 2 vertices");
  GMD_REQUIRE(params.max_weight >= 1.0, "max_weight must be >= 1");
  Rng rng(params.seed);
  EdgeList list;
  list.num_vertices = params.num_vertices;
  const std::size_t target =
      static_cast<std::size_t>(params.num_vertices) * params.edge_factor;
  list.edges.reserve(target);
  const std::uint64_t n = params.num_vertices;
  while (list.edges.size() < target) {
    const auto u = static_cast<VertexId>(rng.next_below(n));
    const auto v = static_cast<VertexId>(rng.next_below(n));
    if (u == v) continue;  // GTGraph's random model skips self-loops
    const double w = params.max_weight == 1.0
                         ? 1.0
                         : rng.next_double_in(1.0, params.max_weight);
    list.edges.push_back({u, v, w});
  }
  return list;
}

namespace {

/// Draws one R-MAT edge by descending `scale` levels of the recursive
/// 2x2 partition with probabilities (a, b, c, d).
Edge rmat_edge(Rng& rng, unsigned scale, double a, double b, double c) {
  VertexId src = 0;
  VertexId dst = 0;
  for (unsigned level = 0; level < scale; ++level) {
    const double r = rng.next_double();
    src <<= 1;
    dst <<= 1;
    if (r < a) {
      // top-left quadrant: no bits set
    } else if (r < a + b) {
      dst |= 1;
    } else if (r < a + b + c) {
      src |= 1;
    } else {
      src |= 1;
      dst |= 1;
    }
  }
  return {src, dst, 1.0};
}

}  // namespace

EdgeList generate_rmat(const RmatParams& params) {
  GMD_REQUIRE(params.scale >= 1 && params.scale <= 30,
              "rmat scale must be in [1, 30]");
  const double sum = params.a + params.b + params.c + params.d;
  GMD_REQUIRE(std::abs(sum - 1.0) < 1e-6,
              "rmat probabilities must sum to 1 (got " << sum << ")");
  GMD_REQUIRE(params.a > 0 && params.b > 0 && params.c > 0 && params.d > 0,
              "rmat probabilities must be positive");

  Rng rng(params.seed);
  EdgeList list;
  list.num_vertices = VertexId{1} << params.scale;
  const std::size_t target =
      static_cast<std::size_t>(list.num_vertices) * params.edge_factor;
  list.edges.reserve(target);
  for (std::size_t i = 0; i < target; ++i) {
    Edge e = rmat_edge(rng, params.scale, params.a, params.b, params.c);
    if (params.max_weight > 1.0)
      e.weight = rng.next_double_in(1.0, params.max_weight);
    list.edges.push_back(e);
  }
  return list;
}

EdgeList generate_graph500_kronecker(const KroneckerParams& params) {
  RmatParams rmat;
  rmat.scale = params.scale;
  rmat.edge_factor = params.edge_factor;
  rmat.a = 0.57;
  rmat.b = 0.19;
  rmat.c = 0.19;
  rmat.d = 0.05;
  rmat.seed = params.seed;
  EdgeList list = generate_rmat(rmat);

  // Graph500 spec: permute vertex labels so vertex id carries no degree
  // information, then treat the graph as undirected.
  Rng rng(params.seed ^ 0x9e3779b97f4a7c15ULL);
  std::vector<VertexId> perm(list.num_vertices);
  std::iota(perm.begin(), perm.end(), VertexId{0});
  rng.shuffle(perm);
  for (Edge& e : list.edges) {
    e.src = perm[e.src];
    e.dst = perm[e.dst];
  }
  symmetrize(list);
  return list;
}

EdgeList generate_erdos_renyi(const ErdosRenyiParams& params) {
  GMD_REQUIRE(params.edge_probability >= 0.0 && params.edge_probability <= 1.0,
              "edge probability must be in [0, 1]");
  Rng rng(params.seed);
  EdgeList list;
  list.num_vertices = params.num_vertices;
  for (VertexId u = 0; u < params.num_vertices; ++u) {
    for (VertexId v = 0; v < params.num_vertices; ++v) {
      if (u != v && rng.next_bool(params.edge_probability)) {
        list.edges.push_back({u, v, 1.0});
      }
    }
  }
  return list;
}

}  // namespace gmd::graph
