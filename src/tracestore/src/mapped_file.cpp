#include "gmd/tracestore/mapped_file.hpp"

#include <cerrno>
#include <cstring>
#include <utility>

#include "gmd/common/error.hpp"
#include "gmd/common/faultinject.hpp"

#ifdef _WIN32
#define WIN32_LEAN_AND_MEAN
#include <windows.h>
#else
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

namespace gmd::tracestore {

#ifdef _WIN32

MappedFile::MappedFile(const std::string& path) : path_(path) {
  GMD_FAULT_POINT("mapped_file.open");
  HANDLE file =
      CreateFileA(path.c_str(), GENERIC_READ, FILE_SHARE_READ, nullptr,
                  OPEN_EXISTING, FILE_ATTRIBUTE_NORMAL, nullptr);
  GMD_REQUIRE_AS(ErrorCode::kIo, file != INVALID_HANDLE_VALUE,
                 "cannot open '" << path << "' for mapping");
  LARGE_INTEGER size{};
  if (!GetFileSizeEx(file, &size)) {
    CloseHandle(file);
    GMD_REQUIRE_AS(ErrorCode::kIo, false,
                   "cannot stat '" << path << "' for mapping");
  }
  file_handle_ = file;
  size_ = static_cast<std::size_t>(size.QuadPart);
  if (size_ > 0) {
    HANDLE mapping =
        CreateFileMappingA(file, nullptr, PAGE_READONLY, 0, 0, nullptr);
    if (mapping == nullptr) {
      CloseHandle(file);
      file_handle_ = nullptr;
      GMD_REQUIRE_AS(ErrorCode::kIo, false, "cannot map '" << path << "'");
    }
    mapping_handle_ = mapping;
    void* view = MapViewOfFile(mapping, FILE_MAP_READ, 0, 0, 0);
    if (view == nullptr) {
      CloseHandle(mapping);
      CloseHandle(file);
      mapping_handle_ = nullptr;
      file_handle_ = nullptr;
      GMD_REQUIRE_AS(ErrorCode::kIo, false,
                     "cannot map view of '" << path << "'");
    }
    data_ = static_cast<const unsigned char*>(view);
  }
  open_ = true;
}

void MappedFile::reset() noexcept {
  if (data_ != nullptr) {
    UnmapViewOfFile(const_cast<unsigned char*>(data_));
  }
  if (mapping_handle_ != nullptr) CloseHandle(mapping_handle_);
  if (file_handle_ != nullptr) CloseHandle(file_handle_);
  mapping_handle_ = nullptr;
  file_handle_ = nullptr;
  data_ = nullptr;
  size_ = 0;
  open_ = false;
}

#else  // POSIX

MappedFile::MappedFile(const std::string& path) : path_(path) {
  bool short_read = false;
  if (auto kind = faultinject::fire("mapped_file.open")) {
    if (*kind != faultinject::FaultKind::kShortRead) {
      faultinject::throw_injected(*kind, "mapped_file.open");
    }
    // Act out a truncated file: map only half the bytes, so readers see
    // a store whose directory/chunks run past the end of the mapping.
    short_read = true;
  }
  const int fd = ::open(path.c_str(), O_RDONLY);
  GMD_REQUIRE_AS(ErrorCode::kIo, fd >= 0,
                 "cannot open '" << path
                                 << "' for mapping: " << std::strerror(errno));
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int saved = errno;
    ::close(fd);
    GMD_REQUIRE_AS(ErrorCode::kIo, false,
                   "cannot stat '" << path
                                   << "': " << std::strerror(saved));
  }
  size_ = static_cast<std::size_t>(st.st_size);
  if (short_read) size_ /= 2;
  if (size_ > 0) {
    void* mapped = ::mmap(nullptr, size_, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      const int saved = errno;
      ::close(fd);
      size_ = 0;
      GMD_REQUIRE_AS(ErrorCode::kIo, false,
                     "cannot mmap '" << path
                                     << "': " << std::strerror(saved));
    }
    data_ = static_cast<const unsigned char*>(mapped);
  }
  // The mapping outlives the descriptor; holding the fd open would only
  // burn a descriptor per open store.
  ::close(fd);
  open_ = true;
}

void MappedFile::reset() noexcept {
  if (data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
  data_ = nullptr;
  size_ = 0;
  open_ = false;
}

#endif

MappedFile::~MappedFile() { reset(); }

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      open_(other.open_),
      path_(std::move(other.path_)) {
#ifdef _WIN32
  file_handle_ = other.file_handle_;
  mapping_handle_ = other.mapping_handle_;
  other.file_handle_ = nullptr;
  other.mapping_handle_ = nullptr;
#endif
  other.data_ = nullptr;
  other.size_ = 0;
  other.open_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    reset();
    data_ = other.data_;
    size_ = other.size_;
    open_ = other.open_;
    path_ = std::move(other.path_);
#ifdef _WIN32
    file_handle_ = other.file_handle_;
    mapping_handle_ = other.mapping_handle_;
    other.file_handle_ = nullptr;
    other.mapping_handle_ = nullptr;
#endif
    other.data_ = nullptr;
    other.size_ = 0;
    other.open_ = false;
  }
  return *this;
}

}  // namespace gmd::tracestore
