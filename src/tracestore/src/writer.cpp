#include "gmd/tracestore/writer.hpp"

#include <algorithm>

#include "gmd/common/error.hpp"
#include "gmd/common/hash.hpp"

namespace gmd::tracestore {

namespace {

std::string encode_header(const Header& header) {
  std::string bytes;
  bytes.reserve(kHeaderBytes);
  bytes.append(kMagic.data(), kMagic.size());
  put_u32(bytes, header.version);
  put_u32(bytes, header.flags);
  put_u64(bytes, header.event_count);
  put_u64(bytes, header.chunk_count);
  put_u64(bytes, header.events_per_chunk);
  put_u64(bytes, header.directory_offset);
  put_u64(bytes, fnv1a_bytes(bytes.data(), bytes.size()));
  GMD_ASSERT(bytes.size() == kHeaderBytes, "GMDT header must be 56 bytes");
  return bytes;
}

}  // namespace

TraceStoreWriter::TraceStoreWriter(const std::string& path,
                                   const TraceStoreWriterOptions& options)
    : path_(path),
      file_(path, std::ios::binary),
      events_per_chunk_(options.events_per_chunk) {
  GMD_REQUIRE_AS(ErrorCode::kConfig, events_per_chunk_ >= 1,
                 "events_per_chunk must be >= 1");
  pending_.reserve(std::min<std::size_t>(events_per_chunk_, 1u << 20));
  // Placeholder header: all-zero counts and a checksum of zeros, which
  // the reader rejects — an unclosed store is never a valid empty one
  // (defense in depth: the temp file is never published anyway).
  const std::string placeholder(kHeaderBytes, '\0');
  std::ostream& out = file_.stream();
  out.write(placeholder.data(),
            static_cast<std::streamsize>(placeholder.size()));
  GMD_REQUIRE_AS(ErrorCode::kIo, out.good(),
                 "write of trace store '" << path_ << "' failed");
}

TraceStoreWriter::~TraceStoreWriter() {
  // Best-effort finalize; callers that care about I/O failures call
  // close() themselves (a destructor must not throw).
  try {
    close();
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void TraceStoreWriter::on_event(const cpusim::MemoryEvent& event) {
  GMD_REQUIRE_AS(ErrorCode::kIo, !closed_,
                 "trace store '" << path_ << "' is already closed");
  pending_.push_back(event);
  ++events_written_;
  if (pending_.size() >= events_per_chunk_) flush_chunk();
}

void TraceStoreWriter::append(std::span<const cpusim::MemoryEvent> events) {
  for (const cpusim::MemoryEvent& event : events) on_event(event);
}

void TraceStoreWriter::flush_chunk() {
  if (pending_.empty()) return;

  encode_buffer_.clear();
  ChunkEntry entry;
  entry.offset = next_offset_;
  entry.event_count = pending_.size();
  entry.min_tick = pending_.front().tick;
  entry.max_tick = pending_.front().tick;

  // Delta state restarts per chunk so every chunk decodes standalone.
  std::uint64_t prev_tick = 0;
  std::uint64_t prev_address = 0;
  for (const cpusim::MemoryEvent& event : pending_) {
    // Wraparound subtraction: any 64-bit jump (non-monotonic ticks,
    // maximal address swings) is a well-defined signed delta.
    put_varint(encode_buffer_,
               zigzag_encode(static_cast<std::int64_t>(event.tick - prev_tick)));
    put_varint(encode_buffer_,
               zigzag_encode(
                   static_cast<std::int64_t>(event.address - prev_address)));
    put_varint(encode_buffer_, (static_cast<std::uint64_t>(event.size) << 1) |
                                   (event.is_write ? 1u : 0u));
    prev_tick = event.tick;
    prev_address = event.address;
    entry.min_tick = std::min(entry.min_tick, event.tick);
    entry.max_tick = std::max(entry.max_tick, event.tick);
  }
  entry.encoded_bytes = encode_buffer_.size();
  entry.checksum = fnv1a_bytes(encode_buffer_.data(), encode_buffer_.size());

  std::ostream& out = file_.stream();
  out.write(encode_buffer_.data(),
            static_cast<std::streamsize>(encode_buffer_.size()));
  GMD_REQUIRE_AS(ErrorCode::kIo, out.good(),
                 "write of trace store '" << path_ << "' failed");
  next_offset_ += encode_buffer_.size();
  directory_.push_back(entry);
  pending_.clear();
}

void TraceStoreWriter::close() {
  if (closed_) return;
  flush_chunk();

  Header header;
  header.event_count = events_written_;
  header.chunk_count = directory_.size();
  header.events_per_chunk = events_per_chunk_;
  header.directory_offset = next_offset_;

  std::string directory_bytes;
  directory_bytes.reserve(directory_.size() * kDirEntryBytes + 8);
  for (const ChunkEntry& entry : directory_) {
    put_u64(directory_bytes, entry.offset);
    put_u64(directory_bytes, entry.encoded_bytes);
    put_u64(directory_bytes, entry.event_count);
    put_u64(directory_bytes, entry.checksum);
    put_u64(directory_bytes, entry.min_tick);
    put_u64(directory_bytes, entry.max_tick);
  }
  const std::uint64_t directory_checksum =
      fnv1a_bytes(directory_bytes.data(), directory_bytes.size());
  put_u64(directory_bytes, directory_checksum);
  std::ostream& out = file_.stream();
  out.write(directory_bytes.data(),
            static_cast<std::streamsize>(directory_bytes.size()));

  out.seekp(0);
  const std::string header_bytes = encode_header(header);
  out.write(header_bytes.data(),
            static_cast<std::streamsize>(header_bytes.size()));
  GMD_REQUIRE_AS(ErrorCode::kIo, out.good(),
                 "finalize of trace store '" << path_ << "' failed");
  file_.commit();  // fsync + rename: the store appears at path_ whole.
  closed_ = true;
}

void write_trace_store(const std::string& path,
                       std::span<const cpusim::MemoryEvent> events,
                       const TraceStoreWriterOptions& options) {
  TraceStoreWriter writer(path, options);
  writer.append(events);
  writer.close();
}

}  // namespace gmd::tracestore
