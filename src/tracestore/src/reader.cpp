#include "gmd/tracestore/reader.hpp"

#include <algorithm>
#include <cstring>

#include "gmd/common/error.hpp"
#include "gmd/common/faultinject.hpp"
#include "gmd/common/hash.hpp"
#include "gmd/common/thread_pool.hpp"

namespace gmd::tracestore {

TraceStoreReader::TraceStoreReader(const std::string& path) : file_(path) {
  const unsigned char* base = file_.data();
  GMD_REQUIRE_AS(ErrorCode::kTrace, file_.size() >= kHeaderBytes,
                 "'" << path << "' is too small to be a GMDT trace store ("
                     << file_.size() << " bytes)");
  GMD_REQUIRE_AS(ErrorCode::kTrace,
                 std::memcmp(base, kMagic.data(), kMagic.size()) == 0,
                 "'" << path << "' is not a GMDT trace store (bad magic)");
  header_.version = get_u32(base + 8);
  header_.flags = get_u32(base + 12);
  header_.event_count = get_u64(base + 16);
  header_.chunk_count = get_u64(base + 24);
  header_.events_per_chunk = get_u64(base + 32);
  header_.directory_offset = get_u64(base + 40);
  const std::uint64_t stored_header_checksum = get_u64(base + 48);
  GMD_REQUIRE_AS(ErrorCode::kTrace,
                 stored_header_checksum == fnv1a_bytes(base, 48),
                 "'" << path << "': GMDT header checksum mismatch "
                     << "(truncated write or corruption)");
  GMD_REQUIRE_AS(ErrorCode::kTrace, header_.version == kFormatVersion,
                 "'" << path << "': unsupported GMDT version "
                     << header_.version << " (this build reads version "
                     << kFormatVersion << ")");
  GMD_REQUIRE_AS(ErrorCode::kTrace,
                 (header_.flags & kFlagDeltaVarint) != 0,
                 "'" << path << "': unknown GMDT payload codec (flags=0x"
                     << std::hex << header_.flags << ")");

  // Directory bounds: entries plus the trailing directory checksum.
  // The count is range-checked first so dir_bytes below cannot overflow
  // (and so an absurd count is rejected before the resize allocates).
  GMD_REQUIRE_AS(ErrorCode::kTrace,
                 header_.chunk_count <= file_.size() / kDirEntryBytes,
                 "'" << path << "': GMDT header claims " << header_.chunk_count
                     << " chunks, more than the file could hold");
  const std::uint64_t dir_bytes =
      header_.chunk_count * kDirEntryBytes + sizeof(std::uint64_t);
  GMD_REQUIRE_AS(ErrorCode::kTrace,
                 header_.directory_offset >= kHeaderBytes &&
                     header_.directory_offset <= file_.size() &&
                     dir_bytes <= file_.size() - header_.directory_offset,
                 "'" << path << "': GMDT chunk directory out of bounds "
                     << "(truncated file?)");
  const unsigned char* dir = base + header_.directory_offset;
  const std::uint64_t stored_dir_checksum =
      get_u64(dir + header_.chunk_count * kDirEntryBytes);
  GMD_REQUIRE_AS(ErrorCode::kTrace,
                 stored_dir_checksum ==
                     fnv1a_bytes(dir, header_.chunk_count * kDirEntryBytes),
                 "'" << path << "': GMDT chunk directory checksum mismatch");

  directory_.resize(header_.chunk_count);
  std::uint64_t events_total = 0;
  for (std::size_t i = 0; i < directory_.size(); ++i) {
    const unsigned char* entry = dir + i * kDirEntryBytes;
    ChunkEntry& e = directory_[i];
    e.offset = get_u64(entry);
    e.encoded_bytes = get_u64(entry + 8);
    e.event_count = get_u64(entry + 16);
    e.checksum = get_u64(entry + 24);
    e.min_tick = get_u64(entry + 32);
    e.max_tick = get_u64(entry + 40);
    GMD_REQUIRE_AS(ErrorCode::kTrace,
                   e.offset >= kHeaderBytes &&
                       e.offset <= header_.directory_offset &&
                       e.encoded_bytes <=
                           header_.directory_offset - e.offset,
                   "'" << path << "': chunk " << i
                       << " payload out of bounds");
    // An event needs at least 3 payload bytes (one varint byte each for
    // tick delta, address delta, and op/size) — reject counts the
    // payload cannot possibly hold before anyone allocates for them.
    GMD_REQUIRE_AS(ErrorCode::kTrace, e.event_count <= e.encoded_bytes / 3,
                   "'" << path << "': chunk " << i << " claims "
                       << e.event_count << " events in " << e.encoded_bytes
                       << " payload bytes");
    events_total += e.event_count;
  }
  GMD_REQUIRE_AS(ErrorCode::kTrace, events_total == header_.event_count,
                 "'" << path << "': header claims " << header_.event_count
                     << " events but chunks hold " << events_total);
}

const ChunkEntry& TraceStoreReader::chunk_info(std::size_t index) const {
  GMD_REQUIRE_AS(ErrorCode::kTrace, index < directory_.size(),
                 "chunk index " << index << " out of range (store has "
                                << directory_.size() << " chunks)");
  return directory_[index];
}

void TraceStoreReader::decode_into(std::size_t index,
                                   cpusim::MemoryEvent* out) const {
  const ChunkEntry& entry = directory_[index];
  const unsigned char* payload = file_.data() + entry.offset;
  // Stand-in for mid-mmap corruption: the chaos suite arms this site to
  // make a chunk that passed registration fail verification later.
  GMD_FAULT_POINT("tracestore.chunk_verify");
  GMD_REQUIRE_AS(
      ErrorCode::kTrace,
      fnv1a_bytes(payload, entry.encoded_bytes) == entry.checksum,
      "'" << path() << "': chunk " << index
          << " checksum mismatch (corrupted payload)");

  const unsigned char* cursor = payload;
  const unsigned char* end = payload + entry.encoded_bytes;
  std::uint64_t prev_tick = 0;
  std::uint64_t prev_address = 0;
  for (std::uint64_t i = 0; i < entry.event_count; ++i) {
    std::uint64_t tick_delta = 0;
    std::uint64_t address_delta = 0;
    std::uint64_t op_size = 0;
    GMD_REQUIRE_AS(ErrorCode::kTrace,
                   get_varint(&cursor, end, &tick_delta) &&
                       get_varint(&cursor, end, &address_delta) &&
                       get_varint(&cursor, end, &op_size),
                   "'" << path() << "': chunk " << index
                       << " payload truncated at event " << i << " of "
                       << entry.event_count);
    GMD_REQUIRE_AS(ErrorCode::kTrace, (op_size >> 1) <= 0xFFFFFFFFULL,
                   "'" << path() << "': chunk " << index << " event " << i
                       << " has an impossible access size");
    prev_tick += static_cast<std::uint64_t>(zigzag_decode(tick_delta));
    prev_address += static_cast<std::uint64_t>(zigzag_decode(address_delta));
    out[i] = cpusim::MemoryEvent{prev_tick, prev_address,
                                 static_cast<std::uint32_t>(op_size >> 1),
                                 (op_size & 1) != 0};
  }
  GMD_REQUIRE_AS(ErrorCode::kTrace, cursor == end,
                 "'" << path() << "': chunk " << index << " has "
                     << (end - cursor) << " trailing payload bytes");
}

void TraceStoreReader::decode_chunk(
    std::size_t index, std::vector<cpusim::MemoryEvent>& out) const {
  const ChunkEntry& entry = chunk_info(index);
  out.resize(entry.event_count);
  decode_into(index, out.data());
}

std::vector<cpusim::MemoryEvent> TraceStoreReader::decode_chunk(
    std::size_t index) const {
  std::vector<cpusim::MemoryEvent> events;
  decode_chunk(index, events);
  return events;
}

std::vector<cpusim::MemoryEvent> TraceStoreReader::read_all() const {
  std::vector<cpusim::MemoryEvent> events(header_.event_count);
  std::size_t written = 0;
  for (std::size_t i = 0; i < directory_.size(); ++i) {
    decode_into(i, events.data() + written);
    written += directory_[i].event_count;
  }
  return events;
}

std::vector<cpusim::MemoryEvent> TraceStoreReader::read_all(
    ThreadPool& pool) const {
  std::vector<cpusim::MemoryEvent> events(header_.event_count);
  // Exclusive prefix sum of chunk event counts = each chunk's slice.
  std::vector<std::size_t> offsets(directory_.size() + 1, 0);
  for (std::size_t i = 0; i < directory_.size(); ++i) {
    offsets[i + 1] = offsets[i] + directory_[i].event_count;
  }
  pool.parallel_for(0, directory_.size(), [&](std::size_t i) {
    decode_into(i, events.data() + offsets[i]);
  });
  return events;
}

std::size_t TraceStoreReader::first_chunk_at_or_after(
    std::uint64_t tick) const {
  for (std::size_t i = 0; i < directory_.size(); ++i) {
    if (directory_[i].max_tick >= tick) return i;
  }
  return directory_.size();
}

void TraceStoreReader::verify() const {
  std::vector<cpusim::MemoryEvent> scratch;
  for (std::size_t i = 0; i < directory_.size(); ++i) {
    decode_chunk(i, scratch);
  }
}

std::uint64_t TraceStoreReader::content_checksum() const {
  Fnv1a h;
  h.mix(header_.event_count);
  h.mix(header_.chunk_count);
  for (const ChunkEntry& entry : directory_) {
    h.mix(entry.event_count);
    h.mix(entry.checksum);
  }
  return h.state;
}

bool ChunkIterator::next() {
  if (next_index_ >= reader_->num_chunks()) {
    buffer_.clear();
    return false;
  }
  reader_->decode_chunk(next_index_, buffer_);
  ++next_index_;
  return true;
}

}  // namespace gmd::tracestore
