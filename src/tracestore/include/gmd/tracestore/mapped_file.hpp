#pragma once

/// \file mapped_file.hpp
/// Read-only memory-mapped file, RAII style (idiom: the mio library).
///
/// A mapping is the sharing primitive the trace store is built on: N
/// sweep workers decoding chunks of one GMDT file all read the same
/// physical pages instead of each holding a private copy of the trace,
/// and the OS pages data in on demand — opening a multi-gigabyte store
/// costs header+directory validation, not a full read.

#include <cstddef>
#include <string>
#include <string_view>

namespace gmd::tracestore {

/// Move-only owner of a read-only file mapping (POSIX mmap /
/// Windows MapViewOfFile).  An empty file maps to a valid zero-length
/// view.  All failures throw gmd::Error with ErrorCode::kIo.
class MappedFile {
 public:
  MappedFile() = default;
  /// Opens and maps `path` read-only.
  explicit MappedFile(const std::string& path);
  ~MappedFile();

  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  bool is_open() const { return open_; }
  const unsigned char* data() const { return data_; }
  std::size_t size() const { return size_; }
  std::string_view view() const {
    return {reinterpret_cast<const char*>(data_), size_};
  }
  const std::string& path() const { return path_; }

 private:
  void reset() noexcept;

  const unsigned char* data_ = nullptr;
  std::size_t size_ = 0;
  bool open_ = false;
  std::string path_;
#ifdef _WIN32
  void* file_handle_ = nullptr;
  void* mapping_handle_ = nullptr;
#endif
};

}  // namespace gmd::tracestore
