#pragma once

/// \file reader.hpp
/// Zero-copy GMDT reader over a read-only file mapping.
///
/// Opening a store validates the fixed header and the chunk directory
/// (magic, version, checksums, bounds) but touches no payload bytes —
/// cost is independent of trace size.  Chunks then decode on demand:
/// randomly (decode_chunk), sequentially (ChunkIterator, bounded
/// memory), or all at once in parallel on a ThreadPool (read_all).
/// Every decode verifies the chunk's FNV-1a checksum first, so a
/// corrupted store fails with a typed error naming the chunk instead of
/// feeding garbage events into a sweep.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gmd/cpusim/memory_event.hpp"
#include "gmd/tracestore/format.hpp"
#include "gmd/tracestore/mapped_file.hpp"

namespace gmd {
class ThreadPool;
}

namespace gmd::tracestore {

class TraceStoreReader {
 public:
  /// Maps `path` and validates header + chunk directory.  Throws
  /// Error(kIo) when the file cannot be mapped and Error(kTrace) when
  /// it is not a structurally valid GMDT v1 store.
  explicit TraceStoreReader(const std::string& path);

  const Header& header() const { return header_; }
  std::uint64_t num_events() const { return header_.event_count; }
  std::size_t num_chunks() const { return directory_.size(); }
  const ChunkEntry& chunk_info(std::size_t index) const;
  const std::string& path() const { return file_.path(); }
  /// Total bytes of the mapped store file.
  std::size_t file_bytes() const { return file_.size(); }

  /// Decodes chunk `index` into `out` (replacing its contents) after
  /// verifying the chunk checksum.  Throws Error(kTrace) naming the
  /// chunk on checksum mismatch or malformed payload.
  void decode_chunk(std::size_t index,
                    std::vector<cpusim::MemoryEvent>& out) const;
  std::vector<cpusim::MemoryEvent> decode_chunk(std::size_t index) const;

  /// Decodes the whole store, sequentially.
  std::vector<cpusim::MemoryEvent> read_all() const;
  /// Decodes the whole store with one task per chunk on `pool`; each
  /// chunk decodes straight into its slice of the result (no per-chunk
  /// copies).  Identical output to the sequential overload.
  std::vector<cpusim::MemoryEvent> read_all(ThreadPool& pool) const;

  /// Index of the first chunk whose max_tick >= `tick` (chunks are in
  /// stream order; for tick-sorted traces this is the seek target).
  /// Returns num_chunks() when every chunk ends before `tick`.
  std::size_t first_chunk_at_or_after(std::uint64_t tick) const;

  /// Decodes and checksums every chunk, discarding the events — a full
  /// integrity scan (trace_tools verify).  Throws on the first bad
  /// chunk.
  void verify() const;

  /// FNV-1a identity of the store content, computed from the header and
  /// the per-chunk payload checksums already in the directory — O(chunks),
  /// no event decode.  Used by the sweep checkpoint journal.
  std::uint64_t content_checksum() const;

 private:
  void decode_into(std::size_t index, cpusim::MemoryEvent* out) const;

  MappedFile file_;
  Header header_;
  std::vector<ChunkEntry> directory_;
};

/// Forward-only cursor over a store's chunks; buffers one decoded chunk
/// at a time, so iterating a multi-gigabyte store needs chunk-sized
/// memory.  Usage:
///
///   ChunkIterator it(reader);
///   while (it.next()) consume(it.events());
class ChunkIterator {
 public:
  explicit ChunkIterator(const TraceStoreReader& reader) : reader_(&reader) {}

  /// Advances to the next chunk; false when the store is exhausted.
  bool next();
  /// Events of the current chunk (valid until the next next()).
  std::span<const cpusim::MemoryEvent> events() const { return buffer_; }
  /// Index of the current chunk.
  std::size_t index() const { return next_index_ - 1; }

 private:
  const TraceStoreReader* reader_;
  std::size_t next_index_ = 0;
  std::vector<cpusim::MemoryEvent> buffer_;
};

}  // namespace gmd::tracestore
