#pragma once

/// \file format.hpp
/// GMDT v1 — the graphmemdse on-disk trace container.
///
/// The paper's pipeline turns a 91.5M-line gem5 text trace into a 14 GB
/// NVMain text trace before a single simulation cycle runs; trace I/O,
/// not simulation, is the storage and startup bottleneck.  GMDT stores
/// the same MemoryEvent stream compressed and chunk-indexed so that
///   * a streaming writer emits it with bounded memory,
///   * a memory-mapped reader decodes any chunk without touching the
///     rest of the file (random access, parallel decode, tick seeking),
///   * corruption is detected per chunk, not discovered mid-sweep.
///
/// Byte layout (all integers little-endian):
///
///   header (56 bytes)
///     [ 0..7 ]  magic            "GMDTSTR1"
///     [ 8..11]  version          u32, currently 1
///     [12..15]  flags            u32, bit 0 = delta+zigzag+varint payload
///     [16..23]  event_count      u64
///     [24..31]  chunk_count      u64
///     [32..39]  events_per_chunk u64 (nominal; the last chunk may be short)
///     [40..47]  directory_offset u64 (byte offset of the chunk directory)
///     [48..55]  header_checksum  u64, FNV-1a 64 of bytes [0..47]
///
///   chunk payloads (back to back, starting at byte 56)
///     per event, relative to the previous event in the same chunk
///     (the first event of a chunk is relative to tick 0 / address 0):
///       varint(zigzag(tick - prev_tick))
///       varint(zigzag(address - prev_address))
///       varint((size << 1) | is_write)
///
///   chunk directory (at directory_offset)
///     chunk_count entries of 48 bytes:
///       [ 0..7 ]  offset         u64, byte offset of the chunk payload
///       [ 8..15]  encoded_bytes  u64, payload length
///       [16..23]  event_count    u64
///       [24..31]  checksum       u64, FNV-1a 64 of the payload bytes
///       [32..39]  min_tick       u64 (0 for an empty chunk)
///       [40..47]  max_tick       u64
///     followed by
///       [ 0..7 ]  directory_checksum  u64, FNV-1a 64 of all entry bytes
///
/// Deltas use two's-complement wraparound arithmetic, so any 64-bit
/// jump (including address swings of 2^64 - 1 and non-monotonic ticks)
/// round-trips exactly; zigzag keeps small positive and negative deltas
/// in one or two varint bytes, which is what makes graph memory traces
/// — highly local, mostly small strides — compress well.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace gmd::tracestore {

inline constexpr std::array<char, 8> kMagic = {'G', 'M', 'D', 'T',
                                               'S', 'T', 'R', '1'};
inline constexpr std::uint32_t kFormatVersion = 1;

/// Payload codec flag: delta + zigzag + varint events (the only codec
/// defined by v1; readers must reject files without it).
inline constexpr std::uint32_t kFlagDeltaVarint = 1u << 0;

inline constexpr std::size_t kHeaderBytes = 56;
inline constexpr std::size_t kDirEntryBytes = 48;
inline constexpr std::size_t kDefaultEventsPerChunk = std::size_t{1} << 16;

/// Decoded fixed header.
struct Header {
  std::uint32_t version = kFormatVersion;
  std::uint32_t flags = kFlagDeltaVarint;
  std::uint64_t event_count = 0;
  std::uint64_t chunk_count = 0;
  std::uint64_t events_per_chunk = kDefaultEventsPerChunk;
  std::uint64_t directory_offset = 0;
};

/// Decoded chunk-directory entry.
struct ChunkEntry {
  std::uint64_t offset = 0;
  std::uint64_t encoded_bytes = 0;
  std::uint64_t event_count = 0;
  std::uint64_t checksum = 0;
  std::uint64_t min_tick = 0;
  std::uint64_t max_tick = 0;
};

// --- little-endian field encoding ------------------------------------

inline void put_u32(std::string& out, std::uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFFu));
  }
}

inline void put_u64(std::string& out, std::uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<char>((value >> shift) & 0xFFu));
  }
}

inline std::uint32_t get_u32(const unsigned char* p) {
  std::uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  }
  return value;
}

inline std::uint64_t get_u64(const unsigned char* p) {
  std::uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  }
  return value;
}

// --- zigzag ----------------------------------------------------------

inline std::uint64_t zigzag_encode(std::int64_t value) {
  return (static_cast<std::uint64_t>(value) << 1) ^
         static_cast<std::uint64_t>(value >> 63);
}

inline std::int64_t zigzag_decode(std::uint64_t value) {
  return static_cast<std::int64_t>(value >> 1) ^
         -static_cast<std::int64_t>(value & 1);
}

// --- LEB128 varint ----------------------------------------------------

/// Appends `value` as a base-128 varint (1..10 bytes).
inline void put_varint(std::string& out, std::uint64_t value) {
  while (value >= 0x80) {
    out.push_back(static_cast<char>(0x80u | (value & 0x7Fu)));
    value >>= 7;
  }
  out.push_back(static_cast<char>(value));
}

/// Reads one varint from [*cursor, end); advances *cursor past it.
/// Returns false on truncation or a varint wider than 64 bits.
inline bool get_varint(const unsigned char** cursor, const unsigned char* end,
                       std::uint64_t* value) {
  std::uint64_t result = 0;
  int shift = 0;
  const unsigned char* p = *cursor;
  while (p < end) {
    const unsigned char byte = *p++;
    if (shift == 63 && (byte & 0x7Eu) != 0) return false;  // > 64 bits
    if (shift > 63) return false;
    result |= static_cast<std::uint64_t>(byte & 0x7Fu) << shift;
    if ((byte & 0x80u) == 0) {
      *cursor = p;
      *value = result;
      return true;
    }
    shift += 7;
  }
  return false;  // ran off the payload mid-varint
}

}  // namespace gmd::tracestore
