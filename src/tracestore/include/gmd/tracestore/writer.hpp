#pragma once

/// \file writer.hpp
/// Streaming GMDT writer.  Implements cpusim::TraceSink so a workload
/// run on AtomicCpu emits a compressed, chunk-indexed store directly —
/// memory stays bounded by one chunk regardless of trace length,
/// unlike write_binary_trace, which needs the whole event vector.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gmd/common/atomic_file.hpp"
#include "gmd/cpusim/memory_event.hpp"
#include "gmd/tracestore/format.hpp"

namespace gmd::tracestore {

struct TraceStoreWriterOptions {
  /// Events per chunk.  Smaller chunks = finer random access and more
  /// parallel decode slack; larger chunks = slightly better compression
  /// (fewer per-chunk delta restarts) and a smaller directory.
  std::size_t events_per_chunk = kDefaultEventsPerChunk;
};

/// Writes a GMDT v1 store.  Events are appended via on_event()/append()
/// and the file is finalized by close(): chunk directory, then the real
/// header patched over the placeholder.  All bytes go to `<path>.tmp`
/// via gmd::AtomicFileWriter; close() fsyncs and renames it over the
/// target, so `path` either holds a complete store or does not exist —
/// a writer killed mid-stream (even by SIGKILL) leaves at worst a stale
/// temp file that remove_stale_temp_files() sweeps, never a torn or
/// silently short trace.  (The in-progress temp additionally carries a
/// placeholder header the reader rejects.)
class TraceStoreWriter final : public cpusim::TraceSink {
 public:
  explicit TraceStoreWriter(const std::string& path,
                            const TraceStoreWriterOptions& options = {});
  ~TraceStoreWriter() override;

  TraceStoreWriter(const TraceStoreWriter&) = delete;
  TraceStoreWriter& operator=(const TraceStoreWriter&) = delete;

  void on_event(const cpusim::MemoryEvent& event) override;
  void append(std::span<const cpusim::MemoryEvent> events);

  /// Flushes the pending chunk, writes the directory, patches the
  /// header, and atomically publishes the temp file at path().
  /// Idempotent.
  void close();

  bool closed() const { return closed_; }
  std::uint64_t events_written() const { return events_written_; }
  std::uint64_t chunks_written() const { return directory_.size(); }
  const std::string& path() const { return path_; }
  /// Where bytes accumulate until close() renames them over path().
  const std::string& temp_path() const { return file_.temp_path(); }

 private:
  void flush_chunk();

  std::string path_;
  AtomicFileWriter file_;
  std::size_t events_per_chunk_;
  std::vector<cpusim::MemoryEvent> pending_;  ///< Current chunk.
  std::string encode_buffer_;
  std::vector<ChunkEntry> directory_;
  std::uint64_t events_written_ = 0;
  std::uint64_t next_offset_ = kHeaderBytes;
  bool closed_ = false;
};

/// Convenience: writes `events` to `path` as one GMDT store.
void write_trace_store(const std::string& path,
                       std::span<const cpusim::MemoryEvent> events,
                       const TraceStoreWriterOptions& options = {});

}  // namespace gmd::tracestore
