#pragma once

/// \file writer.hpp
/// Streaming GMDT writer.  Implements cpusim::TraceSink so a workload
/// run on AtomicCpu emits a compressed, chunk-indexed store directly —
/// memory stays bounded by one chunk regardless of trace length,
/// unlike write_binary_trace, which needs the whole event vector.

#include <cstdint>
#include <fstream>
#include <span>
#include <string>
#include <vector>

#include "gmd/cpusim/memory_event.hpp"
#include "gmd/tracestore/format.hpp"

namespace gmd::tracestore {

struct TraceStoreWriterOptions {
  /// Events per chunk.  Smaller chunks = finer random access and more
  /// parallel decode slack; larger chunks = slightly better compression
  /// (fewer per-chunk delta restarts) and a smaller directory.
  std::size_t events_per_chunk = kDefaultEventsPerChunk;
};

/// Writes a GMDT v1 store.  Events are appended via on_event()/append()
/// and the file is finalized by close(): chunk directory, then the real
/// header patched over the placeholder.  A writer abandoned without
/// close() leaves a file the reader rejects (zero chunk count and a
/// failing header checksum) — never a silently short trace.
class TraceStoreWriter final : public cpusim::TraceSink {
 public:
  explicit TraceStoreWriter(const std::string& path,
                            const TraceStoreWriterOptions& options = {});
  ~TraceStoreWriter() override;

  TraceStoreWriter(const TraceStoreWriter&) = delete;
  TraceStoreWriter& operator=(const TraceStoreWriter&) = delete;

  void on_event(const cpusim::MemoryEvent& event) override;
  void append(std::span<const cpusim::MemoryEvent> events);

  /// Flushes the pending chunk, writes the directory, patches the
  /// header, and closes the file.  Idempotent.
  void close();

  bool closed() const { return closed_; }
  std::uint64_t events_written() const { return events_written_; }
  std::uint64_t chunks_written() const { return directory_.size(); }
  const std::string& path() const { return path_; }

 private:
  void flush_chunk();

  std::string path_;
  std::ofstream out_;
  std::size_t events_per_chunk_;
  std::vector<cpusim::MemoryEvent> pending_;  ///< Current chunk.
  std::string encode_buffer_;
  std::vector<ChunkEntry> directory_;
  std::uint64_t events_written_ = 0;
  std::uint64_t next_offset_ = kHeaderBytes;
  bool closed_ = false;
};

/// Convenience: writes `events` to `path` as one GMDT store.
void write_trace_store(const std::string& path,
                       std::span<const cpusim::MemoryEvent> events,
                       const TraceStoreWriterOptions& options = {});

}  // namespace gmd::tracestore
