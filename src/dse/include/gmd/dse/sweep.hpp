#pragma once

/// \file sweep.hpp
/// Runs the memory simulator over a set of design points — the
/// labeled-data-generation stage of the workflow (NVMain's role in
/// Figure 1).  Points are simulated in parallel on a thread pool with
/// dynamic load balancing (expensive points first, workers claim points
/// from a shared counter), and points that share a decode geometry
/// share one predecoded trace instead of re-splitting and re-decoding
/// the event stream per config.
///
/// Execution is fault-tolerant: each point carries a typed outcome, a
/// FailurePolicy selects fail-fast / skip-and-report / retry-with-
/// backoff, per-point wall budgets cancel stuck simulations via
/// gmd::Deadline, and an optional journal checkpoints completed rows so
/// an interrupted sweep can resume without re-simulating (see
/// checkpoint.hpp for the journal format).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "gmd/common/deadline.hpp"
#include "gmd/common/error.hpp"
#include "gmd/cpusim/memory_event.hpp"
#include "gmd/dse/design_point.hpp"
#include "gmd/memsim/metrics.hpp"
#include "gmd/memsim/sampled.hpp"

namespace gmd::tracestore {
class TraceStoreReader;
}  // namespace gmd::tracestore

namespace gmd::memsim {
class PredecodedTrace;
}  // namespace gmd::memsim

namespace gmd::dse {

/// Terminal state of one design point in a sweep.
enum class PointOutcome {
  kOk,        ///< Simulated successfully; metrics are valid.
  kFailed,    ///< Simulation (or validation) raised an error.
  kTimedOut,  ///< The per-point wall budget expired mid-simulation.
  kSkipped,   ///< Never simulated (sweep cancelled before its turn).
};

std::string to_string(PointOutcome outcome);

struct SweepRow {
  DesignPoint point;
  memsim::MemoryMetrics metrics;  ///< Valid only when ok().

  PointOutcome outcome = PointOutcome::kOk;
  ErrorCode error_code = ErrorCode::kUnspecified;  ///< Set when !ok().
  std::string error;         ///< One-line failure message; empty when ok.
  std::uint32_t attempts = 1;  ///< Simulation attempts made (retry policy).

  /// Per-metric confidence intervals, indexed like
  /// memsim::MemoryMetrics::metric_names(); non-empty exactly when the
  /// row came from chunk-sampled simulation (then `metrics` holds the
  /// scaled estimates).  A sampled sweep's hybrid points run exhaustive
  /// and carry degenerate (point) intervals.
  std::vector<memsim::MetricInterval> metric_ci;

  bool ok() const { return outcome == PointOutcome::kOk; }
  bool sampled() const { return !metric_ci.empty(); }
};

/// What run_sweep does when a point fails.
enum class FailurePolicy {
  /// Rethrow the first failure and abandon the sweep — the historical
  /// behavior, and the right default for tests where any failure is a
  /// bug.  All worker errors remain visible via
  /// ThreadPool::collected_errors() semantics inside run_sweep.
  kFailFast,
  /// Record the failure on its row (typed outcome + message) and keep
  /// sweeping; partial results survive a bad point.
  kSkip,
  /// Like kSkip, but transient failures (simulation/trace/io/
  /// unspecified codes) are retried up to max_attempts with exponential
  /// backoff.  Config errors, timeouts, and cancellations are not
  /// retried: they are deterministic or already budget-bounded.
  kRetry,
};

std::string to_string(FailurePolicy policy);

struct SweepOptions {
  std::size_t num_threads = 0;  ///< 0: hardware concurrency.
  bool log_progress = false;
  /// Build one PredecodedTrace per unique decode geometry and replay it
  /// for every point in the group (identical results, much less
  /// per-point work).  Off = predecode nothing and run every point
  /// through the raw event path, as a validation baseline.
  bool share_predecoded_traces = true;

  // --- simulation speed tiers ------------------------------------------
  /// Channel-parallel workers inside each single-technology simulation
  /// (memsim::MemSimOptions::num_workers).  Results are bit-identical
  /// at any worker count; the outer point pool is divided by this
  /// factor so total thread pressure stays near num_threads.  Hybrid
  /// points always replay serially (migration state is cross-channel).
  std::uint32_t sim_workers = 1;
  /// Fraction of trace chunks each single-technology point simulates,
  /// in (0, 1].  1.0 (the default) = exhaustive.  Below 1, points run
  /// chunk-sampled simulation: rows carry scaled estimates plus
  /// confidence intervals (SweepRow::metric_ci), the journal persists
  /// the intervals, and the sampling parameters below become part of
  /// the journal identity.  Hybrid points are always exhaustive (logged
  /// once per sweep).
  double sample_fraction = 1.0;
  /// Seed of the sampled chunk subset (deterministic per point).
  std::uint64_t sample_seed = 1;
  /// Warmup chunks replayed uncounted before each sampled window.
  std::uint32_t sample_warmup_chunks = 1;
  /// Window size in events when sampling an in-memory trace feed; a
  /// GMDT store feed samples the store's native chunk index instead.
  std::size_t sampling_chunk_events = 10000;

  // --- fault tolerance -------------------------------------------------
  FailurePolicy failure_policy = FailurePolicy::kFailFast;
  /// Upfront validate() pass over all points; config errors are
  /// rejected (fail-fast) or recorded (skip/retry) before any
  /// simulation runs.
  bool validate_points = true;
  /// Maximum simulation attempts per point under kRetry (>= 1).
  std::uint32_t max_attempts = 3;
  /// Backoff before attempt k+1 is backoff * 2^(k-1); 0 disables
  /// sleeping (attempts are still counted), keeping tests fast.
  std::chrono::milliseconds retry_backoff{0};
  /// Per-point wall budget; a point still running past it is cancelled
  /// cooperatively (outcome kTimedOut).  0 = unlimited.
  std::chrono::milliseconds point_wall_budget{0};
  /// Sweep-wide cancellation token: once cancelled, in-flight points
  /// unwind (kCancelled) and unstarted points are marked kSkipped.
  /// Non-owning; must outlive run_sweep.
  Deadline* cancel = nullptr;
  /// Deterministic fault injection for tests: invoked before every
  /// simulation attempt with (point index, 1-based attempt).  Throwing
  /// from the hook is treated exactly like the simulation failing, so
  /// every policy path is testable without real crashes.
  std::function<void(std::size_t, std::uint32_t)> fault_hook;

  // --- streaming -------------------------------------------------------
  /// Invoked once per point when its row reaches a terminal state — ok,
  /// failed, or timed-out (never for skipped/cancelled points, which a
  /// later run must re-simulate).  The distributed sweep worker uses
  /// this to journal rows under their global point indices as they
  /// complete.  May be called concurrently from sweep worker threads;
  /// the callback must be thread-safe.  Exceptions thrown from the sink
  /// propagate out of the sweep.
  std::function<void(std::size_t, const SweepRow&)> row_sink;

  // --- checkpoint / resume ---------------------------------------------
  /// When non-empty, completed rows are journaled here (atomic
  /// temp-then-rename per record batch) so a killed sweep loses at most
  /// the in-flight points.
  std::string checkpoint_path;
  /// Load an existing journal at checkpoint_path and skip its completed
  /// points after verifying the header hash of (trace checksum, point
  /// list).  A missing journal file simply starts fresh; so does an
  /// unusable one (truncated, corrupted, or written for a different
  /// trace/point list), with a typed warning — stale rows are never
  /// silently reused and a bad journal never aborts the sweep.
  bool resume = false;
};

/// Simulates every design point against the same memory trace.
/// Row order matches `points` order.
std::vector<SweepRow> run_sweep(std::span<const DesignPoint> points,
                                std::span<const cpusim::MemoryEvent> trace,
                                const SweepOptions& options = {});

/// Store-fed sweep: replays a GMDT trace store without first
/// materializing the whole event vector — single-technology groups
/// predecode chunk-by-chunk straight off the shared mapping, and the
/// raw event vector is decoded (in parallel, once) only when some point
/// needs it (hybrid groups, ungrouped points, or sharing disabled).
/// Metrics are bit-identical to the span overload on the same events.
std::vector<SweepRow> run_sweep(std::span<const DesignPoint> points,
                                const tracestore::TraceStoreReader& store,
                                const SweepOptions& options = {});

/// Options for one single-point simulation — the unit of work the DSE
/// query service schedules.  The sampling fields mirror SweepOptions
/// (and, like there, sim_workers never changes results).
struct SimulateOptions {
  /// Channel-parallel workers inside the simulation (bit-identical at
  /// any count; hybrid points always replay serially).
  std::uint32_t sim_workers = 1;
  /// Fraction of trace chunks to simulate, in (0, 1].  Below 1 the
  /// result carries scaled estimates plus confidence intervals
  /// (MetricsRow::metric_ci); hybrid points are always exhaustive and
  /// carry degenerate intervals.
  double sample_fraction = 1.0;
  std::uint64_t sample_seed = 1;
  std::uint32_t sample_warmup_chunks = 1;
  /// Identity-only for a store feed (the store's native chunk index is
  /// sampled); window size for in-memory feeds.
  std::size_t sampling_chunk_events = 10000;
  /// Cooperative cancellation / wall budget, polled inside the channel
  /// service loops.  Non-owning; may be null.
  Deadline* deadline = nullptr;

  // --- warm feeds (optional) -------------------------------------------
  /// A predecoded request stream already built for the point's
  /// single_config() decode key (e.g. a service's shared handle); the
  /// simulation replays it instead of predecoding the store again.
  /// Ignored for hybrid and sampled points.
  const memsim::PredecodedTrace* predecoded = nullptr;
  /// The store's full decoded event stream (e.g. a service's cached
  /// decode); spares hybrid points a per-call read_all().  Must match
  /// the store content.  Non-owning; must outlive the call.
  std::span<const cpusim::MemoryEvent> raw_events;
};

/// One point's simulation result: metrics, plus per-metric confidence
/// intervals exactly when sampled — the same shape as SweepRow's metric
/// fields, without the sweep bookkeeping.
struct MetricsRow {
  memsim::MemoryMetrics metrics;
  std::vector<memsim::MetricInterval> metric_ci;

  bool sampled() const { return !metric_ci.empty(); }
};

/// Simulates one design point against a GMDT store.  This is exactly
/// the sweep runner's per-point body factored out — run_sweep and the
/// query service share this one code path — so for the same (store,
/// point, sampling geometry) the returned metrics are bit-identical to
/// the SweepRow a fresh run_sweep over the same store would produce.
/// Validates the point (Error(kConfig)) before simulating.
MetricsRow simulate_point(const tracestore::TraceStoreReader& store,
                          const DesignPoint& point,
                          const SimulateOptions& options = {});

/// Simulates a single point over an in-memory trace (exhaustive,
/// serial; same code path as above with a raw-span feed).
memsim::MemoryMetrics simulate_point(
    const DesignPoint& point, std::span<const cpusim::MemoryEvent> trace);

/// Outcome tallies over a sweep's rows — the health section of
/// WorkflowResult::report().
struct SweepHealth {
  std::size_t total = 0;
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t timed_out = 0;
  std::size_t skipped = 0;
  std::size_t retries = 0;  ///< Extra attempts beyond the first, summed.
  /// Non-ok point counts keyed by ErrorCode enum value.
  std::vector<std::size_t> by_code;

  bool all_ok() const { return ok == total; }
  /// e.g. "416 points: 414 ok, 1 failed, 1 timed-out (2 retries;
  /// failures: simulation=1, timeout=1)".
  std::string summary() const;
};

SweepHealth summarize_health(std::span<const SweepRow> rows);

}  // namespace gmd::dse
