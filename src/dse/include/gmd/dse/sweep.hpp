#pragma once

/// \file sweep.hpp
/// Runs the memory simulator over a set of design points — the
/// labeled-data-generation stage of the workflow (NVMain's role in
/// Figure 1).  Points are simulated in parallel on a thread pool with
/// dynamic load balancing (expensive points first, workers claim points
/// from a shared counter), and points that share a decode geometry
/// share one predecoded trace instead of re-splitting and re-decoding
/// the event stream per config.

#include <cstddef>
#include <span>
#include <vector>

#include "gmd/cpusim/memory_event.hpp"
#include "gmd/dse/design_point.hpp"
#include "gmd/memsim/metrics.hpp"

namespace gmd::dse {

struct SweepRow {
  DesignPoint point;
  memsim::MemoryMetrics metrics;
};

struct SweepOptions {
  std::size_t num_threads = 0;  ///< 0: hardware concurrency.
  bool log_progress = false;
  /// Build one PredecodedTrace per unique decode geometry and replay it
  /// for every point in the group (identical results, much less
  /// per-point work).  Off = predecode nothing and run every point
  /// through the raw event path, as a validation baseline.
  bool share_predecoded_traces = true;
};

/// Simulates every design point against the same memory trace.
/// Row order matches `points` order.
std::vector<SweepRow> run_sweep(std::span<const DesignPoint> points,
                                std::span<const cpusim::MemoryEvent> trace,
                                const SweepOptions& options = {});

/// Simulates a single point.
memsim::MemoryMetrics simulate_point(
    const DesignPoint& point, std::span<const cpusim::MemoryEvent> trace);

}  // namespace gmd::dse
