#pragma once

/// \file distributed.hpp
/// Distributed sweep execution: lease-based multi-process sharding that
/// survives worker death.
///
/// Roles (all coordinating through one run directory, see shard.hpp):
///
///  - run_sweep_worker(): claims shard tasks through atomic-rename
///    leases, simulates the claimed point ranges with the ordinary
///    run_sweep fast paths against the shared (mmap'd, read-only) GMDT
///    store, and appends every terminal row to its own checkpoint
///    journal under the point's GLOBAL index.  A worker owns exactly
///    one journal file, so journal writes need no cross-process
///    locking.  A background heartbeat keeps each held lease stamped;
///    when the stamp reports Error(kLeaseExpired) — the supervisor
///    presumed this worker dead — the shard's in-flight work is
///    cancelled cooperatively and the worker moves on.
///
///  - supervise(): plans the shards, issues task files, watches lease
///    liveness (content change on its own steady clock — see
///    gmd::StalenessTracker), expires stalled leases by re-issuing the
///    shard under the next generation, and every poll re-derives
///    coverage by merging all worker journals.  When every point is
///    covered it writes the merged sweep.csv (same writer as the
///    single-process pipeline) and the run.complete marker.
///
///  - run_sweep_distributed(): convenience fork-based runner — forks N
///    worker processes (each inherits the parent's store mapping:
///    true zero-copy sharing), supervises them, reaps and respawns dead
///    ones, and returns rows bit-identical to run_sweep() on the same
///    inputs.  Includes a deterministic fault-injection knob (kill K
///    workers after P journaled points via _Exit, the SIGKILL
///    stand-in) so crash recovery is testable in-process.
///
/// Correctness rests on determinism, not mutual exclusion: any point
/// simulated by any worker yields the bit-identical row, and the merge
/// deduplicates by global point index (journals in filename order,
/// first record wins), so stolen leases, double claims, and resurrected
/// workers cost duplicate work only.  Completion is journal coverage of
/// every index — `fail` records count, distinguishing "failed
/// terminally" from "never ran" so a deterministically failing shard is
/// not re-issued forever.

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gmd/common/deadline.hpp"
#include "gmd/dse/checkpoint.hpp"
#include "gmd/dse/shard.hpp"
#include "gmd/dse/sweep.hpp"

namespace gmd::tracestore {
class TraceStoreReader;
}

namespace gmd::dse {

/// Counters surfaced by the supervisor/runner for reporting and tests.
struct DistributedStats {
  std::size_t shards = 0;            ///< Shards in the plan.
  std::size_t tasks_issued = 0;      ///< Task files written (all gens).
  std::size_t leases_expired = 0;    ///< Stalled leases re-issued.
  std::size_t stale_temps_removed = 0;  ///< *.tmp reclaimed at startup.
  std::size_t journal_warnings = 0;  ///< Unusable journals at last merge.
  std::size_t duplicate_rows = 0;    ///< Rows deduplicated at last merge.
  std::size_t workers_respawned = 0;  ///< Fork runner only.
};

/// Creates (or adopts) the run directory for the sweep identified by
/// `key`: makes the subdirectories, reclaims stale *.tmp files from a
/// previous crash (logged), clears a stale run.complete marker, and
/// writes run.meta — or, when one already exists, verifies its key
/// (Error(kConfig) on mismatch: the directory belongs to a different
/// sweep) and adopts its shard geometry so a resumed run shards
/// identically.  Returns the resulting plan.
ShardPlan prepare_run(const RunDir& run, const JournalKey& key,
                      std::size_t shard_size,
                      DistributedStats* stats = nullptr);

/// Tolerant merge of every journal in the run directory.
struct MergeResult {
  /// rows[i] engaged iff point i is covered by some journal (ok or
  /// fail record).  Deterministic: journals in filename order, first
  /// record per index wins.
  std::vector<std::optional<SweepRow>> rows;
  std::size_t covered = 0;
  std::size_t duplicates = 0;
  /// One entry per journal that failed to load (corrupt, truncated,
  /// foreign); its rows count as never-run and the work is re-issued.
  std::vector<std::string> warnings;

  bool complete() const { return covered == rows.size(); }
};

MergeResult merge_journals(const RunDir& run, const JournalKey& key);

struct WorkerOptions {
  /// Names this worker's journal file and lease stamps.  Must be unique
  /// among LIVE workers of a run; a respawned worker may (and should)
  /// reuse its predecessor's id to adopt that journal.
  std::string worker_id = "worker";
  /// Base simulation options (threads, sampling, failure policy...).
  /// checkpoint_path/resume/row_sink/cancel are owned by the worker and
  /// ignored; kFailFast is executed as kSkip so terminal failures
  /// become journal `fail` records instead of re-issued work (the
  /// fork runner re-raises them at the end).
  SweepOptions sweep;
  std::chrono::milliseconds heartbeat_interval{100};
  std::chrono::milliseconds poll_interval{25};
  /// Exit after this long with nothing claimable and the run still
  /// incomplete (covers a dead supervisor).  The normal exit is the
  /// run.complete marker appearing.
  std::chrono::milliseconds idle_timeout{30000};
  Deadline* cancel = nullptr;  ///< Optional external stop. Non-owning.
  /// Called after every journaled point with the worker's running total
  /// — the fault-injection hook (kill-after-K) and progress probe.
  std::function<void(std::size_t)> progress_hook;
};

struct WorkerResult {
  std::size_t shards_completed = 0;
  std::size_t shards_abandoned = 0;  ///< Lease lost mid-shard.
  std::size_t points_simulated = 0;  ///< Journaled by this invocation.
  /// Tallies over this invocation's terminal rows; points abandoned on
  /// a lost lease are counted as skipped with code kLeaseExpired, so
  /// lease churn is visible in SweepHealth::summary().
  SweepHealth health;
};

/// Runs the worker loop until the run completes, the idle timeout
/// expires, or `options.cancel` fires.  `points` must be the FULL
/// design-point list of the run (identity-checked against run.meta;
/// Error(kConfig) on mismatch).
WorkerResult run_sweep_worker(const RunDir& run,
                              std::span<const DesignPoint> points,
                              const tracestore::TraceStoreReader& store,
                              const WorkerOptions& options);

struct SupervisorOptions {
  std::size_t shard_size = 16;
  /// A lease whose content has not changed for this long (on the
  /// supervisor's steady clock) is expired and its shard re-issued.
  std::chrono::milliseconds lease_ttl{2000};
  std::chrono::milliseconds poll_interval{25};
  /// Hard bound on re-issues per shard; exceeding it throws
  /// Error(kSimulation) — the shard is poisoning every worker that
  /// touches it without ever journaling a terminal row.
  std::uint64_t max_generations = 64;
  Deadline* cancel = nullptr;  ///< Optional external stop. Non-owning.
  /// Called once per poll after the invariant pass — the fork runner
  /// reaps/respawns children here.  May throw to abort the run.
  std::function<void()> tick;
};

/// Supervises the run to completion and returns the merged rows in
/// point order (row.point filled from `points`).  Also writes
/// sweep.csv (ok rows, same writer as the pipeline) and run.complete.
/// Safe to call on a fresh directory (issues all shards) or a
/// partially complete one (issues only what the journals do not cover).
std::vector<SweepRow> supervise(const RunDir& run,
                                std::span<const DesignPoint> points,
                                const JournalKey& key,
                                const SupervisorOptions& options,
                                DistributedStats* stats = nullptr);

struct DistributedSweepOptions {
  std::size_t num_workers = 4;
  std::size_t shard_size = 16;
  std::chrono::milliseconds lease_ttl{2000};
  std::chrono::milliseconds heartbeat_interval{100};
  std::chrono::milliseconds poll_interval{25};
  std::uint64_t max_generations = 64;
  /// Respawn a worker process that died before the run completed, up to
  /// max_respawns total.  With respawning off (or the budget spent) the
  /// survivors absorb the dead worker's shards via lease expiry.
  bool respawn_dead_workers = true;
  std::size_t max_respawns = 16;

  // --- deterministic fault injection (tests/CI) ------------------------
  /// The first kill_workers initial workers _Exit(137) — no unwinding,
  /// no flushes, the SIGKILL stand-in — after journaling
  /// kill_after_points points.  Respawned replacements run clean.
  std::size_t kill_workers = 0;
  std::size_t kill_after_points = 0;

  Deadline* cancel = nullptr;  ///< Optional external stop. Non-owning.
};

/// Forks `num_workers` worker processes over the store (children
/// inherit the parent's read-only mapping — zero-copy sharing),
/// supervises them to completion, and returns rows bit-identical to
/// run_sweep(points, store, sweep) on the same inputs.  The run
/// directory persists afterwards (journals, sweep.csv, run.complete) —
/// call again with the same arguments to resume/no-op.  Under
/// FailurePolicy::kFailFast the first failed row is re-thrown with its
/// recorded code, matching in-process semantics.  POSIX only; throws
/// Error(kConfig) elsewhere.  Must not be called from a process whose
/// other threads hold locks (fork inherits only the calling thread).
std::vector<SweepRow> run_sweep_distributed(
    std::span<const DesignPoint> points,
    const tracestore::TraceStoreReader& store, const std::string& run_dir,
    const SweepOptions& sweep, const DistributedSweepOptions& options,
    DistributedStats* stats = nullptr);

}  // namespace gmd::dse
