#pragma once

/// \file dataset_builder.hpp
/// Turns sweep results into ML-ready datasets: design-point features as
/// predictors, one memory response metric as the target, everything
/// min-max scaled as in the paper (§IV-A4).

#include <span>
#include <string>
#include <vector>

#include "gmd/common/csv.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/ml/dataset.hpp"
#include "gmd/ml/scaler.hpp"

namespace gmd::dse {

/// A dataset for one target metric, plus the scalers needed to map
/// predictions back to physical units.
struct MetricDataset {
  ml::Dataset data;            ///< Scaled features and scaled target.
  ml::MinMaxScaler x_scaler;   ///< Fitted on the raw feature matrix.
  ml::MinMaxScaler y_scaler;   ///< Fitted on the raw target series.
  std::vector<double> raw_y;   ///< Unscaled target, aligned with rows.
  /// Input rows dropped because a feature or the target was non-finite
  /// (NaN/Inf).  Quarantined rows are excluded from the dataset and the
  /// scaler fits; the count is surfaced so degraded training runs are
  /// visible rather than silent.
  std::size_t quarantined_rows = 0;
};

/// The six target metrics the paper models, by dataset column name
/// (matches memsim::MemoryMetrics::metric_names()).
const std::vector<std::string>& target_metric_names();

/// Builds the scaled dataset for `metric_name`.  Rows carrying a
/// non-finite feature or target are quarantined (dropped and counted in
/// MetricDataset::quarantined_rows, with a warning) instead of poisoning
/// the scalers; when no finite row remains the build throws
/// Error(kInvalidData).
MetricDataset build_metric_dataset(std::span<const SweepRow> rows,
                                   const std::string& metric_name);

/// Full results table (features + all six metrics), e.g. for CSV export
/// or external analysis — the "comprehensive dataset" of §III-C.
CsvTable sweep_to_table(std::span<const SweepRow> rows);

/// Rebuilds sweep rows from a table produced by sweep_to_table (feature
/// columns are decoded back into DesignPoints).  Round-trips with it.
std::vector<SweepRow> table_to_sweep(const CsvTable& table);

// --- multi-workload datasets (§V generalizability) ---------------------

/// One workload's sweep plus the trace descriptors that characterize
/// the workload to the model.  Without these, rows from different
/// workloads share identical features but carry conflicting labels and
/// no model can separate them.
struct WorkloadSweep {
  std::string name;
  std::vector<SweepRow> rows;
  // Trace descriptors (from trace::compute_stats or equivalent).
  double log10_events = 0.0;
  double read_fraction = 1.0;
  double footprint_kb = 0.0;
};

/// Column names of the workload descriptor features appended after the
/// design-point features.
const std::vector<std::string>& workload_feature_names();

/// Builds one scaled dataset across several workloads: design-point
/// features + workload descriptors -> metric.  Rows keep input order
/// (workload-major).
MetricDataset build_multi_workload_dataset(
    std::span<const WorkloadSweep> sweeps, const std::string& metric_name);

}  // namespace gmd::dse
