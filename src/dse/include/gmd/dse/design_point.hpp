#pragma once

/// \file design_point.hpp
/// One point in the memory design space the paper sweeps: memory
/// technology, CPU frequency, controller frequency, channel count, and
/// the NVM row-activation time tRCD.

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "gmd/memsim/config.hpp"
#include "gmd/memsim/hybrid.hpp"

namespace gmd::dse {

enum class MemoryKind { kDram, kNvm, kHybrid };

std::string to_string(MemoryKind kind);

struct DesignPoint {
  MemoryKind kind = MemoryKind::kDram;
  std::uint32_t cpu_freq_mhz = 2000;
  std::uint32_t ctrl_freq_mhz = 400;
  std::uint32_t channels = 2;
  /// NVM/hybrid row-activation time; fixed at 9 for pure DRAM.
  std::uint32_t trcd = 9;
  /// Hybrid DRAM capacity fraction; ignored for pure technologies.
  double dram_fraction = 0.5;

  friend bool operator==(const DesignPoint&, const DesignPoint&) = default;

  /// Short identifier, e.g. "nvm_c5000_m666_ch4_t50".
  std::string id() const;

  /// Numeric ML feature vector; see feature_names() for the schema:
  /// {cpu_mhz, ctrl_mhz, channels, trcd, tras, is_dram, is_nvm, is_hybrid}.
  std::vector<double> features() const;
  /// Allocation-free variant: writes the same values into `out`, which
  /// must hold exactly feature_names().size() doubles.  Streaming
  /// scorers decode millions of rows through this path.
  void write_features(std::span<double> out) const;
  static const std::vector<std::string>& feature_names();

  /// Materializes the simulator configuration for this point.
  memsim::MemoryConfig single_config() const;   ///< kDram / kNvm only.
  memsim::HybridConfig hybrid_config() const;   ///< kHybrid only.
};

/// Upfront design-point validation: materializes and validates the
/// point's simulator configuration without running anything.  Throws
/// gmd::Error with ErrorCode::kConfig naming the point, so misconfigured
/// points are rejected before a sweep spends any simulation time.
void validate(const DesignPoint& point);

}  // namespace gmd::dse
