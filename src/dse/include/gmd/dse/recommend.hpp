#pragma once

/// \file recommend.hpp
/// The co-design recommendation stage (§IV-B): for each response
/// metric, find the best design point — either directly from simulated
/// results or through a trained surrogate over a (possibly larger)
/// candidate space — and render the paper-style recommendation text.

#include <span>
#include <string>
#include <vector>

#include "gmd/dse/surrogate.hpp"
#include "gmd/dse/sweep.hpp"

namespace gmd::dse {

/// Whether a metric is minimized or maximized when "better".
enum class Direction { kMinimize, kMaximize };
Direction metric_direction(const std::string& metric);

struct Recommendation {
  std::string metric;
  DesignPoint best;
  double value = 0.0;      ///< Metric value at `best` (physical units).
  std::string rationale;   ///< One-sentence explanation.
};

/// Picks the best simulated point per metric.
std::vector<Recommendation> recommend_from_sweep(
    std::span<const SweepRow> rows);

/// Picks the best point per metric by *surrogate prediction* over a
/// candidate space (the ML-accelerated DSE the paper proposes): trains
/// the chosen model family on `labeled` rows, scores `candidates`.
std::vector<Recommendation> recommend_from_surrogate(
    std::span<const SweepRow> labeled,
    std::span<const DesignPoint> candidates,
    const std::string& model_name = "svr");

/// Paper-style report: the §IV-B bullet list.
std::string format_recommendations(std::span<const Recommendation> recs);

}  // namespace gmd::dse
