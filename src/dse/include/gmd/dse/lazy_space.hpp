#pragma once

/// \file lazy_space.hpp
/// Indexed, never-materialized design spaces.  A LazySpace is a
/// cross-product view over GridAxes (or one of the paper's fixed point
/// sets) with O(1) index -> DesignPoint decode, so a million-point
/// space costs a few hundred bytes of prefix tables instead of a
/// million DesignPoints.  The adaptive explorer streams such spaces
/// block-at-a-time (decode_block) and the classic enumerators
/// (enumerate_grid, paper_design_space, reduced_design_space) are thin
/// materialize() wrappers over the same decode, so eager and lazy
/// callers can never disagree about point order.
///
/// Point order is load-bearing — journals and sweep CSVs key off the
/// point list — and each layout reproduces its historical enumerator
/// exactly:
///   kGrid:    kind -> cpu -> ctrl -> channels -> trcd   (enumerate_grid)
///   kPaper:   cpu -> ctrl -> channels -> [dram, (nvm,hybrid) x trcd]
///   kReduced: cpu -> ctrl -> channels -> [dram, nvm, hybrid] @ mid-trcd

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "gmd/dse/config_space.hpp"
#include "gmd/dse/design_point.hpp"

namespace gmd::dse {

class LazySpace {
 public:
  /// Cross product of `axes` in enumerate_grid order (kind-major).
  /// Validation matches enumerate_grid: every axis must be non-empty,
  /// and when `axes.trcds` is empty the NVM/hybrid tRCD values come
  /// from memsim::nvm_trcd_set(ctrl) — which only the paper's four
  /// controller clocks have, so custom clocks need explicit trcds.
  explicit LazySpace(const GridAxes& axes);

  /// The paper's 416-point sweep, in paper_design_space() order.
  static LazySpace paper();

  /// The 96-point reduced grid, in reduced_design_space() order.
  static LazySpace reduced();

  /// Axes of a >= 10^6-point space: fine-grained CPU/controller
  /// frequency grids, 1..16 channels, and a dense NVM tRCD sweep —
  /// the ROADMAP item-4 space a dense sweep cannot cover.
  static GridAxes million_axes();

  std::size_t size() const { return size_; }

  /// O(1) decode of point `index` (< size()).
  DesignPoint operator[](std::size_t index) const;

  /// Decodes [begin, end) into `out` (resized to end - begin).
  void decode_block(std::size_t begin, std::size_t end,
                    std::vector<DesignPoint>& out) const;

  /// Decodes the ML feature rows of [begin, end) straight into a
  /// row-major buffer of (end - begin) x DesignPoint::feature_names()
  /// .size() doubles — the scoring hot path, skipping the per-point
  /// vector DesignPoint::features() allocates.
  void decode_features(std::size_t begin, std::size_t end,
                       std::span<double> out) const;

  /// The whole space as a vector — the classic enumerators.
  std::vector<DesignPoint> materialize() const;

  /// Streamed points_checksum(materialize()) without materializing:
  /// identical to checkpoint.cpp's points_checksum over the same
  /// points, so journals keyed off a lazy space and off its
  /// materialized vector agree.
  std::uint64_t checksum() const;

  /// Per-feature min/max over the whole space (streamed in blocks) —
  /// fits a MinMaxScaler::from_bounds once for the explorer instead of
  /// re-fitting scalers on every round's labeled subset.
  void feature_bounds(std::vector<double>& mins,
                      std::vector<double>& maxs) const;

 private:
  enum class Layout { kGrid, kPaper, kReduced };

  LazySpace() = default;
  void build_grid_tables(const GridAxes& axes);
  void build_cell_tables(Layout layout);

  Layout layout_ = Layout::kGrid;
  std::size_t size_ = 0;

  // Shared axes.
  std::vector<MemoryKind> kinds_;
  std::vector<std::uint32_t> cpus_;
  std::vector<std::uint32_t> ctrls_;
  std::vector<std::uint32_t> channels_;

  // kGrid: per-kind, per-ctrl decode tables.  For kind k,
  //   kind_offset_[k]  points before kind k (kind_offset_ has K+1 entries)
  //   cpu_block_[k]    points per cpu value
  //   ctrl_offset_[k]  prefix over ctrl of channels * trcd-count
  //                    (K x (C+1), flattened)
  // trcd values per (kind, ctrl) live in trcds_[k * C + c].
  std::vector<std::size_t> kind_offset_;
  std::vector<std::size_t> cpu_block_;
  std::vector<std::size_t> ctrl_offset_;
  std::vector<std::vector<std::uint32_t>> trcds_;

  // kPaper / kReduced: per-ctrl (kind, trcd) cells.  cell_[c] lists the
  // points of one (cpu, ctrl, channels) coordinate in emission order;
  // cell_ctrl_offset_ is the prefix over ctrl of channels * cell size,
  // and one cpu value spans cell_cpu_block_ points.
  struct CellEntry {
    MemoryKind kind;
    std::uint32_t trcd;
  };
  std::vector<std::vector<CellEntry>> cell_;
  std::vector<std::size_t> cell_ctrl_offset_;
  std::size_t cell_cpu_block_ = 0;
};

}  // namespace gmd::dse
