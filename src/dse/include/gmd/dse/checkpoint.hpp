#pragma once

/// \file checkpoint.hpp
/// Sweep checkpoint journal: persists completed sweep rows so an
/// interrupted labeled-data-generation run resumes where it stopped
/// instead of re-simulating hours of finished points.
///
/// File format (plain text, one record per line):
///
///   gmd-sweep-journal v1 trace=<16-hex> points=<16-hex> count=<n> [owner=<id>]
///   row <index> <attempts> <8 u64 fields> <9 double fields> <nepochs>
///       [<epoch> <reads> <writes> <2 double fields> ...]
///       [ci <k> <lo hi doubles ...>]
///   fail <index> <attempts> <code> <outcome> [message...]
///
/// The `ci` trailer is present only on rows of a chunk-sampled sweep
/// (SweepRow::metric_ci); a sampled sweep also mixes its sampling
/// parameters into the points= hash, so sampled and exhaustive journals
/// can never resume each other.
///
/// The optional `owner=` header token namespaces per-worker journals in
/// a distributed sweep run: every worker writes its own journal file
/// (single writer per file, so the atomic-rewrite protocol needs no
/// cross-process locking) and the supervisor merges them by point
/// index.  `fail` records mark points that reached a terminal non-ok
/// outcome — distributed workers persist them so the supervisor can
/// tell "this point failed" from "this point was never run" and never
/// re-issues a deterministically failing shard forever.  Single-process
/// sweeps journal only ok rows (failures re-simulate on resume),
/// exactly as before.
///
/// The header hash pair is FNV-1a 64 over the trace events and over the
/// design-point list; resume refuses a journal whose hashes or point
/// count do not match the current invocation.  Doubles are stored as
/// IEEE-754 bit patterns in hex, so resumed rows are bit-identical to
/// the rows an uninterrupted sweep would have produced.  Every flush
/// rewrites the whole journal through gmd::atomic_write_file (temp,
/// fsync, rename) — a crash mid-write can never leave a torn journal,
/// only the previous consistent one.  A zero-length journal, or one
/// holding a single torn line (a crash during the very first append on
/// a filesystem without atomic rename durability), loads as empty with
/// a warning rather than a parse error.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "gmd/cpusim/memory_event.hpp"
#include "gmd/dse/design_point.hpp"
#include "gmd/dse/sweep.hpp"

namespace gmd::tracestore {
class TraceStoreReader;
}

namespace gmd::dse {

/// Identity of a sweep invocation: a journal is only resumable against
/// the same trace and point list it was written for.
struct JournalKey {
  std::uint64_t trace_hash = 0;
  std::uint64_t points_hash = 0;
  std::size_t num_points = 0;

  friend bool operator==(const JournalKey&, const JournalKey&) = default;
};

/// FNV-1a 64 checksum of a memory trace (ticks, addresses, sizes, ops).
std::uint64_t trace_checksum(std::span<const cpusim::MemoryEvent> trace);

/// FNV-1a 64 checksum of a design-point list (all fields, in order).
std::uint64_t points_checksum(std::span<const DesignPoint> points);

JournalKey make_journal_key(std::span<const DesignPoint> points,
                            std::span<const cpusim::MemoryEvent> trace);

/// Trace identity straight off a GMDT store's header and chunk
/// directory (a hash of the per-chunk payload checksums) — no event
/// decode or whole-file re-hash.  Note this is a different identity
/// domain than trace_checksum(events): a journal keyed against a store
/// is resumable only against the same store content.
std::uint64_t trace_checksum(const tracestore::TraceStoreReader& store);

JournalKey make_journal_key(std::span<const DesignPoint> points,
                            const tracestore::TraceStoreReader& store);

/// The identity a sweep invocation actually journals under: `base` as
/// computed by make_journal_key, with the sampling geometry (fraction,
/// seed, warmup, chunking) mixed into points_hash when `options`
/// samples.  Sampled rows are estimates for one specific geometry, so a
/// journal written under one geometry — or an exhaustive one — must
/// never resume another.  Single-process checkpointing and the
/// distributed run directory both key off this, which is what makes a
/// distributed run resumable against the same identity rules.
JournalKey sweep_identity(JournalKey base, const SweepOptions& options);

/// Append-only journal of completed (ok) sweep rows.  Thread-safe:
/// sweep workers record rows concurrently; each record is flushed with
/// an atomic temp-then-rename rewrite.
class SweepJournal {
 public:
  /// Binds the journal to `path` for the sweep identified by `key`.
  /// A non-empty `owner` (a distributed worker id) is written into the
  /// header as a namespace tag; it does not affect load() matching.
  /// Nothing is written until the first record().
  SweepJournal(std::string path, const JournalKey& key,
               std::string owner = {});

  /// Reads an existing journal at `path` and returns its terminal rows
  /// as (point index, row) pairs — ok rows plus any `fail` records; the
  /// loaded entries are retained so later flushes preserve them.  A
  /// missing file yields an empty result; so do a zero-length file and
  /// a single torn line (a crash during the first append), each with a
  /// GMD_LOG_WARN.  Throws Error(kConfig) when the header does not
  /// match `key` (wrong trace, wrong point list) and Error(kIo) on a
  /// corrupted journal (valid header, rotten records); on throw no
  /// entries are retained, so a caller that catches and continues
  /// starts from scratch and the next record() rewrites a consistent
  /// journal.
  std::vector<std::pair<std::size_t, SweepRow>> load();

  /// Records one terminal row and flushes the journal atomically.  An
  /// ok row becomes a `row` record; a failed/timed-out row becomes a
  /// `fail` record (outcome, code, and message survive the round trip).
  void record(std::size_t index, const SweepRow& row);

  /// Number of rows currently journaled.
  std::size_t size() const;

  const std::string& path() const { return path_; }
  const std::string& owner() const { return owner_; }

 private:
  void flush_locked();  ///< Rewrite temp file + rename; mutex_ held.

  std::string path_;
  JournalKey key_;
  std::string owner_;
  mutable std::mutex mutex_;
  std::vector<std::pair<std::size_t, SweepRow>> entries_;  // metrics + attempts
};

/// Tolerant read of a (possibly foreign, possibly rotten) journal, for
/// the distributed supervisor and workers scanning each other's files:
/// a journal that fails to load for ANY reason — corrupt, truncated,
/// written for a different sweep — yields no rows plus the typed
/// failure message in `warning`, never a throw.  Lost rows are simply
/// re-issued work.
struct JournalScan {
  std::vector<std::pair<std::size_t, SweepRow>> rows;
  std::string warning;  ///< Empty when the journal loaded cleanly.
};

JournalScan scan_journal(const std::string& path, const JournalKey& key);

}  // namespace gmd::dse
