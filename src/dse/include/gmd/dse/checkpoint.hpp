#pragma once

/// \file checkpoint.hpp
/// Sweep checkpoint journal: persists completed sweep rows so an
/// interrupted labeled-data-generation run resumes where it stopped
/// instead of re-simulating hours of finished points.
///
/// File format (plain text, one record per line):
///
///   gmd-sweep-journal v1 trace=<16-hex> points=<16-hex> count=<n>
///   row <index> <attempts> <8 u64 fields> <9 double fields> <nepochs>
///       [<epoch> <reads> <writes> <2 double fields> ...]
///       [ci <k> <lo hi doubles ...>]
///
/// The `ci` trailer is present only on rows of a chunk-sampled sweep
/// (SweepRow::metric_ci); a sampled sweep also mixes its sampling
/// parameters into the points= hash, so sampled and exhaustive journals
/// can never resume each other.
///
/// The header hash pair is FNV-1a 64 over the trace events and over the
/// design-point list; resume refuses a journal whose hashes or point
/// count do not match the current invocation.  Doubles are stored as
/// IEEE-754 bit patterns in hex, so resumed rows are bit-identical to
/// the rows an uninterrupted sweep would have produced.  Every flush
/// rewrites the whole journal through gmd::atomic_write_file (temp,
/// fsync, rename) — a crash mid-write can never leave a torn journal,
/// only the previous consistent one.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "gmd/cpusim/memory_event.hpp"
#include "gmd/dse/design_point.hpp"
#include "gmd/dse/sweep.hpp"

namespace gmd::tracestore {
class TraceStoreReader;
}

namespace gmd::dse {

/// Identity of a sweep invocation: a journal is only resumable against
/// the same trace and point list it was written for.
struct JournalKey {
  std::uint64_t trace_hash = 0;
  std::uint64_t points_hash = 0;
  std::size_t num_points = 0;

  friend bool operator==(const JournalKey&, const JournalKey&) = default;
};

/// FNV-1a 64 checksum of a memory trace (ticks, addresses, sizes, ops).
std::uint64_t trace_checksum(std::span<const cpusim::MemoryEvent> trace);

/// FNV-1a 64 checksum of a design-point list (all fields, in order).
std::uint64_t points_checksum(std::span<const DesignPoint> points);

JournalKey make_journal_key(std::span<const DesignPoint> points,
                            std::span<const cpusim::MemoryEvent> trace);

/// Trace identity straight off a GMDT store's header and chunk
/// directory (a hash of the per-chunk payload checksums) — no event
/// decode or whole-file re-hash.  Note this is a different identity
/// domain than trace_checksum(events): a journal keyed against a store
/// is resumable only against the same store content.
std::uint64_t trace_checksum(const tracestore::TraceStoreReader& store);

JournalKey make_journal_key(std::span<const DesignPoint> points,
                            const tracestore::TraceStoreReader& store);

/// Append-only journal of completed (ok) sweep rows.  Thread-safe:
/// sweep workers record rows concurrently; each record is flushed with
/// an atomic temp-then-rename rewrite.
class SweepJournal {
 public:
  /// Binds the journal to `path` for the sweep identified by `key`.
  /// Nothing is written until the first record().
  SweepJournal(std::string path, const JournalKey& key);

  /// Reads an existing journal at `path` and returns its completed rows
  /// as (point index, row) pairs; the loaded entries are retained so
  /// later flushes preserve them.  A missing file yields an empty
  /// result.  Throws Error(kConfig) when the header does not match
  /// `key` (wrong trace, wrong point list) and Error(kIo) on a
  /// corrupted or unreadable journal; on throw no entries are retained,
  /// so a caller that catches and continues starts from scratch and the
  /// next record() rewrites a consistent journal.
  std::vector<std::pair<std::size_t, SweepRow>> load();

  /// Records one completed row and flushes the journal atomically.
  void record(std::size_t index, const SweepRow& row);

  /// Number of rows currently journaled.
  std::size_t size() const;

  const std::string& path() const { return path_; }

 private:
  void flush_locked();  ///< Rewrite temp file + rename; mutex_ held.

  std::string path_;
  JournalKey key_;
  mutable std::mutex mutex_;
  std::vector<std::pair<std::size_t, SweepRow>> entries_;  // metrics + attempts
};

}  // namespace gmd::dse
