#pragma once

/// \file pareto.hpp
/// Multi-objective co-design.  The paper recommends a *different*
/// configuration per metric; a real deployment must pick one.  This
/// module computes the Pareto-optimal set over chosen objectives and
/// supports constrained selection ("best total latency subject to a
/// power cap") — the decision tools an architect applies on top of the
/// per-metric optima.

#include <optional>
#include <span>
#include <string>
#include <vector>

#include "gmd/dse/recommend.hpp"
#include "gmd/dse/sweep.hpp"

namespace gmd::dse {

/// One objective: a metric name plus its improvement direction
/// (defaults to the metric's natural direction).
struct Objective {
  std::string metric;
  Direction direction;

  explicit Objective(std::string metric_name)
      : metric(std::move(metric_name)),
        direction(metric_direction(metric)) {}
  Objective(std::string metric_name, Direction dir)
      : metric(std::move(metric_name)), direction(dir) {}
};

/// Returns the indices (into `rows`) of the Pareto-optimal points:
/// those not dominated in every objective by any other point.  Order
/// follows the input.  At least one objective is required.
std::vector<std::size_t> pareto_front(std::span<const SweepRow> rows,
                                      std::span<const Objective> objectives);

/// True when `a` dominates `b`: at least as good in every objective and
/// strictly better in at least one.
bool dominates(const SweepRow& a, const SweepRow& b,
               std::span<const Objective> objectives);

/// An upper/lower bound on one metric ("power_w <= 0.1").
struct Constraint {
  std::string metric;
  double bound = 0.0;
  bool is_upper_bound = true;  ///< false: metric must be >= bound.

  bool satisfied_by(const SweepRow& row) const;
};

/// Best row for `objective` among those satisfying every constraint.
/// Returns nullopt when no row qualifies.
std::optional<std::size_t> best_under_constraints(
    std::span<const SweepRow> rows, const Objective& objective,
    std::span<const Constraint> constraints);

/// Renders the front as a table of objective values per design point.
std::string format_pareto_front(std::span<const SweepRow> rows,
                                std::span<const std::size_t> front,
                                std::span<const Objective> objectives);

}  // namespace gmd::dse
