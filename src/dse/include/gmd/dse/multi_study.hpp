#pragma once

/// \file multi_study.hpp
/// Multi-workload co-design study: the operational form of the paper's
/// §V generalizability question.  Runs the trace/sweep pipeline for
/// several graph kernels, builds the descriptor-augmented dataset, and
/// quantifies cross-workload generalization by leave-one-workload-out
/// (LOWO) evaluation of the chosen surrogate family.

#include <cstdint>
#include <string>
#include <vector>

#include "gmd/dse/dataset_builder.hpp"
#include "gmd/dse/design_point.hpp"

namespace gmd::dse {

struct MultiStudyConfig {
  std::vector<std::string> workloads = {"bfs", "pagerank", "cc", "sssp"};
  std::uint32_t graph_vertices = 1024;
  unsigned edge_factor = 16;
  std::uint64_t seed = 1;
  std::vector<DesignPoint> design_points;  ///< Empty: reduced space.
  std::vector<std::string> metrics;        ///< Empty: all six.
  std::string surrogate_model = "svr";
  std::size_t num_threads = 0;
};

struct MultiStudyResult {
  std::vector<WorkloadSweep> sweeps;  ///< One per workload, in order.

  struct LowoScore {
    std::string held_out_workload;
    std::string metric;
    double r2 = 0.0;
    double mse = 0.0;  ///< On scaled targets.
  };
  /// One entry per (workload, metric): the surrogate trained on every
  /// *other* workload, evaluated on this one.
  std::vector<LowoScore> lowo;

  /// Per-metric mean LOWO R² across held-out workloads.
  double mean_lowo_r2(const std::string& metric) const;

  std::string summary() const;
};

MultiStudyResult run_multi_workload_study(const MultiStudyConfig& config);

}  // namespace gmd::dse
