#pragma once

/// \file workflow.hpp
/// The end-to-end co-design workflow of Figure 1:
///   graph generation -> CPU simulation (gem5 stand-in) -> trace
///   conversion -> memory-simulation sweep (NVMain stand-in) ->
///   dataset -> surrogate training -> recommendations.

#include <cstdint>
#include <string>
#include <vector>

#include "gmd/cpusim/memory_event.hpp"
#include "gmd/dse/recommend.hpp"
#include "gmd/dse/surrogate.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/graph/csr.hpp"

namespace gmd::dse {

struct WorkflowConfig {
  // Workload (§III-C: GTGraph random graph, 1024 vertices, edge factor
  // 16, Graph500 BFS from a random source).
  std::uint32_t graph_vertices = 1024;
  unsigned edge_factor = 16;
  std::string workload = "bfs";  ///< bfs | dobfs | pagerank | cc | sssp | triangles.
  std::uint64_t seed = 1;

  // Trace round-trip: when non-empty, the CPU trace is written in gem5
  // format to `<trace_dir>/gem5_trace.txt`, converted in parallel to
  // the simulator input format, and re-read — exercising the same file
  // pipeline the paper ran.  Empty: events stream in memory.
  std::string trace_dir;
  /// File format of the converted trace when trace_dir is set:
  /// "text" — NVMain text at `<trace_dir>/nvmain_trace.txt`;
  /// "gmdt" — GMDT trace store at `<trace_dir>/trace.gmdt` (compressed,
  /// chunk-indexed; yields event-identical sweep inputs).
  std::string trace_format = "text";

  // Sweep.
  std::vector<DesignPoint> design_points;  ///< Empty: paper_design_space().
  std::size_t num_threads = 0;
  bool log_progress = false;
  /// Fault-tolerant execution knobs for the sweep stage: failure
  /// policy, retries, per-point deadlines, checkpoint/resume (see
  /// SweepOptions).  num_threads and log_progress above take precedence
  /// over the same fields here.
  SweepOptions sweep;

  // Surrogates.
  SurrogateOptions surrogate;
};

struct WorkflowResult {
  graph::CsrGraph graph;
  std::vector<cpusim::MemoryEvent> trace;
  std::uint64_t workload_checksum = 0;
  std::vector<SweepRow> sweep;
  SurrogateSuite surrogates;
  std::vector<Recommendation> recommendations;

  /// Rows that simulated successfully — the training set.  Equals
  /// `sweep` when every point completed.
  std::vector<SweepRow> ok_rows() const;

  /// Multi-section text report (workflow summary + sweep health +
  /// Table I + recommendations).
  std::string report() const;
};

/// Runs the whole pipeline.  Deterministic for a fixed config.
WorkflowResult run_workflow(const WorkflowConfig& config);

/// The workload-execution stage alone: builds the paper's graph and
/// returns the memory trace of the requested kernel.  When `deadline`
/// is non-null the CPU model polls it on every memory access, so a
/// hung or oversized workload unwinds with Error(kTimeout/kCancelled)
/// instead of running unbounded.
std::vector<cpusim::MemoryEvent> generate_workload_trace(
    const WorkflowConfig& config, graph::CsrGraph* graph_out = nullptr,
    std::uint64_t* checksum_out = nullptr, Deadline* deadline = nullptr);

}  // namespace gmd::dse
