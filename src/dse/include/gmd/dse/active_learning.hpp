#pragma once

/// \file active_learning.hpp
/// Pool-based active learning for label-efficient DSE — the paper's §V
/// future-work direction.  Each simulated configuration costs hours in
/// the paper's setup, so the learner picks the next configuration to
/// simulate by maximum predictive uncertainty (GP variance) instead of
/// at random.

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <vector>

#include "gmd/dse/dataset_builder.hpp"
#include "gmd/dse/sweep.hpp"

namespace gmd::dse {

struct ActiveLearningOptions {
  std::size_t initial_labels = 10;   ///< Random seed set size.
  std::size_t label_budget = 60;     ///< Total labels allowed.
  std::size_t batch_size = 1;        ///< Labels acquired per round.
  std::uint64_t seed = 1;
  double gp_gamma = 2.0;             ///< RBF width on scaled features.
  double gp_noise = 1e-4;

  /// Surrogate family: "gp" (predictive variance) or "rf" (a random
  /// forest whose across-tree spread is the uncertainty signal).  The
  /// rf path presorts the pool's feature orders ONCE and every round's
  /// retrain derives its labeled subset via TrainingWorkspace::
  /// for_sample — no per-round re-sort.
  std::string model = "gp";
  std::size_t rf_trees = 50;    ///< Trees per rf retrain.
  std::size_t num_threads = 1;  ///< rf training threads (fit is
                                ///< bit-identical at any count).
};

/// One point of the learning curve.
struct LearningCurvePoint {
  std::size_t labels_used = 0;
  double r2_on_holdout = 0.0;
  double mse_on_holdout = 0.0;
};

struct ActiveLearningResult {
  std::vector<LearningCurvePoint> curve;
  std::vector<std::size_t> acquisition_order;  ///< Pool indices, in order.
};

/// Runs active learning against a fully pre-simulated pool (rows act
/// as the oracle): learns `metric`, evaluates each round on `holdout`.
ActiveLearningResult run_active_learning(
    std::span<const SweepRow> pool, std::span<const SweepRow> holdout,
    const std::string& metric, const ActiveLearningOptions& options = {});

/// Random-sampling baseline with the same budget and evaluation.
ActiveLearningResult run_random_sampling(
    std::span<const SweepRow> pool, std::span<const SweepRow> holdout,
    const std::string& metric, const ActiveLearningOptions& options = {});

}  // namespace gmd::dse
