#pragma once

/// \file explorer.hpp
/// Closed-loop surrogate-guided exploration of lazy design spaces — the
/// ROADMAP item-4 engine: explore a >= 10^6-point space with only
/// hundreds of simulations.
///
/// Three layers:
///   1. stream_score_topk — streams a LazySpace block-at-a-time through
///      a caller-supplied scorer sharded across a thread pool, keeping
///      only bounded top-K heaps (never all N scores).  Selection is a
///      total order (score desc, space index asc), so the result is
///      bit-identical for any block size, thread count, or merge order.
///   2. Acquisition scorers over the fitted surrogate: max predictive
///      uncertainty (GP variance / forest spread), expected
///      improvement, or best predicted value.
///   3. run_explorer — deterministic seed sample -> simulate via
///      run_sweep -> train -> stream-score -> acquire batch -> repeat
///      under a round/simulation budget.  With a run directory, every
///      round's acquisition is journaled (atomic temp-then-rename)
///      BEFORE its simulations run and completed rows land in a
///      SweepJournal keyed by the space checksum, so a SIGKILL at any
///      instant resumes to the bit-identical final result.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "gmd/cpusim/memory_event.hpp"
#include "gmd/dse/lazy_space.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/ml/matrix.hpp"

namespace gmd::dse {

// --- streaming top-K ---------------------------------------------------

struct ScoredPoint {
  std::size_t index = 0;  ///< Index into the lazy space.
  double score = 0.0;     ///< Acquisition score; higher is picked first.

  friend bool operator==(const ScoredPoint&, const ScoredPoint&) = default;
};

/// The total selection order: higher score first, ties to the lower
/// space index.  Every candidate is comparable, which is what makes the
/// parallel top-K deterministic.
bool scored_before(const ScoredPoint& a, const ScoredPoint& b);

/// Scores one decoded block: `x` holds the RAW (unscaled) feature rows
/// of space indices [first, first + x.rows()); writes one score per row
/// into `out`.  Invoked concurrently from pool workers — capture only
/// const/fitted state.
using BlockScorer = std::function<void(
    const ml::Matrix& x, std::size_t first, std::span<double> out)>;

/// Counters from a streaming pass (for benches and logs).
struct StreamStats {
  std::size_t scored = 0;  ///< Rows offered to the heaps (skip excluded).
  std::size_t blocks = 0;

  StreamStats& operator+=(const StreamStats& other) {
    scored += other.scored;
    blocks += other.blocks;
    return *this;
  }
};

/// Streams the whole space through `scorer` and returns the best `k`
/// candidates under scored_before(), excluding indices in `skip_sorted`
/// (ascending; the already-labeled set).  Peak memory is O(block_size x
/// num_threads + k), independent of space size.
std::vector<ScoredPoint> stream_score_topk(
    const LazySpace& space, const BlockScorer& scorer, std::size_t k,
    std::span<const std::size_t> skip_sorted = {},
    std::size_t block_size = 8192, std::size_t num_threads = 1,
    StreamStats* stats = nullptr);

// --- the closed loop ---------------------------------------------------

enum class Acquisition {
  kMaxVariance,          ///< GP predictive variance / forest spread.
  kExpectedImprovement,  ///< EI over the best observed target.
  kBestPredicted,        ///< Pure exploitation: best predicted value.
};

std::string to_string(Acquisition acquisition);
Acquisition parse_acquisition(const std::string& name);

struct ExplorerOptions {
  /// Target metric driving acquisition (a MemoryMetrics metric name).
  std::string metric = "total_latency_cycles";
  std::string model = "gp";  ///< Surrogate family: "gp" | "rf".
  Acquisition acquisition = Acquisition::kExpectedImprovement;
  /// Spend the last budgeted round on best-predicted acquisition
  /// regardless of `acquisition`: the closing batch simulates the
  /// surrogate's predicted winners, so the final top-k is backed by
  /// observations instead of unverified predictions.
  bool exploit_final_round = true;

  std::size_t initial_samples = 32;   ///< Deterministic seed sample.
  std::size_t batch_size = 16;        ///< Points acquired per round.
  std::size_t max_rounds = 8;         ///< Acquisition rounds after the seed.
  std::size_t simulation_budget = 128;  ///< Total points, seed included.
  std::size_t top_k = 10;             ///< Final recommendation size.
  std::uint64_t seed = 1;

  std::size_t block_size = 8192;  ///< Streaming block (rows).
  std::size_t num_threads = 1;    ///< Scoring threads (0: hardware).

  double gp_gamma = 2.0;  ///< RBF width on scaled features.
  double gp_noise = 1e-4;
  std::size_t rf_trees = 64;

  /// Journal directory (rounds trajectory + sweep journal).  Empty: run
  /// in memory only, no kill-and-resume.
  std::string run_dir;
  /// Load the run_dir journals and continue where a killed run stopped.
  bool resume = false;

  /// Base options for each round's simulations.  The checkpoint fields
  /// are managed by the explorer (rows are journaled per space index
  /// through row_sink); leave them empty.
  SweepOptions sweep;

  /// Invoked after each round is fully simulated and journaled, with
  /// the number of completed rounds (1 = seed round).  Tests use it to
  /// kill or throw mid-run; replayed rounds fire it again on resume.
  std::function<void(std::size_t completed_rounds)> round_hook;

  /// Metric pairs for the emitted Pareto fronts over simulated points.
  /// Empty: {power_w, total_latency_cycles} and {power_w, bandwidth_mbs}.
  std::vector<std::pair<std::string, std::string>> pareto_pairs;
};

struct ExplorerRound {
  std::size_t round = 0;                ///< 0 = seed sample.
  std::vector<std::size_t> acquired;    ///< Space indices, pick order.
  std::size_t newly_simulated = 0;      ///< Simulated by THIS process.
  double best_value = 0.0;  ///< Best observed target after the round.
};

struct ParetoFrontPair {
  std::string metric_a;
  std::string metric_b;
  /// Indices into ExplorerResult::labeled of the non-dominated points.
  std::vector<std::size_t> entries;
};

struct ExplorerResult {
  std::size_t space_size = 0;
  std::vector<ExplorerRound> rounds;
  /// Every simulated point, sorted by space index.
  std::vector<std::pair<std::size_t, SweepRow>> labeled;
  /// Final top-k recommendation, best first.  `score` is the target
  /// metric in physical units: the observed value for simulated points,
  /// the surrogate prediction for everything else.
  std::vector<ScoredPoint> top;
  std::vector<ParetoFrontPair> fronts;
  StreamStats stream;  ///< Totals across all scoring passes.
};

/// Runs (or resumes) the closed loop over `space` against `trace`.
ExplorerResult run_explorer(const LazySpace& space,
                            std::span<const cpusim::MemoryEvent> trace,
                            const ExplorerOptions& options = {});

// --- agreement vs exhaustive ground truth ------------------------------

/// Row indices of the `k` best rows by observed `metric` (direction-
/// aware, ties to the lower index), skipping non-ok rows.
std::vector<std::size_t> exhaustive_topk(std::span<const SweepRow> rows,
                                         const std::string& metric,
                                         std::size_t k);

/// Fraction of `truth` present in `picks` (order-insensitive overlap).
double topk_agreement(std::span<const std::size_t> picks,
                      std::span<const std::size_t> truth);

}  // namespace gmd::dse
