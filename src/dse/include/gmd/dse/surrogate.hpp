#pragma once

/// \file surrogate.hpp
/// The surrogate-modeling stage: trains the paper's four model families
/// on each target metric (80/20 split, min-max scaling), evaluates MSE
/// and R² on the held-out set (Table I), and keeps the per-test-index
/// predictions (Figure 3 series).

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gmd/dse/dataset_builder.hpp"
#include "gmd/ml/regressor.hpp"

namespace gmd::dse {

/// One Table I cell pair: a (metric, model) evaluation.
struct SurrogateScore {
  std::string metric;
  std::string model;
  double mse = 0.0;  ///< On the scaled targets, as in the paper.
  double r2 = 0.0;
};

/// Figure 3 material for one metric: the ground-truth test series and
/// each model's prediction series (scaled units, test-index order).
struct PredictionSeries {
  std::string metric;
  std::vector<double> truth;
  std::map<std::string, std::vector<double>> predictions;  // by model
};

struct SurrogateOptions {
  std::vector<std::string> models;  ///< Empty: the paper's four families.
  double test_fraction = 0.2;
  std::uint64_t seed = 1;
};

/// Results of training all models on all metrics.
class SurrogateSuite {
 public:
  /// Trains and evaluates on the sweep results.
  static SurrogateSuite train(std::span<const SweepRow> rows,
                              const SurrogateOptions& options = {});

  const std::vector<SurrogateScore>& scores() const { return scores_; }
  const std::vector<PredictionSeries>& series() const { return series_; }

  /// The score for one (metric, model) pair; throws when absent.
  const SurrogateScore& score(const std::string& metric,
                              const std::string& model) const;

  /// Best model (lowest MSE) for a metric.
  const SurrogateScore& best_model(const std::string& metric) const;

  /// A fitted model trained on ALL rows of `metric` (for deployment /
  /// recommendation), plus its scalers.  Models are retrained on the
  /// full data after evaluation, as a production workflow would.
  struct DeployedModel {
    std::unique_ptr<ml::Regressor> model;
    ml::MinMaxScaler x_scaler;
    ml::MinMaxScaler y_scaler;

    /// Predicts the metric in physical units for a design point.
    double predict(const DesignPoint& point) const;
  };
  /// Trains a deployment model of `model_name` on every row.
  static DeployedModel deploy(std::span<const SweepRow> rows,
                              const std::string& metric,
                              const std::string& model_name,
                              std::uint64_t seed = 1);

  /// Renders Table I: rows = metrics, columns = models, MSE and R².
  std::string format_table1() const;

 private:
  std::vector<SurrogateScore> scores_;
  std::vector<PredictionSeries> series_;
};

}  // namespace gmd::dse
