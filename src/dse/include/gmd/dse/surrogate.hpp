#pragma once

/// \file surrogate.hpp
/// The surrogate-modeling stage: trains the paper's four model families
/// on each target metric (80/20 split, min-max scaling), evaluates MSE
/// and R² on the held-out set (Table I), and keeps the per-test-index
/// predictions (Figure 3 series).

#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "gmd/dse/dataset_builder.hpp"
#include "gmd/ml/regressor.hpp"

namespace gmd::dse {

/// One Table I cell pair: a (metric, model) evaluation.
struct SurrogateScore {
  std::string metric;
  std::string model;
  double mse = 0.0;  ///< On the scaled targets, as in the paper.
  double r2 = 0.0;
};

/// Figure 3 material for one metric: the ground-truth test series and
/// each model's prediction series (scaled units, test-index order).
struct PredictionSeries {
  std::string metric;
  std::vector<double> truth;
  std::map<std::string, std::vector<double>> predictions;  // by model
};

struct SurrogateOptions {
  std::vector<std::string> models;  ///< Empty: the paper's four families.
  double test_fraction = 0.2;
  std::uint64_t seed = 1;
  /// Cooperative cancellation: polled between metrics/models and wired
  /// into the tree-ensemble training loops (rf per tree, gb per stage).
  /// Non-owning; must outlive train().
  Deadline* deadline = nullptr;
  /// Worker threads the tree-ensemble families may use while fitting
  /// (0: hardware concurrency, 1: serial).  Fits are bit-identical for
  /// any value.
  std::size_t num_threads = 0;
  /// Degraded mode: a metric whose dataset build or model training
  /// fails is recorded in skipped() and training continues with the
  /// remaining metrics, instead of the whole suite aborting.  Timeouts
  /// and cancellations still propagate — they mean "stop", not "this
  /// metric is bad".  Off by default: tests and small runs should see
  /// every failure.
  bool skip_failed_metrics = false;
};

/// Results of training all models on all metrics.
class SurrogateSuite {
 public:
  /// A metric that could not be trained under skip_failed_metrics,
  /// with the typed error that felled it.
  struct SkippedMetric {
    std::string metric;
    ErrorCode code = ErrorCode::kUnspecified;
    std::string error;
  };

  /// Trains and evaluates on the sweep results.
  static SurrogateSuite train(std::span<const SweepRow> rows,
                              const SurrogateOptions& options = {});

  const std::vector<SurrogateScore>& scores() const { return scores_; }
  const std::vector<PredictionSeries>& series() const { return series_; }

  /// Metrics skipped in degraded mode (empty unless
  /// SurrogateOptions::skip_failed_metrics caught failures).
  const std::vector<SkippedMetric>& skipped() const { return skipped_; }

  /// Rows quarantined per metric during dataset builds (only metrics
  /// with a nonzero count appear).
  const std::map<std::string, std::size_t>& quarantined() const {
    return quarantined_;
  }

  /// The score for one (metric, model) pair; throws when absent.
  const SurrogateScore& score(const std::string& metric,
                              const std::string& model) const;

  /// Best model (lowest MSE) for a metric.
  const SurrogateScore& best_model(const std::string& metric) const;

  /// A fitted model trained on ALL rows of `metric` (for deployment /
  /// recommendation), plus its scalers.  Models are retrained on the
  /// full data after evaluation, as a production workflow would.
  struct DeployedModel {
    std::unique_ptr<ml::Regressor> model;
    ml::MinMaxScaler x_scaler;
    ml::MinMaxScaler y_scaler;

    /// Predicts the metric in physical units for a design point.
    double predict(const DesignPoint& point) const;

    /// Batch variant over many design points: one matrix build, one
    /// scaler pass, one batch model predict — the same values as the
    /// per-point overload without its per-candidate overhead.
    std::vector<double> predict(std::span<const DesignPoint> points) const;

    /// Persists model + both scalers as one text artifact (.gmdm) so a
    /// deployed surrogate can be shipped to the query service and
    /// loaded without the training sweep.  save_file is atomic
    /// (temp-then-rename); loaded models predict bit-identically to
    /// the saved one.  Throws gmd::Error for unserializable families
    /// (gp) or malformed input.
    void save(std::ostream& os) const;
    void save_file(const std::string& path) const;
    static DeployedModel load(std::istream& is);
    static DeployedModel load_file(const std::string& path);
  };
  /// Trains a deployment model of `model_name` on every row.
  static DeployedModel deploy(std::span<const SweepRow> rows,
                              const std::string& metric,
                              const std::string& model_name,
                              std::uint64_t seed = 1,
                              std::size_t num_threads = 0);

  /// Renders Table I: rows = metrics, columns = models, MSE and R².
  /// Metrics skipped in degraded mode are omitted from the body and
  /// reported in footer lines, along with quarantine counts.
  std::string format_table1() const;

 private:
  std::vector<SurrogateScore> scores_;
  std::vector<PredictionSeries> series_;
  std::vector<SkippedMetric> skipped_;
  std::map<std::string, std::size_t> quarantined_;
};

}  // namespace gmd::dse
