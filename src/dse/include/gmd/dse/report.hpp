#pragma once

/// \file report.hpp
/// Markdown report generation: turns a workflow's results into a
/// self-contained document (the deliverable a DSE study hands to the
/// architecture team) — workload summary, Figure-2-style metric table,
/// Table-I-style model scores, recommendations, and the Pareto front.

#include <iosfwd>
#include <span>
#include <string>

#include "gmd/dse/workflow.hpp"

namespace gmd::dse {

struct ReportOptions {
  std::string title = "Memory co-design study";
  bool include_metric_table = true;   ///< Fig. 2 analogue.
  bool include_model_scores = true;   ///< Table I analogue.
  bool include_recommendations = true;
  bool include_pareto = true;         ///< power vs total latency front.
  bool include_sensitivity = true;    ///< Main-effects knob analysis.
};

/// Writes the study as GitHub-flavored markdown.
void write_markdown_report(std::ostream& os, const WorkflowResult& result,
                           const ReportOptions& options = {});

/// Convenience: render to a string / save to a file.
std::string markdown_report(const WorkflowResult& result,
                            const ReportOptions& options = {});
void save_markdown_report(const std::string& path,
                          const WorkflowResult& result,
                          const ReportOptions& options = {});

}  // namespace gmd::dse
