#pragma once

/// \file sensitivity.hpp
/// Main-effects sensitivity analysis over a sweep: for each design
/// parameter (memory technology, CPU clock, controller clock, channel
/// count, tRCD), how far does the metric's mean move across that
/// parameter's levels with everything else averaged out?  This is the
/// ANOVA-style answer to "which knob matters for which metric" that
/// the paper's Figure 2 asks the reader to eyeball.

#include <span>
#include <string>
#include <vector>

#include "gmd/dse/sweep.hpp"

namespace gmd::dse {

struct ParameterEffect {
  std::string parameter;       ///< "kind", "cpu_freq_mhz", ...
  double min_level_mean = 0.0; ///< Smallest per-level mean of the metric.
  double max_level_mean = 0.0; ///< Largest per-level mean.
  /// (max - min) / overall mean: the knob's relative leverage.
  double relative_effect = 0.0;
  std::string best_level;      ///< Level with the best mean (metric
                               ///< direction aware).
};

struct SensitivityResult {
  std::string metric;
  double overall_mean = 0.0;
  std::vector<ParameterEffect> effects;  ///< Sorted by leverage, desc.

  /// The single most influential parameter.
  const ParameterEffect& dominant() const;

  std::string summary() const;
};

/// The analyzed design parameters, in a fixed order.
const std::vector<std::string>& sensitivity_parameter_names();

/// Computes main effects for `metric` over the sweep.
SensitivityResult analyze_sensitivity(std::span<const SweepRow> rows,
                                      const std::string& metric);

/// Computes main effects over explicit (point, value) pairs — the
/// shared core of the simulated and surrogate-predicted analyses.
SensitivityResult analyze_sensitivity_values(
    std::span<const DesignPoint> points, std::span<const double> values,
    const std::string& metric);

/// Main effects of `metric` as *predicted* by a surrogate trained on
/// the labeled sweep rows and batch-evaluated over an arbitrary
/// candidate set (e.g. the full design space when only a subset was
/// simulated).
SensitivityResult analyze_sensitivity_predicted(
    std::span<const SweepRow> labeled,
    std::span<const DesignPoint> candidates, const std::string& metric,
    const std::string& model_name = "rf", std::uint64_t seed = 1);

}  // namespace gmd::dse
