#pragma once

/// \file config_space.hpp
/// Enumeration of the paper's 416-point design space and general
/// parameter-grid helpers for custom explorations.

#include <cstdint>
#include <string>
#include <vector>

#include "gmd/dse/design_point.hpp"

namespace gmd::dse {

/// The paper's full sweep:
///   DRAM:   4 CPU freqs x 4 controller freqs x {2,4} channels    =  32
///   NVM:    the same 32 cells x 6 tRCD values per controller freq = 192
///   Hybrid: likewise                                              = 192
/// Total 416 configurations, exactly the count reported in §IV-A3.
std::vector<DesignPoint> paper_design_space();

/// A reduced grid (one tRCD per controller frequency — the middle of
/// the paper's set) for fast examples and tests: 96 points.
std::vector<DesignPoint> reduced_design_space();

/// One-axis slice for interactive exploration, `axis` one of
/// ctrl | cpu | channels | trcd (trcd is NVM/hybrid only; throws
/// Error(kConfig) otherwise).  memory_explorer and the distributed
/// sweep_worker build their point lists through this one function, so
/// a supervisor and its workers always agree on the sweep identity.
std::vector<DesignPoint> axis_design_points(const std::string& axis,
                                            MemoryKind kind);

/// Custom grid: every combination of the provided axis values.  tRCD
/// values apply to NVM and hybrid points only; DRAM uses its fixed
/// timing.  An empty axis throws.
struct GridAxes {
  std::vector<MemoryKind> kinds;
  std::vector<std::uint32_t> cpu_freqs_mhz;
  std::vector<std::uint32_t> ctrl_freqs_mhz;
  std::vector<std::uint32_t> channel_counts;
  /// Per-point tRCD values; for NVM/hybrid, paired with ctrl freq via
  /// memsim::nvm_trcd_set when empty.
  std::vector<std::uint32_t> trcds;
};
std::vector<DesignPoint> enumerate_grid(const GridAxes& axes);

}  // namespace gmd::dse
