#pragma once

/// \file lease.hpp
/// Lease protocol of the distributed sweep.
///
/// A work unit is a (shard, generation) pair published as a task file
/// `tasks/shard-NNNNNN.gNNNNNN.task`.  Claiming it is one rename(2) of
/// the task file into `leases/` — rename consumes its source, so of N
/// concurrent claimants exactly one wins and the rest lose the race
/// cleanly (see gmd::atomic_rename_claim).  The winner then proves it
/// is alive by periodically stamping a monotonically increasing beat
/// counter into the lease file; the supervisor expires a lease whose
/// content stops changing (on its own steady clock — no cross-process
/// clock comparison) by renaming it back into `tasks/` under the next
/// generation, where any worker may claim it again.
///
/// The protocol provides liveness, not mutual exclusion: a worker that
/// stalls long enough to be presumed dead may resurrect and finish a
/// shard another worker re-claimed.  That is safe by design — sweep
/// rows are bit-identical regardless of which worker simulates a point,
/// and the merge deduplicates by point index — so a stolen lease costs
/// duplicate work, never a wrong result.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "gmd/dse/shard.hpp"

namespace gmd::dse {

/// One claimable work unit: shard index + issue generation.  The
/// generation increments every time the supervisor re-issues the shard
/// (expired lease, lost file), so a stale claimant and a fresh one
/// never contend for the same filename.
struct ShardTask {
  std::size_t shard = 0;
  std::uint64_t generation = 1;

  friend bool operator==(const ShardTask&, const ShardTask&) = default;
};

/// "shard-000012.g000003.task" — fixed-width so lexicographic directory
/// order is (shard, generation) order.
std::string task_filename(const ShardTask& task);
std::string lease_filename(const ShardTask& task);

/// Inverse of the filename scheme; nullopt for anything else (temp
/// files, foreign junk) so directory scans are self-filtering.
std::optional<ShardTask> parse_task_filename(const std::string& name);
std::optional<ShardTask> parse_lease_filename(const std::string& name);

/// Publishes a task file (atomic write; content is informational).
void write_task_file(const std::string& path, const ShardTask& task);

/// All well-formed task/lease files in `dir`, sorted by (shard,
/// generation).  A missing directory yields an empty list.
std::vector<ShardTask> list_tasks(const std::string& dir);
std::vector<ShardTask> list_leases(const std::string& dir);

/// A lease this process won.  heartbeat() keeps it alive; release()
/// ends it cleanly.  Destruction does neither — a crashed worker leaves
/// its lease file behind on purpose, so the supervisor's staleness
/// clock (not process exit) decides when the shard is re-issued.
class HeldLease {
 public:
  HeldLease(HeldLease&& other) noexcept;
  HeldLease& operator=(HeldLease&& other) noexcept;
  HeldLease(const HeldLease&) = delete;
  HeldLease& operator=(const HeldLease&) = delete;

  /// Stamps the next beat into the lease file (atomic rewrite).  Throws
  /// Error(kLeaseExpired) when the lease file is gone — the supervisor
  /// presumed this worker dead and re-issued the shard — at which point
  /// the holder must abandon the shard (cancel its in-flight work).
  /// Throws Error(kIo) when the stamp itself cannot be written.
  void heartbeat();

  /// Ends the lease: removes the lease file.  Idempotent.
  void release();

  std::size_t shard() const { return task_.shard; }
  std::uint64_t generation() const { return task_.generation; }
  std::uint64_t beats() const { return beat_; }
  const std::string& path() const { return path_; }
  const std::string& holder() const { return holder_; }
  bool released() const { return released_; }

 private:
  friend std::optional<HeldLease> try_claim_shard(const RunDir&,
                                                  const ShardTask&,
                                                  const std::string&);
  HeldLease(std::string path, ShardTask task, std::string holder);

  std::string path_;
  ShardTask task_;
  std::string holder_;
  std::uint64_t beat_ = 0;
  bool released_ = false;
};

/// Attempts to claim `task` for `holder`.  Returns the held (and
/// already once-stamped) lease on success; nullopt when the claim lost
/// the race — the normal outcome for all but one of the workers polling
/// the same task.  Throws Error(kIo) on filesystem failure.
std::optional<HeldLease> try_claim_shard(const RunDir& run,
                                         const ShardTask& task,
                                         const std::string& holder);

/// Claiming variant for callers that expect to win: throws
/// Error(kLeaseConflict) when the task is already claimed (or was never
/// issued), so a double claim surfaces as a typed error instead of a
/// silent nullopt.
HeldLease claim_shard(const RunDir& run, const ShardTask& task,
                      const std::string& holder);

}  // namespace gmd::dse
