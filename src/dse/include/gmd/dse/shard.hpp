#pragma once

/// \file shard.hpp
/// Run-directory layout and shard geometry of the distributed sweep.
///
/// A distributed run lives in one shared directory (all participants on
/// one filesystem — coordination is atomic rename, never sockets):
///
///   run/
///     run.meta          sweep identity + shard geometry (written once)
///     run.complete      marker: every point covered, sweep.csv final
///     sweep.csv         merged results (same writer as the pipeline)
///     tasks/            shard-NNNNNN.gNNNNNN.task   claimable work units
///     leases/           shard-NNNNNN.gNNNNNN.lease  claimed work units
///     done/             shard-NNNNNN.done           informational markers
///     journals/         <worker-id>.journal         per-worker checkpoints
///
/// The point list is split into fixed-size contiguous shards; a task
/// file names one (shard, generation) pair and claiming it is a single
/// rename(2) of the task file into the lease directory (see lease.hpp).
/// Completion is never inferred from markers: the supervisor re-derives
/// coverage from the journals every poll, so lost or stale lease/task
/// files can cost only duplicate work, never correctness.

#include <cstddef>
#include <cstdint>
#include <string>

#include "gmd/dse/checkpoint.hpp"

namespace gmd::dse {

/// Half-open index range [begin, end) of one shard within the global
/// design-point list.
struct ShardRange {
  std::size_t begin = 0;
  std::size_t end = 0;

  std::size_t size() const { return end - begin; }
};

/// Fixed-size contiguous sharding of `num_points` points.  The geometry
/// is part of run.meta, so every participant of a run (including a
/// resumed one) derives identical ranges.
class ShardPlan {
 public:
  /// Throws Error(kConfig) when shard_size is zero or num_points is
  /// zero (an empty distributed run has nothing to coordinate).
  ShardPlan(std::size_t num_points, std::size_t shard_size);

  std::size_t num_points() const { return num_points_; }
  std::size_t shard_size() const { return shard_size_; }
  std::size_t num_shards() const { return num_shards_; }

  /// Point range of `shard`; the last shard may be short.  Throws
  /// Error(kConfig) when `shard` is out of range.
  ShardRange range(std::size_t shard) const;

 private:
  std::size_t num_points_;
  std::size_t shard_size_;
  std::size_t num_shards_;
};

/// Path helper over one run directory.  Pure string arithmetic; nothing
/// here touches the filesystem.
struct RunDir {
  std::string root;

  std::string tasks_dir() const { return root + "/tasks"; }
  std::string leases_dir() const { return root + "/leases"; }
  std::string done_dir() const { return root + "/done"; }
  std::string journals_dir() const { return root + "/journals"; }
  std::string meta_path() const { return root + "/run.meta"; }
  std::string complete_path() const { return root + "/run.complete"; }
  std::string csv_path() const { return root + "/sweep.csv"; }
  std::string journal_path(const std::string& worker_id) const {
    return journals_dir() + "/" + worker_id + ".journal";
  }
};

/// Contents of run.meta: which sweep this run directory belongs to
/// (the sweep_identity key — trace, point list, sampling geometry) and
/// how it is sharded.  Workers refuse a run directory whose key does
/// not match their own invocation, exactly like journal resume.
struct RunMeta {
  JournalKey key;
  std::size_t shard_size = 0;

  friend bool operator==(const RunMeta&, const RunMeta&) = default;
};

/// Atomic (temp-then-rename) write of run.meta.
void write_run_meta(const std::string& path, const RunMeta& meta);

/// Parses run.meta.  Throws Error(kIo) when the file is missing or
/// malformed — a run directory without a readable meta is unusable.
RunMeta read_run_meta(const std::string& path);

}  // namespace gmd::dse
