#include "gmd/dse/sensitivity.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "gmd/common/error.hpp"
#include "gmd/common/string_util.hpp"
#include "gmd/dse/recommend.hpp"
#include "gmd/dse/surrogate.hpp"

namespace gmd::dse {

namespace {

std::size_t metric_index(const std::string& metric) {
  const auto& names = target_metric_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == metric) return i;
  }
  throw Error("unknown metric '" + metric + "'");
}

/// The level label of `parameter` for one design point.
std::string level_of(const DesignPoint& point, const std::string& parameter) {
  if (parameter == "kind") return to_string(point.kind);
  if (parameter == "cpu_freq_mhz") return std::to_string(point.cpu_freq_mhz);
  if (parameter == "ctrl_freq_mhz")
    return std::to_string(point.ctrl_freq_mhz);
  if (parameter == "channels") return std::to_string(point.channels);
  if (parameter == "trcd") return std::to_string(point.trcd);
  throw Error("unknown sensitivity parameter '" + parameter + "'");
}

}  // namespace

const std::vector<std::string>& sensitivity_parameter_names() {
  static const std::vector<std::string> names = {
      "kind", "cpu_freq_mhz", "ctrl_freq_mhz", "channels", "trcd"};
  return names;
}

SensitivityResult analyze_sensitivity(std::span<const SweepRow> rows,
                                      const std::string& metric) {
  GMD_REQUIRE(!rows.empty(), "empty sweep");
  const std::size_t index = metric_index(metric);
  // Materialize (point, value) pairs in row order, so every sum in the
  // shared core accumulates in the same order the inline loops did.
  std::vector<DesignPoint> points;
  std::vector<double> values;
  points.reserve(rows.size());
  values.reserve(rows.size());
  for (const SweepRow& row : rows) {
    points.push_back(row.point);
    values.push_back(row.metrics.metric_values()[index]);
  }
  return analyze_sensitivity_values(points, values, metric);
}

SensitivityResult analyze_sensitivity_values(
    std::span<const DesignPoint> points, std::span<const double> values,
    const std::string& metric) {
  GMD_REQUIRE(!points.empty(), "empty sweep");
  GMD_REQUIRE(points.size() == values.size(), "points/values size mismatch");
  const Direction direction = metric_direction(metric);

  SensitivityResult result;
  result.metric = metric;
  for (const double value : values) {
    result.overall_mean += value;
  }
  result.overall_mean /= static_cast<double>(points.size());

  for (const std::string& parameter : sensitivity_parameter_names()) {
    std::map<std::string, std::pair<double, std::size_t>> levels;
    for (std::size_t i = 0; i < points.size(); ++i) {
      auto& [sum, count] = levels[level_of(points[i], parameter)];
      sum += values[i];
      ++count;
    }
    if (levels.size() < 2) continue;  // parameter not swept here

    ParameterEffect effect;
    effect.parameter = parameter;
    bool first = true;
    double best_mean = 0.0;
    for (const auto& [level, acc] : levels) {
      const double mean = acc.first / static_cast<double>(acc.second);
      if (first) {
        effect.min_level_mean = effect.max_level_mean = mean;
        best_mean = mean;
        effect.best_level = level;
        first = false;
        continue;
      }
      effect.min_level_mean = std::min(effect.min_level_mean, mean);
      effect.max_level_mean = std::max(effect.max_level_mean, mean);
      const bool better = direction == Direction::kMinimize
                              ? mean < best_mean
                              : mean > best_mean;
      if (better) {
        best_mean = mean;
        effect.best_level = level;
      }
    }
    const double denom = std::abs(result.overall_mean) > 1e-300
                             ? std::abs(result.overall_mean)
                             : 1.0;
    effect.relative_effect =
        (effect.max_level_mean - effect.min_level_mean) / denom;
    result.effects.push_back(std::move(effect));
  }

  std::stable_sort(result.effects.begin(), result.effects.end(),
                   [](const ParameterEffect& a, const ParameterEffect& b) {
                     return a.relative_effect > b.relative_effect;
                   });
  GMD_REQUIRE(!result.effects.empty(),
              "sweep varies no analyzable parameter");
  return result;
}

SensitivityResult analyze_sensitivity_predicted(
    std::span<const SweepRow> labeled,
    std::span<const DesignPoint> candidates, const std::string& metric,
    const std::string& model_name, std::uint64_t seed) {
  GMD_REQUIRE(!candidates.empty(), "no candidate design points");
  const auto deployed =
      SurrogateSuite::deploy(labeled, metric, model_name, seed);
  const std::vector<double> predicted = deployed.predict(candidates);
  return analyze_sensitivity_values(candidates, predicted, metric);
}

const ParameterEffect& SensitivityResult::dominant() const {
  GMD_REQUIRE(!effects.empty(), "no effects computed");
  return effects.front();
}

std::string SensitivityResult::summary() const {
  std::ostringstream os;
  os << "Sensitivity of " << metric
     << " (overall mean " << format_fixed(overall_mean, 4) << "):\n";
  for (const ParameterEffect& effect : effects) {
    os << "  " << effect.parameter << ": leverage "
       << format_fixed(effect.relative_effect * 100.0, 1)
       << "% of mean (level means "
       << format_fixed(effect.min_level_mean, 4) << " .. "
       << format_fixed(effect.max_level_mean, 4) << "; best level "
       << effect.best_level << ")\n";
  }
  return os.str();
}

}  // namespace gmd::dse
