#include "gmd/dse/workflow.hpp"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "gmd/common/error.hpp"
#include "gmd/common/logging.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/cpusim/workloads.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/graph/generators.hpp"
#include "gmd/trace/converter.hpp"
#include "gmd/trace/formats.hpp"
#include "gmd/tracestore/reader.hpp"

namespace gmd::dse {

std::vector<cpusim::MemoryEvent> generate_workload_trace(
    const WorkflowConfig& config, graph::CsrGraph* graph_out,
    std::uint64_t* checksum_out, Deadline* deadline) {
  // GTGraph "random" model graph, symmetrized for Graph500 semantics.
  graph::UniformRandomParams params;
  params.num_vertices = config.graph_vertices;
  params.edge_factor = config.edge_factor;
  params.seed = config.seed;
  graph::EdgeList list = graph::generate_uniform_random(params);
  graph::symmetrize(list);
  graph::remove_self_loops_and_duplicates(list);
  graph::CsrGraph graph = graph::CsrGraph::from_edge_list(list);

  // Random source vertex, as in the paper.
  Rng rng(config.seed ^ 0xB5297A4D3F84C2E1ULL);
  const auto source = static_cast<graph::VertexId>(
      rng.next_below(graph.num_vertices()));

  cpusim::VectorSink sink;
  cpusim::CpuModel cpu_model;
  cpusim::AtomicCpu cpu(cpu_model, &sink);
  cpu.set_deadline(deadline);
  const auto workload =
      cpusim::make_workload(config.workload, graph, source);
  const cpusim::WorkloadResult result = workload->run(cpu);

  if (checksum_out) *checksum_out = result.kernel_output;
  if (graph_out) *graph_out = std::move(graph);
  return sink.take();
}

namespace {

/// Writes the trace in gem5 text format, converts it to the requested
/// simulator input format (NVMain text or a GMDT store) with the
/// parallel converter, and reads the result back — the paper's
/// file-based pipeline between its two simulators.
std::vector<cpusim::MemoryEvent> round_trip_through_files(
    const std::vector<cpusim::MemoryEvent>& events,
    const std::string& trace_dir, const std::string& trace_format,
    std::size_t num_threads) {
  GMD_REQUIRE_AS(ErrorCode::kConfig,
                 trace_format == "text" || trace_format == "gmdt",
                 "trace_format must be 'text' or 'gmdt', got '"
                     << trace_format << "'");
  std::filesystem::create_directories(trace_dir);
  const std::string gem5_path = trace_dir + "/gem5_trace.txt";
  {
    std::ofstream out(gem5_path);
    GMD_REQUIRE(out.good(), "cannot write '" << gem5_path << "'");
    trace::Gem5TraceWriter writer(out);
    for (const auto& event : events) writer.on_event(event);
  }
  trace::ConvertOptions options;
  options.num_threads = num_threads;
  if (trace_format == "gmdt") {
    const std::string store_path = trace_dir + "/trace.gmdt";
    const trace::ConvertStats stats =
        trace::convert_gem5_to_gmdt(gem5_path, store_path, options);
    GMD_LOG_INFO << "trace conversion: " << stats.lines_in << " lines in, "
                 << stats.events_out << " events out across " << stats.chunks
                 << " chunks (gmdt)";
    return tracestore::TraceStoreReader(store_path).read_all();
  }
  const std::string nvmain_path = trace_dir + "/nvmain_trace.txt";
  const trace::ConvertStats stats =
      trace::convert_gem5_to_nvmain(gem5_path, nvmain_path, options);
  GMD_LOG_INFO << "trace conversion: " << stats.lines_in << " lines in, "
               << stats.events_out << " events out across " << stats.chunks
               << " chunks";
  std::ifstream in(nvmain_path);
  GMD_REQUIRE(in.good(), "cannot read '" << nvmain_path << "'");
  return trace::read_nvmain_trace(in);
}

}  // namespace

WorkflowResult run_workflow(const WorkflowConfig& config) {
  WorkflowResult result;
  result.trace = generate_workload_trace(config, &result.graph,
                                         &result.workload_checksum);
  GMD_LOG_INFO << "workload '" << config.workload << "' produced "
               << result.trace.size() << " memory events";

  if (!config.trace_dir.empty()) {
    result.trace = round_trip_through_files(result.trace, config.trace_dir,
                                            config.trace_format,
                                            config.num_threads);
  }

  const std::vector<DesignPoint> points = config.design_points.empty()
                                              ? paper_design_space()
                                              : config.design_points;
  SweepOptions sweep_options = config.sweep;
  sweep_options.num_threads = config.num_threads;
  sweep_options.log_progress = config.log_progress;
  result.sweep = run_sweep(points, result.trace, sweep_options);

  // Train only on points that actually simulated; a skipped or failed
  // row carries no metrics and must not poison the surrogates.
  const std::vector<SweepRow> training = result.ok_rows();
  GMD_REQUIRE_AS(ErrorCode::kSimulation, !training.empty(),
                 "every sweep point failed ("
                     << summarize_health(result.sweep).summary()
                     << "); nothing to train on");
  SurrogateOptions surrogate_options = config.surrogate;
  surrogate_options.num_threads = config.num_threads;
  result.surrogates = SurrogateSuite::train(training, surrogate_options);
  result.recommendations = recommend_from_sweep(training);
  return result;
}

std::vector<SweepRow> WorkflowResult::ok_rows() const {
  std::vector<SweepRow> rows;
  rows.reserve(sweep.size());
  for (const SweepRow& row : sweep) {
    if (row.ok()) rows.push_back(row);
  }
  return rows;
}

std::string WorkflowResult::report() const {
  const SweepHealth health = summarize_health(sweep);
  std::ostringstream os;
  os << "=== Co-design workflow report ===\n"
     << "graph: " << graph.num_vertices() << " vertices, "
     << graph.num_edges() << " directed edges\n"
     << "trace: " << trace.size() << " memory events\n"
     << "sweep: " << sweep.size() << " configurations simulated\n"
     << "sweep health: " << health.summary() << "\n\n"
     << surrogates.format_table1() << "\n"
     << format_recommendations(recommendations);
  return os.str();
}

}  // namespace gmd::dse
