#include "gmd/dse/lease.hpp"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <utility>

#include "gmd/common/atomic_file.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/faultinject.hpp"
#include "gmd/common/heartbeat.hpp"

namespace gmd::dse {

namespace {

std::string shard_stem(const ShardTask& task) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "shard-%06zu.g%06llu", task.shard,
                static_cast<unsigned long long>(task.generation));
  return buffer;
}

/// Parses "shard-NNNNNN.gNNNNNN<suffix>"; the suffix must terminate the
/// name, so ".task.tmp" leftovers never parse as tasks.
std::optional<ShardTask> parse_stem(const std::string& name,
                                    std::string_view suffix) {
  ShardTask task;
  unsigned long long shard = 0;
  unsigned long long generation = 0;
  int consumed = 0;
  if (std::sscanf(name.c_str(), "shard-%llu.g%llu%n", &shard, &generation,
                  &consumed) != 2) {
    return std::nullopt;
  }
  if (name.substr(static_cast<std::size_t>(consumed)) != suffix) {
    return std::nullopt;
  }
  task.shard = static_cast<std::size_t>(shard);
  task.generation = generation;
  return task;
}

std::vector<ShardTask> list_with_suffix(const std::string& dir,
                                        std::string_view suffix) {
  std::vector<ShardTask> tasks;
  std::error_code ec;
  for (std::filesystem::directory_iterator it(dir, ec), end; !ec && it != end;
       it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    if (auto task = parse_stem(it->path().filename().string(), suffix)) {
      tasks.push_back(*task);
    }
  }
  std::sort(tasks.begin(), tasks.end(),
            [](const ShardTask& a, const ShardTask& b) {
              return a.shard != b.shard ? a.shard < b.shard
                                        : a.generation < b.generation;
            });
  return tasks;
}

}  // namespace

std::string task_filename(const ShardTask& task) {
  return shard_stem(task) + ".task";
}

std::string lease_filename(const ShardTask& task) {
  return shard_stem(task) + ".lease";
}

std::optional<ShardTask> parse_task_filename(const std::string& name) {
  return parse_stem(name, ".task");
}

std::optional<ShardTask> parse_lease_filename(const std::string& name) {
  return parse_stem(name, ".lease");
}

void write_task_file(const std::string& path, const ShardTask& task) {
  atomic_write_file(path, [&task](std::ostream& os) {
    os << "gmd-sweep-task v1 shard=" << task.shard
       << " gen=" << task.generation << " wall_ns=" << wall_clock_ns()
       << '\n';
  });
}

std::vector<ShardTask> list_tasks(const std::string& dir) {
  return list_with_suffix(dir, ".task");
}

std::vector<ShardTask> list_leases(const std::string& dir) {
  return list_with_suffix(dir, ".lease");
}

HeldLease::HeldLease(std::string path, ShardTask task, std::string holder)
    : path_(std::move(path)),
      task_(task),
      holder_(std::move(holder)) {}

HeldLease::HeldLease(HeldLease&& other) noexcept
    : path_(std::move(other.path_)),
      task_(other.task_),
      holder_(std::move(other.holder_)),
      beat_(other.beat_),
      released_(other.released_) {
  other.released_ = true;  // the moved-from shell owns nothing
}

HeldLease& HeldLease::operator=(HeldLease&& other) noexcept {
  if (this != &other) {
    path_ = std::move(other.path_);
    task_ = other.task_;
    holder_ = std::move(other.holder_);
    beat_ = other.beat_;
    released_ = other.released_;
    other.released_ = true;
  }
  return *this;
}

void HeldLease::heartbeat() {
  GMD_REQUIRE_AS(ErrorCode::kLeaseExpired, !released_,
                 "lease on shard " << task_.shard << " was already released");
  // The supervisor expires a lease by renaming its file away; once that
  // happened this holder is presumed dead and must stand down.  (The
  // stamp below briefly recreates the file if the expiry raced us — a
  // documented-harmless resurrection: the shard is already re-issued
  // under the next generation and the merge deduplicates by index.)
  GMD_REQUIRE_AS(ErrorCode::kLeaseExpired, std::filesystem::exists(path_),
                 "lease '" << path_ << "' held by '" << holder_
                           << "' was expired by the supervisor");
  GMD_FAULT_POINT("lease.heartbeat");
  ++beat_;
  atomic_write_file(path_, [this](std::ostream& os) {
    os << "gmd-sweep-lease v1 shard=" << task_.shard
       << " gen=" << task_.generation << " holder=" << holder_
       << " beat=" << beat_ << " wall_ns=" << wall_clock_ns() << '\n';
  });
}

void HeldLease::release() {
  if (released_) return;
  released_ = true;
  remove_file_if_exists(path_);
}

std::optional<HeldLease> try_claim_shard(const RunDir& run,
                                         const ShardTask& task,
                                         const std::string& holder) {
  const std::string from = run.tasks_dir() + "/" + task_filename(task);
  const std::string to = run.leases_dir() + "/" + lease_filename(task);
  GMD_FAULT_POINT("lease.claim");
  if (!atomic_rename_claim(from, to)) return std::nullopt;
  HeldLease lease(to, task, holder);
  lease.heartbeat();  // first stamp: identify the holder immediately
  return lease;
}

HeldLease claim_shard(const RunDir& run, const ShardTask& task,
                      const std::string& holder) {
  std::optional<HeldLease> lease = try_claim_shard(run, task, holder);
  GMD_REQUIRE_AS(ErrorCode::kLeaseConflict, lease.has_value(),
                 "shard " << task.shard << " generation " << task.generation
                          << " is already leased (claim by '" << holder
                          << "' lost the race)");
  return std::move(*lease);
}

}  // namespace gmd::dse
