#include "gmd/dse/surrogate.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

#include "gmd/common/atomic_file.hpp"
#include "gmd/common/deadline.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/faultinject.hpp"
#include "gmd/common/logging.hpp"
#include "gmd/common/string_util.hpp"
#include "gmd/ml/metrics.hpp"
#include "gmd/ml/serialize.hpp"

namespace gmd::dse {

SurrogateSuite SurrogateSuite::train(std::span<const SweepRow> rows,
                                     const SurrogateOptions& options) {
  GMD_REQUIRE(rows.size() >= 10, "need at least 10 sweep rows to train");
  const std::vector<std::string> models =
      options.models.empty() ? ml::table1_model_names() : options.models;

  SurrogateSuite suite;
  for (const std::string& metric : target_metric_names()) {
    if (options.deadline != nullptr) options.deadline->check_now();
    try {
      const MetricDataset metric_data = build_metric_dataset(rows, metric);
      if (metric_data.quarantined_rows > 0) {
        suite.quarantined_[metric] = metric_data.quarantined_rows;
      }
      const auto [train_set, test_set] = ml::train_test_split(
          metric_data.data, options.test_fraction, options.seed);

      PredictionSeries series;
      series.metric = metric;
      series.truth = test_set.y;

      for (const std::string& model_name : models) {
        const auto model = ml::make_regressor(
            model_name, options.seed, options.deadline, options.num_threads);
        model->fit(train_set.X, train_set.y);
        std::vector<double> predicted = model->predict(test_set.X);

        SurrogateScore score;
        score.metric = metric;
        score.model = model_name;
        score.mse = ml::mse(test_set.y, predicted);
        score.r2 = ml::r2_score(test_set.y, predicted);
        suite.scores_.push_back(score);
        series.predictions[model_name] = std::move(predicted);
      }
      suite.series_.push_back(std::move(series));
    } catch (const Error& e) {
      // kTimeout/kCancelled mean "stop training", not "this metric is
      // bad" — they always propagate.  Other failures are degraded-mode
      // material: record the metric and keep training the rest.
      if (!options.skip_failed_metrics || e.code() == ErrorCode::kTimeout ||
          e.code() == ErrorCode::kCancelled) {
        throw;
      }
      GMD_LOG_WARN << "surrogate training: skipping metric '" << metric
                   << "' [" << to_string(e.code()) << "]: " << e.what();
      suite.skipped_.push_back(SkippedMetric{metric, e.code(), e.what()});
    }
  }
  GMD_REQUIRE(!suite.scores_.empty(),
              "surrogate training failed for every metric");
  return suite;
}

const SurrogateScore& SurrogateSuite::score(const std::string& metric,
                                            const std::string& model) const {
  for (const SurrogateScore& s : scores_) {
    if (s.metric == metric && s.model == model) return s;
  }
  throw Error("no score for metric '" + metric + "', model '" + model + "'");
}

const SurrogateScore& SurrogateSuite::best_model(
    const std::string& metric) const {
  const SurrogateScore* best = nullptr;
  for (const SurrogateScore& s : scores_) {
    if (s.metric != metric) continue;
    if (best == nullptr || s.mse < best->mse) best = &s;
  }
  GMD_REQUIRE(best != nullptr, "no scores for metric '" << metric << "'");
  return *best;
}

double SurrogateSuite::DeployedModel::predict(const DesignPoint& point) const {
  GMD_REQUIRE(model != nullptr && model->is_fitted(),
              "deployed model is not fitted");
  const std::vector<double> raw = point.features();
  ml::Matrix x(1, raw.size());
  std::copy(raw.begin(), raw.end(), x.row(0).begin());
  const ml::Matrix scaled = x_scaler.transform(x);
  const double y_scaled = model->predict_one(scaled.row(0));
  const std::vector<double> y =
      y_scaler.inverse_transform(std::vector<double>{y_scaled});
  return y[0];
}

std::vector<double> SurrogateSuite::DeployedModel::predict(
    std::span<const DesignPoint> points) const {
  GMD_REQUIRE(model != nullptr && model->is_fitted(),
              "deployed model is not fitted");
  if (points.empty()) return {};
  const std::size_t features = points[0].features().size();
  ml::Matrix x(points.size(), features);
  for (std::size_t r = 0; r < points.size(); ++r) {
    const std::vector<double> raw = points[r].features();
    GMD_REQUIRE(raw.size() == features, "inconsistent feature counts");
    std::copy(raw.begin(), raw.end(), x.row(r).begin());
  }
  const ml::Matrix scaled = x_scaler.transform(x);
  const std::vector<double> y_scaled = model->predict(scaled);
  return y_scaler.inverse_transform(y_scaled);
}

void SurrogateSuite::DeployedModel::save(std::ostream& os) const {
  GMD_REQUIRE(model != nullptr && model->is_fitted(),
              "deployed model is not fitted");
  os << "gmd-deployed-v1\n";
  ml::save_scaler(os, x_scaler);
  ml::save_scaler(os, y_scaler);
  ml::save_model(os, *model);
}

void SurrogateSuite::DeployedModel::save_file(const std::string& path) const {
  atomic_write_file(path, [this](std::ostream& out) { save(out); });
}

SurrogateSuite::DeployedModel SurrogateSuite::DeployedModel::load(
    std::istream& is) {
  GMD_FAULT_POINT("surrogate.model_load");
  std::string header;
  is >> header;
  GMD_REQUIRE_AS(ErrorCode::kInvalidData,
                 is.good() && header == "gmd-deployed-v1",
                 "not a graphmemdse deployed-model file");
  DeployedModel deployed;
  deployed.x_scaler = ml::load_scaler(is);
  deployed.y_scaler = ml::load_scaler(is);
  deployed.model = ml::load_model(is);
  return deployed;
}

SurrogateSuite::DeployedModel SurrogateSuite::DeployedModel::load_file(
    const std::string& path) {
  std::ifstream in(path);
  GMD_REQUIRE_AS(ErrorCode::kIo, in.good(),
                 "cannot open '" << path << "' for reading");
  return load(in);
}

SurrogateSuite::DeployedModel SurrogateSuite::deploy(
    std::span<const SweepRow> rows, const std::string& metric,
    const std::string& model_name, std::uint64_t seed,
    std::size_t num_threads) {
  MetricDataset metric_data = build_metric_dataset(rows, metric);
  DeployedModel deployed;
  deployed.model = ml::make_regressor(model_name, seed, nullptr, num_threads);
  deployed.model->fit(metric_data.data.X, metric_data.data.y);
  deployed.x_scaler = std::move(metric_data.x_scaler);
  deployed.y_scaler = std::move(metric_data.y_scaler);
  return deployed;
}

std::string SurrogateSuite::format_table1() const {
  // Model column order mirrors the paper: Linear, SVM, RF, GB.
  std::vector<std::string> models;
  for (const SurrogateScore& s : scores_) {
    if (std::find(models.begin(), models.end(), s.model) == models.end()) {
      models.push_back(s.model);
    }
  }

  std::ostringstream os;
  os << "TABLE I: ML model performance on the graph benchmark\n";
  os << "metric                | stat |";
  for (const auto& m : models) {
    os << "  " << m
       << std::string(10 - std::min<std::size_t>(m.size(), 9), ' ') << "|";
  }
  os << "\n";
  for (const std::string& metric : target_metric_names()) {
    // A metric skipped in degraded mode has no scores; it is reported
    // in the footer instead of rendering a row of holes.
    const bool have_scores = std::any_of(
        scores_.begin(), scores_.end(),
        [&metric](const SurrogateScore& s) { return s.metric == metric; });
    if (!have_scores) continue;
    os << metric << std::string(metric.size() < 22 ? 22 - metric.size() : 1, ' ')
       << "| MSE  |";
    for (const auto& m : models) {
      os << " " << format_sci(score(metric, m).mse, 2) << " |";
    }
    os << "\n" << std::string(22, ' ') << "| R2   |";
    for (const auto& m : models) {
      os << " " << format_sci(score(metric, m).r2, 2) << " |";
    }
    os << "   best: " << best_model(metric).model << "\n";
  }
  for (const SkippedMetric& s : skipped_) {
    os << "skipped: " << s.metric << " [" << to_string(s.code)
       << "]: " << s.error << "\n";
  }
  for (const auto& [metric, count] : quarantined_) {
    os << "quarantined: " << metric << " dropped " << count
       << " non-finite rows\n";
  }
  return os.str();
}

}  // namespace gmd::dse
