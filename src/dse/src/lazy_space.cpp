#include "gmd/dse/lazy_space.hpp"

#include <algorithm>
#include <limits>

#include "gmd/common/error.hpp"
#include "gmd/common/hash.hpp"

namespace gmd::dse {

namespace {

/// Streaming block size for whole-space scans (checksum, bounds): big
/// enough to amortize the loop, small enough that peak memory stays a
/// few hundred KB regardless of space size.
constexpr std::size_t kScanBlock = 8192;

std::size_t find_prefix(std::span<const std::size_t> offsets,
                        std::size_t value) {
  // offsets has N+1 entries; returns i with offsets[i] <= value <
  // offsets[i+1].  upper_bound keeps this O(log N) even for very fine
  // frequency grids.
  const auto it = std::upper_bound(offsets.begin(), offsets.end(), value);
  return static_cast<std::size_t>(it - offsets.begin()) - 1;
}

}  // namespace

LazySpace::LazySpace(const GridAxes& axes) {
  GMD_REQUIRE(!axes.kinds.empty(), "grid needs at least one memory kind");
  GMD_REQUIRE(!axes.cpu_freqs_mhz.empty(), "grid needs CPU frequencies");
  GMD_REQUIRE(!axes.ctrl_freqs_mhz.empty(),
              "grid needs controller frequencies");
  GMD_REQUIRE(!axes.channel_counts.empty(), "grid needs channel counts");
  layout_ = Layout::kGrid;
  kinds_ = axes.kinds;
  cpus_ = axes.cpu_freqs_mhz;
  ctrls_ = axes.ctrl_freqs_mhz;
  channels_ = axes.channel_counts;
  build_grid_tables(axes);
}

void LazySpace::build_grid_tables(const GridAxes& axes) {
  const std::size_t num_kinds = kinds_.size();
  const std::size_t num_ctrls = ctrls_.size();
  trcds_.resize(num_kinds * num_ctrls);
  ctrl_offset_.resize(num_kinds * (num_ctrls + 1));
  cpu_block_.resize(num_kinds);
  kind_offset_.assign(num_kinds + 1, 0);

  for (std::size_t k = 0; k < num_kinds; ++k) {
    std::size_t block = 0;
    for (std::size_t c = 0; c < num_ctrls; ++c) {
      ctrl_offset_[k * (num_ctrls + 1) + c] = block;
      std::vector<std::uint32_t>& trcds = trcds_[k * num_ctrls + c];
      if (kinds_[k] == MemoryKind::kDram) {
        trcds = {9};
      } else {
        trcds = axes.trcds.empty() ? memsim::nvm_trcd_set(ctrls_[c])
                                   : axes.trcds;
      }
      block += channels_.size() * trcds.size();
    }
    ctrl_offset_[k * (num_ctrls + 1) + num_ctrls] = block;
    cpu_block_[k] = block;
    kind_offset_[k + 1] = kind_offset_[k] + cpus_.size() * block;
  }
  size_ = kind_offset_[num_kinds];
}

LazySpace LazySpace::paper() {
  LazySpace space;
  space.layout_ = Layout::kPaper;
  space.kinds_ = {MemoryKind::kDram, MemoryKind::kNvm, MemoryKind::kHybrid};
  space.cpus_ = memsim::paper_cpu_frequencies_mhz();
  space.ctrls_ = memsim::paper_controller_frequencies_mhz();
  space.channels_ = memsim::paper_channel_counts();
  space.build_cell_tables(Layout::kPaper);
  return space;
}

LazySpace LazySpace::reduced() {
  LazySpace space;
  space.layout_ = Layout::kReduced;
  space.kinds_ = {MemoryKind::kDram, MemoryKind::kNvm, MemoryKind::kHybrid};
  space.cpus_ = memsim::paper_cpu_frequencies_mhz();
  space.ctrls_ = memsim::paper_controller_frequencies_mhz();
  space.channels_ = memsim::paper_channel_counts();
  space.build_cell_tables(Layout::kReduced);
  return space;
}

void LazySpace::build_cell_tables(Layout layout) {
  const std::size_t num_ctrls = ctrls_.size();
  cell_.resize(num_ctrls);
  cell_ctrl_offset_.assign(num_ctrls + 1, 0);
  for (std::size_t c = 0; c < num_ctrls; ++c) {
    const std::vector<std::uint32_t>& trcds = memsim::nvm_trcd_set(ctrls_[c]);
    std::vector<CellEntry>& cell = cell_[c];
    cell.push_back({MemoryKind::kDram, 9});
    if (layout == Layout::kPaper) {
      for (const std::uint32_t trcd : trcds) {
        cell.push_back({MemoryKind::kNvm, trcd});
        cell.push_back({MemoryKind::kHybrid, trcd});
      }
    } else {
      const std::uint32_t mid = trcds[trcds.size() / 2];
      cell.push_back({MemoryKind::kNvm, mid});
      cell.push_back({MemoryKind::kHybrid, mid});
    }
    cell_ctrl_offset_[c + 1] =
        cell_ctrl_offset_[c] + channels_.size() * cell.size();
  }
  cell_cpu_block_ = cell_ctrl_offset_[num_ctrls];
  size_ = cpus_.size() * cell_cpu_block_;
}

GridAxes LazySpace::million_axes() {
  GridAxes axes;
  axes.kinds = {MemoryKind::kDram, MemoryKind::kNvm, MemoryKind::kHybrid};
  // 50 CPU clocks (1.0 .. 5.9 GHz), 32 controller clocks (200 .. 1750
  // MHz), 2..16 channels (even, so every hybrid point is simulatable),
  // and 81 NVM tRCD values (10 .. 330 controller cycles, spanning every
  // paper set): 6,400 DRAM + 2 x 518,400 NVM/hybrid = 1,043,200 points.
  for (std::uint32_t cpu = 1000; cpu < 6000; cpu += 100) {
    axes.cpu_freqs_mhz.push_back(cpu);
  }
  for (std::uint32_t ctrl = 200; ctrl < 1800; ctrl += 50) {
    axes.ctrl_freqs_mhz.push_back(ctrl);
  }
  axes.channel_counts = {2, 4, 8, 16};
  for (std::uint32_t trcd = 10; trcd < 334; trcd += 4) {
    axes.trcds.push_back(trcd);
  }
  return axes;
}

DesignPoint LazySpace::operator[](std::size_t index) const {
  GMD_REQUIRE(index < size_, "design-space index " << index
                                                   << " out of range (size "
                                                   << size_ << ")");
  DesignPoint p;
  if (layout_ == Layout::kGrid) {
    const std::size_t num_ctrls = ctrls_.size();
    const std::size_t k = find_prefix(kind_offset_, index);
    std::size_t r = index - kind_offset_[k];
    const std::size_t cpu_i = r / cpu_block_[k];
    r %= cpu_block_[k];
    const std::span<const std::size_t> offsets(
        ctrl_offset_.data() + k * (num_ctrls + 1), num_ctrls + 1);
    const std::size_t c = find_prefix(offsets, r);
    r -= offsets[c];
    const std::vector<std::uint32_t>& trcds = trcds_[k * num_ctrls + c];
    p.kind = kinds_[k];
    p.cpu_freq_mhz = cpus_[cpu_i];
    p.ctrl_freq_mhz = ctrls_[c];
    p.channels = channels_[r / trcds.size()];
    p.trcd = trcds[r % trcds.size()];
  } else {
    const std::size_t cpu_i = index / cell_cpu_block_;
    std::size_t r = index % cell_cpu_block_;
    const std::size_t c = find_prefix(cell_ctrl_offset_, r);
    r -= cell_ctrl_offset_[c];
    const std::vector<CellEntry>& cell = cell_[c];
    const CellEntry& entry = cell[r % cell.size()];
    p.kind = entry.kind;
    p.cpu_freq_mhz = cpus_[cpu_i];
    p.ctrl_freq_mhz = ctrls_[c];
    p.channels = channels_[r / cell.size()];
    p.trcd = entry.trcd;
  }
  return p;
}

void LazySpace::decode_block(std::size_t begin, std::size_t end,
                             std::vector<DesignPoint>& out) const {
  GMD_REQUIRE(begin <= end && end <= size_, "bad block range");
  out.resize(end - begin);
  for (std::size_t i = begin; i < end; ++i) out[i - begin] = (*this)[i];
}

void LazySpace::decode_features(std::size_t begin, std::size_t end,
                                std::span<double> out) const {
  GMD_REQUIRE(begin <= end && end <= size_, "bad block range");
  const std::size_t width = DesignPoint::feature_names().size();
  GMD_REQUIRE(out.size() == (end - begin) * width,
              "feature buffer size mismatch");
  for (std::size_t i = begin; i < end; ++i) {
    (*this)[i].write_features(out.subspan((i - begin) * width, width));
  }
}

std::vector<DesignPoint> LazySpace::materialize() const {
  std::vector<DesignPoint> points;
  points.reserve(size_);
  for (std::size_t i = 0; i < size_; ++i) points.push_back((*this)[i]);
  return points;
}

std::uint64_t LazySpace::checksum() const {
  // Field-for-field the same stream points_checksum() hashes, so a
  // journal keyed off a lazy space resumes against the materialized
  // vector and vice versa.
  Fnv1a h;
  h.mix(size_);
  std::vector<DesignPoint> block;
  for (std::size_t begin = 0; begin < size_; begin += kScanBlock) {
    decode_block(begin, std::min(size_, begin + kScanBlock), block);
    for (const DesignPoint& p : block) {
      h.mix(static_cast<std::uint64_t>(p.kind));
      h.mix(p.cpu_freq_mhz);
      h.mix(p.ctrl_freq_mhz);
      h.mix(p.channels);
      h.mix(p.trcd);
      h.mix_double(p.dram_fraction);
    }
  }
  return h.state;
}

void LazySpace::feature_bounds(std::vector<double>& mins,
                               std::vector<double>& maxs) const {
  const std::size_t width = DesignPoint::feature_names().size();
  mins.assign(width, std::numeric_limits<double>::infinity());
  maxs.assign(width, -std::numeric_limits<double>::infinity());
  std::vector<double> block(kScanBlock * width);
  for (std::size_t begin = 0; begin < size_; begin += kScanBlock) {
    const std::size_t end = std::min(size_, begin + kScanBlock);
    const std::size_t rows = end - begin;
    decode_features(begin, end, std::span(block.data(), rows * width));
    for (std::size_t r = 0; r < rows; ++r) {
      for (std::size_t f = 0; f < width; ++f) {
        const double v = block[r * width + f];
        mins[f] = std::min(mins[f], v);
        maxs[f] = std::max(maxs[f], v);
      }
    }
  }
}

}  // namespace gmd::dse
