#include "gmd/dse/sweep.hpp"

#include <atomic>

#include "gmd/common/logging.hpp"
#include "gmd/common/thread_pool.hpp"
#include "gmd/memsim/hybrid.hpp"
#include "gmd/memsim/memory_system.hpp"

namespace gmd::dse {

memsim::MemoryMetrics simulate_point(
    const DesignPoint& point, std::span<const cpusim::MemoryEvent> trace) {
  if (point.kind == MemoryKind::kHybrid) {
    return memsim::HybridMemory::simulate(point.hybrid_config(), trace);
  }
  return memsim::MemorySystem::simulate(point.single_config(), trace);
}

std::vector<SweepRow> run_sweep(std::span<const DesignPoint> points,
                                std::span<const cpusim::MemoryEvent> trace,
                                const SweepOptions& options) {
  std::vector<SweepRow> rows(points.size());
  std::atomic<std::size_t> done{0};
  ThreadPool pool(options.num_threads);
  pool.parallel_for(0, points.size(), [&](std::size_t i) {
    rows[i].point = points[i];
    rows[i].metrics = simulate_point(points[i], trace);
    const std::size_t finished = done.fetch_add(1) + 1;
    if (options.log_progress && finished % 50 == 0) {
      GMD_LOG_INFO << "sweep progress: " << finished << "/" << points.size();
    }
  });
  return rows;
}

}  // namespace gmd::dse
