#include "gmd/dse/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <numeric>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>

#include "gmd/common/atomic_file.hpp"
#include "gmd/common/hash.hpp"
#include "gmd/common/logging.hpp"
#include "gmd/common/thread_pool.hpp"
#include "gmd/dse/checkpoint.hpp"
#include "gmd/memsim/hybrid.hpp"
#include "gmd/memsim/memory_system.hpp"
#include "gmd/memsim/predecoded_trace.hpp"
#include "gmd/memsim/sampled.hpp"
#include "gmd/tracestore/reader.hpp"

namespace gmd::dse {

namespace {

/// memsim::ChunkedTrace over a GMDT store's native chunk index; decodes
/// one chunk at a time into a reusable buffer (chunk-sized memory, like
/// ChunkIterator, but with the random access sampling needs).
class StoreChunkedTrace final : public memsim::ChunkedTrace {
 public:
  explicit StoreChunkedTrace(const tracestore::TraceStoreReader& store)
      : store_(&store) {}

  std::size_t num_chunks() const override { return store_->num_chunks(); }
  std::span<const cpusim::MemoryEvent> chunk(std::size_t index) override {
    store_->decode_chunk(index, buffer_);
    return buffer_;
  }

 private:
  const tracestore::TraceStoreReader* store_;
  std::vector<cpusim::MemoryEvent> buffer_;
};

/// Uniform view over the two trace feeds (in-memory span / GMDT store).
/// A store-fed sweep only decodes the full event vector when some point
/// actually needs the raw path; grouped single-technology points
/// predecode chunk-by-chunk off the shared mapping instead.
class TraceAccess {
 public:
  explicit TraceAccess(std::span<const cpusim::MemoryEvent> events)
      : events_(events), materialized_(true) {}
  explicit TraceAccess(const tracestore::TraceStoreReader& store)
      : store_(&store) {}

  std::size_t num_events() const {
    return store_ != nullptr ? static_cast<std::size_t>(store_->num_events())
                             : events_.size();
  }

  JournalKey journal_key(std::span<const DesignPoint> points) const {
    return store_ != nullptr ? make_journal_key(points, *store_)
                             : make_journal_key(points, events_);
  }

  /// Full in-memory event view.  For a store feed the first call
  /// decodes every chunk in parallel on `pool`; must not be called from
  /// inside a pool task (use raw() there, after materializing here).
  std::span<const cpusim::MemoryEvent> materialize(ThreadPool& pool) {
    if (!materialized_) {
      storage_ = store_->read_all(pool);
      events_ = storage_;
      materialized_ = true;
    }
    return events_;
  }

  /// The materialized view; empty unless materialize() ran (or the feed
  /// was a span to begin with).
  std::span<const cpusim::MemoryEvent> raw() const { return events_; }

  /// Chunk view for sampled simulation: a store feed samples the GMDT
  /// native chunk index (no materialization), an in-memory feed gets
  /// fixed-size windows of `span_chunk_events`.  Returns a fresh object
  /// per call — chunk() reuses an internal decode buffer, so concurrent
  /// points must not share one.
  std::unique_ptr<memsim::ChunkedTrace> chunked(
      std::size_t span_chunk_events) const {
    if (store_ != nullptr) {
      return std::make_unique<StoreChunkedTrace>(*store_);
    }
    return std::make_unique<memsim::SpanChunkedTrace>(events_,
                                                      span_chunk_events);
  }

  /// Predecodes the whole trace for `config` without materializing:
  /// streams chunks off the store mapping when not yet materialized.
  /// Safe to call from pool tasks.
  memsim::PredecodedTrace predecode(const memsim::MemoryConfig& config) const {
    if (materialized_) {
      return memsim::PredecodedTrace::build(config, events_);
    }
    tracestore::ChunkIterator it(*store_);
    return memsim::PredecodedTrace::build(
        config,
        [&it]() -> std::span<const cpusim::MemoryEvent> {
          return it.next() ? it.events()
                           : std::span<const cpusim::MemoryEvent>{};
        },
        num_events());
  }

 private:
  std::span<const cpusim::MemoryEvent> events_;
  const tracestore::TraceStoreReader* store_ = nullptr;
  std::vector<cpusim::MemoryEvent> storage_;
  bool materialized_ = false;
};

/// Per-point simulation plan: which shared trace group (if any) the
/// point replays, and the materialized config so it is built once.
struct PointPlan {
  std::size_t group = kNoGroup;  ///< Index into the group tables.
  memsim::MemoryConfig single;   ///< kDram / kNvm points.
  memsim::HybridConfig hybrid;   ///< kHybrid points.

  static constexpr std::size_t kNoGroup = ~std::size_t{0};
};

/// One shared predecode job: every member point replays these streams.
struct TraceGroup {
  bool is_hybrid = false;
  std::size_t rep = 0;  ///< Point index whose config defines the group.
  memsim::PredecodedTrace trace;       // single-technology groups
  memsim::PredecodedTrace dram_side;   // hybrid groups
  memsim::PredecodedTrace nvm_side;
};

/// The trace feed one point simulation consumes.  Exactly one source is
/// set per mode: `chunked` for sampled single-technology points,
/// `predecoded` (or `raw`) for exhaustive single-technology points,
/// `dram_side`+`nvm_side` (or `raw`) for hybrid points.
struct PointFeed {
  std::span<const cpusim::MemoryEvent> raw;
  const memsim::PredecodedTrace* predecoded = nullptr;
  const memsim::PredecodedTrace* dram_side = nullptr;
  const memsim::PredecodedTrace* nvm_side = nullptr;
  memsim::ChunkedTrace* chunked = nullptr;
};

/// The per-point simulation body shared by run_sweep and the public
/// simulate_point overloads: one implementation is what makes service
/// answers bit-identical to sweep rows.
void simulate_point_into(const DesignPoint& point,
                         const SimulateOptions& options, const PointFeed& feed,
                         MetricsRow& row) {
  const bool sampling = options.sample_fraction < 1.0;
  if (sampling && point.kind != MemoryKind::kHybrid) {
    GMD_ASSERT(feed.chunked != nullptr, "sampled point needs a chunk feed");
    memsim::MemoryConfig config = point.single_config();
    config.sim.deadline = options.deadline;
    memsim::SampledSimOptions sopt;
    sopt.fraction = options.sample_fraction;
    sopt.seed = options.sample_seed;
    sopt.warmup_chunks = options.sample_warmup_chunks;
    const memsim::SampledMetrics sampled =
        memsim::simulate_sampled(config, *feed.chunked, sopt);
    row.metrics = sampled.estimate;
    row.metric_ci.assign(sampled.ci.begin(), sampled.ci.end());
    return;
  }
  if (point.kind == MemoryKind::kHybrid) {
    memsim::HybridConfig config = point.hybrid_config();
    config.dram.sim.deadline = options.deadline;
    config.nvm.sim.deadline = options.deadline;
    row.metrics = feed.dram_side != nullptr
                      ? memsim::HybridMemory::simulate(config, *feed.dram_side,
                                                       *feed.nvm_side)
                      : memsim::HybridMemory::simulate(config, feed.raw);
  } else {
    memsim::MemoryConfig config = point.single_config();
    config.sim.deadline = options.deadline;
    config.sim.num_workers = options.sim_workers;
    row.metrics = feed.predecoded != nullptr
                      ? memsim::MemorySystem::simulate(config, *feed.predecoded)
                      : memsim::MemorySystem::simulate(config, feed.raw);
  }
  // A sampled sweep's exhaustive rows (hybrids) carry point intervals
  // so every row of the sweep reports in the same shape.
  if (sampling) {
    const std::vector<double> values = row.metrics.metric_values();
    row.metric_ci.resize(values.size());
    for (std::size_t m = 0; m < values.size(); ++m) {
      row.metric_ci[m] = {values[m], values[m]};
    }
  }
}

/// Relative simulation cost used to order points most-expensive-first,
/// so the dynamic scheduler never strands a long point at the tail of
/// the sweep.  Hybrid points drive two memory systems.
double point_cost(const DesignPoint& point) {
  return point.kind == MemoryKind::kHybrid ? 2.0 : 1.0;
}

/// Classifies a caught failure: errors raised mid-simulation without an
/// explicit code are simulation failures; std::exception likewise.
ErrorCode classify_code(const Error& e) {
  return e.code() == ErrorCode::kUnspecified ? ErrorCode::kSimulation
                                             : e.code();
}

PointOutcome outcome_for(ErrorCode code) {
  switch (code) {
    case ErrorCode::kTimeout:
      return PointOutcome::kTimedOut;
    case ErrorCode::kCancelled:
      return PointOutcome::kSkipped;
    default:
      return PointOutcome::kFailed;
  }
}

}  // namespace

std::string to_string(PointOutcome outcome) {
  switch (outcome) {
    case PointOutcome::kOk:
      return "ok";
    case PointOutcome::kFailed:
      return "failed";
    case PointOutcome::kTimedOut:
      return "timed-out";
    case PointOutcome::kSkipped:
      return "skipped";
  }
  return "?";
}

std::string to_string(FailurePolicy policy) {
  switch (policy) {
    case FailurePolicy::kFailFast:
      return "fail-fast";
    case FailurePolicy::kSkip:
      return "skip";
    case FailurePolicy::kRetry:
      return "retry";
  }
  return "?";
}

memsim::MemoryMetrics simulate_point(
    const DesignPoint& point, std::span<const cpusim::MemoryEvent> trace) {
  PointFeed feed;
  feed.raw = trace;
  MetricsRow row;
  simulate_point_into(point, SimulateOptions{}, feed, row);
  return row.metrics;
}

MetricsRow simulate_point(const tracestore::TraceStoreReader& store,
                          const DesignPoint& point,
                          const SimulateOptions& options) {
  GMD_REQUIRE(options.sample_fraction > 0.0 && options.sample_fraction <= 1.0,
              "sample_fraction must be in (0, 1], got "
                  << options.sample_fraction);
  GMD_REQUIRE(options.sampling_chunk_events > 0,
              "sampling_chunk_events must be positive");
  GMD_REQUIRE(options.sim_workers >= 1, "sim_workers must be >= 1");
  validate(point);

  const bool sampling =
      options.sample_fraction < 1.0 && point.kind != MemoryKind::kHybrid;
  PointFeed feed;
  std::unique_ptr<memsim::ChunkedTrace> chunked;
  std::vector<cpusim::MemoryEvent> storage;
  memsim::PredecodedTrace local;
  if (sampling) {
    // A store feed samples the GMDT native chunk index, exactly like a
    // sampled sweep over the same store.
    chunked = std::make_unique<StoreChunkedTrace>(store);
    feed.chunked = chunked.get();
  } else if (point.kind == MemoryKind::kHybrid) {
    if (!options.raw_events.empty()) {
      feed.raw = options.raw_events;
    } else {
      storage = store.read_all();
      feed.raw = storage;
    }
  } else if (options.predecoded != nullptr) {
    feed.predecoded = options.predecoded;
  } else if (!options.raw_events.empty()) {
    feed.raw = options.raw_events;
  } else {
    // Stream-predecode off the shared mapping — the sweep's grouped
    // path, without materializing the raw event vector.
    tracestore::ChunkIterator it(store);
    local = memsim::PredecodedTrace::build(
        point.single_config(),
        [&it]() -> std::span<const cpusim::MemoryEvent> {
          return it.next() ? it.events()
                           : std::span<const cpusim::MemoryEvent>{};
        },
        static_cast<std::size_t>(store.num_events()));
    feed.predecoded = &local;
  }

  MetricsRow row;
  simulate_point_into(point, options, feed, row);
  return row;
}

SweepHealth summarize_health(std::span<const SweepRow> rows) {
  SweepHealth health;
  health.total = rows.size();
  health.by_code.assign(static_cast<std::size_t>(kLastErrorCode) + 1, 0);
  for (const SweepRow& row : rows) {
    switch (row.outcome) {
      case PointOutcome::kOk:
        ++health.ok;
        break;
      case PointOutcome::kFailed:
        ++health.failed;
        break;
      case PointOutcome::kTimedOut:
        ++health.timed_out;
        break;
      case PointOutcome::kSkipped:
        ++health.skipped;
        break;
    }
    if (row.outcome != PointOutcome::kOk) {
      ++health.by_code[static_cast<std::size_t>(row.error_code)];
    }
    health.retries += row.attempts > 1 ? row.attempts - 1 : 0;
  }
  return health;
}

std::string SweepHealth::summary() const {
  std::ostringstream os;
  os << total << " points: " << ok << " ok";
  if (failed) os << ", " << failed << " failed";
  if (timed_out) os << ", " << timed_out << " timed-out";
  if (skipped) os << ", " << skipped << " skipped";
  if (retries || !all_ok()) {
    os << " (" << retries << (retries == 1 ? " retry" : " retries");
    bool first = true;
    for (std::size_t c = 0; c < by_code.size(); ++c) {
      if (by_code[c] == 0) continue;
      os << (first ? "; failures: " : ", ")
         << to_string(static_cast<ErrorCode>(c)) << "=" << by_code[c];
      first = false;
    }
    os << ")";
  }
  return os.str();
}

namespace {

std::vector<SweepRow> run_sweep_impl(std::span<const DesignPoint> points,
                                     TraceAccess& access,
                                     const SweepOptions& options) {
  const bool fail_fast = options.failure_policy == FailurePolicy::kFailFast;
  GMD_REQUIRE(options.sample_fraction > 0.0 && options.sample_fraction <= 1.0,
              "sample_fraction must be in (0, 1], got "
                  << options.sample_fraction);
  GMD_REQUIRE(options.sampling_chunk_events > 0,
              "sampling_chunk_events must be positive");
  GMD_REQUIRE(options.sim_workers >= 1, "sim_workers must be >= 1");
  const bool sampling = options.sample_fraction < 1.0;
  std::vector<SweepRow> rows(points.size());

  // Points with a terminal row before simulation starts: rejected by
  // validation, or restored from a resumed checkpoint.
  std::vector<char> settled(points.size(), 0);

  // Upfront validation: a misconfigured point must never cost
  // simulation time (and under fail-fast must abort before any point
  // runs).
  if (options.validate_points) {
    for (std::size_t i = 0; i < points.size(); ++i) {
      try {
        validate(points[i]);
      } catch (const Error& e) {
        if (fail_fast) throw;
        rows[i].point = points[i];
        rows[i].outcome = PointOutcome::kFailed;
        rows[i].error_code = ErrorCode::kConfig;
        rows[i].error = e.what();
        rows[i].attempts = 0;
        settled[i] = 1;
        // A validation reject is a terminal row: the sink must see it,
        // or a distributed shard holding an invalid point would count
        // as never-run and be re-issued forever.
        if (options.row_sink) options.row_sink(i, rows[i]);
      }
    }
  }

  // Checkpoint journal: restore completed rows on resume, then record
  // every newly completed row.
  std::unique_ptr<SweepJournal> journal;
  if (!options.checkpoint_path.empty()) {
    // A crashed journal flush can strand '<path>.tmp'; reclaim it
    // before the first write of this run (readers never look at it,
    // but leftovers should not accumulate across kill-resume cycles).
    if (remove_file_if_exists(options.checkpoint_path + ".tmp")) {
      GMD_LOG_INFO << "sweep: reclaimed stale temp '"
                   << options.checkpoint_path << ".tmp'";
    }
    // The sampling geometry joins the journal identity (see
    // sweep_identity): a journal written under one geometry must not
    // resume a sweep under another.
    const JournalKey key =
        sweep_identity(access.journal_key(points), options);
    journal = std::make_unique<SweepJournal>(options.checkpoint_path, key);
    if (options.resume) {
      // A journal that fails to load — truncated file, flipped header
      // byte, or a checksum from a different trace/point list — must
      // not take the sweep down with it: the worst case of resuming is
      // re-simulating, so warn with the typed code and start fresh.
      // load() retains nothing on failure, and the first record()
      // rewrites a consistent journal for the current invocation.
      std::vector<std::pair<std::size_t, SweepRow>> restored_rows;
      try {
        restored_rows = journal->load();
      } catch (const Error& e) {
        GMD_LOG_WARN << "sweep resume: ignoring unusable journal '"
                     << options.checkpoint_path << "' ["
                     << to_string(e.code()) << "]: " << e.what()
                     << "; starting from scratch";
      }
      std::size_t restored = 0;
      for (auto& [index, row] : restored_rows) {
        if (settled[index]) continue;
        rows[index] = std::move(row);
        rows[index].point = points[index];
        settled[index] = 1;
        ++restored;
      }
      if (restored > 0) {
        GMD_LOG_INFO << "sweep resume: " << restored << "/" << points.size()
                     << " points restored from '" << options.checkpoint_path
                     << "'";
      }
    }
  }

  // Channel-parallel points multiply threads, so the outer point pool
  // shrinks by the same factor to keep total concurrency near the
  // requested level (oversubscribing the cores would serialize both
  // tiers).
  std::size_t pool_threads = options.num_threads;
  if (options.sim_workers > 1) {
    if (pool_threads == 0) pool_threads = std::thread::hardware_concurrency();
    if (pool_threads == 0) pool_threads = 1;
    pool_threads = std::max<std::size_t>(1, pool_threads / options.sim_workers);
  }
  ThreadPool pool(pool_threads);

  // Group points by decode geometry.  Decode (and, for static hybrids,
  // routing) depends only on the mapping geometry and clocks, so all
  // members of a group — e.g. every NVM tRCD variant of a sweep cell —
  // replay one shared predecoded request stream.
  std::vector<PointPlan> plans(points.size());
  std::vector<TraceGroup> groups;
  if (options.share_predecoded_traces) {
    std::unordered_map<std::string, std::size_t> group_of_key;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (settled[i]) continue;  // nothing left to simulate
      // Sampled single-technology points replay raw event chunks, not a
      // predecoded whole-trace stream — a shared predecode would be
      // wasted work for them.
      if (sampling && points[i].kind != MemoryKind::kHybrid) continue;
      PointPlan& plan = plans[i];
      std::string key;
      bool is_hybrid = false;
      if (points[i].kind == MemoryKind::kHybrid) {
        plan.hybrid = points[i].hybrid_config();
        if (plan.hybrid.migration_threshold != 0) continue;  // dynamic routing
        key = memsim::hybrid_trace_key(plan.hybrid);
        is_hybrid = true;
      } else {
        plan.single = points[i].single_config();
        key = memsim::PredecodedTrace::key(plan.single);
      }
      const auto [it, inserted] = group_of_key.emplace(key, groups.size());
      if (inserted) {
        groups.push_back(TraceGroup{is_hybrid, i, {}, {}, {}});
      }
      plan.group = it->second;
    }
  }

  // A store feed only pays for the full event vector when some point
  // actually replays raw events: a hybrid group (the hybrid splitter
  // takes a span), an unsettled point outside every group (dynamic
  // hybrids, or sharing disabled).  Must happen before the group
  // predecode below — materialize() uses the pool itself.
  bool need_raw = false;
  for (std::size_t i = 0; i < points.size() && !need_raw; ++i) {
    // Sampled single-technology points feed on chunks, never the raw
    // event vector.
    need_raw = !settled[i] && plans[i].group == PointPlan::kNoGroup &&
               !(sampling && points[i].kind != MemoryKind::kHybrid);
  }
  for (const TraceGroup& group : groups) {
    need_raw = need_raw || group.is_hybrid;
  }
  if (need_raw) access.materialize(pool);

  if (sampling) {
    std::size_t hybrid_points = 0;
    for (std::size_t i = 0; i < points.size(); ++i) {
      if (!settled[i] && points[i].kind == MemoryKind::kHybrid) {
        ++hybrid_points;
      }
    }
    if (hybrid_points > 0) {
      GMD_LOG_INFO << "sweep sampling: " << hybrid_points
                   << " hybrid points run exhaustively (migration state is "
                      "whole-trace; their rows carry point intervals)";
    }
  }

  if (!groups.empty()) {
    // Predecode each group once, in parallel.
    pool.parallel_for(0, groups.size(), [&](std::size_t g) {
      TraceGroup& group = groups[g];
      if (group.is_hybrid) {
        auto sides =
            memsim::predecode_hybrid(plans[group.rep].hybrid, access.raw());
        group.dram_side = std::move(sides.first);
        group.nvm_side = std::move(sides.second);
      } else {
        group.trace = access.predecode(plans[group.rep].single);
        if (options.sim_workers > 1) {
          // Build the per-channel partition here, inside the predecode
          // stage, so the first batch of channel-parallel points doesn't
          // all pile onto one lazy call_once.
          group.trace.partition_by_channel(plans[group.rep].single.channels);
        }
      }
    });
  }

  // One simulation attempt; `deadline` (nullable) rides in on a config
  // copy and is polled by the channel service loops.  The body itself
  // is simulate_point_into — the same code path the public
  // simulate_point overloads (and through them the query service) run.
  const auto run_point = [&](std::size_t i, Deadline* deadline,
                             SweepRow& row) {
    SimulateOptions sopt;
    sopt.sim_workers = options.sim_workers;
    sopt.sample_fraction = options.sample_fraction;
    sopt.sample_seed = options.sample_seed;
    sopt.sample_warmup_chunks = options.sample_warmup_chunks;
    sopt.sampling_chunk_events = options.sampling_chunk_events;
    sopt.deadline = deadline;

    const PointPlan& plan = plans[i];
    PointFeed feed;
    std::unique_ptr<memsim::ChunkedTrace> chunked;
    if (sampling && points[i].kind != MemoryKind::kHybrid) {
      chunked = access.chunked(options.sampling_chunk_events);
      feed.chunked = chunked.get();
    } else if (plan.group != PointPlan::kNoGroup) {
      const TraceGroup& group = groups[plan.group];
      if (group.is_hybrid) {
        feed.dram_side = &group.dram_side;
        feed.nvm_side = &group.nvm_side;
      } else {
        feed.predecoded = &group.trace;
      }
    } else {
      feed.raw = access.raw();
    }

    MetricsRow result;
    simulate_point_into(points[i], sopt, feed, result);
    row.metrics = std::move(result.metrics);
    row.metric_ci = std::move(result.metric_ci);
  };

  // Full per-point execution under the failure policy.
  const std::uint32_t max_attempts =
      options.failure_policy == FailurePolicy::kRetry
          ? std::max<std::uint32_t>(1, options.max_attempts)
          : 1;
  const auto execute = [&](std::size_t i) {
    SweepRow& row = rows[i];
    row.point = points[i];
    for (std::uint32_t attempt = 1;; ++attempt) {
      row.attempts = attempt;
      try {
        // The wall budget starts before the attempt (including the test
        // fault hook), so a hook that stalls past it exercises the same
        // timeout path as a stuck simulation.
        std::optional<Deadline> budget;
        Deadline* deadline = options.cancel;
        if (options.point_wall_budget.count() > 0) {
          budget.emplace(options.point_wall_budget, options.cancel);
          deadline = &*budget;
        }
        if (options.cancel != nullptr && options.cancel->cancelled()) {
          throw Error(ErrorCode::kCancelled, "sweep cancelled");
        }
        if (options.fault_hook) options.fault_hook(i, attempt);
        run_point(i, deadline, row);
        row.outcome = PointOutcome::kOk;
        row.error_code = ErrorCode::kUnspecified;
        row.error.clear();
        if (journal) journal->record(i, row);
        if (options.row_sink) options.row_sink(i, row);
        return;
      } catch (const Error& e) {
        if (fail_fast) throw;
        row.error_code = classify_code(e);
        row.error = e.what();
      } catch (const std::exception& e) {
        if (fail_fast) throw;
        row.error_code = ErrorCode::kSimulation;
        row.error = e.what();
      }
      row.outcome = outcome_for(row.error_code);
      row.metrics = memsim::MemoryMetrics{};
      row.metric_ci.clear();
      const bool retryable = options.failure_policy == FailurePolicy::kRetry &&
                             row.outcome == PointOutcome::kFailed &&
                             row.error_code != ErrorCode::kConfig &&
                             attempt < max_attempts;
      if (!retryable) {
        // Skipped (cancelled) points are not terminal results — a later
        // run must re-simulate them — so the sink never sees them.
        if (options.row_sink && row.outcome != PointOutcome::kSkipped) {
          options.row_sink(i, row);
        }
        return;
      }
      if (options.retry_backoff.count() > 0) {
        std::this_thread::sleep_for(options.retry_backoff * (1u << (attempt - 1)));
      }
    }
  };

  // Expensive points first: with workers claiming one point at a time,
  // the costly tail can no longer serialize the sweep.
  std::vector<std::size_t> order;
  order.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!settled[i]) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return point_cost(points[a]) > point_cost(points[b]);
                   });

  std::atomic<std::size_t> done{0};
  pool.parallel_for(0, order.size(), [&](std::size_t k) {
    execute(order[k]);
    const std::size_t finished = done.fetch_add(1) + 1;
    if (options.log_progress && finished % 50 == 0) {
      GMD_LOG_INFO << "sweep progress: " << finished << "/" << order.size();
    }
  });

  if (options.log_progress && !fail_fast) {
    const SweepHealth health = summarize_health(rows);
    if (!health.all_ok()) {
      GMD_LOG_WARN << "sweep health: " << health.summary();
    }
  }
  return rows;
}

}  // namespace

std::vector<SweepRow> run_sweep(std::span<const DesignPoint> points,
                                std::span<const cpusim::MemoryEvent> trace,
                                const SweepOptions& options) {
  TraceAccess access(trace);
  return run_sweep_impl(points, access, options);
}

std::vector<SweepRow> run_sweep(std::span<const DesignPoint> points,
                                const tracestore::TraceStoreReader& store,
                                const SweepOptions& options) {
  TraceAccess access(store);
  return run_sweep_impl(points, access, options);
}

}  // namespace gmd::dse
