#include "gmd/dse/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <numeric>
#include <string>
#include <unordered_map>
#include <utility>

#include "gmd/common/logging.hpp"
#include "gmd/common/thread_pool.hpp"
#include "gmd/memsim/hybrid.hpp"
#include "gmd/memsim/memory_system.hpp"
#include "gmd/memsim/predecoded_trace.hpp"

namespace gmd::dse {

namespace {

/// Per-point simulation plan: which shared trace group (if any) the
/// point replays, and the materialized config so it is built once.
struct PointPlan {
  std::size_t group = kNoGroup;  ///< Index into the group tables.
  memsim::MemoryConfig single;   ///< kDram / kNvm points.
  memsim::HybridConfig hybrid;   ///< kHybrid points.

  static constexpr std::size_t kNoGroup = ~std::size_t{0};
};

/// One shared predecode job: every member point replays these streams.
struct TraceGroup {
  bool is_hybrid = false;
  std::size_t rep = 0;  ///< Point index whose config defines the group.
  memsim::PredecodedTrace trace;       // single-technology groups
  memsim::PredecodedTrace dram_side;   // hybrid groups
  memsim::PredecodedTrace nvm_side;
};

/// Relative simulation cost used to order points most-expensive-first,
/// so the dynamic scheduler never strands a long point at the tail of
/// the sweep.  Hybrid points drive two memory systems.
double point_cost(const DesignPoint& point) {
  return point.kind == MemoryKind::kHybrid ? 2.0 : 1.0;
}

}  // namespace

memsim::MemoryMetrics simulate_point(
    const DesignPoint& point, std::span<const cpusim::MemoryEvent> trace) {
  if (point.kind == MemoryKind::kHybrid) {
    return memsim::HybridMemory::simulate(point.hybrid_config(), trace);
  }
  return memsim::MemorySystem::simulate(point.single_config(), trace);
}

std::vector<SweepRow> run_sweep(std::span<const DesignPoint> points,
                                std::span<const cpusim::MemoryEvent> trace,
                                const SweepOptions& options) {
  std::vector<SweepRow> rows(points.size());
  ThreadPool pool(options.num_threads);

  // Group points by decode geometry.  Decode (and, for static hybrids,
  // routing) depends only on the mapping geometry and clocks, so all
  // members of a group — e.g. every NVM tRCD variant of a sweep cell —
  // replay one shared predecoded request stream.
  std::vector<PointPlan> plans(points.size());
  std::vector<TraceGroup> groups;
  if (options.share_predecoded_traces) {
    std::unordered_map<std::string, std::size_t> group_of_key;
    for (std::size_t i = 0; i < points.size(); ++i) {
      PointPlan& plan = plans[i];
      std::string key;
      bool is_hybrid = false;
      if (points[i].kind == MemoryKind::kHybrid) {
        plan.hybrid = points[i].hybrid_config();
        if (plan.hybrid.migration_threshold != 0) continue;  // dynamic routing
        key = memsim::hybrid_trace_key(plan.hybrid);
        is_hybrid = true;
      } else {
        plan.single = points[i].single_config();
        key = memsim::PredecodedTrace::key(plan.single);
      }
      const auto [it, inserted] = group_of_key.emplace(key, groups.size());
      if (inserted) {
        groups.push_back(TraceGroup{is_hybrid, i, {}, {}, {}});
      }
      plan.group = it->second;
    }
    // Predecode each group once, in parallel.
    pool.parallel_for(0, groups.size(), [&](std::size_t g) {
      TraceGroup& group = groups[g];
      if (group.is_hybrid) {
        auto sides = memsim::predecode_hybrid(plans[group.rep].hybrid, trace);
        group.dram_side = std::move(sides.first);
        group.nvm_side = std::move(sides.second);
      } else {
        group.trace =
            memsim::PredecodedTrace::build(plans[group.rep].single, trace);
      }
    });
  }

  // Expensive points first: with workers claiming one point at a time,
  // the costly tail can no longer serialize the sweep.
  std::vector<std::size_t> order(points.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return point_cost(points[a]) > point_cost(points[b]);
                   });

  std::atomic<std::size_t> done{0};
  pool.parallel_for(0, points.size(), [&](std::size_t k) {
    const std::size_t i = order[k];
    const PointPlan& plan = plans[i];
    rows[i].point = points[i];
    if (plan.group == PointPlan::kNoGroup) {
      rows[i].metrics = simulate_point(points[i], trace);
    } else if (groups[plan.group].is_hybrid) {
      rows[i].metrics = memsim::HybridMemory::simulate(
          plan.hybrid, groups[plan.group].dram_side,
          groups[plan.group].nvm_side);
    } else {
      rows[i].metrics =
          memsim::MemorySystem::simulate(plan.single, groups[plan.group].trace);
    }
    const std::size_t finished = done.fetch_add(1) + 1;
    if (options.log_progress && finished % 50 == 0) {
      GMD_LOG_INFO << "sweep progress: " << finished << "/" << points.size();
    }
  });
  return rows;
}

}  // namespace gmd::dse
