#include "gmd/dse/explorer.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <map>
#include <memory>
#include <mutex>
#include <numeric>
#include <set>
#include <sstream>

#include "gmd/common/atomic_file.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/hash.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/common/thread_pool.hpp"
#include "gmd/dse/checkpoint.hpp"
#include "gmd/dse/pareto.hpp"
#include "gmd/dse/recommend.hpp"
#include "gmd/ml/forest.hpp"
#include "gmd/ml/gp.hpp"
#include "gmd/ml/scaler.hpp"

namespace gmd::dse {

bool scored_before(const ScoredPoint& a, const ScoredPoint& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.index < b.index;
}

namespace {

/// Bounded best-k set under scored_before.  The heap front is the worst
/// retained candidate (scored_before as the heap comparator puts the
/// element that precedes nothing at the front), so offer() is O(log k).
class TopK {
 public:
  explicit TopK(std::size_t k) : k_(k) {}

  void offer(const ScoredPoint& p) {
    if (k_ == 0) return;
    if (heap_.size() < k_) {
      heap_.push_back(p);
      std::push_heap(heap_.begin(), heap_.end(), scored_before);
      return;
    }
    if (scored_before(p, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), scored_before);
      heap_.back() = p;
      std::push_heap(heap_.begin(), heap_.end(), scored_before);
    }
  }

  void merge_into(TopK& other) const {
    for (const ScoredPoint& p : heap_) other.offer(p);
  }

  std::vector<ScoredPoint> sorted() const {
    std::vector<ScoredPoint> out = heap_;
    std::sort(out.begin(), out.end(), scored_before);
    return out;
  }

 private:
  std::size_t k_;
  std::vector<ScoredPoint> heap_;
};

}  // namespace

std::vector<ScoredPoint> stream_score_topk(
    const LazySpace& space, const BlockScorer& scorer, std::size_t k,
    std::span<const std::size_t> skip_sorted, std::size_t block_size,
    std::size_t num_threads, StreamStats* stats) {
  GMD_REQUIRE(static_cast<bool>(scorer), "stream_score_topk needs a scorer");
  GMD_REQUIRE(block_size >= 1, "block size must be >= 1");
  GMD_REQUIRE(std::is_sorted(skip_sorted.begin(), skip_sorted.end()),
              "skip list must be sorted ascending");
  const std::size_t n = space.size();
  const std::size_t width = DesignPoint::feature_names().size();
  if (n == 0 || k == 0) return {};

  const std::size_t num_blocks = (n + block_size - 1) / block_size;
  TopK global(k);
  std::mutex merge_mutex;
  std::size_t scored_total = 0;

  ThreadPool pool(num_threads);
  pool.parallel_for(0, num_blocks, [&](std::size_t b) {
    const std::size_t begin = b * block_size;
    const std::size_t end = std::min(n, begin + block_size);
    const std::size_t rows = end - begin;

    // Per-thread block buffers, reused across the blocks a worker
    // claims; peak memory is O(block_size x threads), never O(n).
    thread_local ml::Matrix x;
    thread_local std::vector<double> scores;
    if (x.rows() != rows || x.cols() != width) x = ml::Matrix(rows, width);
    scores.resize(rows);

    for (std::size_t r = 0; r < rows; ++r) {
      space.decode_features(begin + r, begin + r + 1, x.row(r));
    }
    scorer(x, begin, scores);

    TopK local(k);
    std::size_t offered = 0;
    for (std::size_t r = 0; r < rows; ++r) {
      const std::size_t index = begin + r;
      if (std::binary_search(skip_sorted.begin(), skip_sorted.end(), index)) {
        continue;
      }
      local.offer({index, scores[r]});
      ++offered;
    }
    {
      const std::lock_guard<std::mutex> lock(merge_mutex);
      local.merge_into(global);
      scored_total += offered;
    }
  });

  if (stats != nullptr) {
    stats->scored += scored_total;
    stats->blocks += num_blocks;
  }
  return global.sorted();
}

std::string to_string(Acquisition acquisition) {
  switch (acquisition) {
    case Acquisition::kMaxVariance:
      return "variance";
    case Acquisition::kExpectedImprovement:
      return "ei";
    case Acquisition::kBestPredicted:
      return "best";
  }
  return "?";
}

Acquisition parse_acquisition(const std::string& name) {
  if (name == "variance") return Acquisition::kMaxVariance;
  if (name == "ei") return Acquisition::kExpectedImprovement;
  if (name == "best") return Acquisition::kBestPredicted;
  GMD_REQUIRE_AS(ErrorCode::kConfig, false,
                 "unknown acquisition '" << name << "' (variance|ei|best)");
  return Acquisition::kMaxVariance;  // unreachable
}

namespace {

std::size_t metric_index(const std::string& metric) {
  const auto& names = memsim::MemoryMetrics::metric_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == metric) return i;
  }
  GMD_REQUIRE_AS(ErrorCode::kConfig, false,
                 "unknown metric '" << metric << "'");
  return 0;  // unreachable
}

double metric_value(const SweepRow& row, std::size_t index) {
  return row.metrics.metric_values()[index];
}

/// The fitted surrogate of one round plus everything the scorers need.
struct Surrogate {
  bool is_gp = true;
  ml::GaussianProcess gp;
  ml::RandomForest rf{ml::ForestParams{}};
  const ml::MinMaxScaler* x_scaler = nullptr;  ///< Space-bounds scaler.
  ml::MinMaxScaler y_scaler;                   ///< Fit on labeled targets.
  Direction direction = Direction::kMinimize;
  double best_scaled_y = 0.0;  ///< Direction-best observed scaled target.

  /// Means (and optionally variances) for a scaled block.  Const and
  /// allocation-local, so safe to call from several workers at once.
  void eval(const ml::Matrix& xs, std::vector<double>& mu,
            std::vector<double>& var, bool need_variance) const {
    if (is_gp) {
      if (need_variance) {
        gp.predict_with_variance(xs, mu, var);
      } else {
        mu = gp.predict(xs);
      }
    } else {
      if (need_variance) {
        rf.predict_with_spread(xs, mu, var);
      } else {
        mu = rf.predict(xs);
      }
    }
  }

  double to_physical(double scaled) const {
    const double lo = y_scaler.mins()[0];
    const double hi = y_scaler.maxs()[0];
    return lo + (hi - lo) * scaled;
  }
};

Surrogate train_surrogate(
    const ExplorerOptions& options, const ml::MinMaxScaler& x_scaler,
    std::size_t metric_idx,
    const std::map<std::size_t, SweepRow>& labeled) {
  std::vector<const SweepRow*> ok_rows;
  for (const auto& [index, row] : labeled) {
    if (row.ok()) ok_rows.push_back(&row);
  }
  GMD_REQUIRE_AS(ErrorCode::kInvalidData, ok_rows.size() >= 2,
                 "explorer needs >= 2 simulated points to train (have "
                     << ok_rows.size() << ")");

  const std::size_t width = DesignPoint::feature_names().size();
  ml::Matrix x(ok_rows.size(), width);
  std::vector<double> y(ok_rows.size());
  for (std::size_t r = 0; r < ok_rows.size(); ++r) {
    ok_rows[r]->point.write_features(x.row(r));
    y[r] = metric_value(*ok_rows[r], metric_idx);
  }

  Surrogate s;
  s.is_gp = options.model == "gp";
  s.x_scaler = &x_scaler;
  s.direction = metric_direction(options.metric);
  s.y_scaler.fit(std::span<const double>(y));
  const std::vector<double> ys = s.y_scaler.transform(y);
  const ml::Matrix xs = x_scaler.transform(x);

  if (s.is_gp) {
    ml::GpParams params;
    params.kernel.gamma = options.gp_gamma;
    params.noise = options.gp_noise;
    s.gp = ml::GaussianProcess(params);
    s.gp.fit(xs, ys);
  } else {
    ml::ForestParams params;
    params.num_trees = options.rf_trees;
    params.seed = options.seed;
    params.num_threads = options.num_threads;
    s.rf = ml::RandomForest(params);
    s.rf.fit(xs, ys);
  }

  s.best_scaled_y = ys.front();
  for (const double v : ys) {
    if (s.direction == Direction::kMinimize) {
      s.best_scaled_y = std::min(s.best_scaled_y, v);
    } else {
      s.best_scaled_y = std::max(s.best_scaled_y, v);
    }
  }
  return s;
}

double normal_cdf(double z) { return 0.5 * std::erfc(-z / std::sqrt(2.0)); }
double normal_pdf(double z) {
  return std::exp(-0.5 * z * z) / std::sqrt(2.0 * std::acos(-1.0));
}

/// Builds the acquisition scorer over a fitted surrogate.  `s` must
/// outlive the returned closure.
BlockScorer make_acquisition_scorer(const Surrogate& s,
                                    Acquisition acquisition) {
  return [&s, acquisition](const ml::Matrix& x, std::size_t /*first*/,
                           std::span<double> out) {
    thread_local std::vector<double> mu;
    thread_local std::vector<double> var;
    const ml::Matrix xs = s.x_scaler->transform(x);
    const bool need_variance = acquisition != Acquisition::kBestPredicted;
    s.eval(xs, mu, var, need_variance);
    for (std::size_t r = 0; r < x.rows(); ++r) {
      switch (acquisition) {
        case Acquisition::kMaxVariance:
          out[r] = var[r];
          break;
        case Acquisition::kExpectedImprovement: {
          const double improvement = s.direction == Direction::kMinimize
                                         ? s.best_scaled_y - mu[r]
                                         : mu[r] - s.best_scaled_y;
          const double sigma = std::sqrt(std::max(0.0, var[r]));
          if (sigma <= 0.0) {
            out[r] = std::max(0.0, improvement);
          } else {
            const double z = improvement / sigma;
            out[r] = improvement * normal_cdf(z) + sigma * normal_pdf(z);
          }
          break;
        }
        case Acquisition::kBestPredicted:
          out[r] = s.direction == Direction::kMinimize ? -mu[r] : mu[r];
          break;
      }
    }
  };
}

// --- rounds trajectory journal -----------------------------------------

constexpr const char* kRoundsHeaderTag = "gmd-explorer-rounds";

std::uint64_t options_identity(const ExplorerOptions& options) {
  // The knobs that determine the trajectory (and so the final result).
  // num_threads and block_size are deliberately absent: rounds are
  // thread- and block-invariant, so a resume may use different ones.
  Fnv1a h;
  h.mix_bytes(options.metric.data(), options.metric.size());
  h.mix_bytes(options.model.data(), options.model.size());
  h.mix(static_cast<std::uint64_t>(options.acquisition));
  h.mix(options.initial_samples);
  h.mix(options.batch_size);
  h.mix(options.max_rounds);
  h.mix(options.simulation_budget);
  h.mix(options.top_k);
  h.mix(options.seed);
  h.mix(options.exploit_final_round ? 1u : 0u);
  h.mix_double(options.gp_gamma);
  h.mix_double(options.gp_noise);
  h.mix(options.rf_trees);
  return h.state;
}

std::string hex16(std::uint64_t value) {
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << value;
  return os.str();
}

void write_rounds_file(const std::string& path, std::uint64_t space_hash,
                       std::uint64_t trace_hash, std::uint64_t opts_hash,
                       const std::vector<std::vector<std::size_t>>& rounds) {
  atomic_write_file(path, [&](std::ostream& os) {
    os << kRoundsHeaderTag << " v1 space=" << hex16(space_hash)
       << " trace=" << hex16(trace_hash) << " opts=" << hex16(opts_hash)
       << "\n";
    for (std::size_t r = 0; r < rounds.size(); ++r) {
      os << "round " << r << " " << rounds[r].size();
      for (const std::size_t index : rounds[r]) os << " " << index;
      os << "\n";
    }
  });
}

std::vector<std::vector<std::size_t>> load_rounds_file(
    const std::string& path, std::uint64_t space_hash,
    std::uint64_t trace_hash, std::uint64_t opts_hash,
    std::size_t space_size) {
  std::ifstream in(path);
  if (!in.is_open()) return {};
  std::string tag, version, space_tok, trace_tok, opts_tok;
  in >> tag >> version >> space_tok >> trace_tok >> opts_tok;
  GMD_REQUIRE_AS(ErrorCode::kConfig,
                 in.good() && tag == kRoundsHeaderTag && version == "v1",
                 "not an explorer rounds journal: " << path);
  const std::string expect_space = "space=" + hex16(space_hash);
  const std::string expect_trace = "trace=" + hex16(trace_hash);
  const std::string expect_opts = "opts=" + hex16(opts_hash);
  GMD_REQUIRE_AS(ErrorCode::kConfig,
                 space_tok == expect_space && trace_tok == expect_trace &&
                     opts_tok == expect_opts,
                 "rounds journal " << path
                                   << " was written for a different "
                                      "space/trace/options identity");
  std::vector<std::vector<std::size_t>> rounds;
  std::string word;
  while (in >> word) {
    GMD_REQUIRE_AS(ErrorCode::kIo, word == "round",
                   "corrupt rounds journal: " << path);
    std::size_t index = 0;
    std::size_t count = 0;
    in >> index >> count;
    GMD_REQUIRE_AS(ErrorCode::kIo, in.good() && index == rounds.size(),
                   "corrupt rounds journal: " << path);
    std::vector<std::size_t> acquired(count);
    for (std::size_t i = 0; i < count; ++i) {
      in >> acquired[i];
      GMD_REQUIRE_AS(ErrorCode::kIo, !in.fail() && acquired[i] < space_size,
                     "corrupt rounds journal: " << path);
    }
    rounds.push_back(std::move(acquired));
  }
  return rounds;
}

}  // namespace

ExplorerResult run_explorer(const LazySpace& space,
                            std::span<const cpusim::MemoryEvent> trace,
                            const ExplorerOptions& options) {
  GMD_REQUIRE(options.initial_samples >= 2, "need >= 2 initial samples");
  GMD_REQUIRE(options.batch_size >= 1, "batch size must be >= 1");
  GMD_REQUIRE(options.simulation_budget >= options.initial_samples,
              "simulation budget below the initial sample size");
  GMD_REQUIRE(options.top_k >= 1, "top_k must be >= 1");
  GMD_REQUIRE(options.model == "gp" || options.model == "rf",
              "explorer model must be gp or rf");
  GMD_REQUIRE(space.size() >= 2, "explorer needs a non-trivial space");
  const std::size_t metric_idx = metric_index(options.metric);
  const Direction direction = metric_direction(options.metric);

  // Space-level feature bounds: one streamed pass fits the X scaler for
  // every round, so retrains are deterministic regardless of which
  // subset happens to be labeled.
  ml::MinMaxScaler x_scaler;
  {
    std::vector<double> mins, maxs;
    space.feature_bounds(mins, maxs);
    for (std::size_t f = 0; f < mins.size(); ++f) {
      if (mins[f] > maxs[f]) std::swap(mins[f], maxs[f]);
    }
    x_scaler = ml::MinMaxScaler::from_bounds(std::move(mins), std::move(maxs));
  }

  // --- journal substrate -------------------------------------------------
  const bool journaled = !options.run_dir.empty();
  const std::uint64_t space_hash = space.checksum();
  const std::uint64_t trace_hash = trace_checksum(trace);
  const std::uint64_t opts_hash = options_identity(options);
  std::string rounds_path;
  std::unique_ptr<SweepJournal> journal;
  std::map<std::size_t, SweepRow> labeled;
  std::vector<std::vector<std::size_t>> trajectory;

  if (journaled) {
    std::filesystem::create_directories(options.run_dir);
    rounds_path = options.run_dir + "/rounds.txt";
    JournalKey base;
    base.trace_hash = trace_hash;
    base.points_hash = space_hash;
    base.num_points = space.size();
    const JournalKey key = sweep_identity(base, options.sweep);
    journal = std::make_unique<SweepJournal>(
        options.run_dir + "/sweep.journal", key);
    if (options.resume) {
      trajectory = load_rounds_file(rounds_path, space_hash, trace_hash,
                                    opts_hash, space.size());
      for (auto& [index, row] : journal->load()) {
        // The journal stores metrics only; re-decode the design point so
        // loaded rows train the surrogate exactly like fresh ones.
        row.point = space[index];
        labeled.emplace(index, std::move(row));
      }
    }
  }

  // --- the loop ----------------------------------------------------------
  ExplorerResult result;
  result.space_size = space.size();

  const std::size_t budget = std::min(options.simulation_budget, space.size());

  const auto total_acquired = [&trajectory]() {
    std::size_t total = 0;
    for (const auto& round : trajectory) total += round.size();
    return total;
  };

  // Running best, fed only by rounds completed so far — a resumed run
  // preloads the whole journal into `labeled`, so scanning the map here
  // would let replayed rounds peek at later rounds' results.
  double best_value = 0.0;
  bool have_best = false;
  const auto fold_round_into_best = [&](const std::vector<std::size_t>& batch) {
    for (const std::size_t index : batch) {
      const auto it = labeled.find(index);
      if (it == labeled.end() || !it->second.ok()) continue;
      const double v = metric_value(it->second, metric_idx);
      if (!have_best ||
          (direction == Direction::kMinimize ? v < best_value
                                             : v > best_value)) {
        best_value = v;
        have_best = true;
      }
    }
  };

  const auto simulate_round =
      [&](const std::vector<std::size_t>& batch) -> std::size_t {
    std::vector<std::size_t> missing;
    for (const std::size_t index : batch) {
      if (!labeled.contains(index)) missing.push_back(index);
    }
    if (missing.empty()) return 0;
    std::vector<DesignPoint> points(missing.size());
    for (std::size_t i = 0; i < missing.size(); ++i) {
      points[i] = space[missing[i]];
    }
    SweepOptions sweep = options.sweep;
    sweep.checkpoint_path.clear();
    sweep.resume = false;
    if (journal) {
      // Journal rows under their GLOBAL space indices as they complete,
      // so a kill mid-batch loses only in-flight points.
      sweep.row_sink = [&](std::size_t local, const SweepRow& row) {
        journal->record(missing[local], row);
      };
    }
    std::vector<SweepRow> rows = run_sweep(points, trace, sweep);
    for (std::size_t i = 0; i < missing.size(); ++i) {
      if (rows[i].outcome == PointOutcome::kSkipped) continue;
      labeled.emplace(missing[i], std::move(rows[i]));
    }
    return missing.size();
  };

  std::size_t round_idx = 0;
  StreamStats stream_stats;
  while (true) {
    std::vector<std::size_t> batch;
    if (round_idx < trajectory.size()) {
      batch = trajectory[round_idx];  // replaying a journaled round
    } else {
      const std::size_t acquired_so_far = total_acquired();
      if (round_idx > options.max_rounds) break;
      if (acquired_so_far >= budget) break;
      const std::size_t want = round_idx == 0
                                   ? std::min(options.initial_samples, budget)
                                   : std::min(options.batch_size,
                                              budget - acquired_so_far);
      if (round_idx == 0) {
        // Deterministic seed sample: distinct draws from the run seed.
        Rng rng(options.seed);
        std::set<std::size_t> seen;
        while (batch.size() < want) {
          const std::size_t index = rng.next_below(space.size());
          if (seen.insert(index).second) batch.push_back(index);
        }
      } else {
        const Surrogate surrogate =
            train_surrogate(options, x_scaler, metric_idx, labeled);
        // The closing round (last one the budget or round cap admits)
        // optionally turns greedy: simulate the predicted winners so
        // the final ranking rests on observed values.
        const bool last_round = round_idx == options.max_rounds ||
                                acquired_so_far + want >= budget;
        const Acquisition acquisition =
            options.exploit_final_round && last_round
                ? Acquisition::kBestPredicted
                : options.acquisition;
        const BlockScorer scorer =
            make_acquisition_scorer(surrogate, acquisition);
        std::vector<std::size_t> skip;
        for (const auto& round : trajectory) {
          skip.insert(skip.end(), round.begin(), round.end());
        }
        std::sort(skip.begin(), skip.end());
        const std::vector<ScoredPoint> picks = stream_score_topk(
            space, scorer, want, skip, options.block_size,
            options.num_threads, &stream_stats);
        for (const ScoredPoint& pick : picks) batch.push_back(pick.index);
      }
      if (batch.empty()) break;
      trajectory.push_back(batch);
      if (journaled) {
        // Acquisition is journaled BEFORE its simulations run: a kill
        // anywhere re-simulates the same points on resume.
        write_rounds_file(rounds_path, space_hash, trace_hash, opts_hash,
                          trajectory);
      }
    }

    ExplorerRound round;
    round.round = round_idx;
    round.acquired = batch;
    round.newly_simulated = simulate_round(batch);
    fold_round_into_best(batch);
    round.best_value = best_value;
    result.rounds.push_back(std::move(round));
    if (options.round_hook) options.round_hook(round_idx + 1);
    ++round_idx;
  }

  // --- final ranking -----------------------------------------------------
  const Surrogate surrogate =
      train_surrogate(options, x_scaler, metric_idx, labeled);

  std::vector<std::size_t> skip;
  skip.reserve(labeled.size());
  for (const auto& [index, row] : labeled) skip.push_back(index);

  // Candidates in physical units: observed values for simulated points,
  // surrogate predictions for the best of the rest.
  std::vector<ScoredPoint> candidates;
  for (const auto& [index, row] : labeled) {
    if (!row.ok()) continue;
    candidates.push_back({index, metric_value(row, metric_idx)});
  }
  const BlockScorer mean_scorer =
      make_acquisition_scorer(surrogate, Acquisition::kBestPredicted);
  const std::vector<ScoredPoint> predicted =
      stream_score_topk(space, mean_scorer, options.top_k, skip,
                        options.block_size, options.num_threads,
                        &stream_stats);
  for (const ScoredPoint& p : predicted) {
    const double scaled =
        direction == Direction::kMinimize ? -p.score : p.score;
    candidates.push_back({p.index, surrogate.to_physical(scaled)});
  }
  std::sort(candidates.begin(), candidates.end(),
            [direction](const ScoredPoint& a, const ScoredPoint& b) {
              if (a.score != b.score) {
                return direction == Direction::kMinimize ? a.score < b.score
                                                         : a.score > b.score;
              }
              return a.index < b.index;
            });
  if (candidates.size() > options.top_k) candidates.resize(options.top_k);
  result.top = std::move(candidates);

  // --- labeled rows + Pareto fronts --------------------------------------
  for (auto& [index, row] : labeled) {
    result.labeled.emplace_back(index, row);
  }
  std::vector<std::pair<std::string, std::string>> pairs =
      options.pareto_pairs;
  if (pairs.empty()) {
    pairs = {{"power_w", "total_latency_cycles"}, {"power_w", "bandwidth_mbs"}};
  }
  std::vector<std::size_t> ok_indices;
  std::vector<SweepRow> ok_rows;
  for (std::size_t i = 0; i < result.labeled.size(); ++i) {
    if (result.labeled[i].second.ok()) {
      ok_indices.push_back(i);
      ok_rows.push_back(result.labeled[i].second);
    }
  }
  for (const auto& [metric_a, metric_b] : pairs) {
    ParetoFrontPair front;
    front.metric_a = metric_a;
    front.metric_b = metric_b;
    const std::vector<Objective> objectives = {Objective(metric_a),
                                               Objective(metric_b)};
    for (const std::size_t i : pareto_front(ok_rows, objectives)) {
      front.entries.push_back(ok_indices[i]);
    }
    result.fronts.push_back(std::move(front));
  }
  result.stream = stream_stats;
  return result;
}

std::vector<std::size_t> exhaustive_topk(std::span<const SweepRow> rows,
                                         const std::string& metric,
                                         std::size_t k) {
  const std::size_t metric_idx = metric_index(metric);
  const Direction direction = metric_direction(metric);
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i].ok()) order.push_back(i);
  }
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double va = metric_value(rows[a], metric_idx);
    const double vb = metric_value(rows[b], metric_idx);
    if (va != vb) {
      return direction == Direction::kMinimize ? va < vb : va > vb;
    }
    return a < b;
  });
  if (order.size() > k) order.resize(k);
  return order;
}

double topk_agreement(std::span<const std::size_t> picks,
                      std::span<const std::size_t> truth) {
  if (truth.empty()) return 1.0;
  const std::set<std::size_t> have(picks.begin(), picks.end());
  std::size_t hits = 0;
  for (const std::size_t index : truth) hits += have.contains(index);
  return static_cast<double>(hits) / static_cast<double>(truth.size());
}

}  // namespace gmd::dse
