#include "gmd/dse/config_space.hpp"

#include "gmd/common/error.hpp"
#include "gmd/dse/lazy_space.hpp"

namespace gmd::dse {

std::vector<DesignPoint> paper_design_space() {
  std::vector<DesignPoint> points = LazySpace::paper().materialize();
  GMD_ASSERT(points.size() == 416, "paper design space must have 416 points");
  return points;
}

std::vector<DesignPoint> axis_design_points(const std::string& axis,
                                            MemoryKind kind) {
  std::vector<DesignPoint> points;
  DesignPoint base;
  base.kind = kind;
  base.trcd = kind == MemoryKind::kDram ? 9 : 50;
  base.ctrl_freq_mhz = 666;
  if (axis == "ctrl") {
    for (const std::uint32_t ctrl : memsim::paper_controller_frequencies_mhz()) {
      DesignPoint p = base;
      p.ctrl_freq_mhz = ctrl;
      if (kind != MemoryKind::kDram) p.trcd = memsim::nvm_trcd_set(ctrl)[2];
      points.push_back(p);
    }
  } else if (axis == "cpu") {
    for (const std::uint32_t cpu : memsim::paper_cpu_frequencies_mhz()) {
      DesignPoint p = base;
      p.cpu_freq_mhz = cpu;
      points.push_back(p);
    }
  } else if (axis == "channels") {
    for (const std::uint32_t channels : {2u, 4u, 8u}) {
      DesignPoint p = base;
      p.channels = channels;
      points.push_back(p);
    }
  } else if (axis == "trcd") {
    GMD_REQUIRE_AS(ErrorCode::kConfig, kind != MemoryKind::kDram,
                   "tRCD axis applies to nvm/hybrid only");
    for (const std::uint32_t trcd : memsim::nvm_trcd_set(base.ctrl_freq_mhz)) {
      DesignPoint p = base;
      p.trcd = trcd;
      points.push_back(p);
    }
  } else {
    GMD_REQUIRE_AS(ErrorCode::kConfig, false,
                   "unknown axis '" << axis << "' (ctrl|cpu|channels|trcd)");
  }
  return points;
}

std::vector<DesignPoint> reduced_design_space() {
  return LazySpace::reduced().materialize();
}

std::vector<DesignPoint> enumerate_grid(const GridAxes& axes) {
  return LazySpace(axes).materialize();
}

}  // namespace gmd::dse
