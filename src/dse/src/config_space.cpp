#include "gmd/dse/config_space.hpp"

#include "gmd/common/error.hpp"

namespace gmd::dse {

std::vector<DesignPoint> paper_design_space() {
  std::vector<DesignPoint> points;
  points.reserve(416);
  for (const std::uint32_t cpu : memsim::paper_cpu_frequencies_mhz()) {
    for (const std::uint32_t ctrl : memsim::paper_controller_frequencies_mhz()) {
      for (const std::uint32_t channels : memsim::paper_channel_counts()) {
        DesignPoint dram;
        dram.kind = MemoryKind::kDram;
        dram.cpu_freq_mhz = cpu;
        dram.ctrl_freq_mhz = ctrl;
        dram.channels = channels;
        dram.trcd = 9;
        points.push_back(dram);

        for (const std::uint32_t trcd : memsim::nvm_trcd_set(ctrl)) {
          DesignPoint nvm = dram;
          nvm.kind = MemoryKind::kNvm;
          nvm.trcd = trcd;
          points.push_back(nvm);

          DesignPoint hybrid = nvm;
          hybrid.kind = MemoryKind::kHybrid;
          points.push_back(hybrid);
        }
      }
    }
  }
  GMD_ASSERT(points.size() == 416, "paper design space must have 416 points");
  return points;
}

std::vector<DesignPoint> axis_design_points(const std::string& axis,
                                            MemoryKind kind) {
  std::vector<DesignPoint> points;
  DesignPoint base;
  base.kind = kind;
  base.trcd = kind == MemoryKind::kDram ? 9 : 50;
  base.ctrl_freq_mhz = 666;
  if (axis == "ctrl") {
    for (const std::uint32_t ctrl : memsim::paper_controller_frequencies_mhz()) {
      DesignPoint p = base;
      p.ctrl_freq_mhz = ctrl;
      if (kind != MemoryKind::kDram) p.trcd = memsim::nvm_trcd_set(ctrl)[2];
      points.push_back(p);
    }
  } else if (axis == "cpu") {
    for (const std::uint32_t cpu : memsim::paper_cpu_frequencies_mhz()) {
      DesignPoint p = base;
      p.cpu_freq_mhz = cpu;
      points.push_back(p);
    }
  } else if (axis == "channels") {
    for (const std::uint32_t channels : {2u, 4u, 8u}) {
      DesignPoint p = base;
      p.channels = channels;
      points.push_back(p);
    }
  } else if (axis == "trcd") {
    GMD_REQUIRE_AS(ErrorCode::kConfig, kind != MemoryKind::kDram,
                   "tRCD axis applies to nvm/hybrid only");
    for (const std::uint32_t trcd : memsim::nvm_trcd_set(base.ctrl_freq_mhz)) {
      DesignPoint p = base;
      p.trcd = trcd;
      points.push_back(p);
    }
  } else {
    GMD_REQUIRE_AS(ErrorCode::kConfig, false,
                   "unknown axis '" << axis << "' (ctrl|cpu|channels|trcd)");
  }
  return points;
}

std::vector<DesignPoint> reduced_design_space() {
  std::vector<DesignPoint> points;
  for (const std::uint32_t cpu : memsim::paper_cpu_frequencies_mhz()) {
    for (const std::uint32_t ctrl : memsim::paper_controller_frequencies_mhz()) {
      for (const std::uint32_t channels : memsim::paper_channel_counts()) {
        const auto& trcds = memsim::nvm_trcd_set(ctrl);
        const std::uint32_t mid_trcd = trcds[trcds.size() / 2];
        for (const MemoryKind kind :
             {MemoryKind::kDram, MemoryKind::kNvm, MemoryKind::kHybrid}) {
          DesignPoint p;
          p.kind = kind;
          p.cpu_freq_mhz = cpu;
          p.ctrl_freq_mhz = ctrl;
          p.channels = channels;
          p.trcd = kind == MemoryKind::kDram ? 9 : mid_trcd;
          points.push_back(p);
        }
      }
    }
  }
  return points;
}

std::vector<DesignPoint> enumerate_grid(const GridAxes& axes) {
  GMD_REQUIRE(!axes.kinds.empty(), "grid needs at least one memory kind");
  GMD_REQUIRE(!axes.cpu_freqs_mhz.empty(), "grid needs CPU frequencies");
  GMD_REQUIRE(!axes.ctrl_freqs_mhz.empty(),
              "grid needs controller frequencies");
  GMD_REQUIRE(!axes.channel_counts.empty(), "grid needs channel counts");

  std::vector<DesignPoint> points;
  for (const MemoryKind kind : axes.kinds) {
    for (const std::uint32_t cpu : axes.cpu_freqs_mhz) {
      for (const std::uint32_t ctrl : axes.ctrl_freqs_mhz) {
        for (const std::uint32_t channels : axes.channel_counts) {
          if (kind == MemoryKind::kDram) {
            DesignPoint p;
            p.kind = kind;
            p.cpu_freq_mhz = cpu;
            p.ctrl_freq_mhz = ctrl;
            p.channels = channels;
            p.trcd = 9;
            points.push_back(p);
            continue;
          }
          const std::vector<std::uint32_t>& trcds =
              axes.trcds.empty() ? memsim::nvm_trcd_set(ctrl) : axes.trcds;
          for (const std::uint32_t trcd : trcds) {
            DesignPoint p;
            p.kind = kind;
            p.cpu_freq_mhz = cpu;
            p.ctrl_freq_mhz = ctrl;
            p.channels = channels;
            p.trcd = trcd;
            points.push_back(p);
          }
        }
      }
    }
  }
  return points;
}

}  // namespace gmd::dse
