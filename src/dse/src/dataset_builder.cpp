#include "gmd/dse/dataset_builder.hpp"

#include <algorithm>
#include <cmath>

#include "gmd/common/error.hpp"
#include "gmd/common/logging.hpp"

namespace gmd::dse {

namespace {

/// True when every feature and the target of this candidate dataset row
/// are finite.  A non-finite value anywhere would poison the min-max
/// scaler fit (and through it every scaled value), so such rows are
/// quarantined at build time.
bool row_is_finite(std::span<const double> features, double target) {
  if (!std::isfinite(target)) return false;
  for (const double v : features) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

}  // namespace

const std::vector<std::string>& target_metric_names() {
  return memsim::MemoryMetrics::metric_names();
}

MetricDataset build_metric_dataset(std::span<const SweepRow> rows,
                                   const std::string& metric_name) {
  GMD_REQUIRE(!rows.empty(), "cannot build a dataset from an empty sweep");
  const auto& names = target_metric_names();
  std::size_t metric_index = names.size();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == metric_name) {
      metric_index = i;
      break;
    }
  }
  GMD_REQUIRE(metric_index < names.size(),
              "unknown metric '" << metric_name << "'");

  MetricDataset out;
  std::vector<std::vector<double>> kept_features;
  kept_features.reserve(rows.size());
  out.raw_y.reserve(rows.size());
  for (std::size_t r = 0; r < rows.size(); ++r) {
    const auto features = rows[r].point.features();
    const double target = rows[r].metrics.metric_values()[metric_index];
    if (!row_is_finite(features, target)) {
      ++out.quarantined_rows;
      continue;
    }
    kept_features.push_back(features);
    out.raw_y.push_back(target);
  }
  if (out.quarantined_rows > 0) {
    GMD_LOG_WARN << "dataset '" << metric_name << "': quarantined "
                 << out.quarantined_rows << "/" << rows.size()
                 << " rows with non-finite values";
  }
  GMD_REQUIRE_AS(ErrorCode::kInvalidData, !kept_features.empty(),
                 "dataset '" << metric_name
                             << "': every row has non-finite values");

  ml::Matrix raw_x(kept_features.size(),
                   DesignPoint::feature_names().size());
  for (std::size_t r = 0; r < kept_features.size(); ++r) {
    std::copy(kept_features[r].begin(), kept_features[r].end(),
              raw_x.row(r).begin());
  }

  out.data.X = out.x_scaler.fit_transform(raw_x);
  out.y_scaler.fit(std::span<const double>(out.raw_y));
  out.data.y = out.y_scaler.transform(out.raw_y);
  out.data.feature_names = DesignPoint::feature_names();
  out.data.target_name = metric_name;
  out.data.validate();
  return out;
}

const std::vector<std::string>& workload_feature_names() {
  static const std::vector<std::string> names = {
      "wl_log10_events", "wl_read_fraction", "wl_footprint_kb"};
  return names;
}

MetricDataset build_multi_workload_dataset(
    std::span<const WorkloadSweep> sweeps, const std::string& metric_name) {
  GMD_REQUIRE(!sweeps.empty(), "no workload sweeps");
  const auto& metric_names = target_metric_names();
  std::size_t metric_index = metric_names.size();
  for (std::size_t i = 0; i < metric_names.size(); ++i) {
    if (metric_names[i] == metric_name) {
      metric_index = i;
      break;
    }
  }
  GMD_REQUIRE(metric_index < metric_names.size(),
              "unknown metric '" << metric_name << "'");

  std::size_t total_rows = 0;
  for (const WorkloadSweep& sweep : sweeps) {
    GMD_REQUIRE(!sweep.rows.empty(),
                "workload '" << sweep.name << "' has an empty sweep");
    total_rows += sweep.rows.size();
  }

  const std::size_t design_features = DesignPoint::feature_names().size();
  const std::size_t workload_features = workload_feature_names().size();
  MetricDataset out;
  std::vector<std::vector<double>> kept_features;
  kept_features.reserve(total_rows);
  out.raw_y.reserve(total_rows);

  for (const WorkloadSweep& sweep : sweeps) {
    for (const SweepRow& row : sweep.rows) {
      std::vector<double> features = row.point.features();
      features.resize(design_features + workload_features);
      features[design_features + 0] = sweep.log10_events;
      features[design_features + 1] = sweep.read_fraction;
      features[design_features + 2] = sweep.footprint_kb;
      const double target = row.metrics.metric_values()[metric_index];
      if (!row_is_finite(features, target)) {
        ++out.quarantined_rows;
        continue;
      }
      kept_features.push_back(std::move(features));
      out.raw_y.push_back(target);
    }
  }
  if (out.quarantined_rows > 0) {
    GMD_LOG_WARN << "multi-workload dataset '" << metric_name
                 << "': quarantined " << out.quarantined_rows << "/"
                 << total_rows << " rows with non-finite values";
  }
  GMD_REQUIRE_AS(ErrorCode::kInvalidData, !kept_features.empty(),
                 "multi-workload dataset '"
                     << metric_name << "': every row has non-finite values");

  ml::Matrix raw_x(kept_features.size(),
                   design_features + workload_features);
  for (std::size_t r = 0; r < kept_features.size(); ++r) {
    std::copy(kept_features[r].begin(), kept_features[r].end(),
              raw_x.row(r).begin());
  }

  out.data.X = out.x_scaler.fit_transform(raw_x);
  out.y_scaler.fit(std::span<const double>(out.raw_y));
  out.data.y = out.y_scaler.transform(out.raw_y);
  out.data.feature_names = DesignPoint::feature_names();
  const auto& extra = workload_feature_names();
  out.data.feature_names.insert(out.data.feature_names.end(), extra.begin(),
                                extra.end());
  out.data.target_name = metric_name;
  out.data.validate();
  return out;
}

CsvTable sweep_to_table(std::span<const SweepRow> rows) {
  std::vector<std::string> columns = DesignPoint::feature_names();
  const auto& metrics = target_metric_names();
  columns.insert(columns.end(), metrics.begin(), metrics.end());
  // Sampled sweeps get `<metric>_ci_lo` / `<metric>_ci_hi` columns after
  // the metrics; exhaustive rows in such a table (hybrid points) carry
  // degenerate intervals equal to the metric value.
  const bool any_ci = std::any_of(rows.begin(), rows.end(),
                                  [](const SweepRow& r) { return r.sampled(); });
  if (any_ci) {
    for (const std::string& name : metrics) {
      columns.push_back(name + "_ci_lo");
      columns.push_back(name + "_ci_hi");
    }
  }
  CsvTable table(columns);
  for (const SweepRow& row : rows) {
    std::vector<double> values = row.point.features();
    const std::vector<double> m = row.metrics.metric_values();
    values.insert(values.end(), m.begin(), m.end());
    if (any_ci) {
      for (std::size_t i = 0; i < m.size(); ++i) {
        const bool has = i < row.metric_ci.size();
        values.push_back(has ? row.metric_ci[i].lo : m[i]);
        values.push_back(has ? row.metric_ci[i].hi : m[i]);
      }
    }
    table.add_row(values);
  }
  return table;
}

std::vector<SweepRow> table_to_sweep(const CsvTable& table) {
  std::vector<SweepRow> rows;
  rows.reserve(table.num_rows());
  for (std::size_t r = 0; r < table.num_rows(); ++r) {
    SweepRow row;
    DesignPoint& p = row.point;
    p.cpu_freq_mhz =
        static_cast<std::uint32_t>(table.at(r, "cpu_freq_mhz"));
    p.ctrl_freq_mhz =
        static_cast<std::uint32_t>(table.at(r, "ctrl_freq_mhz"));
    p.channels = static_cast<std::uint32_t>(table.at(r, "channels"));
    p.trcd = static_cast<std::uint32_t>(table.at(r, "trcd"));
    if (table.at(r, "is_dram") > 0.5) {
      p.kind = MemoryKind::kDram;
    } else if (table.at(r, "is_nvm") > 0.5) {
      p.kind = MemoryKind::kNvm;
    } else {
      GMD_REQUIRE(table.at(r, "is_hybrid") > 0.5,
                  "row " << r << " has no memory-kind flag set");
      p.kind = MemoryKind::kHybrid;
    }

    memsim::MemoryMetrics& m = row.metrics;
    m.avg_power_per_channel_w = table.at(r, "power_w");
    m.avg_bandwidth_per_bank_mbs = table.at(r, "bandwidth_mbs");
    m.avg_latency_cycles = table.at(r, "latency_cycles");
    m.avg_total_latency_cycles = table.at(r, "total_latency_cycles");
    m.avg_reads_per_channel = table.at(r, "reads_per_channel");
    m.avg_writes_per_channel = table.at(r, "writes_per_channel");
    m.channels = p.channels;

    // CI columns are optional — only tables written from sampled sweeps
    // have them, and there every row (including exhaustive hybrids,
    // whose intervals are points) carries one interval per metric.
    const auto& names = target_metric_names();
    if (table.has_column(names.front() + "_ci_lo")) {
      row.metric_ci.resize(names.size());
      for (std::size_t i = 0; i < names.size(); ++i) {
        row.metric_ci[i].lo = table.at(r, names[i] + "_ci_lo");
        row.metric_ci[i].hi = table.at(r, names[i] + "_ci_hi");
      }
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

}  // namespace gmd::dse
