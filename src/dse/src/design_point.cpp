#include "gmd/dse/design_point.hpp"

#include <sstream>

#include "gmd/common/error.hpp"

namespace gmd::dse {

std::string to_string(MemoryKind kind) {
  switch (kind) {
    case MemoryKind::kDram:
      return "dram";
    case MemoryKind::kNvm:
      return "nvm";
    case MemoryKind::kHybrid:
      return "hybrid";
  }
  return "?";
}

std::string DesignPoint::id() const {
  std::ostringstream os;
  os << to_string(kind) << "_c" << cpu_freq_mhz << "_m" << ctrl_freq_mhz
     << "_ch" << channels;
  if (kind != MemoryKind::kDram) os << "_t" << trcd;
  return os.str();
}

std::vector<double> DesignPoint::features() const {
  std::vector<double> out(feature_names().size());
  write_features(out);
  return out;
}

void DesignPoint::write_features(std::span<double> out) const {
  GMD_REQUIRE(out.size() == feature_names().size(),
              "feature buffer must hold " << feature_names().size()
                                          << " doubles");
  out[0] = static_cast<double>(cpu_freq_mhz);
  out[1] = static_cast<double>(ctrl_freq_mhz);
  out[2] = static_cast<double>(channels);
  out[3] = static_cast<double>(trcd);
  out[4] = kind == MemoryKind::kDram ? 24.0 : 0.0;
  out[5] = kind == MemoryKind::kDram ? 1.0 : 0.0;
  out[6] = kind == MemoryKind::kNvm ? 1.0 : 0.0;
  out[7] = kind == MemoryKind::kHybrid ? 1.0 : 0.0;
}

const std::vector<std::string>& DesignPoint::feature_names() {
  static const std::vector<std::string> names = {
      "cpu_freq_mhz", "ctrl_freq_mhz", "channels", "trcd",
      "tras",         "is_dram",       "is_nvm",   "is_hybrid"};
  return names;
}

memsim::MemoryConfig DesignPoint::single_config() const {
  switch (kind) {
    case MemoryKind::kDram:
      return memsim::make_dram_config(channels, ctrl_freq_mhz, cpu_freq_mhz);
    case MemoryKind::kNvm:
      return memsim::make_nvm_config(channels, ctrl_freq_mhz, cpu_freq_mhz,
                                     trcd);
    case MemoryKind::kHybrid:
      break;
  }
  throw Error("single_config() called on a hybrid design point");
}

memsim::HybridConfig DesignPoint::hybrid_config() const {
  GMD_REQUIRE(kind == MemoryKind::kHybrid,
              "hybrid_config() on a non-hybrid design point");
  return memsim::make_hybrid_config(channels, ctrl_freq_mhz, cpu_freq_mhz,
                                    trcd, dram_fraction);
}

void validate(const DesignPoint& point) {
  try {
    GMD_REQUIRE(point.channels >= 1, "need at least one channel");
    GMD_REQUIRE(point.cpu_freq_mhz >= 1, "CPU frequency must be positive");
    GMD_REQUIRE(point.ctrl_freq_mhz >= 1,
                "controller frequency must be positive");
    if (point.kind == MemoryKind::kHybrid) {
      point.hybrid_config().validate();
    } else {
      GMD_REQUIRE(point.kind != MemoryKind::kNvm || point.trcd >= 1,
                  "NVM tRCD must be positive");
      point.single_config().validate();
    }
  } catch (const Error& e) {
    throw Error(ErrorCode::kConfig,
                "invalid design point " + point.id() + ": " + e.what());
  }
}

}  // namespace gmd::dse
