#include "gmd/dse/design_point.hpp"

#include <sstream>

#include "gmd/common/error.hpp"

namespace gmd::dse {

std::string to_string(MemoryKind kind) {
  switch (kind) {
    case MemoryKind::kDram:
      return "dram";
    case MemoryKind::kNvm:
      return "nvm";
    case MemoryKind::kHybrid:
      return "hybrid";
  }
  return "?";
}

std::string DesignPoint::id() const {
  std::ostringstream os;
  os << to_string(kind) << "_c" << cpu_freq_mhz << "_m" << ctrl_freq_mhz
     << "_ch" << channels;
  if (kind != MemoryKind::kDram) os << "_t" << trcd;
  return os.str();
}

std::vector<double> DesignPoint::features() const {
  const double tras = kind == MemoryKind::kDram ? 24.0 : 0.0;
  return {static_cast<double>(cpu_freq_mhz),
          static_cast<double>(ctrl_freq_mhz),
          static_cast<double>(channels),
          static_cast<double>(trcd),
          tras,
          kind == MemoryKind::kDram ? 1.0 : 0.0,
          kind == MemoryKind::kNvm ? 1.0 : 0.0,
          kind == MemoryKind::kHybrid ? 1.0 : 0.0};
}

const std::vector<std::string>& DesignPoint::feature_names() {
  static const std::vector<std::string> names = {
      "cpu_freq_mhz", "ctrl_freq_mhz", "channels", "trcd",
      "tras",         "is_dram",       "is_nvm",   "is_hybrid"};
  return names;
}

memsim::MemoryConfig DesignPoint::single_config() const {
  switch (kind) {
    case MemoryKind::kDram:
      return memsim::make_dram_config(channels, ctrl_freq_mhz, cpu_freq_mhz);
    case MemoryKind::kNvm:
      return memsim::make_nvm_config(channels, ctrl_freq_mhz, cpu_freq_mhz,
                                     trcd);
    case MemoryKind::kHybrid:
      break;
  }
  throw Error("single_config() called on a hybrid design point");
}

memsim::HybridConfig DesignPoint::hybrid_config() const {
  GMD_REQUIRE(kind == MemoryKind::kHybrid,
              "hybrid_config() on a non-hybrid design point");
  return memsim::make_hybrid_config(channels, ctrl_freq_mhz, cpu_freq_mhz,
                                    trcd, dram_fraction);
}

void validate(const DesignPoint& point) {
  try {
    GMD_REQUIRE(point.channels >= 1, "need at least one channel");
    GMD_REQUIRE(point.cpu_freq_mhz >= 1, "CPU frequency must be positive");
    GMD_REQUIRE(point.ctrl_freq_mhz >= 1,
                "controller frequency must be positive");
    if (point.kind == MemoryKind::kHybrid) {
      point.hybrid_config().validate();
    } else {
      GMD_REQUIRE(point.kind != MemoryKind::kNvm || point.trcd >= 1,
                  "NVM tRCD must be positive");
      point.single_config().validate();
    }
  } catch (const Error& e) {
    throw Error(ErrorCode::kConfig,
                "invalid design point " + point.id() + ": " + e.what());
  }
}

}  // namespace gmd::dse
