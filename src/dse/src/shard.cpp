#include "gmd/dse/shard.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "gmd/common/atomic_file.hpp"
#include "gmd/common/error.hpp"

namespace gmd::dse {

namespace {

constexpr std::string_view kMetaMagic = "gmd-sweep-run";
constexpr std::string_view kMetaVersion = "v1";

std::string hex16(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

}  // namespace

ShardPlan::ShardPlan(std::size_t num_points, std::size_t shard_size)
    : num_points_(num_points),
      shard_size_(shard_size),
      num_shards_(0) {
  GMD_REQUIRE_AS(ErrorCode::kConfig, shard_size > 0,
                 "shard_size must be positive");
  GMD_REQUIRE_AS(ErrorCode::kConfig, num_points > 0,
                 "a distributed sweep needs at least one design point");
  num_shards_ = (num_points + shard_size - 1) / shard_size;
}

ShardRange ShardPlan::range(std::size_t shard) const {
  GMD_REQUIRE_AS(ErrorCode::kConfig, shard < num_shards_,
                 "shard " << shard << " out of range (plan has "
                          << num_shards_ << ")");
  const std::size_t begin = shard * shard_size_;
  return ShardRange{begin, std::min(begin + shard_size_, num_points_)};
}

void write_run_meta(const std::string& path, const RunMeta& meta) {
  atomic_write_file(path, [&meta](std::ostream& os) {
    os << kMetaMagic << ' ' << kMetaVersion
       << " trace=" << hex16(meta.key.trace_hash)
       << " points=" << hex16(meta.key.points_hash)
       << " count=" << meta.key.num_points
       << " shard_size=" << meta.shard_size << '\n';
  });
}

RunMeta read_run_meta(const std::string& path) {
  std::ifstream in(path);
  GMD_REQUIRE_AS(ErrorCode::kIo, in.good(),
                 "cannot read run meta '" << path << "'");
  std::string line;
  GMD_REQUIRE_AS(ErrorCode::kIo, static_cast<bool>(std::getline(in, line)),
                 "run meta '" << path << "' is empty");
  std::istringstream is(line);
  std::string magic, version, trace_field, points_field, count_field,
      shard_field;
  is >> magic >> version >> trace_field >> points_field >> count_field >>
      shard_field;
  GMD_REQUIRE_AS(ErrorCode::kIo,
                 !is.fail() && magic == kMetaMagic && version == kMetaVersion,
                 "'" << path << "' is not a " << kMetaVersion
                     << " sweep run meta");
  const auto field = [&](const std::string& token, std::string_view name) {
    GMD_REQUIRE_AS(ErrorCode::kIo,
                   token.rfind(name, 0) == 0 && token.size() > name.size(),
                   "corrupt run meta '" << path << "': expected " << name
                                        << "<value>");
    return token.substr(name.size());
  };
  const auto parse_u64 = [&](const std::string& text) {
    std::uint64_t value = 0;
    const int got = std::sscanf(text.c_str(), "%llu",
                                reinterpret_cast<unsigned long long*>(&value));
    GMD_REQUIRE_AS(ErrorCode::kIo, got == 1,
                   "corrupt run meta '" << path << "': bad number '" << text
                                        << "'");
    return value;
  };
  const auto parse_hex = [&](const std::string& text) {
    std::uint64_t value = 0;
    const int got = std::sscanf(text.c_str(), "%llx",
                                reinterpret_cast<unsigned long long*>(&value));
    GMD_REQUIRE_AS(ErrorCode::kIo, got == 1,
                   "corrupt run meta '" << path << "': bad hex '" << text
                                        << "'");
    return value;
  };
  RunMeta meta;
  meta.key.trace_hash = parse_hex(field(trace_field, "trace="));
  meta.key.points_hash = parse_hex(field(points_field, "points="));
  meta.key.num_points =
      static_cast<std::size_t>(parse_u64(field(count_field, "count=")));
  meta.shard_size =
      static_cast<std::size_t>(parse_u64(field(shard_field, "shard_size=")));
  GMD_REQUIRE_AS(ErrorCode::kIo, meta.shard_size > 0,
                 "corrupt run meta '" << path << "': zero shard_size");
  return meta;
}

}  // namespace gmd::dse
