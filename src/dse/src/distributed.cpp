#include "gmd/dse/distributed.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <filesystem>
#include <mutex>
#include <set>
#include <thread>
#include <utility>

#include "gmd/common/atomic_file.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/heartbeat.hpp"
#include "gmd/common/logging.hpp"
#include "gmd/dse/dataset_builder.hpp"
#include "gmd/dse/lease.hpp"
#include "gmd/tracestore/reader.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

namespace gmd::dse {

namespace fs = std::filesystem;

namespace {

/// Adds one terminal row to a health tally, attributing non-ok rows to
/// `code` (the worker overrides the recorded code with kLeaseExpired
/// for points it abandoned on a stolen lease).
void tally(SweepHealth& health, const SweepRow& row, ErrorCode code) {
  ++health.total;
  switch (row.outcome) {
    case PointOutcome::kOk:
      ++health.ok;
      break;
    case PointOutcome::kFailed:
      ++health.failed;
      break;
    case PointOutcome::kTimedOut:
      ++health.timed_out;
      break;
    case PointOutcome::kSkipped:
      ++health.skipped;
      break;
  }
  if (row.outcome != PointOutcome::kOk) {
    ++health.by_code[static_cast<std::size_t>(code)];
  }
  health.retries += row.attempts > 1 ? row.attempts - 1 : 0;
}

}  // namespace

ShardPlan prepare_run(const RunDir& run, const JournalKey& key,
                      std::size_t shard_size, DistributedStats* stats) {
  fs::create_directories(run.tasks_dir());
  fs::create_directories(run.leases_dir());
  fs::create_directories(run.done_dir());
  fs::create_directories(run.journals_dir());

  // Reclaim *.tmp leftovers from crashed atomic writers before anything
  // scans the directories (they are already self-filtering, but stale
  // temps should not accumulate across kill-and-resume cycles).
  const std::size_t reclaimed = remove_stale_temp_files(run.root);
  if (stats != nullptr) stats->stale_temps_removed = reclaimed;
  if (reclaimed > 0) {
    GMD_LOG_INFO << "distributed sweep: reclaimed " << reclaimed
                 << " stale temp file(s) under '" << run.root << "'";
  }

  RunMeta meta{key, shard_size};
  if (fs::exists(run.meta_path())) {
    const RunMeta existing = read_run_meta(run.meta_path());
    GMD_REQUIRE_AS(
        ErrorCode::kConfig, existing.key == key,
        "run directory '"
            << run.root
            << "' belongs to a different sweep (run.meta identity mismatch); "
               "refusing to resume");
    // Adopt the existing geometry: a resumed run must shard exactly
    // like the original or task/lease names would not line up.
    meta = existing;
  } else {
    write_run_meta(run.meta_path(), meta);
  }

  // A stale completion marker (from a finished run being re-driven)
  // would make workers exit before the supervisor re-derives coverage;
  // it is rewritten — with identical content — on completion.
  remove_file_if_exists(run.complete_path());
  return ShardPlan(key.num_points, meta.shard_size);
}

MergeResult merge_journals(const RunDir& run, const JournalKey& key) {
  MergeResult merge;
  merge.rows.resize(key.num_points);

  std::vector<std::string> paths;
  std::error_code ec;
  for (fs::directory_iterator it(run.journals_dir(), ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    if (it->path().extension() != ".journal") continue;
    paths.push_back(it->path().string());
  }
  // Filename order makes the first-wins dedup deterministic: the same
  // set of journals always merges to the same rows, whatever order the
  // workers finished in.  (Rows for one index are bit-identical across
  // journals anyway; determinism here is belt and braces.)
  std::sort(paths.begin(), paths.end());

  for (const std::string& path : paths) {
    JournalScan scan = scan_journal(path, key);
    if (!scan.warning.empty()) {
      merge.warnings.push_back(path + ": " + scan.warning);
    }
    for (auto& [index, row] : scan.rows) {
      if (index >= merge.rows.size()) continue;
      if (merge.rows[index].has_value()) {
        ++merge.duplicates;
        continue;
      }
      merge.rows[index] = std::move(row);
      ++merge.covered;
    }
  }
  return merge;
}

WorkerResult run_sweep_worker(const RunDir& run,
                              std::span<const DesignPoint> points,
                              const tracestore::TraceStoreReader& store,
                              const WorkerOptions& options) {
  GMD_REQUIRE_AS(ErrorCode::kConfig, !options.worker_id.empty(),
                 "worker_id must be non-empty");
  const RunMeta meta = read_run_meta(run.meta_path());
  const JournalKey key =
      sweep_identity(make_journal_key(points, store), options.sweep);
  GMD_REQUIRE_AS(ErrorCode::kConfig, meta.key == key,
                 "run directory '"
                     << run.root
                     << "' belongs to a different sweep (run.meta identity "
                        "mismatch); worker '"
                     << options.worker_id << "' refusing to join");
  const ShardPlan plan(points.size(), meta.shard_size);

  WorkerResult result;
  result.health.by_code.assign(static_cast<std::size_t>(kLastErrorCode) + 1,
                               0);

  // This worker's own journal: a respawned worker adopts its dead
  // predecessor's rows (load retains them across flushes).  An
  // unusable journal is abandoned with a warning — its rows merely
  // become re-issued work.
  SweepJournal journal(run.journal_path(options.worker_id), key,
                       options.worker_id);
  try {
    journal.load();
  } catch (const Error& e) {
    GMD_LOG_WARN << "worker '" << options.worker_id
                 << "': ignoring unusable journal [" << to_string(e.code())
                 << "]: " << e.what() << "; starting fresh";
  }

  std::mutex tally_mutex;
  std::size_t journaled_total = 0;

  auto last_activity = std::chrono::steady_clock::now();
  for (;;) {
    if (options.cancel != nullptr && options.cancel->cancelled()) break;
    if (fs::exists(run.complete_path())) break;

    // Claim scan, rotated by worker id so a fleet spreads over the
    // available tasks instead of racing for the first one.
    const std::vector<ShardTask> tasks = list_tasks(run.tasks_dir());
    std::optional<HeldLease> lease;
    if (!tasks.empty()) {
      const std::size_t start =
          std::hash<std::string>{}(options.worker_id) % tasks.size();
      for (std::size_t k = 0; k < tasks.size() && !lease; ++k) {
        const ShardTask& task = tasks[(start + k) % tasks.size()];
        if (task.shard >= plan.num_shards()) continue;  // foreign junk
        lease = try_claim_shard(run, task, options.worker_id);
      }
    }
    if (!lease) {
      if (std::chrono::steady_clock::now() - last_activity >=
          options.idle_timeout) {
        GMD_LOG_WARN << "worker '" << options.worker_id
                     << "': idle timeout with the run incomplete; exiting";
        break;
      }
      std::this_thread::sleep_for(options.poll_interval);
      continue;
    }
    last_activity = std::chrono::steady_clock::now();

    // Points of the shard not yet covered by ANY journal — another
    // worker (or this worker's previous life) may have finished some.
    const ShardRange range = plan.range(lease->shard());
    const MergeResult coverage = merge_journals(run, key);
    std::vector<DesignPoint> local_points;
    std::vector<std::size_t> global_index;
    for (std::size_t i = range.begin; i < range.end; ++i) {
      if (!coverage.rows[i].has_value()) {
        local_points.push_back(points[i]);
        global_index.push_back(i);
      }
    }
    if (local_points.empty()) {
      atomic_write_text(
          run.done_dir() + "/" + std::to_string(lease->shard()) + ".done",
          "already-covered holder=" + options.worker_id + "\n");
      lease->release();
      ++result.shards_completed;
      continue;
    }

    // Heartbeat: stamp the lease until the shard is done; a failed
    // stamp means the supervisor expired us — cancel the in-flight
    // sweep cooperatively and abandon the shard.
    Deadline shard_cancel(options.cancel);
    std::atomic<bool> lost{false};
    std::mutex hb_mutex;
    std::condition_variable hb_cv;
    bool hb_stop = false;
    std::thread heart([&] {
      std::unique_lock<std::mutex> lock(hb_mutex);
      while (!hb_cv.wait_for(lock, options.heartbeat_interval,
                             [&] { return hb_stop; })) {
        lock.unlock();
        try {
          lease->heartbeat();
        } catch (const Error&) {
          lost.store(true, std::memory_order_relaxed);
          shard_cancel.cancel();
          return;
        }
        lock.lock();
      }
    });
    const auto stop_heart = [&] {
      {
        std::lock_guard<std::mutex> lock(hb_mutex);
        hb_stop = true;
      }
      hb_cv.notify_all();
      if (heart.joinable()) heart.join();
    };

    SweepOptions sweep = options.sweep;
    sweep.checkpoint_path.clear();
    sweep.resume = false;
    sweep.cancel = &shard_cancel;
    // Terminal failures must become journal `fail` records — that is
    // how the supervisor tells "failed" from "never ran" — so fail-fast
    // executes as skip here; the fork runner re-raises at the end.
    if (sweep.failure_policy == FailurePolicy::kFailFast) {
      sweep.failure_policy = FailurePolicy::kSkip;
    }
    sweep.row_sink = [&](std::size_t local, const SweepRow& row) {
      journal.record(global_index[local], row);
      std::size_t total = 0;
      {
        std::lock_guard<std::mutex> lock(tally_mutex);
        total = ++journaled_total;
        ++result.points_simulated;
        tally(result.health, row, row.error_code);
      }
      if (options.progress_hook) options.progress_hook(total);
    };

    std::vector<SweepRow> local_rows;
    try {
      local_rows = run_sweep(local_points, store, sweep);
    } catch (...) {
      // Infrastructure failure (bad store, validation under fail-fast
      // semantics...): leave the lease to expire so another worker can
      // try, and surface the error to this worker's caller.
      stop_heart();
      throw;
    }
    stop_heart();

    const bool cancelled =
        options.cancel != nullptr && options.cancel->cancelled();
    if (lost.load(std::memory_order_relaxed) || cancelled) {
      ++result.shards_abandoned;
      {
        std::lock_guard<std::mutex> lock(tally_mutex);
        for (const SweepRow& row : local_rows) {
          if (row.outcome == PointOutcome::kSkipped) {
            tally(result.health, row,
                  cancelled ? ErrorCode::kCancelled
                            : ErrorCode::kLeaseExpired);
          }
        }
      }
      GMD_LOG_WARN << "worker '" << options.worker_id << "': shard "
                   << lease->shard() << " abandoned ("
                   << (cancelled ? "cancelled" : "lease expired") << ")";
      lease->release();
      continue;
    }

    atomic_write_text(
        run.done_dir() + "/" + std::to_string(lease->shard()) + ".done",
        "complete holder=" + options.worker_id +
            " points=" + std::to_string(local_points.size()) + "\n");
    lease->release();
    ++result.shards_completed;
  }
  return result;
}

std::vector<SweepRow> supervise(const RunDir& run,
                                std::span<const DesignPoint> points,
                                const JournalKey& key,
                                const SupervisorOptions& options,
                                DistributedStats* stats) {
  GMD_REQUIRE_AS(ErrorCode::kConfig, key.num_points == points.size(),
                 "journal key covers " << key.num_points
                                       << " points but the list has "
                                       << points.size());
  const ShardPlan plan = prepare_run(run, key, options.shard_size, stats);
  if (stats != nullptr) stats->shards = plan.num_shards();

  StalenessTracker tracker;
  std::vector<std::uint64_t> top_generation(plan.num_shards(), 0);
  std::set<std::string> warned;

  for (;;) {
    if (options.cancel != nullptr && options.cancel->cancelled()) {
      throw Error(ErrorCode::kCancelled, "distributed sweep cancelled");
    }

    // Coverage is always re-derived from the journals — markers, tasks
    // and leases are coordination hints, never the source of truth.
    const MergeResult merge = merge_journals(run, key);
    if (stats != nullptr) {
      stats->journal_warnings = merge.warnings.size();
      stats->duplicate_rows = merge.duplicates;
    }
    for (const std::string& warning : merge.warnings) {
      if (warned.insert(warning).second) {
        GMD_LOG_WARN << "distributed sweep: unusable journal: " << warning;
      }
    }

    if (merge.complete()) {
      std::vector<SweepRow> rows(points.size());
      for (std::size_t i = 0; i < points.size(); ++i) {
        rows[i] = *merge.rows[i];
        rows[i].point = points[i];
      }
      std::vector<SweepRow> ok_rows;
      ok_rows.reserve(rows.size());
      for (const SweepRow& row : rows) {
        if (row.ok()) ok_rows.push_back(row);
      }
      if (!ok_rows.empty()) {
        // Same writer as the single-process pipeline, so the merged CSV
        // is byte-identical to what run_sweep + sweep_to_table produce.
        sweep_to_table(ok_rows).save(run.csv_path());
      } else {
        GMD_LOG_WARN << "distributed sweep: no ok rows; sweep.csv not "
                        "written";
      }
      atomic_write_text(run.complete_path(),
                        "gmd-sweep-complete v1 points=" +
                            std::to_string(points.size()) + "\n");
      GMD_LOG_INFO << "distributed sweep: complete (" << points.size()
                   << " points, " << plan.num_shards() << " shards)";
      return rows;
    }

    // Shard coverage for the passes below.
    std::vector<char> covered(plan.num_shards(), 1);
    for (std::size_t s = 0; s < plan.num_shards(); ++s) {
      const ShardRange range = plan.range(s);
      for (std::size_t i = range.begin; i < range.end; ++i) {
        if (!merge.rows[i].has_value()) {
          covered[s] = 0;
          break;
        }
      }
    }

    // Lease liveness: a lease whose content stopped changing for
    // lease_ttl is expired by renaming it back into tasks/ under the
    // next generation.  The rename consumes the file, so an expiry
    // racing the holder's release (or another supervisor pass) resolves
    // to exactly one winner.
    std::error_code ec;
    for (fs::directory_iterator it(run.leases_dir(), ec), end;
         !ec && it != end; it.increment(ec)) {
      if (!it->is_regular_file(ec)) continue;
      const std::string name = it->path().filename().string();
      const std::optional<ShardTask> held = parse_lease_filename(name);
      if (!held || held->shard >= plan.num_shards()) continue;
      top_generation[held->shard] =
          std::max(top_generation[held->shard], held->generation);
      if (covered[held->shard]) continue;  // nothing left to re-issue
      std::uint64_t content_hash = 0;
      try {
        content_hash = fnv1a_file(it->path().string());
      } catch (const Error&) {
        tracker.forget(name);  // vanished mid-read (released/claimed)
        continue;
      }
      tracker.observe(name, content_hash);
      if (!tracker.stale(name, options.lease_ttl)) continue;
      const ShardTask reissue{held->shard, held->generation + 1};
      GMD_REQUIRE_AS(ErrorCode::kSimulation,
                     reissue.generation <= options.max_generations,
                     "shard " << held->shard << " exceeded "
                              << options.max_generations
                              << " generations without completing");
      if (atomic_rename_claim(
              it->path().string(),
              run.tasks_dir() + "/" + task_filename(reissue))) {
        GMD_LOG_WARN << "distributed sweep: lease '" << name
                     << "' went stale; re-issued shard " << held->shard
                     << " as generation " << reissue.generation;
        top_generation[held->shard] = reissue.generation;
        if (stats != nullptr) {
          ++stats->leases_expired;
          ++stats->tasks_issued;
        }
      }
      tracker.forget(name);
    }

    // Invariant pass: every uncovered shard must be claimable or
    // claimed.  A shard with no task AND no lease — fresh run, corrupt
    // journal, file lost to a crashed claim — gets a next-generation
    // task.  This one rule uniformly recovers every loss mode.
    const std::vector<ShardTask> tasks = list_tasks(run.tasks_dir());
    const std::vector<ShardTask> leases = list_leases(run.leases_dir());
    std::vector<char> claimable(plan.num_shards(), 0);
    for (const ShardTask& t : tasks) {
      if (t.shard >= plan.num_shards()) continue;
      claimable[t.shard] = 1;
      top_generation[t.shard] =
          std::max(top_generation[t.shard], t.generation);
    }
    for (const ShardTask& t : leases) {
      if (t.shard >= plan.num_shards()) continue;
      claimable[t.shard] = 1;
      top_generation[t.shard] =
          std::max(top_generation[t.shard], t.generation);
    }
    for (std::size_t s = 0; s < plan.num_shards(); ++s) {
      if (covered[s] || claimable[s]) continue;
      const ShardTask task{s, top_generation[s] + 1};
      GMD_REQUIRE_AS(ErrorCode::kSimulation,
                     task.generation <= options.max_generations,
                     "shard " << s << " exceeded " << options.max_generations
                              << " generations without completing");
      write_task_file(run.tasks_dir() + "/" + task_filename(task), task);
      top_generation[s] = task.generation;
      if (stats != nullptr) ++stats->tasks_issued;
    }

    if (options.tick) options.tick();
    std::this_thread::sleep_for(options.poll_interval);
  }
}

#if defined(__unix__) || defined(__APPLE__)

namespace {

std::string describe_exit(int status) {
  if (WIFEXITED(status)) {
    return "exit code " + std::to_string(WEXITSTATUS(status));
  }
  if (WIFSIGNALED(status)) {
    return "signal " + std::to_string(WTERMSIG(status));
  }
  return "status " + std::to_string(status);
}

}  // namespace

std::vector<SweepRow> run_sweep_distributed(
    std::span<const DesignPoint> points,
    const tracestore::TraceStoreReader& store, const std::string& run_dir,
    const SweepOptions& sweep, const DistributedSweepOptions& options,
    DistributedStats* stats) {
  GMD_REQUIRE_AS(ErrorCode::kConfig, options.num_workers > 0,
                 "num_workers must be positive");
  const RunDir run{run_dir};
  const JournalKey key = sweep_identity(make_journal_key(points, store), sweep);
  // Before forking, so every child sees run.meta and the directories.
  prepare_run(run, key, options.shard_size, stats);

  struct Child {
    pid_t pid = 0;  ///< 0 once reaped.
    std::size_t slot = 0;
  };
  std::vector<Child> children;

  const auto spawn = [&](std::size_t slot, bool with_kill_hook) {
    const pid_t pid = ::fork();
    GMD_REQUIRE_AS(ErrorCode::kIo, pid >= 0, "fork failed");
    if (pid == 0) {
      // Child: run the worker loop and leave via _Exit — no unwinding,
      // no flushing of inherited stdio, exactly like the kill paths.
      try {
        WorkerOptions worker;
        worker.worker_id = "worker-" + std::to_string(slot);
        worker.sweep = sweep;
        worker.sweep.cancel = nullptr;  // parent-owned token: meaningless here
        worker.sweep.checkpoint_path.clear();
        worker.sweep.resume = false;
        worker.sweep.row_sink = nullptr;
        worker.heartbeat_interval = options.heartbeat_interval;
        worker.poll_interval = options.poll_interval;
        worker.idle_timeout = std::max<std::chrono::milliseconds>(
            options.lease_ttl * 10, std::chrono::milliseconds(2000));
        if (with_kill_hook && options.kill_after_points > 0) {
          const std::size_t kill_after = options.kill_after_points;
          worker.progress_hook = [kill_after](std::size_t journaled) {
            // The SIGKILL stand-in: no destructors, no flushes.
            if (journaled >= kill_after) ::_Exit(137);
          };
        }
        run_sweep_worker(run, points, store, worker);
        ::_Exit(0);
      } catch (...) {
        ::_Exit(1);
      }
    }
    children.push_back(Child{pid, slot});
  };

  for (std::size_t slot = 0; slot < options.num_workers; ++slot) {
    spawn(slot, slot < options.kill_workers);
  }

  std::size_t respawned = 0;
  SupervisorOptions supervisor;
  supervisor.shard_size = options.shard_size;
  supervisor.lease_ttl = options.lease_ttl;
  supervisor.poll_interval = options.poll_interval;
  supervisor.max_generations = options.max_generations;
  supervisor.cancel = options.cancel;
  supervisor.tick = [&] {
    std::size_t live = 0;
    for (std::size_t c = 0; c < children.size(); ++c) {
      if (children[c].pid == 0) continue;
      int status = 0;
      const pid_t reaped = ::waitpid(children[c].pid, &status, WNOHANG);
      if (reaped == 0) {
        ++live;
        continue;
      }
      const std::size_t slot = children[c].slot;
      children[c].pid = 0;
      const bool clean =
          reaped > 0 && WIFEXITED(status) && WEXITSTATUS(status) == 0;
      if (!clean) {
        GMD_LOG_WARN << "distributed sweep: worker-" << slot << " died ("
                     << (reaped > 0 ? describe_exit(status) : "wait error")
                     << ")";
      }
      if (options.respawn_dead_workers && respawned < options.max_respawns) {
        // The replacement reuses the slot id, adopting the dead
        // worker's journal; the predecessor is reaped, so the
        // single-writer-per-journal rule holds.
        ++respawned;
        if (stats != nullptr) ++stats->workers_respawned;
        spawn(slot, false);
        ++live;
      }
    }
    if (live == 0 && !merge_journals(run, key).complete()) {
      throw Error(ErrorCode::kSimulation,
                  "all distributed sweep workers exited before the run "
                  "completed");
    }
  };

  std::vector<SweepRow> rows;
  try {
    rows = supervise(run, points, key, supervisor, stats);
  } catch (...) {
    // Tear the fleet down before propagating — stray children would
    // outlive the failed run.
    for (const Child& child : children) {
      if (child.pid != 0) ::kill(child.pid, SIGKILL);
    }
    for (const Child& child : children) {
      if (child.pid != 0) {
        int status = 0;
        ::waitpid(child.pid, &status, 0);
      }
    }
    throw;
  }

  // run.complete is on disk: workers exit on their next poll.  Give
  // them a grace period, then hard-kill stragglers.
  const auto grace_end =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  for (;;) {
    std::size_t live = 0;
    for (auto& child : children) {
      if (child.pid == 0) continue;
      int status = 0;
      if (::waitpid(child.pid, &status, WNOHANG) != 0) {
        child.pid = 0;
      } else {
        ++live;
      }
    }
    if (live == 0) break;
    if (std::chrono::steady_clock::now() >= grace_end) {
      for (auto& child : children) {
        if (child.pid != 0) ::kill(child.pid, SIGKILL);
      }
      for (auto& child : children) {
        if (child.pid == 0) continue;
        int status = 0;
        ::waitpid(child.pid, &status, 0);
        child.pid = 0;
      }
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // The workers ran fail-fast as skip (failures must journal); restore
  // the caller's semantics by re-raising the first recorded failure.
  if (sweep.failure_policy == FailurePolicy::kFailFast) {
    for (const SweepRow& row : rows) {
      if (!row.ok()) {
        throw Error(row.error_code == ErrorCode::kUnspecified
                        ? ErrorCode::kSimulation
                        : row.error_code,
                    row.error.empty() ? "sweep point failed" : row.error);
      }
    }
  }
  return rows;
}

#else  // !POSIX

std::vector<SweepRow> run_sweep_distributed(
    std::span<const DesignPoint>, const tracestore::TraceStoreReader&,
    const std::string&, const SweepOptions&, const DistributedSweepOptions&,
    DistributedStats*) {
  GMD_REQUIRE_AS(ErrorCode::kConfig, false,
                 "run_sweep_distributed requires a POSIX platform");
  return {};
}

#endif

}  // namespace gmd::dse
