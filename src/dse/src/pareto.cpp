#include "gmd/dse/pareto.hpp"

#include <iomanip>
#include <sstream>

#include "gmd/common/error.hpp"

namespace gmd::dse {

namespace {

std::size_t metric_index(const std::string& metric) {
  const auto& names = target_metric_names();
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (names[i] == metric) return i;
  }
  throw Error("unknown metric '" + metric + "'");
}

double objective_value(const SweepRow& row, const Objective& objective) {
  return row.metrics.metric_values()[metric_index(objective.metric)];
}

}  // namespace

bool dominates(const SweepRow& a, const SweepRow& b,
               std::span<const Objective> objectives) {
  GMD_REQUIRE(!objectives.empty(), "need at least one objective");
  bool strictly_better_somewhere = false;
  for (const Objective& objective : objectives) {
    const double va = objective_value(a, objective);
    const double vb = objective_value(b, objective);
    const bool a_better = objective.direction == Direction::kMinimize
                              ? va < vb
                              : va > vb;
    const bool a_worse = objective.direction == Direction::kMinimize
                             ? va > vb
                             : va < vb;
    if (a_worse) return false;
    if (a_better) strictly_better_somewhere = true;
  }
  return strictly_better_somewhere;
}

std::vector<std::size_t> pareto_front(
    std::span<const SweepRow> rows, std::span<const Objective> objectives) {
  GMD_REQUIRE(!rows.empty(), "empty sweep");
  GMD_REQUIRE(!objectives.empty(), "need at least one objective");
  for (const Objective& objective : objectives) {
    (void)metric_index(objective.metric);  // validate up front
  }
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < rows.size() && !dominated; ++j) {
      if (i != j && dominates(rows[j], rows[i], objectives)) {
        dominated = true;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

bool Constraint::satisfied_by(const SweepRow& row) const {
  const double value = row.metrics.metric_values()[metric_index(metric)];
  return is_upper_bound ? value <= bound : value >= bound;
}

std::optional<std::size_t> best_under_constraints(
    std::span<const SweepRow> rows, const Objective& objective,
    std::span<const Constraint> constraints) {
  GMD_REQUIRE(!rows.empty(), "empty sweep");
  std::optional<std::size_t> best;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    bool feasible = true;
    for (const Constraint& constraint : constraints) {
      if (!constraint.satisfied_by(rows[i])) {
        feasible = false;
        break;
      }
    }
    if (!feasible) continue;
    if (!best) {
      best = i;
      continue;
    }
    const double current = objective_value(rows[i], objective);
    const double incumbent = objective_value(rows[*best], objective);
    const bool better = objective.direction == Direction::kMinimize
                            ? current < incumbent
                            : current > incumbent;
    if (better) best = i;
  }
  return best;
}

std::string format_pareto_front(std::span<const SweepRow> rows,
                                std::span<const std::size_t> front,
                                std::span<const Objective> objectives) {
  std::ostringstream os;
  os << "Pareto front (" << front.size() << " of " << rows.size()
     << " configurations):\n";
  os << std::left << std::setw(30) << "  configuration";
  for (const Objective& objective : objectives) {
    os << std::right << std::setw(22) << objective.metric;
  }
  os << "\n";
  for (const std::size_t index : front) {
    GMD_REQUIRE(index < rows.size(), "front index out of range");
    os << "  " << std::left << std::setw(28) << rows[index].point.id();
    for (const Objective& objective : objectives) {
      os << std::right << std::setw(22) << std::fixed
         << std::setprecision(4) << objective_value(rows[index], objective);
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace gmd::dse
