#include "gmd/dse/active_learning.hpp"

#include <algorithm>
#include <numeric>

#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/ml/gp.hpp"
#include "gmd/ml/metrics.hpp"

namespace gmd::dse {

namespace {

struct Arena {
  ml::Matrix pool_x;
  std::vector<double> pool_y;
  ml::Matrix holdout_x;
  std::vector<double> holdout_y;
};

/// Scales pool and holdout consistently (scalers fitted on the pool,
/// whose feature grid is known up front; the target scaling only
/// affects units, not R²).
Arena build_arena(std::span<const SweepRow> pool,
                  std::span<const SweepRow> holdout,
                  const std::string& metric) {
  GMD_REQUIRE(!pool.empty() && !holdout.empty(),
              "active learning needs a pool and a holdout set");
  std::vector<SweepRow> combined(pool.begin(), pool.end());
  combined.insert(combined.end(), holdout.begin(), holdout.end());
  const MetricDataset md = build_metric_dataset(combined, metric);

  Arena arena;
  std::vector<std::size_t> pool_idx(pool.size());
  std::iota(pool_idx.begin(), pool_idx.end(), std::size_t{0});
  std::vector<std::size_t> hold_idx(holdout.size());
  std::iota(hold_idx.begin(), hold_idx.end(), pool.size());
  arena.pool_x = md.data.X.gather_rows(pool_idx);
  arena.holdout_x = md.data.X.gather_rows(hold_idx);
  for (const std::size_t i : pool_idx) arena.pool_y.push_back(md.data.y[i]);
  for (const std::size_t i : hold_idx)
    arena.holdout_y.push_back(md.data.y[i]);
  return arena;
}

ml::GaussianProcess make_gp(const ActiveLearningOptions& options) {
  ml::GpParams params;
  params.kernel.gamma = options.gp_gamma;
  params.noise = options.gp_noise;
  return ml::GaussianProcess(params);
}

LearningCurvePoint evaluate(const ml::GaussianProcess& gp,
                            const Arena& arena, std::size_t labels_used) {
  LearningCurvePoint point;
  point.labels_used = labels_used;
  const std::vector<double> predicted = gp.predict(arena.holdout_x);
  point.r2_on_holdout = ml::r2_score(arena.holdout_y, predicted);
  point.mse_on_holdout = ml::mse(arena.holdout_y, predicted);
  return point;
}

/// Shared driver: `acquire` picks the next batch from the unlabeled set.
ActiveLearningResult run_loop(
    std::span<const SweepRow> pool, std::span<const SweepRow> holdout,
    const std::string& metric, const ActiveLearningOptions& options,
    const std::function<std::vector<std::size_t>(
        const ml::GaussianProcess&, const Arena&,
        const std::vector<std::size_t>& unlabeled, Rng&)>& acquire) {
  GMD_REQUIRE(options.initial_labels >= 2, "need >= 2 initial labels");
  GMD_REQUIRE(options.label_budget >= options.initial_labels,
              "label budget below the initial set size");
  GMD_REQUIRE(options.batch_size >= 1, "batch size must be >= 1");

  const Arena arena = build_arena(pool, holdout, metric);
  Rng rng(options.seed);

  std::vector<std::size_t> unlabeled(pool.size());
  std::iota(unlabeled.begin(), unlabeled.end(), std::size_t{0});
  rng.shuffle(unlabeled);

  ActiveLearningResult result;
  std::vector<std::size_t> labeled;
  const std::size_t initial =
      std::min(options.initial_labels, pool.size());
  for (std::size_t i = 0; i < initial; ++i) {
    labeled.push_back(unlabeled.back());
    result.acquisition_order.push_back(unlabeled.back());
    unlabeled.pop_back();
  }

  while (true) {
    ml::GaussianProcess gp = make_gp(options);
    const ml::Matrix x = arena.pool_x.gather_rows(labeled);
    std::vector<double> y;
    y.reserve(labeled.size());
    for (const std::size_t i : labeled) y.push_back(arena.pool_y[i]);
    gp.fit(x, y);
    result.curve.push_back(evaluate(gp, arena, labeled.size()));

    if (labeled.size() >= std::min(options.label_budget, pool.size()) ||
        unlabeled.empty()) {
      break;
    }
    const std::vector<std::size_t> picks =
        acquire(gp, arena, unlabeled, rng);
    GMD_ASSERT(!picks.empty(), "acquisition returned no points");
    for (const std::size_t pick : picks) {
      const auto it = std::find(unlabeled.begin(), unlabeled.end(), pick);
      GMD_ASSERT(it != unlabeled.end(), "acquired an already-labeled point");
      unlabeled.erase(it);
      labeled.push_back(pick);
      result.acquisition_order.push_back(pick);
      if (labeled.size() >= options.label_budget) break;
    }
  }
  return result;
}

}  // namespace

ActiveLearningResult run_active_learning(
    std::span<const SweepRow> pool, std::span<const SweepRow> holdout,
    const std::string& metric, const ActiveLearningOptions& options) {
  return run_loop(
      pool, holdout, metric, options,
      [&options](const ml::GaussianProcess& gp, const Arena& arena,
                 const std::vector<std::size_t>& unlabeled, Rng&) {
        // Maximum-variance acquisition: the batch of unlabeled points
        // the current model is least sure about.  One batch scan over
        // the gathered unlabeled rows; ranked is built in the same
        // unlabeled order as the per-point loop, so the (unstable)
        // sort sees the identical input sequence.
        const ml::Matrix unlabeled_x = arena.pool_x.gather_rows(unlabeled);
        std::vector<double> means;
        std::vector<double> variances;
        gp.predict_with_variance(unlabeled_x, means, variances);
        std::vector<std::pair<double, std::size_t>> ranked;
        ranked.reserve(unlabeled.size());
        for (std::size_t k = 0; k < unlabeled.size(); ++k) {
          ranked.emplace_back(variances[k], unlabeled[k]);
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto& a, const auto& b) { return a.first > b.first; });
        std::vector<std::size_t> picks;
        for (std::size_t k = 0;
             k < std::min(options.batch_size, ranked.size()); ++k) {
          picks.push_back(ranked[k].second);
        }
        return picks;
      });
}

ActiveLearningResult run_random_sampling(
    std::span<const SweepRow> pool, std::span<const SweepRow> holdout,
    const std::string& metric, const ActiveLearningOptions& options) {
  return run_loop(
      pool, holdout, metric, options,
      [&options](const ml::GaussianProcess&, const Arena&,
                 const std::vector<std::size_t>& unlabeled, Rng& rng) {
        std::vector<std::size_t> picks;
        std::vector<std::size_t> candidates = unlabeled;
        rng.shuffle(candidates);
        for (std::size_t k = 0;
             k < std::min(options.batch_size, candidates.size()); ++k) {
          picks.push_back(candidates[k]);
        }
        return picks;
      });
}

}  // namespace gmd::dse
