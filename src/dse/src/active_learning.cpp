#include "gmd/dse/active_learning.hpp"

#include <algorithm>
#include <numeric>

#include "gmd/common/error.hpp"
#include "gmd/common/rng.hpp"
#include "gmd/ml/forest.hpp"
#include "gmd/ml/gp.hpp"
#include "gmd/ml/metrics.hpp"
#include "gmd/ml/workspace.hpp"

namespace gmd::dse {

namespace {

struct Arena {
  ml::Matrix pool_x;
  std::vector<double> pool_y;
  ml::Matrix holdout_x;
  std::vector<double> holdout_y;
};

/// Scales pool and holdout consistently (scalers fitted on the pool,
/// whose feature grid is known up front; the target scaling only
/// affects units, not R²).
Arena build_arena(std::span<const SweepRow> pool,
                  std::span<const SweepRow> holdout,
                  const std::string& metric) {
  GMD_REQUIRE(!pool.empty() && !holdout.empty(),
              "active learning needs a pool and a holdout set");
  std::vector<SweepRow> combined(pool.begin(), pool.end());
  combined.insert(combined.end(), holdout.begin(), holdout.end());
  const MetricDataset md = build_metric_dataset(combined, metric);

  Arena arena;
  std::vector<std::size_t> pool_idx(pool.size());
  std::iota(pool_idx.begin(), pool_idx.end(), std::size_t{0});
  std::vector<std::size_t> hold_idx(holdout.size());
  std::iota(hold_idx.begin(), hold_idx.end(), pool.size());
  arena.pool_x = md.data.X.gather_rows(pool_idx);
  arena.holdout_x = md.data.X.gather_rows(hold_idx);
  for (const std::size_t i : pool_idx) arena.pool_y.push_back(md.data.y[i]);
  for (const std::size_t i : hold_idx)
    arena.holdout_y.push_back(md.data.y[i]);
  return arena;
}

/// One round's fitted surrogate — GP or random forest behind a common
/// predict / predict-with-uncertainty face, so the loop and the
/// acquisition strategies are family-agnostic.
struct RoundModel {
  bool is_gp = true;
  ml::GaussianProcess gp;
  ml::RandomForest rf{ml::ForestParams{}};

  std::vector<double> predict(const ml::Matrix& x) const {
    return is_gp ? gp.predict(x) : rf.predict(x);
  }
  void predict_with_uncertainty(const ml::Matrix& x,
                                std::vector<double>& means,
                                std::vector<double>& variances) const {
    if (is_gp) {
      gp.predict_with_variance(x, means, variances);
    } else {
      rf.predict_with_spread(x, means, variances);
    }
  }
};

ml::GaussianProcess make_gp(const ActiveLearningOptions& options) {
  ml::GpParams params;
  params.kernel.gamma = options.gp_gamma;
  params.noise = options.gp_noise;
  return ml::GaussianProcess(params);
}

LearningCurvePoint evaluate(const RoundModel& model, const Arena& arena,
                            std::size_t labels_used) {
  LearningCurvePoint point;
  point.labels_used = labels_used;
  const std::vector<double> predicted = model.predict(arena.holdout_x);
  point.r2_on_holdout = ml::r2_score(arena.holdout_y, predicted);
  point.mse_on_holdout = ml::mse(arena.holdout_y, predicted);
  return point;
}

/// Shared driver: `acquire` picks the next batch from the unlabeled set.
ActiveLearningResult run_loop(
    std::span<const SweepRow> pool, std::span<const SweepRow> holdout,
    const std::string& metric, const ActiveLearningOptions& options,
    const std::function<std::vector<std::size_t>(
        const RoundModel&, const Arena&,
        const std::vector<std::size_t>& unlabeled, Rng&)>& acquire) {
  GMD_REQUIRE(options.initial_labels >= 2, "need >= 2 initial labels");
  GMD_REQUIRE(options.label_budget >= options.initial_labels,
              "label budget below the initial set size");
  GMD_REQUIRE(options.batch_size >= 1, "batch size must be >= 1");
  GMD_REQUIRE(options.model == "gp" || options.model == "rf",
              "active-learning model must be gp or rf");

  const Arena arena = build_arena(pool, holdout, metric);
  Rng rng(options.seed);

  // The rf retrain path: presort the whole pool's feature orders once;
  // every round's fit derives its labeled-subset view in O(rows) per
  // feature (TrainingWorkspace::for_sample) instead of re-sorting.
  ml::TrainingWorkspace pool_workspace;
  if (options.model == "rf") {
    pool_workspace = ml::TrainingWorkspace::build(arena.pool_x);
  }

  std::vector<std::size_t> unlabeled(pool.size());
  std::iota(unlabeled.begin(), unlabeled.end(), std::size_t{0});
  rng.shuffle(unlabeled);

  ActiveLearningResult result;
  std::vector<std::size_t> labeled;
  const std::size_t initial =
      std::min(options.initial_labels, pool.size());
  for (std::size_t i = 0; i < initial; ++i) {
    labeled.push_back(unlabeled.back());
    result.acquisition_order.push_back(unlabeled.back());
    unlabeled.pop_back();
  }

  while (true) {
    RoundModel model;
    model.is_gp = options.model == "gp";
    std::vector<double> y;
    y.reserve(labeled.size());
    for (const std::size_t i : labeled) y.push_back(arena.pool_y[i]);
    if (model.is_gp) {
      model.gp = make_gp(options);
      const ml::Matrix x = arena.pool_x.gather_rows(labeled);
      model.gp.fit(x, y);
    } else {
      ml::ForestParams params;
      params.num_trees = options.rf_trees;
      params.seed = options.seed;
      params.num_threads = options.num_threads;
      model.rf = ml::RandomForest(params);
      model.rf.fit_with_workspace(pool_workspace, arena.pool_x, labeled, y);
    }
    result.curve.push_back(evaluate(model, arena, labeled.size()));

    if (labeled.size() >= std::min(options.label_budget, pool.size()) ||
        unlabeled.empty()) {
      break;
    }
    const std::vector<std::size_t> picks =
        acquire(model, arena, unlabeled, rng);
    GMD_ASSERT(!picks.empty(), "acquisition returned no points");
    for (const std::size_t pick : picks) {
      const auto it = std::find(unlabeled.begin(), unlabeled.end(), pick);
      GMD_ASSERT(it != unlabeled.end(), "acquired an already-labeled point");
      unlabeled.erase(it);
      labeled.push_back(pick);
      result.acquisition_order.push_back(pick);
      if (labeled.size() >= options.label_budget) break;
    }
  }
  return result;
}

}  // namespace

ActiveLearningResult run_active_learning(
    std::span<const SweepRow> pool, std::span<const SweepRow> holdout,
    const std::string& metric, const ActiveLearningOptions& options) {
  return run_loop(
      pool, holdout, metric, options,
      [&options](const RoundModel& model, const Arena& arena,
                 const std::vector<std::size_t>& unlabeled, Rng&) {
        // Maximum-uncertainty acquisition: the batch of unlabeled
        // points the current model is least sure about (GP variance or
        // forest spread).  One batch scan over the gathered unlabeled
        // rows; ranked is built in the same unlabeled order as the
        // per-point loop, so the (unstable) sort sees the identical
        // input sequence.
        const ml::Matrix unlabeled_x = arena.pool_x.gather_rows(unlabeled);
        std::vector<double> means;
        std::vector<double> variances;
        model.predict_with_uncertainty(unlabeled_x, means, variances);
        std::vector<std::pair<double, std::size_t>> ranked;
        ranked.reserve(unlabeled.size());
        for (std::size_t k = 0; k < unlabeled.size(); ++k) {
          ranked.emplace_back(variances[k], unlabeled[k]);
        }
        std::sort(ranked.begin(), ranked.end(),
                  [](const auto& a, const auto& b) { return a.first > b.first; });
        std::vector<std::size_t> picks;
        for (std::size_t k = 0;
             k < std::min(options.batch_size, ranked.size()); ++k) {
          picks.push_back(ranked[k].second);
        }
        return picks;
      });
}

ActiveLearningResult run_random_sampling(
    std::span<const SweepRow> pool, std::span<const SweepRow> holdout,
    const std::string& metric, const ActiveLearningOptions& options) {
  return run_loop(
      pool, holdout, metric, options,
      [&options](const RoundModel&, const Arena&,
                 const std::vector<std::size_t>& unlabeled, Rng& rng) {
        std::vector<std::size_t> picks;
        std::vector<std::size_t> candidates = unlabeled;
        rng.shuffle(candidates);
        for (std::size_t k = 0;
             k < std::min(options.batch_size, candidates.size()); ++k) {
          picks.push_back(candidates[k]);
        }
        return picks;
      });
}

}  // namespace gmd::dse
