#include "gmd/dse/report.hpp"

#include <array>
#include <fstream>
#include <map>
#include <sstream>

#include "gmd/common/error.hpp"
#include "gmd/common/string_util.hpp"
#include "gmd/dse/pareto.hpp"
#include "gmd/dse/sensitivity.hpp"

namespace gmd::dse {

namespace {

struct CellKey {
  std::uint32_t cpu, ctrl, channels;
  auto operator<=>(const CellKey&) const = default;
};

struct CellMean {
  std::array<double, 6> sums{};
  std::size_t count = 0;
  void add(const std::vector<double>& values) {
    for (std::size_t i = 0; i < 6; ++i) sums[i] += values[i];
    ++count;
  }
  double mean(std::size_t i) const {
    return count ? sums[i] / static_cast<double>(count) : 0.0;
  }
};

void write_metric_table(std::ostream& os,
                        std::span<const SweepRow> sweep) {
  std::map<CellKey, std::map<MemoryKind, CellMean>> cells;
  for (const SweepRow& row : sweep) {
    cells[{row.point.cpu_freq_mhz, row.point.ctrl_freq_mhz,
           row.point.channels}][row.point.kind]
        .add(row.metrics.metric_values());
  }
  os << "## Memory performance summary (Fig. 2 analogue)\n\n";
  os << "Cell values are D / N / H means over tRCD variants.\n\n";
  os << "| CPU MHz | Ctrl MHz | Ch | Power (W) | Bandwidth (MB/s) | "
        "Latency (cy) | Total latency (cy) |\n";
  os << "|---|---|---|---|---|---|---|\n";
  for (const auto& [key, kinds] : cells) {
    const auto format_cell = [&](std::size_t metric, int digits) {
      std::string text;
      for (const MemoryKind kind :
           {MemoryKind::kDram, MemoryKind::kNvm, MemoryKind::kHybrid}) {
        if (!text.empty()) text += " / ";
        const auto it = kinds.find(kind);
        text += it == kinds.end() ? "-"
                                  : format_fixed(it->second.mean(metric),
                                                 digits);
      }
      return text;
    };
    os << "| " << key.cpu << " | " << key.ctrl << " | " << key.channels
       << " | " << format_cell(0, 3) << " | " << format_cell(1, 0) << " | "
       << format_cell(2, 1) << " | " << format_cell(3, 0) << " |\n";
  }
  os << "\n";
}

void write_model_scores(std::ostream& os, const SurrogateSuite& suite) {
  os << "## Surrogate model scores (Table I analogue)\n\n";
  os << "| metric | model | MSE | R2 | best |\n";
  os << "|---|---|---|---|---|\n";
  for (const SurrogateScore& score : suite.scores()) {
    const bool is_best =
        suite.best_model(score.metric).model == score.model;
    os << "| " << score.metric << " | " << score.model << " | "
       << format_sci(score.mse, 2) << " | " << format_fixed(score.r2, 4)
       << " | " << (is_best ? "**yes**" : "") << " |\n";
  }
  os << "\n";
}

void write_recommendations(std::ostream& os,
                           std::span<const Recommendation> recs) {
  os << "## Recommendations\n\n";
  for (const Recommendation& rec : recs) {
    os << "- **" << rec.metric << "**: `" << rec.best.id() << "` ("
       << format_fixed(rec.value, rec.value < 10.0 ? 4 : 2) << "; "
       << rec.rationale << ")\n";
  }
  os << "\n";
}

void write_pareto(std::ostream& os, std::span<const SweepRow> sweep) {
  const std::vector<Objective> objectives = {
      Objective("power_w"), Objective("total_latency_cycles")};
  const auto front = pareto_front(sweep, objectives);
  os << "## Power / total-latency Pareto front\n\n";
  os << "| configuration | power (W) | total latency (cy) |\n";
  os << "|---|---|---|\n";
  for (const std::size_t index : front) {
    const SweepRow& row = sweep[index];
    os << "| `" << row.point.id() << "` | "
       << format_fixed(row.metrics.avg_power_per_channel_w, 4) << " | "
       << format_fixed(row.metrics.avg_total_latency_cycles, 1) << " |\n";
  }
  os << "\n";
}

void write_sensitivity(std::ostream& os, std::span<const SweepRow> sweep) {
  os << "## Parameter sensitivity (main effects)\n\n";
  os << "Leverage = (max level mean - min level mean) / overall mean.\n\n";
  os << "| metric | dominant knob | leverage | best level |\n";
  os << "|---|---|---|---|\n";
  for (const std::string& metric : target_metric_names()) {
    const SensitivityResult analysis = analyze_sensitivity(sweep, metric);
    const ParameterEffect& top = analysis.dominant();
    os << "| " << metric << " | " << top.parameter << " | "
       << format_fixed(top.relative_effect * 100.0, 1) << "% | "
       << top.best_level << " |\n";
  }
  os << "\n";
}

}  // namespace

void write_markdown_report(std::ostream& os, const WorkflowResult& result,
                           const ReportOptions& options) {
  GMD_REQUIRE(!result.sweep.empty(), "cannot report on an empty study");
  os << "# " << options.title << "\n\n";
  os << "- graph: " << result.graph.num_vertices() << " vertices, "
     << result.graph.num_edges() << " directed edges\n";
  os << "- trace: " << result.trace.size() << " memory events\n";
  os << "- configurations simulated: " << result.sweep.size() << "\n\n";

  if (options.include_metric_table) write_metric_table(os, result.sweep);
  if (options.include_model_scores)
    write_model_scores(os, result.surrogates);
  if (options.include_recommendations)
    write_recommendations(os, result.recommendations);
  if (options.include_sensitivity) write_sensitivity(os, result.sweep);
  if (options.include_pareto) write_pareto(os, result.sweep);
}

std::string markdown_report(const WorkflowResult& result,
                            const ReportOptions& options) {
  std::ostringstream os;
  write_markdown_report(os, result, options);
  return os.str();
}

void save_markdown_report(const std::string& path,
                          const WorkflowResult& result,
                          const ReportOptions& options) {
  std::ofstream out(path);
  GMD_REQUIRE(out.good(), "cannot open '" << path << "' for writing");
  write_markdown_report(out, result, options);
  GMD_REQUIRE(out.good(), "write to '" << path << "' failed");
}

}  // namespace gmd::dse
