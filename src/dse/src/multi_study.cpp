#include "gmd/dse/multi_study.hpp"

#include <cmath>
#include <sstream>

#include "gmd/common/error.hpp"
#include "gmd/common/string_util.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/sweep.hpp"
#include "gmd/dse/workflow.hpp"
#include "gmd/ml/metrics.hpp"
#include "gmd/ml/regressor.hpp"
#include "gmd/trace/stats.hpp"

namespace gmd::dse {

namespace {

WorkloadSweep build_workload_sweep(const MultiStudyConfig& config,
                                   const std::string& workload,
                                   const std::vector<DesignPoint>& points) {
  WorkflowConfig workflow;
  workflow.graph_vertices = config.graph_vertices;
  workflow.edge_factor = config.edge_factor;
  workflow.workload = workload;
  workflow.seed = config.seed;
  workflow.num_threads = config.num_threads;
  const auto events = generate_workload_trace(workflow);
  const auto stats = trace::compute_stats(events);

  WorkloadSweep sweep;
  sweep.name = workload;
  SweepOptions sweep_options;
  sweep_options.num_threads = config.num_threads;
  sweep.rows = run_sweep(points, events, sweep_options);
  sweep.log10_events =
      std::log10(static_cast<double>(std::max<std::uint64_t>(stats.events, 1)));
  sweep.read_fraction = stats.read_fraction();
  sweep.footprint_kb = static_cast<double>(stats.footprint_bytes()) / 1024.0;
  return sweep;
}

}  // namespace

MultiStudyResult run_multi_workload_study(const MultiStudyConfig& config) {
  GMD_REQUIRE(config.workloads.size() >= 2,
              "a multi-workload study needs at least two workloads");
  const std::vector<DesignPoint> points = config.design_points.empty()
                                              ? reduced_design_space()
                                              : config.design_points;
  const std::vector<std::string> metrics =
      config.metrics.empty() ? target_metric_names() : config.metrics;

  MultiStudyResult result;
  result.sweeps.reserve(config.workloads.size());
  for (const std::string& workload : config.workloads) {
    result.sweeps.push_back(build_workload_sweep(config, workload, points));
  }

  // LOWO evaluation: scale over the union so train/test features are
  // commensurable, then hold out one workload's block at a time.
  for (const std::string& metric : metrics) {
    const MetricDataset all =
        build_multi_workload_dataset(result.sweeps, metric);
    std::size_t block_begin = 0;
    for (const WorkloadSweep& held_out : result.sweeps) {
      const std::size_t block_end = block_begin + held_out.rows.size();
      std::vector<std::size_t> train_idx, test_idx;
      for (std::size_t i = 0; i < all.data.size(); ++i) {
        (i >= block_begin && i < block_end ? test_idx : train_idx)
            .push_back(i);
      }
      const ml::Dataset train = all.data.subset(train_idx);
      const ml::Dataset test = all.data.subset(test_idx);
      const auto model =
          ml::make_regressor(config.surrogate_model, config.seed);
      model->fit(train.X, train.y);
      const std::vector<double> predicted = model->predict(test.X);

      MultiStudyResult::LowoScore score;
      score.held_out_workload = held_out.name;
      score.metric = metric;
      score.r2 = ml::r2_score(test.y, predicted);
      score.mse = ml::mse(test.y, predicted);
      result.lowo.push_back(score);
      block_begin = block_end;
    }
  }
  return result;
}

double MultiStudyResult::mean_lowo_r2(const std::string& metric) const {
  double sum = 0.0;
  std::size_t count = 0;
  for (const LowoScore& score : lowo) {
    if (score.metric == metric) {
      sum += score.r2;
      ++count;
    }
  }
  GMD_REQUIRE(count > 0, "no LOWO scores for metric '" << metric << "'");
  return sum / static_cast<double>(count);
}

std::string MultiStudyResult::summary() const {
  std::ostringstream os;
  os << "Multi-workload study: " << sweeps.size() << " workloads\n";
  for (const WorkloadSweep& sweep : sweeps) {
    os << "  " << sweep.name << ": " << sweep.rows.size()
       << " configurations, 10^" << format_fixed(sweep.log10_events, 1)
       << " events, " << format_fixed(sweep.read_fraction * 100.0, 1)
       << "% reads, " << format_fixed(sweep.footprint_kb, 0) << " KiB\n";
  }
  os << "Leave-one-workload-out R2 (surrogate generalization):\n";
  for (const LowoScore& score : lowo) {
    os << "  " << score.metric << " / hold out " << score.held_out_workload
       << ": " << format_fixed(score.r2, 4) << "\n";
  }
  return os.str();
}

}  // namespace gmd::dse
