#include "gmd/dse/recommend.hpp"

#include <sstream>

#include "gmd/common/error.hpp"
#include "gmd/common/string_util.hpp"

namespace gmd::dse {

Direction metric_direction(const std::string& metric) {
  if (metric == "bandwidth_mbs") return Direction::kMaximize;
  // Power, latencies, and reads/writes (endurance pressure) improve
  // when lower.
  return Direction::kMinimize;
}

namespace {

bool better(Direction direction, double candidate, double incumbent) {
  return direction == Direction::kMinimize ? candidate < incumbent
                                           : candidate > incumbent;
}

std::string describe_point(const DesignPoint& p) {
  std::ostringstream os;
  os << to_string(p.kind) << " with " << p.channels << " channels, "
     << p.cpu_freq_mhz << " MHz CPU, " << p.ctrl_freq_mhz
     << " MHz controller";
  if (p.kind != MemoryKind::kDram) os << ", tRCD " << p.trcd;
  return os.str();
}

}  // namespace

std::vector<Recommendation> recommend_from_sweep(
    std::span<const SweepRow> rows) {
  GMD_REQUIRE(!rows.empty(), "cannot recommend from an empty sweep");
  std::vector<Recommendation> recs;
  const auto& metrics = target_metric_names();
  for (std::size_t m = 0; m < metrics.size(); ++m) {
    const Direction direction = metric_direction(metrics[m]);
    const SweepRow* best = &rows[0];
    for (const SweepRow& row : rows) {
      if (better(direction, row.metrics.metric_values()[m],
                 best->metrics.metric_values()[m])) {
        best = &row;
      }
    }
    Recommendation rec;
    rec.metric = metrics[m];
    rec.best = best->point;
    rec.value = best->metrics.metric_values()[m];
    std::ostringstream os;
    os << "simulated optimum across " << rows.size() << " configurations";
    rec.rationale = os.str();
    recs.push_back(std::move(rec));
  }
  return recs;
}

std::vector<Recommendation> recommend_from_surrogate(
    std::span<const SweepRow> labeled,
    std::span<const DesignPoint> candidates,
    const std::string& model_name) {
  GMD_REQUIRE(!candidates.empty(), "no candidate design points");
  std::vector<Recommendation> recs;
  for (const std::string& metric : target_metric_names()) {
    const auto deployed =
        SurrogateSuite::deploy(labeled, metric, model_name);
    const Direction direction = metric_direction(metric);
    // One batch prediction over the whole candidate set; the champion
    // scan in index order makes the same comparisons the per-candidate
    // loop made.
    const std::vector<double> values = deployed.predict(candidates);
    std::size_t best_idx = 0;
    for (std::size_t i = 1; i < candidates.size(); ++i) {
      if (better(direction, values[i], values[best_idx])) best_idx = i;
    }
    Recommendation rec;
    rec.metric = metric;
    rec.best = candidates[best_idx];
    rec.value = values[best_idx];
    rec.rationale = "predicted optimum by the '" + model_name +
                    "' surrogate over " + std::to_string(candidates.size()) +
                    " candidates";
    recs.push_back(std::move(rec));
  }
  return recs;
}

std::string format_recommendations(std::span<const Recommendation> recs) {
  std::ostringstream os;
  os << "Co-design recommendations for the graph workload:\n";
  for (const Recommendation& rec : recs) {
    const bool maximize = metric_direction(rec.metric) == Direction::kMaximize;
    os << "  - For " << (maximize ? "best " : "lowest ") << rec.metric
       << ": use " << describe_point(rec.best) << " ("
       << format_fixed(rec.value, rec.value < 10.0 ? 4 : 2) << "; "
       << rec.rationale << ").\n";
  }
  return os.str();
}

}  // namespace gmd::dse
