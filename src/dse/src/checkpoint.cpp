#include "gmd/dse/checkpoint.hpp"

#include <bit>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "gmd/common/atomic_file.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/hash.hpp"
#include "gmd/common/logging.hpp"
#include "gmd/tracestore/reader.hpp"

namespace gmd::dse {

namespace {

constexpr std::string_view kMagic = "gmd-sweep-journal";
constexpr std::string_view kVersion = "v1";

std::string hex16(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

/// Doubles are journaled as IEEE-754 bit patterns so parsing them back
/// is exact — resumed rows must be bit-identical to fresh ones.
void put_double(std::ostream& os, double value) {
  os << ' ' << hex16(std::bit_cast<std::uint64_t>(value));
}

/// Token-stream reader with typed-error reporting for corrupt journals.
class Reader {
 public:
  explicit Reader(std::istringstream& is, const std::string& path)
      : is_(is), path_(path) {}

  std::uint64_t u64() {
    std::uint64_t value = 0;
    GMD_REQUIRE_AS(ErrorCode::kIo, static_cast<bool>(is_ >> value),
                   "corrupt sweep journal '" << path_ << "'");
    return value;
  }
  std::uint64_t hex_u64() {
    std::string token;
    GMD_REQUIRE_AS(ErrorCode::kIo, static_cast<bool>(is_ >> token),
                   "corrupt sweep journal '" << path_ << "'");
    std::uint64_t value = 0;
    const int got = std::sscanf(token.c_str(), "%llx",
                                reinterpret_cast<unsigned long long*>(&value));
    GMD_REQUIRE_AS(ErrorCode::kIo, got == 1,
                   "corrupt sweep journal '" << path_ << "': bad hex token '"
                                             << token << "'");
    return value;
  }
  double f64() { return std::bit_cast<double>(hex_u64()); }

 private:
  std::istringstream& is_;
  const std::string& path_;
};

}  // namespace

std::uint64_t trace_checksum(std::span<const cpusim::MemoryEvent> trace) {
  Fnv1a h;
  h.mix(trace.size());
  for (const auto& event : trace) {
    h.mix(event.tick);
    h.mix(event.address);
    h.mix(event.size);
    h.mix(event.is_write ? 1 : 0);
  }
  return h.state;
}

std::uint64_t points_checksum(std::span<const DesignPoint> points) {
  Fnv1a h;
  h.mix(points.size());
  for (const auto& p : points) {
    h.mix(static_cast<std::uint64_t>(p.kind));
    h.mix(p.cpu_freq_mhz);
    h.mix(p.ctrl_freq_mhz);
    h.mix(p.channels);
    h.mix(p.trcd);
    h.mix_double(p.dram_fraction);
  }
  return h.state;
}

JournalKey make_journal_key(std::span<const DesignPoint> points,
                            std::span<const cpusim::MemoryEvent> trace) {
  return JournalKey{trace_checksum(trace), points_checksum(points),
                    points.size()};
}

std::uint64_t trace_checksum(const tracestore::TraceStoreReader& store) {
  // The store's header and chunk directory already carry FNV-1a
  // checksums of every payload byte, so the trace identity is a hash of
  // hashes — no re-decode of the events.
  return store.content_checksum();
}

JournalKey make_journal_key(std::span<const DesignPoint> points,
                            const tracestore::TraceStoreReader& store) {
  return JournalKey{trace_checksum(store), points_checksum(points),
                    points.size()};
}

JournalKey sweep_identity(JournalKey base, const SweepOptions& options) {
  if (options.sample_fraction < 1.0) {
    Fnv1a h;
    h.mix(base.points_hash);
    h.mix_double(options.sample_fraction);
    h.mix(options.sample_seed);
    h.mix(options.sample_warmup_chunks);
    h.mix(options.sampling_chunk_events);
    base.points_hash = h.state;
  }
  return base;
}

SweepJournal::SweepJournal(std::string path, const JournalKey& key,
                           std::string owner)
    : path_(std::move(path)), key_(key), owner_(std::move(owner)) {}

std::vector<std::pair<std::size_t, SweepRow>> SweepJournal::load() {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.clear();
  // Parse into a local list and publish only on success, so a corrupt
  // journal leaves the in-memory state empty (the caller can warn and
  // start fresh; the next record() rewrites a consistent file).
  std::vector<std::pair<std::size_t, SweepRow>> loaded;
  if (!std::filesystem::exists(path_)) return entries_;
  std::ifstream in(path_);
  GMD_REQUIRE_AS(ErrorCode::kIo, in.good(),
                 "cannot read sweep journal '" << path_ << "'");

  std::vector<std::string> lines;
  for (std::string line; std::getline(in, line);) {
    if (!line.empty()) lines.push_back(std::move(line));
  }
  // A crash during the very first append can leave a zero-length file
  // (or a lone torn line) on filesystems without durable rename.  That
  // is not corruption worth failing over — there is nothing to lose —
  // so it loads as empty with a warning, matching tolerant-resume
  // semantics.
  if (lines.empty()) {
    GMD_LOG_WARN << "sweep journal '" << path_
                 << "' is zero-length (crash during the first append?); "
                    "treating as empty";
    return entries_;
  }
  {
    std::istringstream header(lines.front());
    std::string magic, version, trace_field, points_field, count_field;
    header >> magic >> version >> trace_field >> points_field >> count_field;
    const auto has_prefix = [](const std::string& field,
                               std::string_view name) {
      return field.rfind(name, 0) == 0 && field.size() > name.size();
    };
    const bool shape_ok = !header.fail() && magic == kMagic &&
                          version == kVersion &&
                          has_prefix(trace_field, "trace=") &&
                          has_prefix(points_field, "points=") &&
                          has_prefix(count_field, "count=");
    if (!shape_ok && lines.size() == 1) {
      GMD_LOG_WARN << "sweep journal '" << path_
                   << "' holds a single malformed line (crash during the "
                      "first append?); treating as empty";
      return entries_;
    }
    GMD_REQUIRE_AS(ErrorCode::kIo, magic == kMagic && version == kVersion,
                   "'" << path_ << "' is not a " << kVersion
                       << " sweep journal");
    GMD_REQUIRE_AS(ErrorCode::kIo, shape_ok,
                   "corrupt sweep journal header in '" << path_ << "'");
    const auto field_value = [](const std::string& field,
                                std::string_view name) {
      return field.substr(name.size());
    };
    GMD_REQUIRE_AS(
        ErrorCode::kConfig,
        field_value(trace_field, "trace=") == hex16(key_.trace_hash),
        "sweep journal '"
            << path_
            << "' was written for a different trace (checksum mismatch); "
               "refusing to resume");
    GMD_REQUIRE_AS(
        ErrorCode::kConfig,
        field_value(points_field, "points=") == hex16(key_.points_hash) &&
            field_value(count_field, "count=") ==
                std::to_string(key_.num_points),
        "sweep journal '"
            << path_
            << "' was written for a different design-point list; "
               "refusing to resume");
    // An `owner=` token may follow (per-worker journal namespace); it
    // identifies the writer and does not constrain who may read.
  }

  for (std::size_t l = 1; l < lines.size(); ++l) {
    const std::string& line = lines[l];
    std::istringstream is(line);
    std::string tag;
    is >> tag;
    if (tag == "fail") {
      Reader r(is, path_);
      const std::size_t index = r.u64();
      GMD_REQUIRE_AS(ErrorCode::kIo, index < key_.num_points,
                     "corrupt sweep journal '"
                         << path_ << "': fail index out of range");
      SweepRow row;
      row.attempts = static_cast<std::uint32_t>(r.u64());
      const std::uint64_t code = r.u64();
      const std::uint64_t outcome = r.u64();
      GMD_REQUIRE_AS(ErrorCode::kIo,
                     code <= static_cast<std::uint64_t>(kLastErrorCode),
                     "corrupt sweep journal '" << path_
                                               << "': bad error code");
      GMD_REQUIRE_AS(
          ErrorCode::kIo,
          outcome == static_cast<std::uint64_t>(PointOutcome::kFailed) ||
              outcome == static_cast<std::uint64_t>(PointOutcome::kTimedOut),
          "corrupt sweep journal '" << path_ << "': bad fail outcome");
      row.error_code = static_cast<ErrorCode>(code);
      row.outcome = static_cast<PointOutcome>(outcome);
      std::getline(is, row.error);
      if (!row.error.empty() && row.error.front() == ' ') {
        row.error.erase(row.error.begin());
      }
      loaded.emplace_back(index, std::move(row));
      continue;
    }
    GMD_REQUIRE_AS(ErrorCode::kIo, tag == "row",
                   "corrupt sweep journal '" << path_ << "': unexpected '"
                                             << tag << "' record");
    Reader r(is, path_);
    const std::size_t index = r.u64();
    GMD_REQUIRE_AS(ErrorCode::kIo, index < key_.num_points,
                   "corrupt sweep journal '" << path_
                                             << "': row index out of range");
    SweepRow row;
    row.outcome = PointOutcome::kOk;
    row.attempts = static_cast<std::uint32_t>(r.u64());
    memsim::MemoryMetrics& m = row.metrics;
    m.total_reads = r.u64();
    m.total_writes = r.u64();
    m.channels = static_cast<std::uint32_t>(r.u64());
    m.banks_total = static_cast<std::uint32_t>(r.u64());
    m.row_hits = r.u64();
    m.row_misses = r.u64();
    m.max_line_writes = r.u64();
    m.unique_lines_written = r.u64();
    m.avg_power_per_channel_w = r.f64();
    m.avg_bandwidth_per_bank_mbs = r.f64();
    m.avg_latency_cycles = r.f64();
    m.avg_total_latency_cycles = r.f64();
    m.avg_reads_per_channel = r.f64();
    m.avg_writes_per_channel = r.f64();
    m.execution_seconds = r.f64();
    m.dynamic_energy_j = r.f64();
    m.background_energy_j = r.f64();
    const std::size_t num_epochs = r.u64();
    m.epochs.resize(num_epochs);
    for (auto& epoch : m.epochs) {
      epoch.epoch = r.u64();
      epoch.reads = r.u64();
      epoch.writes = r.u64();
      epoch.avg_total_latency_cycles = r.f64();
      epoch.bandwidth_mbs = r.f64();
    }
    // Optional trailer: confidence intervals of a chunk-sampled row.
    std::string trailer;
    if (is >> trailer) {
      GMD_REQUIRE_AS(ErrorCode::kIo, trailer == "ci",
                     "corrupt sweep journal '" << path_ << "': unexpected '"
                                               << trailer << "' trailer");
      row.metric_ci.resize(r.u64());
      for (auto& interval : row.metric_ci) {
        interval.lo = r.f64();
        interval.hi = r.f64();
      }
    }
    loaded.emplace_back(index, std::move(row));
  }
  entries_ = std::move(loaded);
  return entries_;
}

void SweepJournal::record(std::size_t index, const SweepRow& row) {
  std::lock_guard<std::mutex> lock(mutex_);
  entries_.emplace_back(index, row);
  flush_locked();
}

std::size_t SweepJournal::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

void SweepJournal::flush_locked() {
  atomic_write_file(path_, [this](std::ostream& out) {
    out << kMagic << ' ' << kVersion << " trace=" << hex16(key_.trace_hash)
        << " points=" << hex16(key_.points_hash)
        << " count=" << key_.num_points;
    if (!owner_.empty()) out << " owner=" << owner_;
    out << '\n';
    for (const auto& [index, row] : entries_) {
      if (!row.ok()) {
        out << "fail " << index << ' ' << row.attempts << ' '
            << static_cast<int>(row.error_code) << ' '
            << static_cast<int>(row.outcome);
        if (!row.error.empty()) out << ' ' << row.error;
        out << '\n';
        continue;
      }
      const memsim::MemoryMetrics& m = row.metrics;
      out << "row " << index << ' ' << row.attempts << ' ' << m.total_reads
          << ' ' << m.total_writes << ' ' << m.channels << ' '
          << m.banks_total << ' ' << m.row_hits << ' ' << m.row_misses << ' '
          << m.max_line_writes << ' ' << m.unique_lines_written;
      put_double(out, m.avg_power_per_channel_w);
      put_double(out, m.avg_bandwidth_per_bank_mbs);
      put_double(out, m.avg_latency_cycles);
      put_double(out, m.avg_total_latency_cycles);
      put_double(out, m.avg_reads_per_channel);
      put_double(out, m.avg_writes_per_channel);
      put_double(out, m.execution_seconds);
      put_double(out, m.dynamic_energy_j);
      put_double(out, m.background_energy_j);
      out << ' ' << m.epochs.size();
      for (const auto& epoch : m.epochs) {
        out << ' ' << epoch.epoch << ' ' << epoch.reads << ' '
            << epoch.writes;
        put_double(out, epoch.avg_total_latency_cycles);
        put_double(out, epoch.bandwidth_mbs);
      }
      if (!row.metric_ci.empty()) {
        out << " ci " << row.metric_ci.size();
        for (const auto& interval : row.metric_ci) {
          put_double(out, interval.lo);
          put_double(out, interval.hi);
        }
      }
      out << '\n';
    }
  });
}

JournalScan scan_journal(const std::string& path, const JournalKey& key) {
  JournalScan scan;
  SweepJournal journal(path, key);
  try {
    scan.rows = journal.load();
  } catch (const Error& e) {
    scan.warning = e.what();
  }
  return scan;
}

}  // namespace gmd::dse
