#include "gmd/trace/formats.hpp"

#include <array>
#include <istream>
#include <ostream>
#include <sstream>

#include "gmd/common/error.hpp"
#include "gmd/common/string_util.hpp"

namespace gmd::trace {

namespace {

std::string hex(std::uint64_t value) {
  std::ostringstream os;
  os << "0x" << std::hex << value;
  return os.str();
}

}  // namespace

// --- gem5 text format --------------------------------------------------

std::string format_gem5_line(const MemoryEvent& event) {
  std::ostringstream os;
  os << event.tick << ": system.physmem: "
     << (event.is_write ? "Write" : "Read") << " of size " << event.size
     << " at address " << hex(event.address);
  return os.str();
}

std::optional<MemoryEvent> parse_gem5_line(std::string_view line) {
  // Expected tokens:
  // <tick>: system.physmem: <Read|Write> of size <N> at address 0x<hex>
  const auto tokens = split_whitespace(line);
  if (tokens.size() != 10) return std::nullopt;
  if (tokens[1] != "system.physmem:") return std::nullopt;
  if (tokens[3] != "of" || tokens[4] != "size" || tokens[6] != "at" ||
      tokens[7] != "address") {
    return std::nullopt;
  }

  auto tick_text = tokens[0];
  if (tick_text.empty() || tick_text.back() != ':') return std::nullopt;
  tick_text.remove_suffix(1);
  const auto tick = parse_uint(tick_text);
  if (!tick) return std::nullopt;

  bool is_write = false;
  if (tokens[2] == "Write") {
    is_write = true;
  } else if (tokens[2] != "Read") {
    return std::nullopt;
  }

  const auto size = parse_uint(tokens[5]);
  const auto address = parse_uint(tokens[8]);
  if (!size || !address || *size == 0) return std::nullopt;
  // tokens[9] is the trailing '.' gem5 prints; accept anything.

  return MemoryEvent{*tick, *address, static_cast<std::uint32_t>(*size),
                     is_write};
}

void Gem5TraceWriter::on_event(const MemoryEvent& event) {
  os_ << format_gem5_line(event) << " .\n";
  ++lines_;
}

std::vector<MemoryEvent> read_gem5_trace(std::istream& is,
                                         std::uint64_t* skipped) {
  std::vector<MemoryEvent> events;
  std::uint64_t skip_count = 0;
  std::string line;
  while (std::getline(is, line)) {
    if (trim(line).empty()) continue;
    if (auto event = parse_gem5_line(line)) {
      events.push_back(*event);
    } else {
      ++skip_count;
    }
  }
  if (skipped) *skipped = skip_count;
  return events;
}

// --- NVMain text format --------------------------------------------------

std::string format_nvmain_line(const MemoryEvent& event) {
  // NVMain requests are whole memory words: align the address down so
  // the widened access does not straddle two words on re-read.
  const std::uint64_t aligned =
      event.address / kNvmainWordBytes * kNvmainWordBytes;
  std::ostringstream os;
  os << event.tick << ' ' << (event.is_write ? 'W' : 'R') << ' '
     << hex(aligned) << " 0x0 0";
  return os.str();
}

std::optional<MemoryEvent> parse_nvmain_line(std::string_view line) {
  const auto tokens = split_whitespace(line);
  if (tokens.size() != 4 && tokens.size() != 5) return std::nullopt;
  const auto cycle = parse_uint(tokens[0]);
  if (!cycle) return std::nullopt;
  bool is_write = false;
  if (tokens[1] == "W") {
    is_write = true;
  } else if (tokens[1] != "R") {
    return std::nullopt;
  }
  const auto address = parse_uint(tokens[2]);
  if (!address) return std::nullopt;
  // tokens[3] is the data payload, tokens[4] the optional thread id;
  // both are ignored by the memory model.
  return MemoryEvent{*cycle, *address, kNvmainWordBytes, is_write};
}

void NvmainTraceWriter::on_event(const MemoryEvent& event) {
  os_ << format_nvmain_line(event) << '\n';
  ++lines_;
}

std::vector<MemoryEvent> read_nvmain_trace(std::istream& is) {
  std::vector<MemoryEvent> events;
  std::string line;
  std::uint64_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (trim(line).empty()) continue;
    auto event = parse_nvmain_line(line);
    GMD_REQUIRE(event.has_value(),
                "NVMain trace line " << line_no << " is malformed: '" << line
                                     << "'");
    events.push_back(*event);
  }
  return events;
}

// --- binary format -----------------------------------------------------

namespace {

constexpr std::array<char, 8> kBinaryMagic = {'G', 'M', 'D', 'T',
                                              'R', 'C', '0', '1'};

struct PackedEvent {
  std::uint64_t tick;
  std::uint64_t address;
  std::uint32_t size;
  std::uint32_t is_write;
};
static_assert(sizeof(PackedEvent) == 24);

}  // namespace

void write_binary_trace(std::ostream& os,
                        std::span<const MemoryEvent> events) {
  os.write(kBinaryMagic.data(), kBinaryMagic.size());
  const std::uint64_t count = events.size();
  os.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const MemoryEvent& event : events) {
    const PackedEvent packed{event.tick, event.address, event.size,
                             event.is_write ? 1u : 0u};
    os.write(reinterpret_cast<const char*>(&packed), sizeof(packed));
  }
  GMD_REQUIRE(os.good(), "binary trace write failed");
}

std::vector<MemoryEvent> read_binary_trace(std::istream& is) {
  std::array<char, 8> magic{};
  is.read(magic.data(), magic.size());
  GMD_REQUIRE_AS(ErrorCode::kTrace, is.good() && magic == kBinaryMagic,
                 "not a graphmemdse binary trace (bad magic)");
  std::uint64_t count = 0;
  is.read(reinterpret_cast<char*>(&count), sizeof(count));
  GMD_REQUIRE_AS(ErrorCode::kIo, is.good(),
                 "binary trace truncated (missing count)");
  // Validate the claimed count against the bytes actually present
  // before reserving: a corrupt or truncated header must produce a
  // typed I/O error, not a bad_alloc from an absurd reserve.
  const std::istream::pos_type body_start = is.tellg();
  is.seekg(0, std::ios::end);
  const std::istream::pos_type stream_end = is.tellg();
  is.seekg(body_start);
  if (body_start != std::istream::pos_type(-1) &&
      stream_end != std::istream::pos_type(-1)) {
    const auto available =
        static_cast<std::uint64_t>(stream_end - body_start);
    GMD_REQUIRE_AS(ErrorCode::kIo, count <= available / sizeof(PackedEvent),
                   "binary trace header claims "
                       << count << " events but only " << available
                       << " payload bytes follow (truncated or corrupt)");
  }
  std::vector<MemoryEvent> events;
  events.reserve(count);
  for (std::uint64_t i = 0; i < count; ++i) {
    PackedEvent packed{};
    is.read(reinterpret_cast<char*>(&packed), sizeof(packed));
    GMD_REQUIRE_AS(ErrorCode::kIo, is.good(),
                   "binary trace truncated at record " << i << " of "
                                                       << count);
    events.push_back(MemoryEvent{packed.tick, packed.address, packed.size,
                                 packed.is_write != 0});
  }
  return events;
}

}  // namespace gmd::trace
