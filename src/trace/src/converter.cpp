#include "gmd/trace/converter.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>
#include <string_view>
#include <utility>
#include <vector>

#include "gmd/common/error.hpp"
#include "gmd/common/thread_pool.hpp"
#include "gmd/trace/formats.hpp"
#include "gmd/tracestore/reader.hpp"
#include "gmd/tracestore/writer.hpp"

namespace gmd::trace {

namespace {

/// Per-chunk conversion result, concatenated in chunk order.  Either
/// `text` (NVMain output) or `events` (GMDT output) is populated,
/// depending on the target format.
struct ChunkOutput {
  std::string text;
  std::vector<MemoryEvent> events;
  std::uint64_t lines_in = 0;
  std::uint64_t events_out = 0;
  std::uint64_t skipped = 0;
  std::vector<std::string> quarantined;  ///< First unparseable lines.
};

enum class OutputKind { kNvmainText, kEvents };

ChunkOutput convert_chunk(std::string_view chunk, OutputKind kind,
                          std::size_t quarantine_limit) {
  ChunkOutput out;
  if (kind == OutputKind::kNvmainText) out.text.reserve(chunk.size() / 2);
  std::size_t pos = 0;
  while (pos < chunk.size()) {
    std::size_t eol = chunk.find('\n', pos);
    if (eol == std::string_view::npos) eol = chunk.size();
    const std::string_view line = chunk.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    ++out.lines_in;
    if (const auto event = parse_gem5_line(line)) {
      if (kind == OutputKind::kNvmainText) {
        out.text += format_nvmain_line(*event);
        out.text += '\n';
      } else {
        out.events.push_back(to_nvmain_event(*event));
      }
      ++out.events_out;
    } else {
      ++out.skipped;
      if (out.quarantined.size() < quarantine_limit) {
        out.quarantined.emplace_back(line);
      }
    }
  }
  return out;
}

std::string load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GMD_REQUIRE(in.good(), "cannot open input trace '" << path << "'");
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  GMD_REQUIRE(!in.bad(), "read of '" << path << "' failed");
  return content;
}

/// Newline-aligned [start, end) chunk boundaries over `content`.
std::vector<std::pair<std::size_t, std::size_t>> chunk_boundaries(
    const std::string& content, std::size_t chunk_bytes) {
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  std::size_t start = 0;
  while (start < content.size()) {
    std::size_t end = std::min(content.size(), start + chunk_bytes);
    if (end < content.size()) {
      const std::size_t newline = content.find('\n', end);
      end = newline == std::string::npos ? content.size() : newline + 1;
    }
    chunks.emplace_back(start, end);
    start = end;
  }
  return chunks;
}

/// Parses a gem5 text file in parallel chunks and returns the per-chunk
/// outputs plus the tallied stats, enforcing the malformed-line budget.
/// Throws before anything is written when the budget is exceeded.
std::vector<ChunkOutput> parse_gem5_chunks(const std::string& input_path,
                                           const std::string& content,
                                           OutputKind kind,
                                           const ConvertOptions& options,
                                           ConvertStats& stats) {
  const auto chunks = chunk_boundaries(content, options.chunk_bytes);
  std::vector<ChunkOutput> outputs(chunks.size());
  ThreadPool pool(options.num_threads);
  pool.parallel_for(0, chunks.size(), [&](std::size_t i) {
    const auto [lo, hi] = chunks[i];
    outputs[i] = convert_chunk(std::string_view(content).substr(lo, hi - lo),
                               kind, options.quarantine_limit);
  });

  // Tally first (quarantined lines in input order), and enforce the
  // malformed-line budget before any output is written.
  stats.chunks = chunks.size();
  for (const ChunkOutput& chunk : outputs) {
    stats.lines_in += chunk.lines_in;
    stats.events_out += chunk.events_out;
    stats.lines_skipped += chunk.skipped;
    for (const std::string& line : chunk.quarantined) {
      if (stats.quarantined.size() >= options.quarantine_limit) break;
      stats.quarantined.push_back(line);
    }
  }
  if (stats.lines_skipped > options.max_skipped_lines) {
    std::ostringstream os;
    os << "trace '" << input_path << "': " << summarize_skipped(stats, options);
    if (!stats.quarantined.empty()) {
      os << "; first quarantined line"
         << (stats.quarantined.size() > 1 ? "s" : "") << ":";
      for (const std::string& line : stats.quarantined) {
        os << "\n  | " << line;
      }
    }
    throw Error(ErrorCode::kTrace, os.str());
  }
  return outputs;
}

}  // namespace

std::string summarize_skipped(const ConvertStats& stats,
                              const ConvertOptions& options) {
  std::ostringstream os;
  os << stats.lines_skipped << " of " << stats.lines_in
     << " lines failed to parse (budget ";
  if (options.max_skipped_lines ==
      std::numeric_limits<std::uint64_t>::max()) {
    os << "unlimited";
  } else {
    os << options.max_skipped_lines;
  }
  os << ")";
  return os.str();
}

ConvertStats convert_gem5_to_nvmain(const std::string& input_path,
                                    const std::string& output_path,
                                    const ConvertOptions& options) {
  GMD_REQUIRE(options.chunk_bytes >= 1, "chunk_bytes must be >= 1");

  // Read the input once; chunking happens on the in-memory buffer so
  // chunk boundaries can be snapped to newlines cheaply.
  const std::string content = load_file(input_path);
  ConvertStats stats;
  const auto outputs = parse_gem5_chunks(input_path, content,
                                         OutputKind::kNvmainText, options,
                                         stats);

  std::ofstream out(output_path, std::ios::binary);
  GMD_REQUIRE_AS(ErrorCode::kIo, out.good(),
                 "cannot open output trace '" << output_path << "'");
  for (const ChunkOutput& chunk : outputs) {
    out.write(chunk.text.data(),
              static_cast<std::streamsize>(chunk.text.size()));
  }
  GMD_REQUIRE_AS(ErrorCode::kIo, out.good(),
                 "write of '" << output_path << "' failed");
  return stats;
}

ConvertStats convert_gem5_to_gmdt(const std::string& input_path,
                                  const std::string& output_path,
                                  const ConvertOptions& options) {
  GMD_REQUIRE(options.chunk_bytes >= 1, "chunk_bytes must be >= 1");
  GMD_REQUIRE(options.gmdt_chunk_events >= 1,
              "gmdt_chunk_events must be >= 1");

  const std::string content = load_file(input_path);
  ConvertStats stats;
  const auto outputs = parse_gem5_chunks(input_path, content,
                                         OutputKind::kEvents, options, stats);

  tracestore::TraceStoreWriterOptions store_options;
  store_options.events_per_chunk = options.gmdt_chunk_events;
  tracestore::TraceStoreWriter writer(output_path, store_options);
  for (const ChunkOutput& chunk : outputs) {
    writer.append(chunk.events);
  }
  writer.close();
  return stats;
}

ConvertStats convert_gmdt_to_nvmain(const std::string& input_path,
                                    const std::string& output_path,
                                    const ConvertOptions& options) {
  tracestore::TraceStoreReader reader(input_path);
  const std::size_t num_chunks = reader.num_chunks();

  // Decode and format chunks in parallel, concatenate in order.
  std::vector<std::string> texts(num_chunks);
  ThreadPool pool(options.num_threads);
  pool.parallel_for(0, num_chunks, [&](std::size_t i) {
    std::vector<MemoryEvent> events;
    reader.decode_chunk(i, events);
    std::string& text = texts[i];
    text.reserve(events.size() * 32);
    for (const MemoryEvent& event : events) {
      text += format_nvmain_line(event);
      text += '\n';
    }
  });

  std::ofstream out(output_path, std::ios::binary);
  GMD_REQUIRE_AS(ErrorCode::kIo, out.good(),
                 "cannot open output trace '" << output_path << "'");
  for (const std::string& text : texts) {
    out.write(text.data(), static_cast<std::streamsize>(text.size()));
  }
  GMD_REQUIRE_AS(ErrorCode::kIo, out.good(),
                 "write of '" << output_path << "' failed");

  ConvertStats stats;
  stats.lines_in = reader.num_events();
  stats.events_out = reader.num_events();
  stats.chunks = num_chunks;
  return stats;
}

}  // namespace gmd::trace
