#include "gmd/trace/converter.hpp"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>
#include <string_view>
#include <vector>

#include "gmd/common/error.hpp"
#include "gmd/common/thread_pool.hpp"
#include "gmd/trace/formats.hpp"

namespace gmd::trace {

namespace {

/// Per-chunk conversion result, concatenated in chunk order.
struct ChunkOutput {
  std::string text;
  std::uint64_t lines_in = 0;
  std::uint64_t events_out = 0;
  std::uint64_t skipped = 0;
  std::vector<std::string> quarantined;  ///< First unparseable lines.
};

ChunkOutput convert_chunk(std::string_view chunk,
                          std::size_t quarantine_limit) {
  ChunkOutput out;
  out.text.reserve(chunk.size() / 2);
  std::size_t pos = 0;
  while (pos < chunk.size()) {
    std::size_t eol = chunk.find('\n', pos);
    if (eol == std::string_view::npos) eol = chunk.size();
    const std::string_view line = chunk.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty()) continue;
    ++out.lines_in;
    if (const auto event = parse_gem5_line(line)) {
      out.text += format_nvmain_line(*event);
      out.text += '\n';
      ++out.events_out;
    } else {
      ++out.skipped;
      if (out.quarantined.size() < quarantine_limit) {
        out.quarantined.emplace_back(line);
      }
    }
  }
  return out;
}

}  // namespace

ConvertStats convert_gem5_to_nvmain(const std::string& input_path,
                                    const std::string& output_path,
                                    const ConvertOptions& options) {
  GMD_REQUIRE(options.chunk_bytes >= 1, "chunk_bytes must be >= 1");

  // Read the input once; chunking happens on the in-memory buffer so
  // chunk boundaries can be snapped to newlines cheaply.
  std::ifstream in(input_path, std::ios::binary);
  GMD_REQUIRE(in.good(), "cannot open input trace '" << input_path << "'");
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  GMD_REQUIRE(!in.bad(), "read of '" << input_path << "' failed");

  // Compute newline-aligned chunk boundaries.
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  std::size_t start = 0;
  while (start < content.size()) {
    std::size_t end = std::min(content.size(), start + options.chunk_bytes);
    if (end < content.size()) {
      const std::size_t newline = content.find('\n', end);
      end = newline == std::string::npos ? content.size() : newline + 1;
    }
    chunks.emplace_back(start, end);
    start = end;
  }

  std::vector<ChunkOutput> outputs(chunks.size());
  ThreadPool pool(options.num_threads);
  pool.parallel_for(0, chunks.size(), [&](std::size_t i) {
    const auto [lo, hi] = chunks[i];
    outputs[i] = convert_chunk(std::string_view(content).substr(lo, hi - lo),
                               options.quarantine_limit);
  });

  // Tally first (quarantined lines in input order), and enforce the
  // malformed-line budget before any output is written.
  ConvertStats stats;
  stats.chunks = chunks.size();
  for (const ChunkOutput& chunk : outputs) {
    stats.lines_in += chunk.lines_in;
    stats.events_out += chunk.events_out;
    stats.lines_skipped += chunk.skipped;
    for (const std::string& line : chunk.quarantined) {
      if (stats.quarantined.size() >= options.quarantine_limit) break;
      stats.quarantined.push_back(line);
    }
  }
  if (stats.lines_skipped > options.max_skipped_lines) {
    std::ostringstream os;
    os << "trace '" << input_path << "': " << stats.lines_skipped << " of "
       << stats.lines_in << " lines failed to parse (budget "
       << options.max_skipped_lines << ")";
    if (!stats.quarantined.empty()) {
      os << "; first quarantined line" << (stats.quarantined.size() > 1 ? "s" : "")
         << ":";
      for (const std::string& line : stats.quarantined) {
        os << "\n  | " << line;
      }
    }
    throw Error(ErrorCode::kTrace, os.str());
  }

  std::ofstream out(output_path, std::ios::binary);
  GMD_REQUIRE_AS(ErrorCode::kIo, out.good(),
                 "cannot open output trace '" << output_path << "'");
  for (const ChunkOutput& chunk : outputs) {
    out.write(chunk.text.data(),
              static_cast<std::streamsize>(chunk.text.size()));
  }
  GMD_REQUIRE_AS(ErrorCode::kIo, out.good(),
                 "write of '" << output_path << "' failed");
  return stats;
}

}  // namespace gmd::trace
