#include "gmd/trace/stats.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_set>

namespace gmd::trace {

TraceStats compute_stats(std::span<const cpusim::MemoryEvent> events) {
  TraceStats stats;
  stats.events = events.size();
  if (events.empty()) return stats;

  stats.min_address = events.front().address;
  stats.max_address = events.front().address;
  stats.first_tick = events.front().tick;
  stats.last_tick = events.front().tick;

  std::unordered_set<std::uint64_t> lines;
  lines.reserve(events.size() / 4);
  for (const auto& event : events) {
    if (event.is_write) {
      ++stats.writes;
      stats.bytes_written += event.size;
    } else {
      ++stats.reads;
      stats.bytes_read += event.size;
    }
    stats.min_address = std::min(stats.min_address, event.address);
    stats.max_address =
        std::max(stats.max_address, event.address + event.size - 1);
    stats.first_tick = std::min(stats.first_tick, event.tick);
    stats.last_tick = std::max(stats.last_tick, event.tick);
    lines.insert(event.address >> 6);
  }
  stats.unique_lines = lines.size();
  return stats;
}

std::string describe(const TraceStats& stats) {
  std::ostringstream os;
  os << "events:        " << stats.events << " (" << stats.reads << " reads, "
     << stats.writes << " writes)\n"
     << "bytes:         " << stats.bytes_read << " read, "
     << stats.bytes_written << " written\n"
     << "address range: [0x" << std::hex << stats.min_address << ", 0x"
     << stats.max_address << std::dec << "] ("
     << stats.footprint_bytes() << " bytes)\n"
     << "unique lines:  " << stats.unique_lines << " (64B)\n"
     << "tick range:    [" << stats.first_tick << ", " << stats.last_tick
     << "]\n";
  return os.str();
}

}  // namespace gmd::trace
