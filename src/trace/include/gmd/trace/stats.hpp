#pragma once

/// \file stats.hpp
/// Descriptive statistics over a memory trace: what the workload asks
/// of the memory system, independent of any memory configuration.

#include <cstdint>
#include <span>
#include <string>

#include "gmd/cpusim/memory_event.hpp"

namespace gmd::trace {

struct TraceStats {
  std::uint64_t events = 0;
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t min_address = 0;
  std::uint64_t max_address = 0;  ///< Highest byte touched (inclusive).
  std::uint64_t first_tick = 0;
  std::uint64_t last_tick = 0;
  std::uint64_t unique_lines = 0;  ///< Distinct 64-byte lines touched.

  double read_fraction() const {
    return events ? static_cast<double>(reads) / static_cast<double>(events)
                  : 0.0;
  }
  /// Address footprint in bytes (max - min + size of last access).
  std::uint64_t footprint_bytes() const {
    return events ? max_address - min_address + 1 : 0;
  }
};

/// Single pass over the trace.  `events` need not be tick-sorted.
TraceStats compute_stats(std::span<const cpusim::MemoryEvent> events);

/// Human-readable multi-line summary.
std::string describe(const TraceStats& stats);

}  // namespace gmd::trace
