#pragma once

/// \file converter.hpp
/// Parallel gem5 → NVMain trace conversion.
///
/// The paper found sequential processing of a 91.5M-line gem5 trace too
/// slow and built a parallel Python converter: split the file into
/// user-sized chunks, hand chunk start offsets to worker processes,
/// have each worker buffer its output lines, then concatenate buffers
/// in order.  This is the same design with std::thread workers.

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace gmd::trace {

struct ConvertOptions {
  std::size_t num_threads = 0;          ///< 0: hardware concurrency.
  std::size_t chunk_bytes = 4u << 20;   ///< Target bytes per chunk.
  /// Events per GMDT chunk when the output is a trace store
  /// (convert_gem5_to_gmdt); matches tracestore::kDefaultEventsPerChunk.
  std::size_t gmdt_chunk_events = std::size_t{1} << 16;

  /// Malformed-line budget for the lenient path: when more than this
  /// many input lines fail to parse, the conversion fails with a
  /// trace-coded gmd::Error quoting the first quarantined lines instead
  /// of silently dropping an arbitrarily corrupt input.  gem5 traces
  /// legitimately interleave non-memory records, so the default is
  /// unlimited; 0 is strict mode (every line must parse).
  std::uint64_t max_skipped_lines = std::numeric_limits<std::uint64_t>::max();
  /// How many quarantined (unparseable) lines to retain for error
  /// reporting and ConvertStats::quarantined.
  std::size_t quarantine_limit = 5;
};

struct ConvertStats {
  std::uint64_t lines_in = 0;       ///< Input lines examined.
  std::uint64_t events_out = 0;     ///< NVMain lines written.
  std::uint64_t lines_skipped = 0;  ///< Non-memory / malformed lines.
  std::size_t chunks = 0;           ///< Chunks processed.
  /// First quarantine_limit unparseable lines, in input order.
  std::vector<std::string> quarantined;
};

/// Converts a gem5 text trace file into NVMain trace format.
/// Chunk boundaries are snapped to newlines so no line is split; output
/// order equals input order.  Throws gmd::Error on I/O failure (kIo)
/// and when the malformed-line budget is exceeded (kTrace); the output
/// file is not written in the latter case.
ConvertStats convert_gem5_to_nvmain(const std::string& input_path,
                                    const std::string& output_path,
                                    const ConvertOptions& options = {});

/// Converts a gem5 text trace straight into a GMDT trace store, with
/// the same parallel newline-snapped chunking and malformed-line budget
/// as convert_gem5_to_nvmain.  Events carry NVMain request semantics
/// (to_nvmain_event), so reading the store back is byte-for-byte equal
/// to reading the NVMain text the classic converter would have written.
ConvertStats convert_gem5_to_gmdt(const std::string& input_path,
                                  const std::string& output_path,
                                  const ConvertOptions& options = {});

/// Expands a GMDT trace store into NVMain text (chunks formatted in
/// parallel, concatenated in order).  ConvertStats::lines_in counts the
/// store's events.
ConvertStats convert_gmdt_to_nvmain(const std::string& input_path,
                                    const std::string& output_path,
                                    const ConvertOptions& options = {});

/// One-line skipped/quarantined summary, e.g.
///   "3 of 100 lines failed to parse (budget unlimited)".
/// The converter's budget-exceeded error and every tool that reports
/// conversion stats use this same wording, so logs and errors agree.
std::string summarize_skipped(const ConvertStats& stats,
                              const ConvertOptions& options);

}  // namespace gmd::trace
