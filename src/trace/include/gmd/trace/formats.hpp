#pragma once

/// \file formats.hpp
/// Trace serialization formats.
///
/// * gem5 text — the shape of gem5's `MemoryAccess` debug trace:
///     `<tick>: system.physmem: <Read|Write> of size <N> at address 0x<hex>`
/// * NVMain text — NVMain's trace-reader input:
///     `<cycle> <R|W> 0x<address> 0x<data> <threadId>`
///   NVMain requests are implicitly one memory word (64 bytes here), so
///   the size field is dropped on conversion, exactly as the paper's
///   converter drops it.
/// * binary — packed little-endian records for fast storage.

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "gmd/cpusim/memory_event.hpp"

namespace gmd::trace {

using cpusim::MemoryEvent;

/// Access size assumed when a format (NVMain) does not carry one.
inline constexpr std::uint32_t kNvmainWordBytes = 64;

/// Applies NVMain's request semantics to an event: the address is
/// aligned down to the memory word and the size widened to one word —
/// exactly what a format_nvmain_line/parse_nvmain_line round trip
/// produces.  The GMDT converter uses this so a store packed from a
/// gem5 trace holds byte-for-byte the events an NVMain text round trip
/// would yield.
inline MemoryEvent to_nvmain_event(const MemoryEvent& event) {
  return MemoryEvent{event.tick,
                     event.address / kNvmainWordBytes * kNvmainWordBytes,
                     kNvmainWordBytes, event.is_write};
}

// --- gem5 text format ------------------------------------------------

std::string format_gem5_line(const MemoryEvent& event);

/// Parses one gem5 trace line.  Returns nullopt for non-memory lines
/// (gem5 traces interleave other debug output; the converter skips them).
std::optional<MemoryEvent> parse_gem5_line(std::string_view line);

/// Streaming writer usable as a CPU trace sink.
class Gem5TraceWriter final : public cpusim::TraceSink {
 public:
  explicit Gem5TraceWriter(std::ostream& os) : os_(os) {}
  void on_event(const MemoryEvent& event) override;
  std::uint64_t lines_written() const { return lines_; }

 private:
  std::ostream& os_;
  std::uint64_t lines_ = 0;
};

/// Reads a whole gem5 trace; silently skips unparseable lines and
/// reports how many were skipped through `skipped` when non-null.
std::vector<MemoryEvent> read_gem5_trace(std::istream& is,
                                         std::uint64_t* skipped = nullptr);

// --- NVMain text format ----------------------------------------------

std::string format_nvmain_line(const MemoryEvent& event);

/// Parses one NVMain trace line; nullopt on malformed input.
std::optional<MemoryEvent> parse_nvmain_line(std::string_view line);

class NvmainTraceWriter final : public cpusim::TraceSink {
 public:
  explicit NvmainTraceWriter(std::ostream& os) : os_(os) {}
  void on_event(const MemoryEvent& event) override;
  std::uint64_t lines_written() const { return lines_; }

 private:
  std::ostream& os_;
  std::uint64_t lines_ = 0;
};

std::vector<MemoryEvent> read_nvmain_trace(std::istream& is);

// --- binary format (legacy) --------------------------------------------
//
// The original magic-tagged packed blob ("GMDTRC01": 8-byte magic, u64
// count, 24-byte fixed records).  Superseded by the GMDT chunk-indexed
// store (gmd/tracestore) for anything new; kept readable so old traces
// can still be inspected and migrated (`trace_tools unpack` accepts
// both).

/// Writes a magic-tagged packed trace (legacy format).
void write_binary_trace(std::ostream& os, std::span<const MemoryEvent> events);

/// Reads a packed legacy trace.  Throws gmd::Error(kTrace) on a bad
/// magic and gmd::Error(kIo) on truncation — including a header whose
/// event count exceeds what the stream can possibly hold, which is
/// rejected before any allocation.
std::vector<MemoryEvent> read_binary_trace(std::istream& is);

}  // namespace gmd::trace
