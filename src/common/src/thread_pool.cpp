#include "gmd/common/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <memory>

#include "gmd/common/error.hpp"

namespace gmd {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_available_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::submit(std::function<void()> task) {
  GMD_REQUIRE(task != nullptr, "cannot submit a null task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    GMD_REQUIRE(!stopping_, "submit on a stopping ThreadPool");
    queue_.push_back(std::move(task));
    ++in_flight_;
  }
  work_available_.notify_one();
}

void ThreadPool::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  all_done_.wait(lock, [this] { return in_flight_ == 0; });
  if (!errors_.empty()) {
    last_errors_ = std::move(errors_);
    errors_.clear();
    const std::exception_ptr first = last_errors_.front();
    lock.unlock();
    std::rethrow_exception(first);
  }
}

std::vector<std::exception_ptr> ThreadPool::collected_errors() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_errors_;
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn,
                              std::size_t grain) {
  if (begin >= end) return;
  GMD_REQUIRE(grain >= 1, "parallel_for grain must be >= 1");
  const std::size_t total = end - begin;
  const std::size_t tasks =
      std::min(workers_.size(), (total + grain - 1) / grain);
  // One claiming loop per worker; batches of `grain` indices are handed
  // out from a shared counter so a worker that draws expensive indices
  // simply claims fewer batches.
  const auto next = std::make_shared<std::atomic<std::size_t>>(0);
  for (std::size_t t = 0; t < tasks; ++t) {
    submit([next, begin, total, grain, &fn] {
      while (true) {
        const std::size_t lo =
            next->fetch_add(grain, std::memory_order_relaxed);
        if (lo >= total) return;
        const std::size_t hi = std::min(total, lo + grain);
        for (std::size_t i = lo; i < hi; ++i) fn(begin + i);
      }
    });
  }
  wait();
}

void ThreadPool::worker_loop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_available_.wait(lock,
                           [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    std::exception_ptr error;
    try {
      task();
    } catch (...) {
      error = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (error) errors_.push_back(error);
      --in_flight_;
      if (in_flight_ == 0) all_done_.notify_all();
    }
  }
}

}  // namespace gmd
