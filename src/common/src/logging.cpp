#include "gmd/common/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>
#include <utility>

namespace gmd::log {

namespace {

std::atomic<Level> g_level{Level::kInfo};
std::mutex g_sink_mutex;
std::function<void(Level, std::string_view)> g_sink;  // guarded by g_sink_mutex

void default_sink(Level level, std::string_view message) {
  std::cerr << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace

std::string_view level_name(Level level) {
  switch (level) {
    case Level::kDebug:
      return "DEBUG";
    case Level::kInfo:
      return "INFO";
    case Level::kWarn:
      return "WARN";
    case Level::kError:
      return "ERROR";
    case Level::kOff:
      return "OFF";
  }
  return "?";
}

void set_level(Level level) { g_level.store(level, std::memory_order_relaxed); }

Level level() { return g_level.load(std::memory_order_relaxed); }

void set_sink(std::function<void(Level, std::string_view)> sink) {
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  g_sink = std::move(sink);
}

void write(Level level, std::string_view message) {
  if (static_cast<int>(level) < static_cast<int>(g_level.load())) return;
  std::lock_guard<std::mutex> lock(g_sink_mutex);
  if (g_sink) {
    g_sink(level, message);
  } else {
    default_sink(level, message);
  }
}

}  // namespace gmd::log
