#include "gmd/common/string_util.hpp"

#include <cctype>
#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <sstream>

namespace gmd {

namespace {

bool is_space(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::string_view trim(std::string_view s) {
  std::size_t begin = 0;
  while (begin < s.size() && is_space(s[begin])) ++begin;
  std::size_t end = s.size();
  while (end > begin && is_space(s[end - 1])) --end;
  return s.substr(begin, end - begin);
}

std::vector<std::string_view> split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string_view> split_whitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_space(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_space(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::optional<std::int64_t> parse_int(std::string_view s) {
  s = trim(s);
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_uint(std::string_view s) {
  s = trim(s);
  std::uint64_t value = 0;
  int base = 10;
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    s.remove_prefix(2);
  }
  const auto [ptr, ec] =
      std::from_chars(s.data(), s.data() + s.size(), value, base);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  // std::from_chars<double> is available in libstdc++ 11+, but go through
  // strtod for locale-independent behaviour with a bounded copy.
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return std::nullopt;
  return value;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.substr(0, prefix.size()) == prefix;
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out)
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string join(const std::vector<std::string>& items,
                 std::string_view separator) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i) out += separator;
    out += items[i];
  }
  return out;
}

std::string format_fixed(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(digits);
  os << value;
  return os.str();
}

std::string format_sci(double value, int digits) {
  std::ostringstream os;
  os.setf(std::ios::scientific);
  os.precision(digits);
  os << value;
  return os.str();
}

}  // namespace gmd
