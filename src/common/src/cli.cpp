#include "gmd/common/cli.hpp"

#include <iostream>
#include <sstream>

#include "gmd/common/error.hpp"
#include "gmd/common/string_util.hpp"

namespace gmd {

CliParser::CliParser(std::string program, std::string summary)
    : program_(std::move(program)), summary_(std::move(summary)) {}

CliParser& CliParser::add_option(const std::string& name,
                                 const std::string& default_value,
                                 const std::string& help) {
  options_[name] = Option{default_value, help, /*is_flag=*/false};
  return *this;
}

CliParser& CliParser::add_flag(const std::string& name,
                               const std::string& help) {
  options_[name] = Option{"false", help, /*is_flag=*/true};
  return *this;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      return false;
    }
    if (!starts_with(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string name = arg.substr(2);
    std::string value;
    bool has_value = false;
    if (const auto eq = name.find('='); eq != std::string::npos) {
      value = name.substr(eq + 1);
      name = name.substr(0, eq);
      has_value = true;
    }
    const auto it = options_.find(name);
    GMD_REQUIRE(it != options_.end(), "unknown option --" << name);
    if (it->second.is_flag) {
      GMD_REQUIRE(!has_value || value == "true" || value == "false",
                  "flag --" << name << " takes no value");
      values_[name] = has_value ? value : "true";
    } else {
      if (!has_value) {
        GMD_REQUIRE(i + 1 < argc, "option --" << name << " needs a value");
        value = argv[++i];
      }
      values_[name] = value;
    }
  }
  return true;
}

const CliParser::Option& CliParser::find(const std::string& name) const {
  const auto it = options_.find(name);
  GMD_REQUIRE(it != options_.end(), "option --" << name << " not declared");
  return it->second;
}

std::string CliParser::get_string(const std::string& name) const {
  const Option& opt = find(name);
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : opt.default_value;
}

std::int64_t CliParser::get_int(const std::string& name) const {
  const std::string text = get_string(name);
  const auto value = parse_int(text);
  GMD_REQUIRE(value.has_value(),
              "option --" << name << ": '" << text << "' is not an integer");
  return *value;
}

double CliParser::get_double(const std::string& name) const {
  const std::string text = get_string(name);
  const auto value = parse_double(text);
  GMD_REQUIRE(value.has_value(),
              "option --" << name << ": '" << text << "' is not a number");
  return *value;
}

bool CliParser::get_flag(const std::string& name) const {
  return get_string(name) == "true";
}

std::string CliParser::usage() const {
  std::ostringstream os;
  os << program_ << " - " << summary_ << "\n\nOptions:\n";
  for (const auto& [name, opt] : options_) {
    os << "  --" << name;
    if (!opt.is_flag) os << " <value>";
    os << "\n      " << opt.help;
    if (!opt.is_flag) os << " (default: " << opt.default_value << ")";
    os << "\n";
  }
  os << "  --help\n      Show this message.\n";
  return os.str();
}

}  // namespace gmd
