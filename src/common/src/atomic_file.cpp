#include "gmd/common/atomic_file.hpp"

#include <cstdio>
#include <filesystem>
#include <system_error>

#include "gmd/common/error.hpp"
#include "gmd/common/faultinject.hpp"
#include "gmd/common/hash.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <unistd.h>
#endif

namespace gmd {

namespace {

/// Best-effort fsync of `path` (and nothing else): crash safety against
/// power loss, not just process death.  Non-POSIX builds skip it — the
/// rename alone still guarantees all-or-nothing against process crashes.
void sync_path(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) return;
  ::fsync(fd);
  ::close(fd);
#else
  (void)path;
#endif
}

/// fsyncs the directory containing `path` so the rename itself is
/// durable (a new directory entry lives in the parent's data blocks).
void sync_parent_dir(const std::string& path) {
#if defined(__unix__) || defined(__APPLE__)
  const std::filesystem::path parent =
      std::filesystem::path(path).parent_path();
  sync_path(parent.empty() ? "." : parent.string());
#else
  (void)path;
#endif
}

}  // namespace

AtomicFileWriter::AtomicFileWriter(std::string path,
                                   std::ios::openmode extra_mode)
    : path_(std::move(path)),
      temp_path_(path_ + ".tmp"),
      out_(temp_path_, std::ios::trunc | extra_mode) {
  GMD_FAULT_POINT("atomic_file.open");
  GMD_REQUIRE_AS(ErrorCode::kIo, out_.good(),
                 "cannot open '" << temp_path_ << "' for writing");
}

AtomicFileWriter::~AtomicFileWriter() {
  if (committed_) return;
  out_.close();
  std::error_code ignored;
  std::filesystem::remove(temp_path_, ignored);
}

void AtomicFileWriter::commit() {
  if (committed_) return;
  if (auto kind = faultinject::fire("atomic_file.commit")) {
    if (*kind == faultinject::FaultKind::kPartialWrite) {
      // Act out a torn write (disk full / crash mid-flush): half the
      // temp file survives, the commit rename never happens, and the
      // target artifact must remain untouched.
      out_.flush();
      out_.close();
      std::error_code ignored;
      const auto size = std::filesystem::file_size(temp_path_, ignored);
      if (!ignored && size > 0) {
        std::filesystem::resize_file(temp_path_, size / 2, ignored);
      }
    }
    faultinject::throw_injected(*kind, "atomic_file.commit");
  }
  out_.flush();
  GMD_REQUIRE_AS(ErrorCode::kIo, out_.good(),
                 "write of '" << temp_path_ << "' failed");
  out_.close();
  GMD_REQUIRE_AS(ErrorCode::kIo, !out_.fail(),
                 "close of '" << temp_path_ << "' failed");
  sync_path(temp_path_);
  std::error_code ec;
  std::filesystem::rename(temp_path_, path_, ec);
  GMD_REQUIRE_AS(ErrorCode::kIo, !ec,
                 "cannot rename '" << temp_path_ << "' over '" << path_
                                   << "': " << ec.message());
  sync_parent_dir(path_);
  committed_ = true;
}

void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& fill,
                       std::ios::openmode extra_mode) {
  AtomicFileWriter writer(path, extra_mode);
  fill(writer.stream());
  writer.commit();
}

void atomic_write_text(const std::string& path, std::string_view content) {
  atomic_write_file(path, [&](std::ostream& os) {
    os.write(content.data(), static_cast<std::streamsize>(content.size()));
  });
}

std::uint64_t fnv1a_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  GMD_REQUIRE_AS(ErrorCode::kIo, in.good(),
                 "cannot read '" << path << "' for checksumming");
  Fnv1a hash;
  char buffer[1 << 16];
  while (in.read(buffer, sizeof buffer) || in.gcount() > 0) {
    hash.mix_bytes(buffer, static_cast<std::size_t>(in.gcount()));
  }
  GMD_REQUIRE_AS(ErrorCode::kIo, in.eof(),
                 "read of '" << path << "' failed mid-checksum");
  return hash.state;
}

bool atomic_rename_claim(const std::string& from, const std::string& to) {
  std::error_code ec;
  std::filesystem::rename(from, to, ec);
  if (!ec) {
    sync_parent_dir(to);
    return true;
  }
  // The source vanishing between scan and rename is the normal lost-race
  // outcome: another claimant's rename consumed it first.  ENOENT with
  // the source still present means the DESTINATION is unreachable (its
  // directory is missing) — a setup bug, not a race, so it throws.
  if (ec == std::errc::no_such_file_or_directory &&
      !std::filesystem::exists(from)) {
    return false;
  }
  GMD_REQUIRE_AS(ErrorCode::kIo, false,
                 "cannot rename '" << from << "' to '" << to
                                   << "': " << ec.message());
  return false;  // unreachable
}

bool remove_file_if_exists(const std::string& path) noexcept {
  std::error_code ec;
  return std::filesystem::remove(path, ec) && !ec;
}

std::size_t remove_stale_temp_files(const std::string& dir) {
  std::error_code ec;
  if (!std::filesystem::is_directory(dir, ec)) return 0;
  std::size_t removed = 0;
  for (std::filesystem::recursive_directory_iterator it(dir, ec), end;
       !ec && it != end; it.increment(ec)) {
    if (!it->is_regular_file(ec)) continue;
    if (it->path().extension() != ".tmp") continue;
    std::error_code remove_ec;
    if (std::filesystem::remove(it->path(), remove_ec)) ++removed;
  }
  return removed;
}

}  // namespace gmd
