#include "gmd/common/csv.hpp"

#include <fstream>
#include <ostream>
#include <sstream>

#include "gmd/common/atomic_file.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/string_util.hpp"

namespace gmd {

CsvTable::CsvTable(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  GMD_REQUIRE(!columns_.empty(), "CsvTable needs at least one column");
}

void CsvTable::add_row(const std::vector<double>& row) {
  GMD_REQUIRE(row.size() == columns_.size(),
              "row size " << row.size() << " != column count "
                          << columns_.size());
  rows_.push_back(row);
}

std::size_t CsvTable::column_index(const std::string& name) const {
  for (std::size_t i = 0; i < columns_.size(); ++i)
    if (columns_[i] == name) return i;
  throw Error("CsvTable: no column named '" + name + "'");
}

bool CsvTable::has_column(const std::string& name) const {
  for (const auto& c : columns_)
    if (c == name) return true;
  return false;
}

double CsvTable::at(std::size_t row, std::size_t col) const {
  GMD_REQUIRE(row < rows_.size(), "row index out of range");
  GMD_REQUIRE(col < columns_.size(), "column index out of range");
  return rows_[row][col];
}

double CsvTable::at(std::size_t row, const std::string& column) const {
  return at(row, column_index(column));
}

const std::vector<double>& CsvTable::row(std::size_t index) const {
  GMD_REQUIRE(index < rows_.size(), "row index out of range");
  return rows_[index];
}

std::vector<double> CsvTable::column(const std::string& name) const {
  const std::size_t idx = column_index(name);
  std::vector<double> out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) out.push_back(r[idx]);
  return out;
}

void CsvTable::write(std::ostream& os) const {
  for (std::size_t i = 0; i < columns_.size(); ++i) {
    if (i) os << ',';
    os << columns_[i];
  }
  os << '\n';
  os.precision(17);
  for (const auto& r : rows_) {
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (i) os << ',';
      os << r[i];
    }
    os << '\n';
  }
}

void CsvTable::save(const std::string& path) const {
  // Temp-then-rename: a crash mid-save leaves the previous CSV (or no
  // file), never a truncated table.
  atomic_write_file(path, [this](std::ostream& os) { write(os); });
}

CsvTable CsvTable::read(std::istream& is) {
  std::string line;
  GMD_REQUIRE(static_cast<bool>(std::getline(is, line)),
              "CSV input is empty (no header)");
  std::vector<std::string> header;
  for (auto field : split(trim(line), ','))
    header.emplace_back(trim(field));
  CsvTable table(std::move(header));

  std::size_t line_no = 1;
  while (std::getline(is, line)) {
    ++line_no;
    const auto trimmed = trim(line);
    if (trimmed.empty()) continue;
    const auto fields = split(trimmed, ',');
    GMD_REQUIRE(fields.size() == table.columns_.size(),
                "CSV line " << line_no << ": expected "
                            << table.columns_.size() << " fields, got "
                            << fields.size());
    std::vector<double> row;
    row.reserve(fields.size());
    for (auto field : fields) {
      const auto value = parse_double(field);
      GMD_REQUIRE(value.has_value(), "CSV line " << line_no
                                                 << ": non-numeric field '"
                                                 << std::string(field) << "'");
      row.push_back(*value);
    }
    table.rows_.push_back(std::move(row));
  }
  return table;
}

CsvTable CsvTable::load(const std::string& path) {
  std::ifstream in(path);
  GMD_REQUIRE(in.good(), "cannot open '" << path << "' for reading");
  return read(in);
}

}  // namespace gmd
