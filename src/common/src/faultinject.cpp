#include "gmd/common/faultinject.hpp"

#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>

#include "gmd/common/hash.hpp"
#include "gmd/common/string_util.hpp"

namespace gmd::faultinject {

namespace detail {
std::atomic<std::size_t> g_armed_sites{0};
}  // namespace detail

namespace {

struct SiteState {
  FaultSpec spec;
  std::uint64_t hits = 0;
  std::uint64_t fires = 0;
  bool armed = false;
};

std::mutex& registry_mutex() {
  static std::mutex m;
  return m;
}

std::map<std::string, SiteState, std::less<>>& registry() {
  static std::map<std::string, SiteState, std::less<>> sites;
  return sites;
}

/// Deterministic per-hit uniform draw in [0, 1): hash (seed, ordinal)
/// so the fire pattern depends only on the spec, never on timing.
double uniform_draw(std::uint64_t seed, std::uint64_t ordinal) {
  Fnv1a h;
  h.mix(seed);
  h.mix(ordinal);
  // 53 mantissa bits of the hash → [0, 1).
  return static_cast<double>(h.state >> 11) * 0x1.0p-53;
}

[[noreturn]] void bad_spec(const std::string& spec, const std::string& why) {
  GMD_REQUIRE_AS(ErrorCode::kConfig, false,
                 "bad fault spec '" << spec << "': " << why);
  std::abort();  // unreachable
}

}  // namespace

std::string_view to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kIo:
      return "io";
    case FaultKind::kInvalidData:
      return "invalid-data";
    case FaultKind::kTimeout:
      return "timeout";
    case FaultKind::kUnavailable:
      return "unavailable";
    case FaultKind::kPartialWrite:
      return "partial-write";
    case FaultKind::kShortRead:
      return "short-read";
  }
  return "?";
}

bool kind_from_string(std::string_view name, FaultKind& out) {
  for (int raw = 0; raw <= static_cast<int>(FaultKind::kShortRead); ++raw) {
    const auto kind = static_cast<FaultKind>(raw);
    if (to_string(kind) == name) {
      out = kind;
      return true;
    }
  }
  return false;
}

ErrorCode error_code_for(FaultKind kind) {
  switch (kind) {
    case FaultKind::kInvalidData:
      return ErrorCode::kInvalidData;
    case FaultKind::kTimeout:
      return ErrorCode::kTimeout;
    case FaultKind::kUnavailable:
      return ErrorCode::kUnavailable;
    case FaultKind::kIo:
    case FaultKind::kPartialWrite:
    case FaultKind::kShortRead:
      return ErrorCode::kIo;
  }
  return ErrorCode::kIo;
}

namespace detail {

std::optional<FaultKind> fire_slow(std::string_view site) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(site);
  if (it == registry().end() || !it->second.armed) return std::nullopt;
  SiteState& state = it->second;
  ++state.hits;
  if (state.hits < state.spec.fail_nth) return std::nullopt;
  if (state.spec.probability < 1.0) {
    const std::uint64_t ordinal = state.hits - state.spec.fail_nth;
    if (uniform_draw(state.spec.seed, ordinal) >= state.spec.probability) {
      return std::nullopt;
    }
  }
  ++state.fires;
  if (state.spec.one_shot) {
    state.armed = false;
    g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
  }
  return state.spec.kind;
}

}  // namespace detail

void throw_injected(FaultKind kind, std::string_view site) {
  std::ostringstream os;
  os << "injected fault at '" << site << "' (" << to_string(kind) << ")";
  throw Error(error_code_for(kind), os.str());
}

void arm(const std::string& site, const FaultSpec& spec) {
  GMD_REQUIRE_AS(ErrorCode::kConfig, !site.empty(),
                 "fault site name must not be empty");
  GMD_REQUIRE_AS(ErrorCode::kConfig, spec.fail_nth >= 1,
                 "fault fail_nth is 1-based; got " << spec.fail_nth);
  GMD_REQUIRE_AS(ErrorCode::kConfig,
                 spec.probability > 0.0 && spec.probability <= 1.0,
                 "fault probability must be in (0, 1]; got "
                     << spec.probability);
  std::lock_guard<std::mutex> lock(registry_mutex());
  SiteState& state = registry()[site];
  if (!state.armed) {
    detail::g_armed_sites.fetch_add(1, std::memory_order_relaxed);
  }
  state = SiteState{};
  state.spec = spec;
  state.armed = true;
}

bool disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(registry_mutex());
  const auto it = registry().find(site);
  if (it == registry().end()) return false;
  if (it->second.armed) {
    detail::g_armed_sites.fetch_sub(1, std::memory_order_relaxed);
  }
  registry().erase(it);
  return true;
}

void clear() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::size_t armed = 0;
  for (const auto& [site, state] : registry()) {
    if (state.armed) ++armed;
  }
  detail::g_armed_sites.fetch_sub(armed, std::memory_order_relaxed);
  registry().clear();
}

std::size_t armed_count() {
  return detail::g_armed_sites.load(std::memory_order_relaxed);
}

std::vector<SiteStatus> status() {
  std::lock_guard<std::mutex> lock(registry_mutex());
  std::vector<SiteStatus> out;
  out.reserve(registry().size());
  for (const auto& [site, state] : registry()) {
    out.push_back(
        SiteStatus{site, state.spec, state.hits, state.fires, state.armed});
  }
  return out;
}

std::size_t arm_from_spec(const std::string& spec) {
  std::size_t armed = 0;
  for (const std::string_view raw_entry : split(spec, ',')) {
    const std::string entry(trim(raw_entry));
    if (entry.empty()) continue;
    const auto eq = entry.find('=');
    if (eq == std::string::npos || eq == 0) {
      bad_spec(entry, "expected site=kind[:opt...]");
    }
    const std::string site(trim(entry.substr(0, eq)));
    const std::string plan = entry.substr(eq + 1);
    const auto parts = split(plan, ':');
    if (parts.empty()) bad_spec(entry, "missing fault kind");
    FaultSpec fault;
    if (!kind_from_string(trim(parts[0]), fault.kind)) {
      bad_spec(entry,
               "unknown fault kind '" + std::string(trim(parts[0])) + "'");
    }
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const std::string part(trim(parts[i]));
      if (part == "oneshot") {
        fault.one_shot = true;
        continue;
      }
      const auto sep = part.find('=');
      if (sep == std::string::npos) {
        bad_spec(entry, "unknown option '" + part + "'");
      }
      const std::string key = part.substr(0, sep);
      const std::string value = part.substr(sep + 1);
      try {
        if (key == "nth") {
          fault.fail_nth = std::stoull(value);
        } else if (key == "p") {
          fault.probability = std::stod(value);
        } else if (key == "seed") {
          fault.seed = std::stoull(value);
        } else {
          bad_spec(entry, "unknown option '" + key + "'");
        }
      } catch (const Error&) {
        throw;
      } catch (const std::exception&) {
        bad_spec(entry, "bad value for '" + key + "': '" + value + "'");
      }
    }
    arm(site, fault);
    ++armed;
  }
  return armed;
}

std::size_t arm_from_env(const char* var) {
  const char* value = std::getenv(var);
  if (value == nullptr || *value == '\0') return 0;
  return arm_from_spec(value);
}

}  // namespace gmd::faultinject
