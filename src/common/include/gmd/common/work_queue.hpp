#pragma once

/// \file work_queue.hpp
/// Bounded, multi-lane blocking queue — the admission-control primitive
/// behind the DSE query service's request scheduler.
///
/// Producers push into a numbered lane; lower lane indices are higher
/// priority and consumers always drain lane 0 before lane 1 (and so
/// on), so interactive work overtakes bulk work that arrived earlier.
/// The queue is bounded across all lanes: when full, try_push reports
/// kFull instead of blocking, which is what lets a service reject with
/// a typed error (ErrorCode::kOverloaded) rather than build an
/// unbounded backlog.  close() starts a graceful drain — no new pushes
/// are admitted, pops keep succeeding until every accepted item is
/// consumed, then return nullopt.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <vector>

#include "gmd/common/error.hpp"

namespace gmd {

template <typename T>
class BoundedPriorityQueue {
 public:
  enum class Push {
    kAccepted,  ///< Item enqueued.
    kFull,      ///< Bound reached; item rejected (admission control).
    kClosed,    ///< Queue closed; item rejected (shutting down).
  };

  /// `capacity` bounds the total queued items across all lanes.
  explicit BoundedPriorityQueue(std::size_t capacity, std::size_t num_lanes = 2)
      : capacity_(capacity), lanes_(num_lanes) {
    GMD_REQUIRE(capacity > 0, "queue capacity must be positive");
    GMD_REQUIRE(num_lanes > 0, "queue must have at least one lane");
  }

  /// Non-blocking push into `lane` (0 = highest priority).
  Push try_push(std::size_t lane, T value) {
    GMD_REQUIRE(lane < lanes_.size(), "lane " << lane << " out of range");
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_) return Push::kClosed;
      if (size_ >= capacity_) return Push::kFull;
      lanes_[lane].push_back(std::move(value));
      ++size_;
    }
    not_empty_.notify_one();
    return Push::kAccepted;
  }

  /// Blocks until an item is available (highest-priority lane first) or
  /// the queue is closed and fully drained (then nullopt).
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [this] { return size_ > 0 || closed_; });
    for (auto& lane : lanes_) {
      if (!lane.empty()) {
        T value = std::move(lane.front());
        lane.pop_front();
        --size_;
        return value;
      }
    }
    return std::nullopt;  // closed and drained
  }

  /// Closes admission; blocked pops drain the remaining items and then
  /// return nullopt.  Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_empty_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return size_;
  }

  std::size_t capacity() const { return capacity_; }
  std::size_t num_lanes() const { return lanes_.size(); }

 private:
  mutable std::mutex mutex_;
  std::condition_variable not_empty_;
  std::size_t capacity_;
  std::size_t size_ = 0;
  bool closed_ = false;
  std::vector<std::deque<T>> lanes_;
};

}  // namespace gmd
