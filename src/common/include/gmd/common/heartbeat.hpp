#pragma once

/// \file heartbeat.hpp
/// Liveness primitives for multi-process coordination (the distributed
/// sweep's lease protocol).  A worker proves it is alive by stamping a
/// monotonically increasing beat counter into its lease file; the
/// supervisor decides staleness by watching the stamped value for
/// *change* against its own steady clock.  No cross-process clock
/// comparison ever happens, so skewed, stepped, or frozen wall clocks
/// can never expire a healthy worker — only a worker that stopped
/// writing can go stale.

#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>

namespace gmd {

/// Wall-clock nanoseconds since the Unix epoch.  Informational only
/// (human-readable stamps in lease files); expiry decisions use
/// StalenessTracker's steady clock instead.
inline std::uint64_t wall_clock_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count());
}

/// Tracks, per key, the last observed value and when (on this process's
/// steady clock) it last changed.  The supervisor observes each lease's
/// content hash every poll; stale(key, ttl) answers "has this stopped
/// moving for at least ttl?".  Not thread-safe — one monitor loop owns
/// it.
class StalenessTracker {
 public:
  /// Records an observation.  Returns true when the value changed since
  /// the last observation (a new key counts as changed).
  bool observe(const std::string& key, std::uint64_t value) {
    const auto now = std::chrono::steady_clock::now();
    auto [it, inserted] = entries_.try_emplace(key, Entry{value, now});
    if (inserted) return true;
    if (it->second.value != value) {
      it->second.value = value;
      it->second.changed = now;
      return true;
    }
    return false;
  }

  /// True when `key` has been observed and its value has not changed
  /// for at least `ttl`.  An unobserved key is never stale (it gets a
  /// full ttl of grace starting at its first observation).
  bool stale(const std::string& key, std::chrono::milliseconds ttl) const {
    const auto it = entries_.find(key);
    if (it == entries_.end()) return false;
    return std::chrono::steady_clock::now() - it->second.changed >= ttl;
  }

  /// Drops `key` (its lease completed or was expired); the next
  /// observation starts a fresh grace period.
  void forget(const std::string& key) { entries_.erase(key); }

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::uint64_t value;
    std::chrono::steady_clock::time_point changed;
  };
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace gmd
