#pragma once

/// \file csv.hpp
/// Column-oriented CSV table used to exchange datasets between the DSE
/// sweep, the ML library, and external tools (pandas-compatible output).

#include <iosfwd>
#include <string>
#include <vector>

namespace gmd {

/// An in-memory table of doubles with named columns.  Rows are dense:
/// every row has one value per column.
class CsvTable {
 public:
  CsvTable() = default;
  explicit CsvTable(std::vector<std::string> columns);

  /// Appends a row; its size must equal the column count.
  void add_row(const std::vector<double>& row);

  std::size_t num_rows() const { return rows_.size(); }
  std::size_t num_columns() const { return columns_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }

  /// Index of a named column; throws gmd::Error when absent.
  std::size_t column_index(const std::string& name) const;
  bool has_column(const std::string& name) const;

  double at(std::size_t row, std::size_t col) const;
  double at(std::size_t row, const std::string& column) const;
  const std::vector<double>& row(std::size_t index) const;

  /// Extracts a whole column by name.
  std::vector<double> column(const std::string& name) const;

  /// Serializes as RFC-4180-style CSV (header + numeric rows).
  void write(std::ostream& os) const;
  void save(const std::string& path) const;

  /// Parses a numeric CSV with a header row.  Throws gmd::Error on
  /// malformed input (ragged rows, non-numeric cells).
  static CsvTable read(std::istream& is);
  static CsvTable load(const std::string& path);

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace gmd
