#pragma once

/// \file rng.hpp
/// Deterministic, splittable pseudo-random number generation.
///
/// Every stochastic component in graphmemdse (graph generators, ML model
/// bootstrapping, train/test splits, DSE samplers) takes an explicit seed
/// so that experiments are exactly reproducible run-to-run.  The engine is
/// xoshiro256**, seeded through SplitMix64 as its authors recommend.

#include <array>
#include <cmath>
#include <cstdint>
#include <limits>

#include "gmd/common/error.hpp"

namespace gmd {

/// SplitMix64 step; used for seeding and as a cheap stateless mixer.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256** engine.  Satisfies UniformRandomBitGenerator so it can be
/// used with <random> distributions, but the member helpers below avoid
/// the cross-platform non-determinism of std distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) { reseed(seed); }

  /// Re-initializes the state from a 64-bit seed.
  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) {
    GMD_REQUIRE(bound > 0, "next_below bound must be positive");
    // 128-bit multiply-shift rejection sampling.
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = (0 - bound) % bound;
      while (lo < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t next_in_range(std::int64_t lo, std::int64_t hi) {
    GMD_REQUIRE(lo <= hi, "next_in_range requires lo <= hi");
    const auto span =
        static_cast<std::uint64_t>(hi - lo) + 1;  // hi - lo < 2^63
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  /// Uniform double in [0, 1) with 53 bits of randomness.
  double next_double() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double next_double_in(double lo, double hi) {
    return lo + (hi - lo) * next_double();
  }

  /// Standard normal variate (Marsaglia polar method).
  double next_normal() {
    if (have_cached_normal_) {
      have_cached_normal_ = false;
      return cached_normal_;
    }
    double u, v, s;
    do {
      u = next_double_in(-1.0, 1.0);
      v = next_double_in(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    cached_normal_ = v * factor;
    have_cached_normal_ = true;
    return u * factor;
  }

  /// Bernoulli trial with success probability p.
  bool next_bool(double p) { return next_double() < p; }

  /// Derives an independent child generator; used to hand each worker
  /// thread or each decision tree its own stream.
  Rng split() {
    Rng child(0);
    std::uint64_t sm = (*this)();
    for (auto& word : child.state_) word = splitmix64(sm);
    return child;
  }

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& items) {
    const auto n = items.size();
    if (n < 2) return;
    for (std::size_t i = n - 1; i > 0; --i) {
      const std::size_t j = next_below(i + 1);
      using std::swap;
      swap(items[i], items[j]);
    }
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool have_cached_normal_ = false;
};

}  // namespace gmd
