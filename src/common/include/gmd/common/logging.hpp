#pragma once

/// \file logging.hpp
/// Minimal leveled logger.  Thread-safe: concurrent log calls from the
/// sweep thread pool are serialized on an internal mutex.  The default
/// sink is stderr; tests may install a capturing sink.

#include <functional>
#include <sstream>
#include <string>
#include <string_view>

namespace gmd::log {

enum class Level { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Returns a human-readable name ("DEBUG", "INFO", ...) for a level.
std::string_view level_name(Level level);

/// Sets the global minimum level; messages below it are dropped.
void set_level(Level level);

/// Current global minimum level.
Level level();

/// Replaces the output sink.  The sink receives fully formatted lines
/// (level prefix included, no trailing newline).  Passing nullptr
/// restores the default stderr sink.
void set_sink(std::function<void(Level, std::string_view)> sink);

/// Emits one message at `level` if it passes the global filter.
void write(Level level, std::string_view message);

namespace detail {

class LineBuilder {
 public:
  explicit LineBuilder(Level level) : level_(level) {}
  LineBuilder(const LineBuilder&) = delete;
  LineBuilder& operator=(const LineBuilder&) = delete;
  ~LineBuilder() { write(level_, os_.str()); }

  template <typename T>
  LineBuilder& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  Level level_;
  std::ostringstream os_;
};

}  // namespace detail

}  // namespace gmd::log

/// Streaming log macros: `GMD_LOG_INFO << "sweep " << i << " done";`
#define GMD_LOG_DEBUG ::gmd::log::detail::LineBuilder(::gmd::log::Level::kDebug)
#define GMD_LOG_INFO ::gmd::log::detail::LineBuilder(::gmd::log::Level::kInfo)
#define GMD_LOG_WARN ::gmd::log::detail::LineBuilder(::gmd::log::Level::kWarn)
#define GMD_LOG_ERROR ::gmd::log::detail::LineBuilder(::gmd::log::Level::kError)
