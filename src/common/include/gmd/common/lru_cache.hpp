#pragma once

/// \file lru_cache.hpp
/// Bounded, sharded LRU cache — the storage primitive behind the DSE
/// query service's result cache (gmd::service::ResultCache), generic so
/// any (key, value) pair with a hash can use it.
///
/// Keys hash to one of `num_shards` independent shards, each a mutex +
/// intrusive LRU list + hash index, so concurrent readers/writers on
/// different shards never contend.  Capacity is split evenly across
/// shards and each shard evicts its own least-recently-used entry when
/// full — eviction is deterministic per shard given its operation
/// order.  get() promotes; put() inserts or refreshes.  Hit/miss/
/// eviction counters aggregate across shards for service stats.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "gmd/common/error.hpp"

namespace gmd {

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class ShardedLruCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;

    double hit_rate() const {
      const std::uint64_t total = hits + misses;
      return total ? static_cast<double>(hits) / static_cast<double>(total)
                   : 0.0;
    }
  };

  /// `capacity` total entries split evenly over `num_shards` (each
  /// shard holds at least one).
  explicit ShardedLruCache(std::size_t capacity, std::size_t num_shards = 8)
      : capacity_(capacity) {
    GMD_REQUIRE(capacity > 0, "cache capacity must be positive");
    GMD_REQUIRE(num_shards > 0, "cache must have at least one shard");
    num_shards = std::min(num_shards, capacity);
    const std::size_t per_shard = (capacity + num_shards - 1) / num_shards;
    shards_.reserve(num_shards);
    for (std::size_t s = 0; s < num_shards; ++s) {
      shards_.push_back(std::make_unique<Shard>(per_shard));
    }
  }

  /// Looks `key` up, promoting it to most-recently-used on a hit.
  std::optional<Value> get(const Key& key) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.misses;
      return std::nullopt;
    }
    ++shard.hits;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return it->second->second;
  }

  /// Inserts (or refreshes) `key`, evicting the shard's least-recently-
  /// used entry when the shard is full.
  void put(const Key& key, Value value) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mutex);
    const auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      it->second->second = std::move(value);
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      return;
    }
    if (shard.lru.size() >= shard.capacity) {
      shard.index.erase(shard.lru.back().first);
      shard.lru.pop_back();
      ++shard.evictions;
    }
    shard.lru.emplace_front(key, std::move(value));
    shard.index.emplace(key, shard.lru.begin());
  }

  std::size_t size() const {
    std::size_t total = 0;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      total += shard->lru.size();
    }
    return total;
  }

  void clear() {
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      shard->lru.clear();
      shard->index.clear();
    }
  }

  Stats stats() const {
    Stats stats;
    stats.capacity = capacity_;
    for (const auto& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard->mutex);
      stats.hits += shard->hits;
      stats.misses += shard->misses;
      stats.evictions += shard->evictions;
      stats.entries += shard->lru.size();
    }
    return stats;
  }

  std::size_t num_shards() const { return shards_.size(); }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Shard {
    explicit Shard(std::size_t cap) : capacity(cap) {}

    mutable std::mutex mutex;
    std::size_t capacity;
    /// Front = most recently used.
    std::list<std::pair<Key, Value>> lru;
    std::unordered_map<Key, typename std::list<std::pair<Key, Value>>::iterator,
                       Hash>
        index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  Shard& shard_for(const Key& key) {
    return *shards_[hash_(key) % shards_.size()];
  }

  std::size_t capacity_;
  Hash hash_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace gmd
