#pragma once

/// \file faultinject.hpp
/// Process-wide fault-injection registry.
///
/// Earlier PRs each grew an ad-hoc fault hook (`SweepOptions::fault_hook`,
/// pipeline `--fail-stage`, distributed `--kill-workers`).  This header
/// unifies them behind named *fault points*: any layer that touches the
/// outside world declares a site with `GMD_FAULT_POINT("layer.op")`, and
/// tests (or a `gmd_serve --faults` flag / `GMD_FAULTS` env spec) arm
/// those sites with a deterministic, seeded failure plan — fail the Nth
/// hit, fail with probability p, fire once then disarm — selecting which
/// error kind the site raises.
///
/// Cost when disarmed: one relaxed atomic load of a process-wide armed
/// counter (measured at well under a nanosecond; see bench_service's
/// `fault_point_disarmed_ns` gauge).  Defining `GMD_FAULTINJECT_DISABLE`
/// compiles every fault point out entirely.
///
/// Firing is deterministic: a site's Nth hit either always fires or
/// never fires for a given (spec, seed), independent of wall clock,
/// thread schedule, or address layout.  Probability draws hash
/// (seed, hit-ordinal) with FNV-1a, so two runs with the same spec see
/// the same fire pattern.  Under concurrency the *ordinal assignment*
/// to threads may differ, but the set of fired ordinals does not.

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "gmd/common/error.hpp"

namespace gmd::faultinject {

/// What an armed fault point raises when it fires.  The first four map
/// 1:1 onto ErrorCodes; the last two are I/O *shapes*: a partial write
/// leaves a torn temp file behind (then raises kIo), a short read maps
/// a file but truncates the visible size (corrupting downstream
/// checksums) instead of raising at the site itself.
enum class FaultKind {
  kIo,            ///< Raise ErrorCode::kIo at the site.
  kInvalidData,   ///< Raise ErrorCode::kInvalidData at the site.
  kTimeout,       ///< Raise ErrorCode::kTimeout at the site.
  kUnavailable,   ///< Raise ErrorCode::kUnavailable at the site.
  kPartialWrite,  ///< Tear the in-progress write, then raise kIo.
  kShortRead,     ///< Truncate the visible bytes; site does not raise.
};

std::string_view to_string(FaultKind kind);
bool kind_from_string(std::string_view name, FaultKind& out);

/// ErrorCode a fired kind raises (partial-write/short-read → kIo, for
/// sites that cannot act out the shape and fall back to throwing).
ErrorCode error_code_for(FaultKind kind);

/// Failure plan for one site.  A hit is *eligible* once the site has
/// been reached `fail_nth` times; each eligible hit then fires with
/// `probability` (seeded, deterministic).  `one_shot` disarms the site
/// after its first fire.
struct FaultSpec {
  FaultKind kind = FaultKind::kIo;
  std::uint64_t fail_nth = 1;  ///< First eligible hit, 1-based.
  double probability = 1.0;    ///< Fire chance per eligible hit.
  std::uint64_t seed = 1;      ///< Seed for the probability draw.
  bool one_shot = false;       ///< Disarm after the first fire.
};

/// Snapshot of one registered site, for diagnostics and tests.
struct SiteStatus {
  std::string site;
  FaultSpec spec;
  std::uint64_t hits = 0;   ///< Times the site was reached while known.
  std::uint64_t fires = 0;  ///< Times it actually raised.
  bool armed = false;       ///< False once a one-shot has fired.
};

namespace detail {
/// Number of currently armed sites.  The GMD_FAULT_POINT fast path
/// reads only this; everything else lives behind a mutex in the .cpp.
extern std::atomic<std::size_t> g_armed_sites;

/// Slow path: look up `site`, advance its hit counter, and decide
/// whether this hit fires.  Returns the kind to act out, or nullopt.
std::optional<FaultKind> fire_slow(std::string_view site);
}  // namespace detail

/// True when at least one site is armed anywhere in the process.
inline bool any_armed() {
  return detail::g_armed_sites.load(std::memory_order_relaxed) != 0;
}

/// Called by instrumented code at a fault point.  Returns the kind to
/// act out when the site fires, nullopt otherwise.  Sites that cannot
/// act out a shape (partial write / short read) should pass the result
/// to throw_injected, which falls back to the mapped ErrorCode.
inline std::optional<FaultKind> fire(std::string_view site) {
#if defined(GMD_FAULTINJECT_DISABLE)
  (void)site;
  return std::nullopt;
#else
  if (!any_armed()) return std::nullopt;
  return detail::fire_slow(site);
#endif
}

/// Raises the typed gmd::Error a fired fault point stands for.  The
/// message is prefixed "injected fault" so chaos assertions can tell
/// injected failures from organic ones.
[[noreturn]] void throw_injected(FaultKind kind, std::string_view site);

/// Arms (or re-arms, resetting counters) one site.
void arm(const std::string& site, const FaultSpec& spec);

/// Disarms one site.  Returns false if the site was not registered.
bool disarm(const std::string& site);

/// Disarms everything and forgets all hit/fire counters.
void clear();

/// Number of currently armed sites.
std::size_t armed_count();

/// Snapshot of every site the registry knows (armed or fired-out).
std::vector<SiteStatus> status();

/// Arms sites from a text spec:
///
///   site=kind[:nth=N][:p=F][:seed=S][:oneshot][,site=kind...]
///
/// e.g. "tracestore.chunk_verify=invalid-data:nth=3:oneshot,
///       atomic_file.commit=partial-write:p=0.5:seed=7".
/// Returns the number of sites armed; throws kConfig on a malformed
/// spec.  This is the format behind `gmd_serve --faults` and the
/// GMD_FAULTS environment variable.
std::size_t arm_from_spec(const std::string& spec);

/// Arms from the given environment variable if set.  Returns the
/// number of sites armed (0 when unset/empty).
std::size_t arm_from_env(const char* var = "GMD_FAULTS");

}  // namespace gmd::faultinject

/// Declares a fault point: when the named site is armed and fires, the
/// mapped typed gmd::Error is thrown.  Sites that must *act out* a
/// fired kind (tear a write, shorten a read) call fire()/throw_injected
/// directly instead.
#if defined(GMD_FAULTINJECT_DISABLE)
#define GMD_FAULT_POINT(site) \
  do {                        \
  } while (0)
#else
#define GMD_FAULT_POINT(site)                                    \
  do {                                                           \
    if (::gmd::faultinject::any_armed()) {                       \
      if (auto gmd_fi_kind_ = ::gmd::faultinject::fire(site)) {  \
        ::gmd::faultinject::throw_injected(*gmd_fi_kind_, site); \
      }                                                          \
    }                                                            \
  } while (0)
#endif
