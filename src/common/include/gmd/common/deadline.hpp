#pragma once

/// \file deadline.hpp
/// Cooperative deadline / cancellation token.
///
/// Long-running simulation loops (the memsim drain loop, the sweep
/// runner) poll a Deadline at safe points via check(), which throws a
/// typed gmd::Error — kTimeout when the wall budget expires, kCancelled
/// when another thread called cancel().  The loops unwind cleanly
/// through their normal exception path instead of being killed, so a
/// stuck design point can never hang a sweep worker.
///
/// cancel() is the only cross-thread entry point and is an atomic
/// store; check() amortizes the wall-clock read so polling once per
/// serviced request adds a relaxed atomic load in the common case.

#include <atomic>
#include <chrono>
#include <cstdint>

#include "gmd/common/error.hpp"

namespace gmd {

class Deadline {
 public:
  /// No wall budget: only explicit cancel() (or the parent) fires.
  Deadline() = default;

  /// Expires `wall_budget` from now.  A non-null `parent` is also
  /// consulted on every check, so a sweep-wide token cancels work that
  /// is mid-flight under a per-point deadline.  The parent must outlive
  /// this object.
  explicit Deadline(std::chrono::nanoseconds wall_budget,
                    const Deadline* parent = nullptr)
      : deadline_(std::chrono::steady_clock::now() + wall_budget),
        has_deadline_(true),
        parent_(parent) {}

  /// Budget-less child token: fires only when `parent` does.  check()
  /// amortizes clock reads through this object's own counter, so each
  /// worker thread can poll a shared parent through its own child
  /// without racing on the counter (cancelled()/expired_chain() on the
  /// parent are thread-safe).  The parent must outlive this object.
  explicit Deadline(const Deadline* parent) : parent_(parent) {}

  Deadline(const Deadline&) = delete;
  Deadline& operator=(const Deadline&) = delete;

  /// Requests cooperative cancellation.  Thread-safe; idempotent.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once cancel() was called here or on the parent chain.
  bool cancelled() const noexcept {
    return cancelled_.load(std::memory_order_relaxed) ||
           (parent_ != nullptr && parent_->cancelled());
  }

  /// True when the wall budget has elapsed (never for budget-less
  /// tokens).  Reads the clock.
  bool expired() const {
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// Wall-clock expiry here or anywhere up the parent chain, so a
  /// per-point token honors its stage-wide budget even when the stage
  /// token is never polled directly.  Budget-less chains never read the
  /// clock.
  bool expired_chain() const {
    return expired() || (parent_ != nullptr && parent_->expired_chain());
  }

  /// Poll point: throws Error(kCancelled) on cancellation and
  /// Error(kTimeout) when the wall budget (own or a parent's) has
  /// expired.  The clock is read on the first call and then every
  /// 256th, so this is cheap enough for per-request polling.  Must be
  /// polled by one thread at a time (cancel() may race freely).
  void check() {
    if (cancelled()) {
      throw Error(ErrorCode::kCancelled, "operation cancelled");
    }
    if ((check_count_++ & 0xFFu) == 0 && expired_chain()) {
      throw Error(ErrorCode::kTimeout, "deadline exceeded");
    }
  }

  /// Thread-safe, unamortized poll for coarse-grained work items (one
  /// forest tree, one boosting stage): reads the clock every call and
  /// touches no mutable state, so pool workers may share one token.
  void check_now() const {
    if (cancelled()) {
      throw Error(ErrorCode::kCancelled, "operation cancelled");
    }
    if (expired_chain()) {
      throw Error(ErrorCode::kTimeout, "deadline exceeded");
    }
  }

 private:
  std::atomic<bool> cancelled_{false};
  std::chrono::steady_clock::time_point deadline_{};
  bool has_deadline_ = false;
  const Deadline* parent_ = nullptr;
  std::uint32_t check_count_ = 0;  ///< Amortizes clock reads; owner-thread only.
};

}  // namespace gmd
