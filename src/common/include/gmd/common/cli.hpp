#pragma once

/// \file cli.hpp
/// Tiny declarative command-line parser used by the examples and bench
/// binaries.  Supports `--name value`, `--name=value`, and boolean flags.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace gmd {

/// Declarative option set with typed accessors and generated usage text.
class CliParser {
 public:
  /// \param program  Name shown in usage output.
  /// \param summary  One-line description shown in usage output.
  CliParser(std::string program, std::string summary);

  /// Registers an option with a default value (all values stored as text).
  CliParser& add_option(const std::string& name, const std::string& default_value,
                        const std::string& help);
  /// Registers a boolean flag (defaults to false; presence sets true).
  CliParser& add_flag(const std::string& name, const std::string& help);

  /// Parses argv.  Returns false (after printing usage) when --help was
  /// requested.  Throws gmd::Error on unknown options or missing values.
  bool parse(int argc, const char* const* argv);

  std::string get_string(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_flag(const std::string& name) const;

  /// Positional arguments left over after option parsing.
  const std::vector<std::string>& positional() const { return positional_; }

  std::string usage() const;

 private:
  struct Option {
    std::string default_value;
    std::string help;
    bool is_flag = false;
  };

  const Option& find(const std::string& name) const;

  std::string program_;
  std::string summary_;
  std::map<std::string, Option> options_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace gmd
