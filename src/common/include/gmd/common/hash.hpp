#pragma once

/// \file hash.hpp
/// FNV-1a 64-bit hashing, shared by the sweep checkpoint journal
/// (trace/point identity hashes) and the GMDT trace store (per-chunk
/// payload checksums).  One implementation so the two subsystems can
/// never drift: a journal keyed off a trace store header must agree
/// with a journal keyed off the decoded events it describes.

#include <bit>
#include <cstddef>
#include <cstdint>

namespace gmd {

/// Incremental FNV-1a 64 hasher.  mix(u64) feeds the value's eight
/// little-endian bytes, so mixing a value and mixing its byte image
/// produce the same state.
struct Fnv1a {
  static constexpr std::uint64_t kOffsetBasis = 0xCBF29CE484222325ULL;
  static constexpr std::uint64_t kPrime = 0x100000001B3ULL;

  std::uint64_t state = kOffsetBasis;

  void mix_byte(std::uint8_t byte) {
    state ^= byte;
    state *= kPrime;
  }

  void mix(std::uint64_t value) {
    for (int shift = 0; shift < 64; shift += 8) {
      mix_byte(static_cast<std::uint8_t>((value >> shift) & 0xFFu));
    }
  }

  /// Doubles are hashed through their IEEE-754 bit pattern so the hash
  /// is exact (no text round-trip).
  void mix_double(double value) { mix(std::bit_cast<std::uint64_t>(value)); }

  void mix_bytes(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const std::uint8_t*>(data);
    for (std::size_t i = 0; i < size; ++i) mix_byte(bytes[i]);
  }
};

/// One-shot FNV-1a 64 of a byte range.
inline std::uint64_t fnv1a_bytes(const void* data, std::size_t size) {
  Fnv1a h;
  h.mix_bytes(data, size);
  return h.state;
}

}  // namespace gmd
