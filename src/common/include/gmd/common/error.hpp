#pragma once

/// \file error.hpp
/// Error-handling primitives shared by every graphmemdse library.
///
/// The library reports recoverable misuse (bad configuration, malformed
/// input files) via `gmd::Error`, a `std::runtime_error` carrying a
/// formatted message and an `ErrorCode` classifying which pipeline
/// stage the failure belongs to.  Internal invariants use `GMD_ASSERT`,
/// which is compiled in for all build types: a simulator that silently
/// corrupts state is worse than one that stops.

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gmd {

/// Failure classification carried by gmd::Error.  The sweep runner's
/// skip/retry policies and the health report key off these codes, so a
/// failed design point can be attributed to the stage that broke it.
enum class ErrorCode {
  kUnspecified,  ///< Legacy/uncategorized errors (GMD_REQUIRE default).
  kConfig,       ///< Invalid configuration or design point.
  kTrace,        ///< Malformed or inconsistent trace input.
  kSimulation,   ///< Failure inside a simulation run.
  kIo,           ///< File-system read/write failure.
  kTimeout,      ///< A deadline/budget expired (see gmd::Deadline).
  kCancelled,    ///< Cooperative cancellation was requested.
  kInvalidData,  ///< Non-finite or semantically invalid data values.
  kLeaseConflict,  ///< A distributed-sweep shard is already leased.
  kLeaseExpired,   ///< A held lease was expired/stolen by the supervisor.
  kOverloaded,     ///< Admission control rejected the request (queue full).
  kNotFound,       ///< A named resource (trace, model) is not registered.
  kUnavailable,    ///< A known resource is quarantined / temporarily down.
};

/// Largest ErrorCode enum value, for code-indexed tally tables.
inline constexpr ErrorCode kLastErrorCode = ErrorCode::kUnavailable;

std::string_view to_string(ErrorCode code);
bool error_code_from_string(std::string_view name, ErrorCode& out);

/// Exception type thrown for all recoverable graphmemdse errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
  Error(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}

  ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_ = ErrorCode::kUnspecified;
};

inline std::string_view to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kUnspecified:
      return "unspecified";
    case ErrorCode::kConfig:
      return "config";
    case ErrorCode::kTrace:
      return "trace";
    case ErrorCode::kSimulation:
      return "simulation";
    case ErrorCode::kIo:
      return "io";
    case ErrorCode::kTimeout:
      return "timeout";
    case ErrorCode::kCancelled:
      return "cancelled";
    case ErrorCode::kInvalidData:
      return "invalid-data";
    case ErrorCode::kLeaseConflict:
      return "lease-conflict";
    case ErrorCode::kLeaseExpired:
      return "lease-expired";
    case ErrorCode::kOverloaded:
      return "overloaded";
    case ErrorCode::kNotFound:
      return "not-found";
    case ErrorCode::kUnavailable:
      return "unavailable";
  }
  return "?";
}

/// Inverse of to_string(ErrorCode): parses the stable wire name used in
/// service JSON responses.  Returns false (out untouched) for unknown
/// names, so remote peers with newer codes degrade to kUnspecified at
/// the caller's discretion rather than aborting.
inline bool error_code_from_string(std::string_view name, ErrorCode& out) {
  for (int raw = 0; raw <= static_cast<int>(kLastErrorCode); ++raw) {
    const auto code = static_cast<ErrorCode>(raw);
    if (to_string(code) == name) {
      out = code;
      return true;
    }
  }
  return false;
}

namespace detail {

[[noreturn]] inline void throw_error(std::string_view file, int line,
                                     const std::string& msg,
                                     ErrorCode code = ErrorCode::kUnspecified) {
  std::ostringstream os;
  os << msg << " (" << file << ":" << line << ")";
  throw Error(code, os.str());
}

}  // namespace detail

/// Throws gmd::Error with a formatted message when `cond` is false.
/// Use for validating user-supplied configuration and file input.
#define GMD_REQUIRE(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream gmd_require_os_;                               \
      gmd_require_os_ << "requirement failed: " << msg;               \
      ::gmd::detail::throw_error(__FILE__, __LINE__,                    \
                                 gmd_require_os_.str());                \
    }                                                                   \
  } while (0)

/// GMD_REQUIRE with an explicit ErrorCode, for callers whose failures
/// feed the sweep runner's typed outcome accounting.
#define GMD_REQUIRE_AS(code, cond, msg)                                 \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream gmd_require_os_;                               \
      gmd_require_os_ << "requirement failed: " << msg;               \
      ::gmd::detail::throw_error(__FILE__, __LINE__,                    \
                                 gmd_require_os_.str(), (code));        \
    }                                                                   \
  } while (0)

/// Internal invariant check; active in every build type.
#define GMD_ASSERT(cond, msg)                                           \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream gmd_assert_os_;                                \
      gmd_assert_os_ << "internal invariant violated: " << msg;       \
      ::gmd::detail::throw_error(__FILE__, __LINE__,                    \
                                 gmd_assert_os_.str());                 \
    }                                                                   \
  } while (0)

}  // namespace gmd
