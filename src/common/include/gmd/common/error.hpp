#pragma once

/// \file error.hpp
/// Error-handling primitives shared by every graphmemdse library.
///
/// The library reports recoverable misuse (bad configuration, malformed
/// input files) via `gmd::Error`, a `std::runtime_error` carrying a
/// formatted message.  Internal invariants use `GMD_ASSERT`, which is
/// compiled in for all build types: a simulator that silently corrupts
/// state is worse than one that stops.

#include <sstream>
#include <stdexcept>
#include <string>
#include <string_view>

namespace gmd {

/// Exception type thrown for all recoverable graphmemdse errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {

[[noreturn]] inline void throw_error(std::string_view file, int line,
                                     const std::string& msg) {
  std::ostringstream os;
  os << msg << " (" << file << ":" << line << ")";
  throw Error(os.str());
}

}  // namespace detail

/// Throws gmd::Error with a formatted message when `cond` is false.
/// Use for validating user-supplied configuration and file input.
#define GMD_REQUIRE(cond, msg)                                          \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream gmd_require_os_;                               \
      gmd_require_os_ << "requirement failed: " << msg;               \
      ::gmd::detail::throw_error(__FILE__, __LINE__,                    \
                                 gmd_require_os_.str());                \
    }                                                                   \
  } while (0)

/// Internal invariant check; active in every build type.
#define GMD_ASSERT(cond, msg)                                           \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream gmd_assert_os_;                                \
      gmd_assert_os_ << "internal invariant violated: " << msg;       \
      ::gmd::detail::throw_error(__FILE__, __LINE__,                    \
                                 gmd_assert_os_.str());                 \
    }                                                                   \
  } while (0)

}  // namespace gmd
