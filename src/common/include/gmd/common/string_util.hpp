#pragma once

/// \file string_util.hpp
/// String helpers shared by the trace parsers, CSV I/O, and CLI.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace gmd {

/// Removes leading/trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Splits on a single-character delimiter; keeps empty fields.
std::vector<std::string_view> split(std::string_view s, char delim);

/// Splits on runs of whitespace; drops empty fields.
std::vector<std::string_view> split_whitespace(std::string_view s);

/// Whole-string parses; nullopt on any trailing garbage or overflow.
std::optional<std::int64_t> parse_int(std::string_view s);
std::optional<std::uint64_t> parse_uint(std::string_view s);
std::optional<double> parse_double(std::string_view s);

/// True when `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Lower-cases ASCII letters.
std::string to_lower(std::string_view s);

/// Joins items with a separator.
std::string join(const std::vector<std::string>& items,
                 std::string_view separator);

/// Formats with fixed precision, e.g. format_fixed(3.14159, 2) == "3.14".
std::string format_fixed(double value, int digits);

/// Formats in scientific notation with `digits` mantissa decimals,
/// e.g. format_sci(41300000.0, 2) == "4.13e+07".
std::string format_sci(double value, int digits);

}  // namespace gmd
