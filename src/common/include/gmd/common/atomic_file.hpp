#pragma once

/// \file atomic_file.hpp
/// Crash-safe file writes, shared by every artifact producer in the
/// pipeline (sweep checkpoint journal, GMDT trace store, CSV datasets,
/// serialized models, pipeline manifests).
///
/// The protocol is the classic temp-then-rename: content is written to
/// `<path>.tmp`, flushed and fsync'd, and the temp file is renamed over
/// the target.  A crash (including SIGKILL) at any instant therefore
/// leaves either the previous complete artifact or no artifact at all —
/// never a torn file.  A stale `<path>.tmp` may survive a crash; it is
/// harmless (readers never look at it) and remove_stale_temp_files()
/// sweeps them on the next run.

#include <cstdint>
#include <fstream>
#include <functional>
#include <ios>
#include <string>

namespace gmd {

/// Incremental writer for the temp-then-rename protocol.  Stream bytes
/// into stream(), then commit() to publish them at `path` atomically.
/// Destroying the writer without commit() discards the temp file and
/// leaves any previous artifact at `path` untouched.
class AtomicFileWriter {
 public:
  /// Opens `<path>.tmp` for writing (truncating any stale temp).
  /// `extra_mode` is OR'd into the open mode (e.g. std::ios::binary).
  /// Throws Error(kIo) when the temp file cannot be opened.
  explicit AtomicFileWriter(std::string path,
                            std::ios::openmode extra_mode = {});

  /// Discards the temp file when commit() was never reached.
  ~AtomicFileWriter();

  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// The output stream feeding the temp file.
  std::ostream& stream() { return out_; }

  /// Flushes, fsyncs, closes, and renames the temp file over `path`.
  /// Throws Error(kIo) when any step fails (the temp file is discarded,
  /// the old artifact survives).  Idempotent after success.
  void commit();

  bool committed() const { return committed_; }
  const std::string& path() const { return path_; }
  const std::string& temp_path() const { return temp_path_; }

 private:
  std::string path_;
  std::string temp_path_;
  std::ofstream out_;
  bool committed_ = false;
};

/// One-shot atomic write: `fill` receives the temp-file stream, then the
/// file is committed.  Throws Error(kIo) on any I/O failure.
void atomic_write_file(const std::string& path,
                       const std::function<void(std::ostream&)>& fill,
                       std::ios::openmode extra_mode = {});

/// Atomic write of a ready-made byte string.
void atomic_write_text(const std::string& path, std::string_view content);

/// FNV-1a 64 over a file's bytes — the artifact-identity hash used by
/// the pipeline manifest.  Throws Error(kIo) when the file is missing
/// or unreadable.
std::uint64_t fnv1a_file(const std::string& path);

/// Recursively removes `*.tmp` files under `dir` (stale leftovers from
/// a crashed writer).  Returns how many were removed; a missing
/// directory yields 0.
std::size_t remove_stale_temp_files(const std::string& dir);

/// Atomic claim by rename: moves `from` over `to` and reports whether
/// THIS call won.  rename(2) is atomic and consumes the source, so of N
/// concurrent claimants of the same `from` exactly one gets true; the
/// losers see the source vanish and get false.  This is the mutual-
/// exclusion primitive of the distributed sweep's lease protocol (a
/// task file can only be renamed into the lease directory once per
/// generation).  Throws Error(kIo) on any failure other than the
/// source disappearing.  Requires both paths on one filesystem.
bool atomic_rename_claim(const std::string& from, const std::string& to);

/// Best-effort unlink; true when the file existed and was removed.
/// Never throws — a missing file is the desired end state.
bool remove_file_if_exists(const std::string& path) noexcept;

}  // namespace gmd
