#pragma once

/// \file stats.hpp
/// Small descriptive-statistics helpers used throughout the simulator
/// stats pipeline and the benchmark report writers.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "gmd/common/error.hpp"

namespace gmd {

/// Single-pass accumulator for count/mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Merges another accumulator (parallel reduction support).
  void merge(const OnlineStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    mean_ = (n1 * mean_ + n2 * other.mean_) / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
  }

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Population variance; 0 for fewer than two samples.
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Arithmetic mean of a span; 0 for an empty span.
inline double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

/// Population standard deviation of a span.
inline double stddev(std::span<const double> xs) {
  OnlineStats acc;
  for (double x : xs) acc.add(x);
  return acc.stddev();
}

/// Linear-interpolated percentile, p in [0, 100].  Copies and sorts.
inline double percentile(std::span<const double> xs, double p) {
  GMD_REQUIRE(!xs.empty(), "percentile of empty span");
  GMD_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace gmd
