#pragma once

/// \file stats.hpp
/// Small descriptive-statistics helpers used throughout the simulator
/// stats pipeline and the benchmark report writers.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <span>
#include <vector>

#include "gmd/common/error.hpp"

namespace gmd {

/// Single-pass accumulator for count/mean/variance/min/max (Welford).
class OnlineStats {
 public:
  void add(double x) {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  /// Merges another accumulator (parallel reduction support).
  void merge(const OnlineStats& other) {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    mean_ = (n1 * mean_ + n2 * other.mean_) / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    sum_ += other.sum_;
  }

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  double sum() const { return sum_; }
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }

  /// Population variance; 0 for fewer than two samples.
  double variance() const {
    return count_ > 1 ? m2_ / static_cast<double>(count_) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Arithmetic mean of a span; 0 for an empty span.
inline double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

/// Population standard deviation of a span.
inline double stddev(std::span<const double> xs) {
  OnlineStats acc;
  for (double x : xs) acc.add(x);
  return acc.stddev();
}

/// Standard-normal quantile (inverse CDF) for p in (0, 1).
/// Acklam's rational approximation: |relative error| < 1.2e-9 across
/// the whole domain — far below the sampling noise any confidence
/// interval built on it carries.
inline double normal_quantile(double p) {
  GMD_REQUIRE(p > 0.0 && p < 1.0, "normal_quantile requires p in (0,1)");
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

/// Student-t quantile for p in (0, 1) with `df` degrees of freedom,
/// via the Cornish-Fisher expansion of t around the normal quantile
/// (Peiser's series) — accurate to a few 1e-4 for df >= 3, exact in the
/// df -> inf limit.  df in {1, 2} use the closed forms.
inline double student_t_quantile(double p, std::size_t df) {
  GMD_REQUIRE(df > 0, "student_t_quantile requires df >= 1");
  constexpr double kPi = 3.14159265358979323846;
  if (df == 1) return std::tan(kPi * (p - 0.5));
  if (df == 2) {
    const double alpha = 2.0 * p - 1.0;
    return alpha * std::sqrt(2.0 / (1.0 - alpha * alpha));
  }
  const double z = normal_quantile(p);
  const double v = static_cast<double>(df);
  const double z3 = z * z * z;
  const double z5 = z3 * z * z;
  const double z7 = z5 * z * z;
  return z + (z3 + z) / (4.0 * v) +
         (5.0 * z5 + 16.0 * z3 + 3.0 * z) / (96.0 * v * v) +
         (3.0 * z7 + 19.0 * z5 + 17.0 * z3 - 15.0 * z) /
             (384.0 * v * v * v);
}

/// Linear-interpolated percentile, p in [0, 100].  Copies and sorts.
inline double percentile(std::span<const double> xs, double p) {
  GMD_REQUIRE(!xs.empty(), "percentile of empty span");
  GMD_REQUIRE(p >= 0.0 && p <= 100.0, "percentile p out of [0,100]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace gmd
