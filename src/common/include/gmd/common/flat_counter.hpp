#pragma once

/// \file flat_counter.hpp
/// Open-addressing occurrence counter for 64-bit keys.  Replaces
/// std::unordered_map<u64, u64> on hot counting paths (the memory
/// simulator's per-write endurance tracking): one flat array, linear
/// probing, no per-node allocation, and the running maximum is tracked
/// on insert so finishing a run never iterates the table.

#include <cstdint>
#include <vector>

#include "gmd/common/error.hpp"

namespace gmd {

/// Counts occurrences of u64 keys.  Keys must be below 2^63 (the
/// all-ones word marks an empty slot).
class FlatCounter {
 public:
  explicit FlatCounter(std::size_t initial_capacity = 1024) {
    std::size_t capacity = 16;
    while (capacity < initial_capacity) capacity <<= 1;
    entries_.resize(capacity);
  }

  /// Increments the count for `key`; returns the new count.
  std::uint64_t bump(std::uint64_t key) {
    GMD_ASSERT(key != kEmpty, "FlatCounter key out of range");
    if ((size_ + 1) * 10 > entries_.size() * 7) grow();
    Entry& entry = find_slot(key);
    if (entry.key == kEmpty) {
      entry.key = key;
      ++size_;
    }
    const std::uint64_t count = ++entry.count;
    if (count > max_count_) max_count_ = count;
    return count;
  }

  /// Adds `count` occurrences of `key` at once; returns the new count.
  std::uint64_t add(std::uint64_t key, std::uint64_t count) {
    GMD_ASSERT(key != kEmpty, "FlatCounter key out of range");
    if (count == 0) return 0;
    if ((size_ + 1) * 10 > entries_.size() * 7) grow();
    Entry& entry = find_slot(key);
    if (entry.key == kEmpty) {
      entry.key = key;
      ++size_;
    }
    entry.count += count;
    if (entry.count > max_count_) max_count_ = entry.count;
    return entry.count;
  }

  /// Visits every (key, count) pair, in unspecified order.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const Entry& entry : entries_) {
      if (entry.key != kEmpty) fn(entry.key, entry.count);
    }
  }

  /// Adds every count of `other` into this counter — the reduction step
  /// for per-worker endurance counters.  max/size come out identical no
  /// matter the merge order.
  void merge(const FlatCounter& other) {
    other.for_each([this](std::uint64_t key, std::uint64_t count) {
      add(key, count);
    });
  }

  /// Number of distinct keys seen.
  std::uint64_t size() const { return size_; }
  /// Largest count over all keys (0 when empty).
  std::uint64_t max_count() const { return max_count_; }

 private:
  static constexpr std::uint64_t kEmpty = ~0ULL;
  struct Entry {
    std::uint64_t key = kEmpty;
    std::uint64_t count = 0;
  };

  static std::uint64_t mix(std::uint64_t x) {
    // SplitMix64 finalizer: full avalanche so sequential line indexes
    // spread across the table.
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
  }

  Entry& find_slot(std::uint64_t key) {
    const std::size_t mask = entries_.size() - 1;
    std::size_t i = static_cast<std::size_t>(mix(key)) & mask;
    while (entries_[i].key != kEmpty && entries_[i].key != key) {
      i = (i + 1) & mask;
    }
    return entries_[i];
  }

  void grow() {
    std::vector<Entry> old = std::move(entries_);
    entries_.assign(old.size() * 2, Entry{});
    for (const Entry& entry : old) {
      if (entry.key == kEmpty) continue;
      Entry& slot = find_slot(entry.key);
      slot = entry;
    }
  }

  std::vector<Entry> entries_;
  std::uint64_t size_ = 0;
  std::uint64_t max_count_ = 0;
};

}  // namespace gmd
