#pragma once

/// \file thread_pool.hpp
/// Fixed-size worker pool with a parallel_for helper.  Used by the DSE
/// sweep runner (one memory simulation per task), the parallel trace
/// converter, and random-forest training.
///
/// Exceptions thrown by tasks are captured and rethrown to the caller of
/// wait()/parallel_for(), so worker failures are never silently dropped
/// (C++ Core Guidelines E.2: throw to signal that a function can't do
/// its job — even from a pool thread).

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace gmd {

class ThreadPool {
 public:
  /// Creates `num_threads` workers; 0 means std::thread::hardware_concurrency
  /// (at least one).
  explicit ThreadPool(std::size_t num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueues a task.  Tasks may not touch the pool itself.
  void submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished; rethrows the first
  /// captured task exception, if any.  Every captured exception from
  /// that batch (not just the rethrown one) stays available through
  /// collected_errors() until the next failing wait().
  void wait();

  /// All task exceptions captured by the most recent wait() that threw,
  /// in completion order.  Lets callers that run one task per work item
  /// attribute every failure instead of losing all but the first.
  std::vector<std::exception_ptr> collected_errors() const;

  /// Runs fn(i) for i in [begin, end) across the pool and waits.
  /// Workers claim batches of `grain` consecutive indices from a shared
  /// atomic counter, so uneven per-index costs rebalance dynamically
  /// instead of serializing behind the slowest static chunk.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn,
                    std::size_t grain = 1);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  mutable std::mutex mutex_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::size_t in_flight_ = 0;
  bool stopping_ = false;
  std::vector<std::exception_ptr> errors_;       // pending batch; guarded by mutex_
  std::vector<std::exception_ptr> last_errors_;  // drained by last failing wait()
};

}  // namespace gmd
