#include "gmd/service/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "gmd/common/error.hpp"

namespace gmd::service {

namespace {

const Json& null_json() {
  static const Json kNull;
  return kNull;
}

void append_escaped(std::string& out, const std::string& s) {
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, double value) {
  GMD_REQUIRE_AS(ErrorCode::kInvalidData, std::isfinite(value),
                 "JSON cannot represent a non-finite number");
  // Integral values in the exactly-representable range print as
  // integers so ids and counts round-trip without ".0" noise.
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  out += buf;
}

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Json run() {
    Json value = parse_value(0);
    skip_ws();
    require(pos_ == text_.size(), "trailing garbage after JSON value");
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void require(bool ok, const char* what) const {
    if (!ok) {
      throw Error(ErrorCode::kInvalidData,
                  std::string("malformed JSON at offset ") +
                      std::to_string(pos_) + ": " + what);
    }
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    require(pos_ < text_.size(), "unexpected end of input");
    return text_[pos_];
  }

  bool consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool consume_word(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.substr(pos_, len) == word) {
      pos_ += len;
      return true;
    }
    return false;
  }

  Json parse_value(int depth) {
    require(depth < kMaxDepth, "nesting too deep");
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object(depth);
    if (c == '[') return parse_array(depth);
    if (c == '"') return Json(parse_string());
    if (consume_word("true")) return Json(true);
    if (consume_word("false")) return Json(false);
    if (consume_word("null")) return Json(nullptr);
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    require(false, "expected a JSON value");
    return Json();
  }

  Json parse_object(int depth) {
    ++pos_;  // '{'
    Json::Object object;
    skip_ws();
    if (consume('}')) return Json(std::move(object));
    while (true) {
      skip_ws();
      require(peek() == '"', "expected object key");
      std::string key = parse_string();
      skip_ws();
      require(consume(':'), "expected ':' after object key");
      object[std::move(key)] = parse_value(depth + 1);
      skip_ws();
      if (consume(',')) continue;
      require(consume('}'), "expected ',' or '}' in object");
      return Json(std::move(object));
    }
  }

  Json parse_array(int depth) {
    ++pos_;  // '['
    Json::Array array;
    skip_ws();
    if (consume(']')) return Json(std::move(array));
    while (true) {
      array.push_back(parse_value(depth + 1));
      skip_ws();
      if (consume(',')) continue;
      require(consume(']'), "expected ',' or ']' in array");
      return Json(std::move(array));
    }
  }

  std::string parse_string() {
    ++pos_;  // '"'
    std::string out;
    while (true) {
      require(pos_ < text_.size(), "unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        require(static_cast<unsigned char>(c) >= 0x20,
                "unescaped control character in string");
        out.push_back(c);
        continue;
      }
      require(pos_ < text_.size(), "unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'u': append_codepoint(out); break;
        default: require(false, "unknown escape sequence");
      }
    }
  }

  std::uint32_t parse_hex4() {
    require(pos_ + 4 <= text_.size(), "truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      value <<= 4;
      if (c >= '0' && c <= '9') value |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f') value |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') value |= static_cast<std::uint32_t>(c - 'A' + 10);
      else require(false, "invalid hex digit in \\u escape");
    }
    return value;
  }

  void append_codepoint(std::string& out) {
    std::uint32_t cp = parse_hex4();
    if (cp >= 0xD800 && cp <= 0xDBFF) {
      // High surrogate: a low surrogate must follow.
      require(pos_ + 2 <= text_.size() && text_[pos_] == '\\' &&
                  text_[pos_ + 1] == 'u',
              "unpaired surrogate in \\u escape");
      pos_ += 2;
      const std::uint32_t low = parse_hex4();
      require(low >= 0xDC00 && low <= 0xDFFF,
              "unpaired surrogate in \\u escape");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
    } else {
      require(cp < 0xDC00 || cp > 0xDFFF, "unpaired surrogate in \\u escape");
    }
    // UTF-8 encode.
    if (cp < 0x80) {
      out.push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    require(pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9',
            "malformed number");
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    require(end == token.c_str() + token.size() && std::isfinite(value),
            "malformed number");
    return Json(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

bool Json::as_bool() const {
  GMD_REQUIRE_AS(ErrorCode::kInvalidData, is_bool(), "expected JSON bool");
  return std::get<bool>(value_);
}

double Json::as_number() const {
  GMD_REQUIRE_AS(ErrorCode::kInvalidData, is_number(), "expected JSON number");
  return std::get<double>(value_);
}

const std::string& Json::as_string() const {
  GMD_REQUIRE_AS(ErrorCode::kInvalidData, is_string(), "expected JSON string");
  return std::get<std::string>(value_);
}

const Json::Array& Json::as_array() const {
  GMD_REQUIRE_AS(ErrorCode::kInvalidData, is_array(), "expected JSON array");
  return std::get<Array>(value_);
}

const Json::Object& Json::as_object() const {
  GMD_REQUIRE_AS(ErrorCode::kInvalidData, is_object(), "expected JSON object");
  return std::get<Object>(value_);
}

Json::Array& Json::as_array() {
  GMD_REQUIRE_AS(ErrorCode::kInvalidData, is_array(), "expected JSON array");
  return std::get<Array>(value_);
}

Json::Object& Json::as_object() {
  GMD_REQUIRE_AS(ErrorCode::kInvalidData, is_object(), "expected JSON object");
  return std::get<Object>(value_);
}

const Json& Json::at(const std::string& key) const {
  if (!is_object()) return null_json();
  const auto& object = std::get<Object>(value_);
  const auto it = object.find(key);
  return it == object.end() ? null_json() : it->second;
}

bool Json::has(const std::string& key) const {
  return is_object() && std::get<Object>(value_).count(key) != 0;
}

Json& Json::operator[](const std::string& key) {
  if (is_null()) value_ = Object{};
  GMD_REQUIRE_AS(ErrorCode::kInvalidData, is_object(), "expected JSON object");
  return std::get<Object>(value_)[key];
}

double Json::number_or(const std::string& key, double fallback) const {
  const Json& field = at(key);
  return field.is_null() ? fallback : field.as_number();
}

std::string Json::string_or(const std::string& key,
                            const std::string& fallback) const {
  const Json& field = at(key);
  return field.is_null() ? fallback : field.as_string();
}

bool Json::bool_or(const std::string& key, bool fallback) const {
  const Json& field = at(key);
  return field.is_null() ? fallback : field.as_bool();
}

std::string Json::dump() const {
  std::string out;
  struct Writer {
    std::string& out;
    void operator()(std::nullptr_t) const { out += "null"; }
    void operator()(bool b) const { out += b ? "true" : "false"; }
    void operator()(double d) const { append_number(out, d); }
    void operator()(const std::string& s) const { append_escaped(out, s); }
    void operator()(const Array& a) const {
      out.push_back('[');
      for (std::size_t i = 0; i < a.size(); ++i) {
        if (i) out.push_back(',');
        out += a[i].dump();
      }
      out.push_back(']');
    }
    void operator()(const Object& o) const {
      out.push_back('{');
      bool first = true;
      for (const auto& [key, value] : o) {
        if (!first) out.push_back(',');
        first = false;
        append_escaped(out, key);
        out.push_back(':');
        out += value.dump();
      }
      out.push_back('}');
    }
  };
  std::visit(Writer{out}, value_);
  return out;
}

Json Json::parse(std::string_view text) { return Parser(text).run(); }

}  // namespace gmd::service
