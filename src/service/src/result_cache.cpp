#include "gmd/service/result_cache.hpp"

#include "gmd/common/hash.hpp"

namespace gmd::service {

std::uint64_t simulate_cache_key(std::uint64_t trace_checksum,
                                 const dse::DesignPoint& point,
                                 const dse::SimulateOptions& options) {
  Fnv1a h;
  h.mix(trace_checksum);
  // Canonical DesignPoint bytes: every field, in declaration order,
  // through fixed-width integers / IEEE bit patterns (never text).
  h.mix(static_cast<std::uint64_t>(point.kind));
  h.mix(point.cpu_freq_mhz);
  h.mix(point.ctrl_freq_mhz);
  h.mix(point.channels);
  h.mix(point.trcd);
  h.mix_double(point.dram_fraction);
  // Sampling geometry participates only when sampling is on, exactly
  // like the sweep journal identity: exhaustive results are one entry
  // regardless of dormant sampling defaults.
  if (options.sample_fraction < 1.0) {
    h.mix_double(options.sample_fraction);
    h.mix(options.sample_seed);
    h.mix(options.sample_warmup_chunks);
    h.mix(static_cast<std::uint64_t>(options.sampling_chunk_events));
  }
  return h.state;
}

}  // namespace gmd::service
