#include "gmd/service/trace_library.hpp"

#include <cstdio>
#include <utility>

#include "gmd/common/error.hpp"

namespace gmd::service {

namespace {

/// Runs `build` under build-once semantics: the first caller for `key`
/// installs a promise and builds outside the lock; everyone else waits
/// on the shared future.  A failed build is evicted so a later call can
/// retry, and the exception propagates to every waiter of that round.
template <typename Map, typename Key, typename Build>
auto build_once(std::mutex& mutex, Map& cache, const Key& key, Build build)
    -> decltype(build()) {
  using Value = decltype(build());
  std::promise<Value> promise;
  std::shared_future<Value> future;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(key);
    if (it == cache.end()) {
      future = promise.get_future().share();
      cache.emplace(key, future);
      builder = true;
    } else {
      future = it->second;
    }
  }
  if (builder) {
    try {
      promise.set_value(build());
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mutex);
      cache.erase(key);
    }
  }
  return future.get();
}

}  // namespace

std::string format_checksum(std::uint64_t checksum) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(checksum));
  return std::string(buf);
}

std::uint64_t TraceLibrary::register_store(const std::string& alias,
                                           const std::string& path) {
  GMD_REQUIRE_AS(ErrorCode::kConfig, !alias.empty(),
                 "trace alias must be non-empty");
  // Map outside the lock: opening validates the header + directory and
  // may take a moment on a large store.
  auto reader = std::make_shared<const tracestore::TraceStoreReader>(path);
  const std::uint64_t checksum = reader->content_checksum();

  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = by_alias_.find(alias); it != by_alias_.end()) {
    GMD_REQUIRE_AS(ErrorCode::kConfig, it->second.checksum == checksum,
                   "alias '" << alias
                             << "' is already registered for different trace "
                                "content (checksum "
                             << format_checksum(it->second.checksum) << ")");
    return checksum;  // Same content: idempotent re-registration.
  }
  Entry entry{alias, path, checksum, std::move(reader)};
  // First registration wins for checksum lookup; a second alias for the
  // same content shares the existing mapping instead of re-mmapping.
  if (const auto it = by_checksum_.find(checksum); it != by_checksum_.end()) {
    entry.reader = it->second.reader;
  } else {
    by_checksum_.emplace(checksum, entry);
  }
  by_alias_.emplace(alias, std::move(entry));
  return checksum;
}

std::shared_ptr<const tracestore::TraceStoreReader> TraceLibrary::find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = by_alias_.find(name); it != by_alias_.end()) {
    return it->second.reader;
  }
  // A 16-hex-digit name may be a content checksum.
  if (name.size() == 16) {
    std::uint64_t checksum = 0;
    bool hex = true;
    for (const char c : name) {
      checksum <<= 4;
      if (c >= '0' && c <= '9') checksum |= static_cast<std::uint64_t>(c - '0');
      else if (c >= 'a' && c <= 'f') checksum |= static_cast<std::uint64_t>(c - 'a' + 10);
      else { hex = false; break; }
    }
    if (hex) {
      if (const auto it = by_checksum_.find(checksum);
          it != by_checksum_.end()) {
        return it->second.reader;
      }
    }
  }
  std::string known;
  for (const auto& [alias, entry] : by_alias_) {
    if (!known.empty()) known += ", ";
    known += alias;
  }
  throw Error(ErrorCode::kNotFound,
              "trace '" + name + "' is not registered (known: " +
                  (known.empty() ? "none" : known) + ")");
}

std::shared_ptr<const std::vector<cpusim::MemoryEvent>>
TraceLibrary::raw_events(const tracestore::TraceStoreReader& store) {
  const std::uint64_t key = store.content_checksum();
  return build_once(mutex_, raw_cache_, key, [&store] {
    return std::make_shared<const std::vector<cpusim::MemoryEvent>>(
        store.read_all());
  });
}

std::shared_ptr<const memsim::PredecodedTrace> TraceLibrary::predecoded(
    const tracestore::TraceStoreReader& store,
    const memsim::MemoryConfig& config) {
  const std::pair<std::uint64_t, std::string> key{
      store.content_checksum(), memsim::PredecodedTrace::key(config)};
  return build_once(mutex_, predecoded_cache_, key, [&store, &config] {
    tracestore::ChunkIterator it(store);
    const auto source = [&it]() -> std::span<const cpusim::MemoryEvent> {
      return it.next() ? it.events()
                       : std::span<const cpusim::MemoryEvent>{};
    };
    return std::make_shared<const memsim::PredecodedTrace>(
        memsim::PredecodedTrace::build(config, source,
                                       static_cast<std::size_t>(
                                           store.num_events())));
  });
}

std::vector<TraceLibrary::Entry> TraceLibrary::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> out;
  out.reserve(by_alias_.size());
  for (const auto& [alias, entry] : by_alias_) out.push_back(entry);
  return out;
}

std::size_t TraceLibrary::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_alias_.size();
}

std::size_t TraceLibrary::cached_feeds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return raw_cache_.size() + predecoded_cache_.size();
}

}  // namespace gmd::service
