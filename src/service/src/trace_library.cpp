#include "gmd/service/trace_library.hpp"

#include <cstdio>
#include <utility>

#include "gmd/common/error.hpp"

namespace gmd::service {

namespace {

/// Runs `build` under build-once semantics: the first caller for `key`
/// installs a promise and builds outside the lock; everyone else waits
/// on the shared future.  A failed build is evicted so a later call can
/// retry, and the exception propagates to every waiter of that round.
template <typename Map, typename Key, typename Build>
auto build_once(std::mutex& mutex, Map& cache, const Key& key, Build build)
    -> decltype(build()) {
  using Value = decltype(build());
  std::promise<Value> promise;
  std::shared_future<Value> future;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(mutex);
    auto it = cache.find(key);
    if (it == cache.end()) {
      future = promise.get_future().share();
      cache.emplace(key, future);
      builder = true;
    } else {
      future = it->second;
    }
  }
  if (builder) {
    try {
      promise.set_value(build());
    } catch (...) {
      promise.set_exception(std::current_exception());
      std::lock_guard<std::mutex> lock(mutex);
      cache.erase(key);
    }
  }
  return future.get();
}

/// Parses a 16-lowercase-hex-digit content checksum; returns false for
/// anything else (so ordinary aliases never collide with the space).
bool parse_checksum(const std::string& name, std::uint64_t& out) {
  if (name.size() != 16) return false;
  std::uint64_t checksum = 0;
  for (const char c : name) {
    checksum <<= 4;
    if (c >= '0' && c <= '9') {
      checksum |= static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      checksum |= static_cast<std::uint64_t>(c - 'a' + 10);
    } else {
      return false;
    }
  }
  out = checksum;
  return true;
}

std::string quarantined_message(const std::string& kind,
                                const std::string& name,
                                const QuarantinedResource& info) {
  return kind + " '" + name + "' is quarantined (" +
         std::string(to_string(info.code)) + ": " + info.reason + ")";
}

}  // namespace

std::string format_checksum(std::uint64_t checksum) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(checksum));
  return std::string(buf);
}

std::uint64_t TraceLibrary::register_store(const std::string& alias,
                                           const std::string& path) {
  GMD_REQUIRE_AS(ErrorCode::kConfig, !alias.empty(),
                 "trace alias must be non-empty");
  // Map outside the lock: opening validates the header + directory and
  // may take a moment on a large store.
  auto reader = std::make_shared<const tracestore::TraceStoreReader>(path);
  const std::uint64_t checksum = reader->content_checksum();

  std::lock_guard<std::mutex> lock(mutex_);
  // Explicit re-registration is manual recovery: it clears quarantine.
  quarantined_.erase(alias);
  if (const auto it = by_alias_.find(alias); it != by_alias_.end()) {
    GMD_REQUIRE_AS(ErrorCode::kConfig, it->second.checksum == checksum,
                   "alias '" << alias
                             << "' is already registered for different trace "
                                "content (checksum "
                             << format_checksum(it->second.checksum) << ")");
    return checksum;  // Same content: idempotent re-registration.
  }
  Entry entry{alias, path, checksum, std::move(reader)};
  // First registration wins for checksum lookup; a second alias for the
  // same content shares the existing mapping instead of re-mmapping.
  if (const auto it = by_checksum_.find(checksum); it != by_checksum_.end()) {
    entry.reader = it->second.reader;
  } else {
    by_checksum_.emplace(checksum, entry);
  }
  by_alias_.emplace(alias, std::move(entry));
  return checksum;
}

std::shared_ptr<const tracestore::TraceStoreReader> TraceLibrary::find(
    const std::string& name) {
  // Two rounds at most: a quarantined store whose probe interval has
  // elapsed gets exactly one inline recovery attempt, then the lookup
  // either serves the restored reader or fails typed — never a loop.
  for (int round = 0; round < 2; ++round) {
    std::string quarantined_alias;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (const auto it = by_alias_.find(name); it != by_alias_.end()) {
        return it->second.reader;
      }
      // A 16-hex-digit name may be a content checksum.
      std::uint64_t checksum = 0;
      if (parse_checksum(name, checksum)) {
        if (const auto it = by_checksum_.find(checksum);
            it != by_checksum_.end()) {
          return it->second.reader;
        }
        for (const auto& [alias, q] : quarantined_) {
          if (q.checksum == checksum) {
            quarantined_alias = alias;
            break;
          }
        }
      }
      if (quarantined_alias.empty() && quarantined_.count(name) > 0) {
        quarantined_alias = name;
      }
      if (quarantined_alias.empty()) {
        std::string known;
        for (const auto& [alias, entry] : by_alias_) {
          if (!known.empty()) known += ", ";
          known += alias;
        }
        throw Error(ErrorCode::kNotFound,
                    "trace '" + name + "' is not registered (known: " +
                        (known.empty() ? "none" : known) + ")");
      }
      const Quarantine& q = quarantined_.at(quarantined_alias);
      if (round > 0 || std::chrono::steady_clock::now() < q.next_probe) {
        throw Error(ErrorCode::kUnavailable,
                    quarantined_message("trace", name, q.info));
      }
    }
    if (!try_probe(quarantined_alias)) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (const auto it = quarantined_.find(quarantined_alias);
          it != quarantined_.end()) {
        throw Error(ErrorCode::kUnavailable,
                    quarantined_message("trace", name, it->second.info));
      }
      // The probe lost a race with a restore; retry the lookup.
    }
  }
  throw Error(ErrorCode::kUnavailable, "trace '" + name + "' is unavailable");
}

bool TraceLibrary::quarantine(const std::string& name, ErrorCode code,
                              const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantine_locked(name, code, reason);
}

bool TraceLibrary::quarantine_locked(const std::string& name, ErrorCode code,
                                     const std::string& reason) {
  std::uint64_t checksum = 0;
  bool resolved = false;
  if (const auto it = by_alias_.find(name); it != by_alias_.end()) {
    checksum = it->second.checksum;
    resolved = true;
  } else if (parse_checksum(name, checksum)) {
    resolved = by_checksum_.count(checksum) > 0;
  }
  if (!resolved) {
    // Already quarantined (or unknown): refresh the recorded failure so
    // health reports the freshest reason, but evict nothing.
    if (const auto it = quarantined_.find(name); it != quarantined_.end()) {
      it->second.info.code = code;
      it->second.info.reason = reason;
    }
    return false;
  }
  // Content is bad, so every alias sharing it goes down together.
  std::vector<std::string> aliases;
  for (const auto& [alias, entry] : by_alias_) {
    if (entry.checksum == checksum) aliases.push_back(alias);
  }
  const auto next_probe = std::chrono::steady_clock::now() + probe_interval_;
  for (const std::string& alias : aliases) {
    const Entry& entry = by_alias_.at(alias);
    Quarantine q;
    q.info = QuarantinedResource{alias, entry.path, code, reason, 0};
    q.checksum = checksum;
    q.next_probe = next_probe;
    quarantined_[alias] = std::move(q);
    by_alias_.erase(alias);
  }
  by_checksum_.erase(checksum);
  drop_feeds_locked(checksum);
  return !aliases.empty();
}

void TraceLibrary::drop_feeds_locked(std::uint64_t checksum) {
  raw_cache_.erase(checksum);
  for (auto it = predecoded_cache_.begin(); it != predecoded_cache_.end();) {
    it = it->first.first == checksum ? predecoded_cache_.erase(it)
                                     : std::next(it);
  }
}

void TraceLibrary::set_probe_interval(std::chrono::milliseconds interval) {
  std::lock_guard<std::mutex> lock(mutex_);
  probe_interval_ = interval;
}

bool TraceLibrary::try_probe(const std::string& alias) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = quarantined_.find(alias);
    if (it == quarantined_.end()) return by_alias_.count(alias) > 0;
    const auto now = std::chrono::steady_clock::now();
    if (now < it->second.next_probe) return false;
    // Claim this probe window before dropping the lock: concurrent
    // lookups fail fast instead of piling onto the same verify scan.
    it->second.next_probe = now + probe_interval_;
    ++it->second.info.probes;
    path = it->second.info.path;
  }
  try {
    auto reader = std::make_shared<const tracestore::TraceStoreReader>(path);
    reader->verify();  // full per-chunk checksum scan
    const std::uint64_t checksum = reader->content_checksum();
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = quarantined_.find(alias);
    if (it == quarantined_.end()) return by_alias_.count(alias) > 0;
    quarantined_.erase(it);
    Entry entry{alias, path, checksum, std::move(reader)};
    if (const auto cit = by_checksum_.find(checksum);
        cit != by_checksum_.end()) {
      entry.reader = cit->second.reader;
    } else {
      by_checksum_.emplace(checksum, entry);
    }
    by_alias_.emplace(alias, std::move(entry));
    return true;
  } catch (const Error& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = quarantined_.find(alias); it != quarantined_.end()) {
      it->second.info.code = e.code();
      it->second.info.reason = e.what();
    }
    return false;
  }
}

std::size_t TraceLibrary::probe_due() {
  std::vector<std::string> due;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto now = std::chrono::steady_clock::now();
    for (const auto& [alias, q] : quarantined_) {
      if (now >= q.next_probe) due.push_back(alias);
    }
  }
  std::size_t restored = 0;
  for (const std::string& alias : due) {
    if (try_probe(alias)) ++restored;
  }
  return restored;
}

std::vector<QuarantinedResource> TraceLibrary::quarantined() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<QuarantinedResource> out;
  out.reserve(quarantined_.size());
  for (const auto& [alias, q] : quarantined_) out.push_back(q.info);
  return out;
}

std::size_t TraceLibrary::quarantined_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantined_.size();
}

std::shared_ptr<const std::vector<cpusim::MemoryEvent>>
TraceLibrary::raw_events(const tracestore::TraceStoreReader& store) {
  const std::uint64_t key = store.content_checksum();
  return build_once(mutex_, raw_cache_, key, [&store] {
    return std::make_shared<const std::vector<cpusim::MemoryEvent>>(
        store.read_all());
  });
}

std::shared_ptr<const memsim::PredecodedTrace> TraceLibrary::predecoded(
    const tracestore::TraceStoreReader& store,
    const memsim::MemoryConfig& config) {
  const std::pair<std::uint64_t, std::string> key{
      store.content_checksum(), memsim::PredecodedTrace::key(config)};
  return build_once(mutex_, predecoded_cache_, key, [&store, &config] {
    tracestore::ChunkIterator it(store);
    const auto source = [&it]() -> std::span<const cpusim::MemoryEvent> {
      return it.next() ? it.events()
                       : std::span<const cpusim::MemoryEvent>{};
    };
    return std::make_shared<const memsim::PredecodedTrace>(
        memsim::PredecodedTrace::build(config, source,
                                       static_cast<std::size_t>(
                                           store.num_events())));
  });
}

std::vector<TraceLibrary::Entry> TraceLibrary::entries() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<Entry> out;
  out.reserve(by_alias_.size());
  for (const auto& [alias, entry] : by_alias_) out.push_back(entry);
  return out;
}

std::size_t TraceLibrary::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return by_alias_.size();
}

std::size_t TraceLibrary::cached_feeds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return raw_cache_.size() + predecoded_cache_.size();
}

}  // namespace gmd::service
