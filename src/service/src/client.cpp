#include "gmd/service/client.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "gmd/common/error.hpp"

namespace gmd::service {

PipeClient::PipeClient(const Options& options) {
  int to_child[2];   // parent writes -> child stdin
  int from_child[2]; // child stdout -> parent reads
  GMD_REQUIRE_AS(ErrorCode::kIo, ::pipe(to_child) == 0, "pipe failed");
  if (::pipe(from_child) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    throw Error(ErrorCode::kIo, "pipe failed");
  }

  const pid_t pid = ::fork();
  GMD_REQUIRE_AS(ErrorCode::kIo, pid >= 0, "fork failed");
  if (pid == 0) {
    // Child: wire the pipe ends onto stdin/stdout and exec the server.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(options.server_path.c_str()));
    for (const std::string& arg : options.args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(options.server_path.c_str(), argv.data());
    ::_Exit(127);  // exec failed
  }

  ::close(to_child[0]);
  ::close(from_child[1]);
  stdin_fd_ = to_child[1];
  stdout_fd_ = from_child[0];
  pid_ = pid;
  reader_ = std::thread([this] { reader_loop(); });
}

PipeClient::~PipeClient() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (reaped_) {
      // close_and_wait() already shut everything down.
      return;
    }
  }
  // Abrupt teardown: kill rather than drain.
  if (stdin_fd_ >= 0) ::close(stdin_fd_);
  if (pid_ > 0) {
    ::kill(static_cast<pid_t>(pid_), SIGKILL);
    int status = 0;
    ::waitpid(static_cast<pid_t>(pid_), &status, 0);
  }
  if (reader_.joinable()) reader_.join();
  if (stdout_fd_ >= 0) ::close(stdout_fd_);
}

void PipeClient::reader_loop() {
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(stdout_fd_, chunk, sizeof(chunk));
    if (n <= 0) break;  // EOF (server exited/drained) or error.
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      try {
        Json response = Json::parse(line);
        const Json& id = response.at("id");
        if (id.is_number()) {
          std::lock_guard<std::mutex> lock(mutex_);
          responses_[static_cast<std::uint64_t>(id.as_number())] =
              std::move(response);
          cv_.notify_all();
        }
        // Responses without a numeric id (none in this protocol) drop.
      } catch (const Error&) {
        // A torn/non-JSON line is a server bug; surface it to waiters.
        std::lock_guard<std::mutex> lock(mutex_);
        fail_pending_locked("server emitted a malformed line: " + line);
      }
    }
    buffer.erase(0, start);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  reader_done_ = true;
  cv_.notify_all();
}

void PipeClient::fail_pending_locked(const std::string& reason) {
  if (failure_.empty()) failure_ = reason;
  cv_.notify_all();
}

std::uint64_t PipeClient::send(Json body) {
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    id = next_id_++;
  }
  body["id"] = id;
  const std::string line = body.dump() + "\n";
  std::lock_guard<std::mutex> lock(write_mutex_);
  GMD_REQUIRE_AS(ErrorCode::kIo, stdin_fd_ >= 0,
                 "client connection already closed");
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(stdin_fd_, line.data() + written, line.size() - written);
    GMD_REQUIRE_AS(ErrorCode::kIo, n > 0,
                   "write to server failed: " << std::strerror(errno));
    written += static_cast<std::size_t>(n);
  }
  return id;
}

Json PipeClient::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this, id] {
    return responses_.count(id) != 0 || reader_done_ || !failure_.empty();
  });
  if (const auto it = responses_.find(id); it != responses_.end()) {
    Json response = std::move(it->second);
    responses_.erase(it);
    return response;
  }
  throw Error(ErrorCode::kIo,
              failure_.empty()
                  ? "server exited before answering request " +
                        std::to_string(id)
                  : failure_);
}

Json PipeClient::request(Json body) { return wait(send(std::move(body))); }

int PipeClient::close_and_wait() {
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (stdin_fd_ >= 0) {
      ::close(stdin_fd_);  // EOF = graceful drain request.
      stdin_fd_ = -1;
    }
  }
  if (reader_.joinable()) reader_.join();
  if (stdout_fd_ >= 0) {
    ::close(stdout_fd_);
    stdout_fd_ = -1;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (!reaped_) {
    int status = 0;
    ::waitpid(static_cast<pid_t>(pid_), &status, 0);
    exit_code_ = WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
    reaped_ = true;
  }
  return exit_code_;
}

}  // namespace gmd::service
