#include "gmd/service/client.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "gmd/common/error.hpp"
#include "gmd/common/hash.hpp"

namespace gmd::service {

namespace {

/// A write to a server that died mid-request raises SIGPIPE, whose
/// default disposition kills the whole client process.  Resilience
/// requires the write to fail with EPIPE instead, so the first client
/// constructed flips the disposition once, process-wide.
void ignore_sigpipe_once() {
  static std::once_flag flag;
  std::call_once(flag, [] { ::signal(SIGPIPE, SIG_IGN); });
}

/// Deterministic jitter in [0, backoff/2]: uniform draw from the FNV
/// mix of (seed, attempt) so a seeded chaos run replays exactly.
std::chrono::milliseconds jitter(std::uint64_t seed, int attempt,
                                 std::chrono::milliseconds backoff) {
  const auto half = backoff.count() / 2;
  if (seed == 0 || half <= 0) return std::chrono::milliseconds{0};
  Fnv1a h;
  h.mix(seed);
  h.mix(static_cast<std::uint64_t>(attempt));
  return std::chrono::milliseconds(
      static_cast<long long>(h.state % static_cast<std::uint64_t>(half + 1)));
}

}  // namespace

PipeClient::PipeClient(const Options& options) : options_(options) {
  ignore_sigpipe_once();
  spawn();
}

void PipeClient::spawn() {
  int to_child[2];    // parent writes -> child stdin
  int from_child[2];  // child stdout -> parent reads
  GMD_REQUIRE_AS(ErrorCode::kIo, ::pipe(to_child) == 0, "pipe failed");
  if (::pipe(from_child) != 0) {
    ::close(to_child[0]);
    ::close(to_child[1]);
    throw Error(ErrorCode::kIo, "pipe failed");
  }

  const pid_t pid = ::fork();
  GMD_REQUIRE_AS(ErrorCode::kIo, pid >= 0, "fork failed");
  if (pid == 0) {
    // Child: wire the pipe ends onto stdin/stdout and exec the server.
    ::dup2(to_child[0], STDIN_FILENO);
    ::dup2(from_child[1], STDOUT_FILENO);
    ::close(to_child[0]);
    ::close(to_child[1]);
    ::close(from_child[0]);
    ::close(from_child[1]);
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(options_.server_path.c_str()));
    for (const std::string& arg : options_.args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(options_.server_path.c_str(), argv.data());
    ::_Exit(127);  // exec failed
  }

  ::close(to_child[0]);
  ::close(from_child[1]);
  stdin_fd_ = to_child[1];
  stdout_fd_ = from_child[0];
  pid_ = pid;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    reader_done_ = false;
    reaped_ = false;
    exit_code_ = -1;
  }
  const int reader_fd = stdout_fd_;
  reader_ = std::thread([this, reader_fd] { reader_loop(reader_fd); });
}

PipeClient::~PipeClient() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closing_ = true;
    if (reaped_) {
      // close_and_wait() already shut everything down.
      return;
    }
  }
  // Abrupt teardown: kill rather than drain.
  if (stdin_fd_ >= 0) ::close(stdin_fd_);
  if (pid_ > 0) {
    ::kill(static_cast<pid_t>(pid_), SIGKILL);
    int status = 0;
    ::waitpid(static_cast<pid_t>(pid_), &status, 0);
  }
  if (reader_.joinable()) reader_.join();
  if (stdout_fd_ >= 0) ::close(stdout_fd_);
}

void PipeClient::reader_loop(int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::read(fd, chunk, sizeof(chunk));
    if (n <= 0) break;  // EOF (server exited/drained) or error.
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    for (std::size_t nl = buffer.find('\n', start); nl != std::string::npos;
         nl = buffer.find('\n', start)) {
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      try {
        Json response = Json::parse(line);
        const Json& id = response.at("id");
        if (id.is_number()) {
          std::lock_guard<std::mutex> lock(mutex_);
          responses_[static_cast<std::uint64_t>(id.as_number())] =
              std::move(response);
          cv_.notify_all();
        }
        // Responses without a numeric id (none in this protocol) drop.
      } catch (const Error&) {
        // A torn/non-JSON line is a server bug; fail everything that is
        // currently in flight with a typed error rather than leaving
        // waiters blocked hoping for a well-formed line that may never
        // come.
        std::lock_guard<std::mutex> lock(mutex_);
        fail_pending_locked(
            ErrorCode::kIo,
            "server emitted a malformed response line: " + line);
      }
    }
    buffer.erase(0, start);
  }
  // The pipe is gone.  A mid-buffer fragment without its newline is a
  // torn response; either way nothing in flight can be answered now.
  std::lock_guard<std::mutex> lock(mutex_);
  reader_done_ = true;
  if (!buffer.empty()) {
    fail_pending_locked(ErrorCode::kIo,
                        "server died mid-response (torn line: " + buffer + ")");
  } else {
    fail_pending_locked(ErrorCode::kUnavailable,
                        closing_ ? "server exited during drain"
                                 : "server closed the pipe before answering");
  }
  if (!closing_) record_death_locked();
  cv_.notify_all();
}

void PipeClient::fail_pending_locked(ErrorCode code,
                                     const std::string& reason) {
  for (const std::uint64_t id : pending_) {
    if (responses_.count(id) == 0) failed_.emplace(id, std::pair{code, reason});
  }
  pending_.clear();
  cv_.notify_all();
}

void PipeClient::record_death_locked() {
  ++consecutive_deaths_;
  if (consecutive_deaths_ >= options_.retry.circuit_threshold) {
    circuit_open_until_ =
        std::chrono::steady_clock::now() + options_.retry.circuit_cooldown;
  }
}

void PipeClient::check_circuit_locked() {
  if (options_.retry.circuit_threshold <= 0 ||
      consecutive_deaths_ < options_.retry.circuit_threshold) {
    return;
  }
  const auto now = std::chrono::steady_clock::now();
  if (now < circuit_open_until_) {
    throw Error(ErrorCode::kUnavailable,
                "circuit breaker open after " +
                    std::to_string(consecutive_deaths_) +
                    " consecutive server deaths");
  }
  // Cooldown elapsed: let this request through as the half-open probe
  // and hold everyone else back for another cooldown.  Its success
  // resets the death counter (closing the circuit); a further death
  // re-opens it.
  circuit_open_until_ = now + options_.retry.circuit_cooldown;
}

std::uint64_t PipeClient::send(Json body) {
  std::uint64_t id = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    check_circuit_locked();
    id = next_id_++;
    pending_.insert(id);
  }
  body["id"] = id;
  const std::string line = body.dump() + "\n";
  std::lock_guard<std::mutex> lock(write_mutex_);
  const auto fail_send = [&](ErrorCode code, const std::string& message) {
    std::lock_guard<std::mutex> state_lock(mutex_);
    pending_.erase(id);
    failed_.erase(id);  // the throw below reports it; nobody will wait
    throw Error(code, message);
  };
  if (stdin_fd_ < 0) {
    fail_send(ErrorCode::kUnavailable, "client connection already closed");
  }
  std::size_t written = 0;
  while (written < line.size()) {
    const ssize_t n =
        ::write(stdin_fd_, line.data() + written, line.size() - written);
    if (n <= 0) {
      const int err = errno;
      fail_send(err == EPIPE ? ErrorCode::kUnavailable : ErrorCode::kIo,
                std::string("write to server failed: ") + std::strerror(err));
    }
    written += static_cast<std::size_t>(n);
  }
  return id;
}

Json PipeClient::wait(std::uint64_t id) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this, id] {
    return responses_.count(id) != 0 || failed_.count(id) != 0 || reader_done_;
  });
  if (const auto it = responses_.find(id); it != responses_.end()) {
    Json response = std::move(it->second);
    responses_.erase(it);
    pending_.erase(id);
    failed_.erase(id);
    consecutive_deaths_ = 0;  // an answer means the server is alive
    return response;
  }
  if (const auto it = failed_.find(id); it != failed_.end()) {
    const Error error(it->second.first, it->second.second);
    failed_.erase(it);
    throw error;
  }
  pending_.erase(id);
  throw Error(ErrorCode::kUnavailable,
              "server exited before answering request " + std::to_string(id));
}

Json PipeClient::request(Json body) { return wait(send(std::move(body))); }

Json PipeClient::request_with_retry(Json body, int* attempts_out) {
  const RetryOptions& retry = options_.retry;
  const int attempts = std::max(1, retry.max_attempts);
  const bool budgeted = retry.budget.count() > 0;
  const auto start = std::chrono::steady_clock::now();
  const auto remaining_budget = [&] {
    return retry.budget - std::chrono::duration_cast<std::chrono::milliseconds>(
                              std::chrono::steady_clock::now() - start);
  };

  auto backoff = retry.initial_backoff;
  Json last_response;
  bool have_response = false;
  Error last_error(ErrorCode::kUnavailable, "no attempt made");

  for (int attempt = 1; attempt <= attempts; ++attempt) {
    if (attempts_out != nullptr) *attempts_out = attempt;

    Json attempt_body = body;
    if (budgeted) {
      const auto remaining = remaining_budget();
      if (remaining.count() <= 0) {
        throw Error(ErrorCode::kTimeout,
                    "retry budget of " + std::to_string(retry.budget.count()) +
                        "ms exhausted after " + std::to_string(attempt - 1) +
                        " attempts");
      }
      // Per-attempt deadline accounting: never ask the server for more
      // time than the caller's overall budget has left.
      const double requested = attempt_body.number_or("deadline_ms", 0.0);
      const auto remaining_ms = static_cast<double>(remaining.count());
      if (requested <= 0.0 || requested > remaining_ms) {
        attempt_body["deadline_ms"] = remaining_ms;
      }
    }

    std::uint64_t seen_generation = 0;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      seen_generation = generation_;
    }

    bool transport_failure = false;
    try {
      Json response = request(std::move(attempt_body));
      if (response.bool_or("ok", false)) return response;
      const Json& error = response.at("error");
      const std::string code =
          error.is_object() ? error.string_or("code", "") : std::string();
      if (code != "overloaded" && code != "unavailable") {
        return response;  // non-retryable error: the caller decides
      }
      last_response = std::move(response);
      have_response = true;
    } catch (const Error& e) {
      if (e.code() == ErrorCode::kInvalidData) throw;  // never retried
      if (circuit_open()) throw;  // breaker is fast-failing: stop here
      last_error = e;
      have_response = false;
      transport_failure = true;
    }

    if (attempt == attempts) break;
    if (transport_failure) {
      if (!retry.restart_on_death) throw last_error;
      restart(seen_generation);
    }

    auto delay = backoff + jitter(retry.jitter_seed, attempt, backoff);
    if (budgeted) {
      const auto remaining = remaining_budget();
      if (remaining.count() <= 0) {
        throw Error(ErrorCode::kTimeout,
                    "retry budget of " + std::to_string(retry.budget.count()) +
                        "ms exhausted after " + std::to_string(attempt) +
                        " attempts");
      }
      delay = std::min(delay, remaining);
    }
    if (delay.count() > 0) std::this_thread::sleep_for(delay);
    backoff = std::min(
        std::chrono::milliseconds(static_cast<long long>(
            static_cast<double>(backoff.count()) *
            std::max(1.0, retry.backoff_multiplier))),
        retry.max_backoff);
    backoff = std::max(backoff, std::chrono::milliseconds{1});
  }

  if (have_response) return last_response;
  throw last_error;
}

void PipeClient::restart(std::uint64_t seen_generation) {
  std::lock_guard<std::mutex> write_lock(write_mutex_);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (generation_ != seen_generation) {
      return;  // another thread already replaced this connection
    }
  }
  if (stdin_fd_ >= 0) {
    ::close(stdin_fd_);
    stdin_fd_ = -1;
  }
  bool already_reaped = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    already_reaped = reaped_;
  }
  if (pid_ > 0 && !already_reaped) {
    ::kill(static_cast<pid_t>(pid_), SIGKILL);
    int status = 0;
    ::waitpid(static_cast<pid_t>(pid_), &status, 0);
  }
  if (reader_.joinable()) reader_.join();
  if (stdout_fd_ >= 0) {
    ::close(stdout_fd_);
    stdout_fd_ = -1;
  }
  spawn();
  std::lock_guard<std::mutex> lock(mutex_);
  ++generation_;
  ++restarts_;
  cv_.notify_all();
}

int PipeClient::close_and_wait() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    closing_ = true;
  }
  {
    std::lock_guard<std::mutex> lock(write_mutex_);
    if (stdin_fd_ >= 0) {
      ::close(stdin_fd_);  // EOF = graceful drain request.
      stdin_fd_ = -1;
    }
  }
  if (reader_.joinable()) reader_.join();
  if (stdout_fd_ >= 0) {
    ::close(stdout_fd_);
    stdout_fd_ = -1;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (!reaped_) {
    int status = 0;
    ::waitpid(static_cast<pid_t>(pid_), &status, 0);
    exit_code_ = WIFEXITED(status) ? WEXITSTATUS(status) : -WTERMSIG(status);
    reaped_ = true;
  }
  return exit_code_;
}

void PipeClient::kill_server() {
  if (pid_ > 0) ::kill(static_cast<pid_t>(pid_), SIGKILL);
}

std::uint64_t PipeClient::restarts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return restarts_;
}

bool PipeClient::circuit_open() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return options_.retry.circuit_threshold > 0 &&
         consecutive_deaths_ >= options_.retry.circuit_threshold &&
         std::chrono::steady_clock::now() < circuit_open_until_;
}

}  // namespace gmd::service
