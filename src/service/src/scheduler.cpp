#include "gmd/service/scheduler.hpp"

#include "gmd/common/error.hpp"

namespace gmd::service {

Scheduler::Scheduler(const Options& options)
    : pool_(options.num_threads),
      queue_(options.max_queue_depth, /*num_lanes=*/2) {
  // One pump per pool worker: each loops popping tasks until the queue
  // closes and drains, so shutdown() leaves no accepted task behind.
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    pool_.submit([this] {
      while (auto task = queue_.pop()) {
        try {
          (*task)();
        } catch (...) {
          // Handlers are wrapped to respond instead of throw; a stray
          // exception must not kill the pump.
        }
        executed_.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
}

Scheduler::~Scheduler() { shutdown(); }

void Scheduler::submit(Priority priority, std::function<void()> task) {
  using Push = BoundedPriorityQueue<std::function<void()>>::Push;
  switch (queue_.try_push(static_cast<std::size_t>(priority),
                          std::move(task))) {
    case Push::kAccepted:
      accepted_.fetch_add(1, std::memory_order_relaxed);
      return;
    case Push::kFull:
      rejected_.fetch_add(1, std::memory_order_relaxed);
      throw Error(ErrorCode::kOverloaded,
                  "request queue is full (" +
                      std::to_string(queue_.capacity()) +
                      " pending); retry later");
    case Push::kClosed:
      throw Error(ErrorCode::kCancelled, "scheduler is draining");
  }
}

void Scheduler::shutdown() {
  if (shut_down_.exchange(true)) return;
  queue_.close();
  pool_.wait();
}

Scheduler::Stats Scheduler::stats() const {
  Stats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.rejected = rejected_.load(std::memory_order_relaxed);
  stats.executed = executed_.load(std::memory_order_relaxed);
  stats.queue_depth = queue_.size();
  return stats;
}

}  // namespace gmd::service
