#include "gmd/service/service.hpp"

#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "gmd/common/error.hpp"
#include "gmd/common/faultinject.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/recommend.hpp"
#include "gmd/memsim/metrics.hpp"

namespace gmd::service {

namespace {

dse::MemoryKind parse_kind(const std::string& kind) {
  if (kind == "dram") return dse::MemoryKind::kDram;
  if (kind == "nvm") return dse::MemoryKind::kNvm;
  if (kind == "hybrid") return dse::MemoryKind::kHybrid;
  throw Error(ErrorCode::kInvalidData,
              "unknown memory kind '" + kind + "' (dram|nvm|hybrid)");
}

std::uint32_t parse_u32(const Json& object, const std::string& key,
                        std::uint32_t fallback) {
  const Json& field = object.at(key);
  if (field.is_null()) return fallback;
  const double value = field.as_number();
  GMD_REQUIRE_AS(ErrorCode::kInvalidData,
                 value >= 0 && value <= 4294967295.0 &&
                     value == static_cast<std::uint32_t>(value),
                 "field '" << key << "' must be an unsigned integer");
  return static_cast<std::uint32_t>(value);
}

Json error_json(const Json& id, ErrorCode code, const std::string& message) {
  Json response;
  response["id"] = id;
  response["ok"] = false;
  Json error;
  error["code"] = std::string(to_string(code));
  error["message"] = message;
  response["error"] = std::move(error);
  return response;
}

/// Error codes that indicate the *resource* (store bytes, model
/// artifact) is bad, as opposed to the request being malformed or the
/// budget expiring — only these trigger quarantine.
bool is_resource_fault(ErrorCode code) {
  return code == ErrorCode::kTrace || code == ErrorCode::kIo ||
         code == ErrorCode::kInvalidData;
}

Json metrics_to_json(const dse::MetricsRow& row) {
  Json metrics;
  const auto& names = memsim::MemoryMetrics::metric_names();
  const std::vector<double> values = row.metrics.metric_values();
  for (std::size_t m = 0; m < names.size(); ++m) {
    metrics[names[m]] = values[m];
  }
  return metrics;
}

Json ci_to_json(const dse::MetricsRow& row) {
  Json::Array ci;
  const auto& names = memsim::MemoryMetrics::metric_names();
  for (std::size_t m = 0; m < row.metric_ci.size(); ++m) {
    Json interval;
    interval["metric"] = m < names.size() ? Json(names[m]) : Json(m);
    interval["lo"] = row.metric_ci[m].lo;
    interval["hi"] = row.metric_ci[m].hi;
    ci.push_back(std::move(interval));
  }
  return Json(std::move(ci));
}

}  // namespace

Json design_point_to_json(const dse::DesignPoint& point) {
  Json json;
  json["kind"] = to_string(point.kind);
  json["cpu_freq_mhz"] = point.cpu_freq_mhz;
  json["ctrl_freq_mhz"] = point.ctrl_freq_mhz;
  json["channels"] = point.channels;
  json["trcd"] = point.trcd;
  if (point.kind == dse::MemoryKind::kHybrid) {
    json["dram_fraction"] = point.dram_fraction;
  }
  json["id"] = point.id();
  return json;
}

dse::DesignPoint parse_design_point(const Json& json) {
  GMD_REQUIRE_AS(ErrorCode::kInvalidData, json.is_object(),
                 "design point must be a JSON object");
  dse::DesignPoint point;
  point.kind = parse_kind(json.string_or("kind", "dram"));
  point.cpu_freq_mhz = parse_u32(json, "cpu_freq_mhz", point.cpu_freq_mhz);
  point.ctrl_freq_mhz = parse_u32(json, "ctrl_freq_mhz", point.ctrl_freq_mhz);
  point.channels = parse_u32(json, "channels", point.channels);
  // tRCD keeps the technology-specific default when absent: DRAM's
  // fixed 9, or the DesignPoint default for NVM/hybrid.
  point.trcd = parse_u32(json, "trcd", point.trcd);
  point.dram_fraction = json.number_or("dram_fraction", point.dram_fraction);
  return point;
}

struct Service::Request {
  Json body;
  Json id;
  std::string verb;
  std::shared_ptr<Deadline> deadline;  ///< Null: unlimited.
};

Service::Service(const ServiceOptions& options)
    : options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      scheduler_(Scheduler::Options{options.num_threads,
                                    options.max_queue_depth}) {
  traces_.set_probe_interval(options.quarantine_probe_interval);
  models_.set_probe_interval(options.quarantine_probe_interval);
}

Service::~Service() { drain(); }

void Service::drain() { scheduler_.shutdown(); }

void Service::handle_line(const std::string& line,
                          const ResponseSink& respond) {
  received_.fetch_add(1, std::memory_order_relaxed);
  Request request;
  try {
    request.body = Json::parse(line);
    GMD_REQUIRE_AS(ErrorCode::kInvalidData, request.body.is_object(),
                   "request must be a JSON object");
    request.id = request.body.at("id");
    request.verb = request.body.string_or("verb", "");
    GMD_REQUIRE_AS(ErrorCode::kInvalidData, !request.verb.empty(),
                   "request is missing 'verb'");
  } catch (const Error& e) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    respond(error_json(request.id, e.code(), e.what()).dump());
    return;
  }

  // Kept aside: the catch blocks below must echo the id even after
  // `request` was moved into a scheduler task whose admission failed.
  const Json id = request.id;

  // Synchronous verbs: registration, stats, health.  These touch no
  // simulation state and answer in request order.
  try {
    if (request.verb == "health") {
      GMD_FAULT_POINT("service.health");
      Json response = health_json();
      response["id"] = request.id;
      response["ok"] = true;
      respond(response.dump());
      completed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (request.verb == "stats") {
      GMD_FAULT_POINT("service.stats");
      Json response = stats_json();
      response["id"] = request.id;
      response["ok"] = true;
      respond(response.dump());
      completed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (request.verb == "register_trace") {
      GMD_FAULT_POINT("service.register_trace");
      const std::string alias = request.body.at("alias").as_string();
      const std::string path = request.body.at("path").as_string();
      const std::uint64_t checksum = traces_.register_store(alias, path);
      Json response;
      response["id"] = request.id;
      response["ok"] = true;
      response["alias"] = alias;
      response["checksum"] = format_checksum(checksum);
      respond(response.dump());
      completed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    if (request.verb == "register_model") {
      GMD_FAULT_POINT("service.register_model");
      const std::string name = request.body.at("name").as_string();
      const std::string path = request.body.at("path").as_string();
      const std::string family = models_.register_model(name, path);
      Json response;
      response["id"] = request.id;
      response["ok"] = true;
      response["name"] = name;
      response["family"] = family;
      respond(response.dump());
      completed_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    GMD_REQUIRE_AS(ErrorCode::kInvalidData,
                   request.verb == "simulate" || request.verb == "predict" ||
                       request.verb == "recommend",
                   "unknown verb '" << request.verb << "'");

    // Async verbs: the deadline starts at admission, so time spent
    // queued counts against the request's budget.
    double deadline_ms = request.body.number_or(
        "deadline_ms", static_cast<double>(options_.default_deadline.count()));
    GMD_REQUIRE_AS(ErrorCode::kInvalidData, deadline_ms >= 0,
                   "'deadline_ms' must be non-negative");
    if (deadline_ms > 0) {
      request.deadline = std::make_shared<Deadline>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::duration<double, std::milli>(deadline_ms)));
    }
    const std::string priority_name = request.body.string_or(
        "priority", request.verb == "simulate" ? "bulk" : "interactive");
    GMD_REQUIRE_AS(ErrorCode::kInvalidData,
                   priority_name == "interactive" || priority_name == "bulk",
                   "unknown priority '" << priority_name << "'");
    const Priority priority = priority_name == "interactive"
                                  ? Priority::kInteractive
                                  : Priority::kBulk;

    scheduler_.submit(priority,
                      [this, request = std::move(request), respond]() mutable {
                        dispatch(request, respond);
                      });
  } catch (const Error& e) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    respond(error_json(id, e.code(), e.what()).dump());
  } catch (const std::exception& e) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    respond(error_json(id, ErrorCode::kUnspecified, e.what()).dump());
  }
}

std::string Service::handle(const std::string& line) {
  std::promise<std::string> promise;
  auto future = promise.get_future();
  handle_line(line, [&promise](std::string response) {
    promise.set_value(std::move(response));
  });
  return future.get();
}

void Service::dispatch(const Request& request, const ResponseSink& respond) {
  try {
    Deadline* deadline = request.deadline.get();
    // A request that spent its whole budget queued is a timeout, not a
    // simulation: reject before touching any trace.
    if (deadline != nullptr) deadline->check_now();
    const std::string fault_site = "service." + request.verb;
    GMD_FAULT_POINT(fault_site);

    Json response;
    if (request.verb == "simulate") {
      response = run_simulate(request, deadline);
    } else if (request.verb == "predict") {
      response = run_predict(request, deadline);
    } else {
      response = run_recommend(request, deadline);
    }
    response["id"] = request.id;
    response["ok"] = true;
    respond(response.dump());
    completed_.fetch_add(1, std::memory_order_relaxed);
  } catch (const Error& e) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    respond(error_json(request.id, e.code(), e.what()).dump());
  } catch (const std::exception& e) {
    failed_.fetch_add(1, std::memory_order_relaxed);
    respond(error_json(request.id, ErrorCode::kUnspecified, e.what()).dump());
  }
}

Json Service::run_simulate(const Request& request, Deadline* deadline) {
  // Parse the whole request before touching the store: a malformed
  // request is the caller's fault and must never quarantine a resource.
  const std::string trace_name = request.body.at("trace").as_string();

  dse::SimulateOptions sim;
  sim.sim_workers = options_.sim_workers;
  sim.deadline = deadline;
  const Json& sampling = request.body.at("sampling");
  if (!sampling.is_null()) {
    sim.sample_fraction = sampling.number_or("fraction", 1.0);
    sim.sample_seed =
        static_cast<std::uint64_t>(sampling.number_or("seed", 1));
    sim.sample_warmup_chunks = parse_u32(sampling, "warmup_chunks", 1);
    sim.sampling_chunk_events =
        static_cast<std::size_t>(sampling.number_or("chunk_events", 10000));
  }

  const Json& points_json = request.body.at("points");
  GMD_REQUIRE_AS(ErrorCode::kInvalidData,
                 points_json.is_array() && !points_json.as_array().empty(),
                 "'points' must be a non-empty array");
  std::vector<dse::DesignPoint> points;
  points.reserve(points_json.as_array().size());
  for (const Json& p : points_json.as_array()) {
    points.push_back(parse_design_point(p));
  }

  // From here on a kTrace/kIo/kInvalidData failure means the store's
  // bytes are bad (checksum mismatch, truncated mapping, torn file):
  // quarantine it so subsequent requests fail fast with "unavailable"
  // instead of re-reading rotten data, then surface the original error.
  const auto store = traces_.find(trace_name);
  const std::uint64_t checksum = store->content_checksum();
  try {
    Json::Array rows;
    std::uint64_t hits = 0;
    for (const dse::DesignPoint& point : points) {
      if (deadline != nullptr) deadline->check_now();
      const std::uint64_t key = simulate_cache_key(checksum, point, sim);
      ResultCache::Row row = cache_.get(key);
      const bool cached = row != nullptr;
      if (!cached) {
        dse::SimulateOptions options = sim;
        // Warm feeds: exhaustive single-technology points replay the
        // shared predecoded stream; hybrid points share one decoded
        // event vector.  Sampled points stream the store's own chunks.
        std::shared_ptr<const memsim::PredecodedTrace> predecoded;
        std::shared_ptr<const std::vector<cpusim::MemoryEvent>> raw;
        if (point.kind == dse::MemoryKind::kHybrid) {
          raw = traces_.raw_events(*store);
          options.raw_events = *raw;
        } else if (options.sample_fraction >= 1.0) {
          dse::validate(point);  // Before spending a predecode on it.
          predecoded = traces_.predecoded(*store, point.single_config());
          options.predecoded = predecoded.get();
        }
        row = std::make_shared<const dse::MetricsRow>(
            dse::simulate_point(*store, point, options));
        cache_.put(key, row);
      } else {
        ++hits;
      }
      Json row_json;
      row_json["point"] = design_point_to_json(point);
      row_json["metrics"] = metrics_to_json(*row);
      if (row->sampled()) row_json["ci"] = ci_to_json(*row);
      row_json["cached"] = cached;
      rows.push_back(std::move(row_json));
    }

    Json response;
    response["trace"] = format_checksum(checksum);
    response["rows"] = Json(std::move(rows));
    response["cache_hits"] = hits;
    return response;
  } catch (const Error& e) {
    if (is_resource_fault(e.code())) {
      traces_.quarantine(trace_name, e.code(), e.what());
    }
    throw;
  }
}

Json Service::run_predict(const Request& request, Deadline* deadline) {
  // Request parsing first — it must never quarantine the model.
  const std::string model_name = request.body.at("model").as_string();
  const Json& points_json = request.body.at("points");
  GMD_REQUIRE_AS(ErrorCode::kInvalidData, points_json.is_array(),
                 "'points' must be an array");
  std::vector<dse::DesignPoint> points;
  points.reserve(points_json.as_array().size());
  for (const Json& p : points_json.as_array()) {
    points.push_back(parse_design_point(p));
  }

  const auto model = models_.find(model_name);
  if (deadline != nullptr) deadline->check_now();

  try {
    GMD_FAULT_POINT("service.model_predict");
    // One matrix build + one batch inference for the whole request.
    const std::vector<double> values = model->predict(points);
    Json::Array values_json(values.begin(), values.end());

    Json response;
    response["model"] = model_name;
    response["family"] = model->model->name();
    response["values"] = Json(std::move(values_json));
    return response;
  } catch (const Error& e) {
    if (is_resource_fault(e.code())) {
      models_.quarantine(model_name, e.code(), e.what());
    }
    throw;
  }
}

Json Service::run_recommend(const Request& request, Deadline* deadline) {
  const std::string metric = request.body.at("metric").as_string();
  const dse::Direction direction = dse::metric_direction(metric);
  const std::string model_name = request.body.at("model").as_string();
  const auto model = models_.find(model_name);

  std::vector<dse::DesignPoint> candidates;
  const Json& points_json = request.body.at("points");
  if (points_json.is_null()) {
    candidates = dse::paper_design_space();  // The paper's 416 points.
  } else {
    GMD_REQUIRE_AS(ErrorCode::kInvalidData,
                   points_json.is_array() && !points_json.as_array().empty(),
                   "'points' must be a non-empty array");
    candidates.reserve(points_json.as_array().size());
    for (const Json& p : points_json.as_array()) {
      candidates.push_back(parse_design_point(p));
    }
  }
  if (deadline != nullptr) deadline->check_now();

  try {
    GMD_FAULT_POINT("service.model_predict");
    const std::vector<double> values = model->predict(candidates);
    std::size_t best = 0;
    for (std::size_t i = 1; i < values.size(); ++i) {
      const bool better = direction == dse::Direction::kMinimize
                              ? values[i] < values[best]
                              : values[i] > values[best];
      if (better) best = i;
    }

    Json response;
    response["metric"] = metric;
    response["direction"] =
        direction == dse::Direction::kMinimize ? "minimize" : "maximize";
    response["model"] = model_name;
    response["best"] = design_point_to_json(candidates[best]);
    response["value"] = values[best];
    response["candidates"] = candidates.size();
    return response;
  } catch (const Error& e) {
    if (is_resource_fault(e.code())) {
      models_.quarantine(model_name, e.code(), e.what());
    }
    throw;
  }
}

Json Service::stats_json() const {
  Json stats;
  const ResultCache::Stats cache = cache_.stats();
  Json cache_json;
  cache_json["hits"] = cache.hits;
  cache_json["misses"] = cache.misses;
  cache_json["evictions"] = cache.evictions;
  cache_json["entries"] = cache.entries;
  cache_json["capacity"] = cache.capacity;
  cache_json["hit_rate"] = cache.hit_rate();
  stats["cache"] = std::move(cache_json);

  const Scheduler::Stats sched = scheduler_.stats();
  Json sched_json;
  sched_json["accepted"] = sched.accepted;
  sched_json["rejected"] = sched.rejected;
  sched_json["executed"] = sched.executed;
  sched_json["queue_depth"] = sched.queue_depth;
  sched_json["max_queue_depth"] = scheduler_.max_queue_depth();
  sched_json["threads"] = scheduler_.num_threads();
  stats["scheduler"] = std::move(sched_json);

  Json requests;
  requests["received"] = received_.load(std::memory_order_relaxed);
  requests["completed"] = completed_.load(std::memory_order_relaxed);
  requests["failed"] = failed_.load(std::memory_order_relaxed);
  stats["requests"] = std::move(requests);

  stats["traces"] = traces_.size();
  stats["cached_feeds"] = traces_.cached_feeds();
  stats["models"] = models_.size();
  return stats;
}

Json Service::health_json() {
  // Health polls double as the periodic prober: any quarantined
  // resource whose interval elapsed gets one recovery attempt here, so
  // a store restored on disk comes back without an explicit nudge.
  traces_.probe_due();
  models_.probe_due();

  Json response;
  Json::Array resources;
  const auto add = [&resources](const std::string& type,
                                const QuarantinedResource& info) {
    Json resource;
    resource["type"] = type;
    resource["name"] = info.name;
    resource["status"] = "quarantined";
    resource["code"] = std::string(to_string(info.code));
    resource["reason"] = info.reason;
    resource["probes"] = info.probes;
    resources.push_back(std::move(resource));
  };
  const auto quarantined_traces = traces_.quarantined();
  const auto quarantined_models = models_.quarantined();
  for (const auto& info : quarantined_traces) add("trace", info);
  for (const auto& info : quarantined_models) add("model", info);

  const bool degraded =
      !quarantined_traces.empty() || !quarantined_models.empty();
  response["status"] =
      draining() ? "draining" : (degraded ? "degraded" : "ok");
  response["traces"] = traces_.size();
  response["models"] = models_.size();
  response["quarantined"] = resources.size();
  if (!resources.empty()) response["resources"] = Json(std::move(resources));
  return response;
}

}  // namespace gmd::service
