#include "gmd/service/model_registry.hpp"

#include "gmd/common/error.hpp"

namespace gmd::service {

std::string ModelRegistry::register_model(const std::string& name,
                                          const std::string& path) {
  GMD_REQUIRE_AS(ErrorCode::kConfig, !name.empty(),
                 "model name must be non-empty");
  // Load outside the lock; a slow disk never blocks lookups.
  auto model = std::make_shared<dse::SurrogateSuite::DeployedModel>(
      dse::SurrogateSuite::DeployedModel::load_file(path));
  const std::string family = model->model->name();
  std::lock_guard<std::mutex> lock(mutex_);
  models_[name] = std::move(model);
  return family;
}

void ModelRegistry::register_model(const std::string& name,
                                   dse::SurrogateSuite::DeployedModel model) {
  GMD_REQUIRE_AS(ErrorCode::kConfig, !name.empty(),
                 "model name must be non-empty");
  GMD_REQUIRE_AS(ErrorCode::kConfig,
                 model.model != nullptr && model.model->is_fitted(),
                 "cannot register an unfitted model as '" << name << "'");
  auto shared = std::make_shared<const dse::SurrogateSuite::DeployedModel>(
      std::move(model));
  std::lock_guard<std::mutex> lock(mutex_);
  models_[name] = std::move(shared);
}

std::shared_ptr<const dse::SurrogateSuite::DeployedModel> ModelRegistry::find(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (const auto it = models_.find(name); it != models_.end()) {
    return it->second;
  }
  std::string known;
  for (const auto& [model_name, model] : models_) {
    if (!known.empty()) known += ", ";
    known += model_name;
  }
  throw Error(ErrorCode::kNotFound,
              "model '" + name + "' is not registered (known: " +
                  (known.empty() ? "none" : known) + ")");
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, model] : models_) out.push_back(name);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return models_.size();
}

}  // namespace gmd::service
