#include "gmd/service/model_registry.hpp"

#include "gmd/common/error.hpp"

namespace gmd::service {

std::string ModelRegistry::register_model(const std::string& name,
                                          const std::string& path) {
  GMD_REQUIRE_AS(ErrorCode::kConfig, !name.empty(),
                 "model name must be non-empty");
  // Load outside the lock; a slow disk never blocks lookups.
  auto model = std::make_shared<dse::SurrogateSuite::DeployedModel>(
      dse::SurrogateSuite::DeployedModel::load_file(path));
  const std::string family = model->model->name();
  std::lock_guard<std::mutex> lock(mutex_);
  // Explicit re-registration is manual recovery: it clears quarantine.
  quarantined_.erase(name);
  models_[name] = std::move(model);
  paths_[name] = path;
  return family;
}

void ModelRegistry::register_model(const std::string& name,
                                   dse::SurrogateSuite::DeployedModel model) {
  GMD_REQUIRE_AS(ErrorCode::kConfig, !name.empty(),
                 "model name must be non-empty");
  GMD_REQUIRE_AS(ErrorCode::kConfig,
                 model.model != nullptr && model.model->is_fitted(),
                 "cannot register an unfitted model as '" << name << "'");
  auto shared = std::make_shared<const dse::SurrogateSuite::DeployedModel>(
      std::move(model));
  std::lock_guard<std::mutex> lock(mutex_);
  quarantined_.erase(name);
  models_[name] = std::move(shared);
  paths_.erase(name);  // in-process: no artifact to re-probe from
}

std::shared_ptr<const dse::SurrogateSuite::DeployedModel> ModelRegistry::find(
    const std::string& name) {
  // At most one inline recovery attempt, exactly like TraceLibrary.
  for (int round = 0; round < 2; ++round) {
    bool probe_due_now = false;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (const auto it = models_.find(name); it != models_.end()) {
        return it->second;
      }
      const auto qit = quarantined_.find(name);
      if (qit == quarantined_.end()) {
        std::string known;
        for (const auto& [model_name, model] : models_) {
          if (!known.empty()) known += ", ";
          known += model_name;
        }
        throw Error(ErrorCode::kNotFound,
                    "model '" + name + "' is not registered (known: " +
                        (known.empty() ? "none" : known) + ")");
      }
      probe_due_now =
          round == 0 &&
          std::chrono::steady_clock::now() >= qit->second.next_probe;
      if (!probe_due_now) {
        throw Error(ErrorCode::kUnavailable,
                    "model '" + name + "' is quarantined (" +
                        std::string(to_string(qit->second.info.code)) + ": " +
                        qit->second.info.reason + ")");
      }
    }
    if (!try_probe(name)) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (const auto it = quarantined_.find(name); it != quarantined_.end()) {
        throw Error(ErrorCode::kUnavailable,
                    "model '" + name + "' is quarantined (" +
                        std::string(to_string(it->second.info.code)) + ": " +
                        it->second.info.reason + ")");
      }
      // Raced with a restore; retry the lookup.
    }
  }
  throw Error(ErrorCode::kUnavailable, "model '" + name + "' is unavailable");
}

bool ModelRegistry::quarantine(const std::string& name, ErrorCode code,
                               const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = models_.find(name);
  if (it == models_.end()) {
    if (const auto qit = quarantined_.find(name); qit != quarantined_.end()) {
      qit->second.info.code = code;
      qit->second.info.reason = reason;
    }
    return false;
  }
  Quarantine q;
  const auto pit = paths_.find(name);
  q.info = QuarantinedResource{
      name, pit != paths_.end() ? pit->second : std::string(), code, reason, 0};
  q.next_probe = std::chrono::steady_clock::now() + probe_interval_;
  quarantined_[name] = std::move(q);
  models_.erase(it);
  return true;
}

void ModelRegistry::set_probe_interval(std::chrono::milliseconds interval) {
  std::lock_guard<std::mutex> lock(mutex_);
  probe_interval_ = interval;
}

bool ModelRegistry::try_probe(const std::string& name) {
  std::string path;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = quarantined_.find(name);
    if (it == quarantined_.end()) return models_.count(name) > 0;
    const auto now = std::chrono::steady_clock::now();
    if (now < it->second.next_probe) return false;
    it->second.next_probe = now + probe_interval_;
    ++it->second.info.probes;
    path = it->second.info.path;
    if (path.empty()) {
      // In-process model: nothing on disk to reload.  Only an explicit
      // re-registration recovers it.
      it->second.info.reason =
          "registered in-process; re-register to recover";
      return false;
    }
  }
  try {
    auto model = std::make_shared<const dse::SurrogateSuite::DeployedModel>(
        dse::SurrogateSuite::DeployedModel::load_file(path));
    std::lock_guard<std::mutex> lock(mutex_);
    quarantined_.erase(name);
    models_[name] = std::move(model);
    return true;
  } catch (const Error& e) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = quarantined_.find(name); it != quarantined_.end()) {
      it->second.info.code = e.code();
      it->second.info.reason = e.what();
    }
    return false;
  }
}

std::size_t ModelRegistry::probe_due() {
  std::vector<std::string> due;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto now = std::chrono::steady_clock::now();
    for (const auto& [name, q] : quarantined_) {
      if (now >= q.next_probe) due.push_back(name);
    }
  }
  std::size_t restored = 0;
  for (const std::string& name : due) {
    if (try_probe(name)) ++restored;
  }
  return restored;
}

std::vector<QuarantinedResource> ModelRegistry::quarantined() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<QuarantinedResource> out;
  out.reserve(quarantined_.size());
  for (const auto& [name, q] : quarantined_) out.push_back(q.info);
  return out;
}

std::size_t ModelRegistry::quarantined_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return quarantined_.size();
}

std::vector<std::string> ModelRegistry::names() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(models_.size());
  for (const auto& [name, model] : models_) out.push_back(name);
  return out;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return models_.size();
}

}  // namespace gmd::service
