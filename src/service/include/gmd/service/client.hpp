#pragma once

/// \file client.hpp
/// Pipe client for the query service daemon: forks/execs a gmd_serve
/// binary with its stdin/stdout tied to this process, assigns each
/// request a numeric id, and matches response lines back to callers —
/// so many threads can issue requests concurrently over the one pipe
/// pair and block only on their own answers (responses may arrive in
/// any order).  close_and_wait() closes the server's stdin, which is
/// the protocol's graceful-drain signal, and reaps the child.
///
/// Resilience: a server death (EOF, torn response line, broken pipe)
/// fails every in-flight request with a *typed* error instead of
/// blocking waiters — kUnavailable for a closed pipe, kIo for a torn
/// line.  request_with_retry() adds bounded retry with exponential
/// backoff + deterministic jitter for `overloaded`/`unavailable`
/// responses and transport deaths (never for `invalid-data`), budget
/// accounting that caps each attempt's deadline_ms by the remaining
/// retry budget, optional transparent server respawn, and a circuit
/// breaker that fast-fails after consecutive server deaths.  The first
/// client constructed ignores SIGPIPE process-wide: a write to a dead
/// server must fail with a typed error, not kill the process.

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gmd/common/error.hpp"
#include "gmd/service/json.hpp"

namespace gmd::service {

class PipeClient {
 public:
  struct RetryOptions {
    /// Total attempts per request_with_retry call (1 = no retry).
    int max_attempts = 1;
    std::chrono::milliseconds initial_backoff{10};
    std::chrono::milliseconds max_backoff{1000};
    double backoff_multiplier = 2.0;
    /// Seed for deterministic jitter (uniform in [0, backoff/2]).
    std::uint64_t jitter_seed = 1;
    /// Respawn the server (same path + args) after a transport death
    /// and retry transparently.  Off: the first death propagates.
    bool restart_on_death = false;
    /// Wall-clock budget across all attempts; each attempt's
    /// "deadline_ms" is capped by what remains.  Zero: unlimited.
    std::chrono::milliseconds budget{0};
    /// Consecutive server deaths that open the circuit breaker; while
    /// open, requests fast-fail kUnavailable without touching the pipe.
    /// After `circuit_cooldown` one probe attempt is allowed through.
    int circuit_threshold = 3;
    std::chrono::milliseconds circuit_cooldown{1000};
  };

  struct Options {
    std::string server_path;        ///< Executable to fork/exec.
    std::vector<std::string> args;  ///< argv[1..] for the server.
    RetryOptions retry;             ///< Policy for request_with_retry().
  };

  /// Spawns the server; throws Error(kIo) when exec/plumbing fails.
  explicit PipeClient(const Options& options);
  /// Kills the server if still running (prefer close_and_wait()).
  ~PipeClient();

  PipeClient(const PipeClient&) = delete;
  PipeClient& operator=(const PipeClient&) = delete;

  /// Sends `body` (its "id" is overwritten with a fresh client id) and
  /// returns the id to wait on.  Thread-safe.  Throws
  /// Error(kUnavailable) when the server is dead or the circuit is open.
  std::uint64_t send(Json body);

  /// Blocks until the response for `id` arrives.  Throws the typed
  /// error recorded when the connection died mid-request (kUnavailable
  /// for EOF/broken pipe, kIo for a torn response line).
  Json wait(std::uint64_t id);

  /// send + wait.
  Json request(Json body);

  /// request() under Options::retry: retries `overloaded`/`unavailable`
  /// error responses and transport deaths with exponential backoff +
  /// jitter, respawning the server when restart_on_death is set.  Never
  /// retries other error codes (notably `invalid-data`).  Returns the
  /// final response (ok or non-retryable/attempts-exhausted error);
  /// throws typed Error when the transport is still down after the last
  /// attempt, the circuit is open, or the budget is exhausted.
  /// `attempts_out` (optional) reports how many attempts were made.
  Json request_with_retry(Json body, int* attempts_out = nullptr);

  /// Closes the server's stdin (graceful drain), waits for every
  /// outstanding response, joins the reader, reaps the child.  Returns
  /// the server's exit code.  Idempotent (returns the same code).
  int close_and_wait();

  /// SIGKILLs the server without reaping (chaos tests: the reader sees
  /// EOF and fails in-flight requests exactly like a real crash).
  void kill_server();

  long long server_pid() const { return pid_; }
  /// Completed transparent respawns (restart_on_death).
  std::uint64_t restarts() const;
  /// True while the circuit breaker is fast-failing requests.
  bool circuit_open() const;

 private:
  void spawn();
  /// Respawns the server unless another thread already did (generation
  /// check) — at most one restart per observed death.
  void restart(std::uint64_t seen_generation);
  void reader_loop(int fd);
  void fail_pending_locked(ErrorCode code, const std::string& reason);
  void record_death_locked();
  void check_circuit_locked();

  Options options_;

  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  long long pid_ = -1;
  int exit_code_ = -1;
  bool reaped_ = false;

  std::mutex write_mutex_;  ///< Serializes writes and restarts.

  mutable std::mutex mutex_;  ///< Guards the response/pending state.
  std::condition_variable cv_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Json> responses_;
  std::set<std::uint64_t> pending_;  ///< Sent, not yet answered/failed.
  /// Requests failed by a connection death, keyed by id: the typed
  /// error wait() must throw for them.
  std::map<std::uint64_t, std::pair<ErrorCode, std::string>> failed_;
  bool reader_done_ = false;
  bool closing_ = false;  ///< Drain in progress: EOF is not a death.
  std::uint64_t generation_ = 0;  ///< Bumped by each restart.
  std::uint64_t restarts_ = 0;
  int consecutive_deaths_ = 0;
  std::chrono::steady_clock::time_point circuit_open_until_{};

  std::thread reader_;
};

}  // namespace gmd::service
