#pragma once

/// \file client.hpp
/// Pipe client for the query service daemon: forks/execs a gmd_serve
/// binary with its stdin/stdout tied to this process, assigns each
/// request a numeric id, and matches response lines back to callers —
/// so many threads can issue requests concurrently over the one pipe
/// pair and block only on their own answers (responses may arrive in
/// any order).  close_and_wait() closes the server's stdin, which is
/// the protocol's graceful-drain signal, and reaps the child.

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gmd/service/json.hpp"

namespace gmd::service {

class PipeClient {
 public:
  struct Options {
    std::string server_path;         ///< Executable to fork/exec.
    std::vector<std::string> args;   ///< argv[1..] for the server.
  };

  /// Spawns the server; throws Error(kIo) when exec/plumbing fails.
  explicit PipeClient(const Options& options);
  /// Kills the server if still running (prefer close_and_wait()).
  ~PipeClient();

  PipeClient(const PipeClient&) = delete;
  PipeClient& operator=(const PipeClient&) = delete;

  /// Sends `body` (its "id" is overwritten with a fresh client id) and
  /// returns the id to wait on.  Thread-safe.
  std::uint64_t send(Json body);

  /// Blocks until the response for `id` arrives.  Throws Error(kIo)
  /// when the server exits before answering.
  Json wait(std::uint64_t id);

  /// send + wait.
  Json request(Json body);

  /// Closes the server's stdin (graceful drain), waits for every
  /// outstanding response, joins the reader, reaps the child.  Returns
  /// the server's exit code.  Idempotent (returns the same code).
  int close_and_wait();

 private:
  void reader_loop();
  void fail_pending_locked(const std::string& reason);

  int stdin_fd_ = -1;
  int stdout_fd_ = -1;
  long long pid_ = -1;
  int exit_code_ = -1;
  bool reaped_ = false;

  std::mutex write_mutex_;

  std::mutex mutex_;               ///< Guards the response/pending state.
  std::condition_variable cv_;
  std::uint64_t next_id_ = 1;
  std::map<std::uint64_t, Json> responses_;
  bool reader_done_ = false;
  std::string failure_;            ///< Non-empty once the pipe broke.

  std::thread reader_;
};

}  // namespace gmd::service
