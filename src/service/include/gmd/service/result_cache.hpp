#pragma once

/// \file result_cache.hpp
/// Bounded sharded LRU over simulation results.  Keys are FNV-1a 64 of
/// (trace content checksum, canonical DesignPoint bytes, sampling
/// geometry); values are the complete MetricsRow, shared so a cache hit
/// is an O(1) pointer copy and bit-identical to the fresh simulation
/// that populated it.  Fields that never change results (sim_workers,
/// warm feeds) are excluded from the key — mirroring the sweep
/// checkpoint identity — and the sampling geometry is mixed in only
/// when sampling is actually on, so an exhaustive request hits the same
/// entry no matter what dormant sampling defaults rode along.

#include <cstdint>
#include <memory>

#include "gmd/common/lru_cache.hpp"
#include "gmd/dse/design_point.hpp"
#include "gmd/dse/sweep.hpp"

namespace gmd::service {

/// Cache key for one (trace, point, sampling geometry) simulation.
std::uint64_t simulate_cache_key(std::uint64_t trace_checksum,
                                 const dse::DesignPoint& point,
                                 const dse::SimulateOptions& options);

class ResultCache {
 public:
  using Row = std::shared_ptr<const dse::MetricsRow>;
  using Stats = ShardedLruCache<std::uint64_t, Row>::Stats;

  explicit ResultCache(std::size_t capacity, std::size_t num_shards = 8)
      : cache_(capacity, num_shards) {}

  Row get(std::uint64_t key) {
    auto hit = cache_.get(key);
    return hit ? std::move(*hit) : nullptr;
  }

  void put(std::uint64_t key, Row row) { cache_.put(key, std::move(row)); }

  Stats stats() const { return cache_.stats(); }
  std::size_t size() const { return cache_.size(); }
  std::size_t capacity() const { return cache_.capacity(); }
  void clear() { cache_.clear(); }

 private:
  ShardedLruCache<std::uint64_t, Row> cache_;
};

}  // namespace gmd::service
