#pragma once

/// \file json.hpp
/// Minimal JSON value type for the query service's line-oriented
/// protocol.  Self-contained (no third-party dependency): a recursive
/// variant with a strict parser and a deterministic writer — object
/// keys serialize in sorted order and doubles round-trip exactly (17
/// significant digits), so a response's text form is a stable function
/// of its value.  This is protocol plumbing, not a general JSON
/// library: numbers are IEEE doubles, and the parser rejects anything
/// the writer cannot reproduce (NaN/Inf literals, unpaired surrogates).

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <type_traits>
#include <variant>
#include <vector>

namespace gmd::service {

class Json {
 public:
  using Array = std::vector<Json>;
  /// Ordered map: dump() output is deterministic for a given value.
  using Object = std::map<std::string, Json>;

  Json() = default;
  Json(std::nullptr_t) {}
  Json(bool value) : value_(value) {}
  Json(double value) : value_(value) {}
  /// One integral constructor for every width (avoids overload
  /// ambiguity between int/int64/uint64/size_t across platforms).
  template <typename T,
            typename = std::enable_if_t<std::is_integral_v<T> &&
                                        !std::is_same_v<T, bool>>>
  Json(T value) : value_(static_cast<double>(value)) {}
  Json(const char* value) : value_(std::string(value)) {}
  Json(std::string value) : value_(std::move(value)) {}
  Json(Array value) : value_(std::move(value)) {}
  Json(Object value) : value_(std::move(value)) {}

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(value_); }
  bool is_bool() const { return std::holds_alternative<bool>(value_); }
  bool is_number() const { return std::holds_alternative<double>(value_); }
  bool is_string() const { return std::holds_alternative<std::string>(value_); }
  bool is_array() const { return std::holds_alternative<Array>(value_); }
  bool is_object() const { return std::holds_alternative<Object>(value_); }

  /// Checked accessors; throw Error(kInvalidData) on type mismatch.
  bool as_bool() const;
  double as_number() const;
  const std::string& as_string() const;
  const Array& as_array() const;
  const Object& as_object() const;
  Array& as_array();
  Object& as_object();

  /// Object field lookup; null-typed reference when absent.
  const Json& at(const std::string& key) const;
  bool has(const std::string& key) const;
  /// Object field assignment (makes this an object if null).
  Json& operator[](const std::string& key);

  /// Convenience typed reads with defaults for optional fields; throw
  /// Error(kInvalidData) when the field is present with a wrong type.
  double number_or(const std::string& key, double fallback) const;
  std::string string_or(const std::string& key,
                        const std::string& fallback) const;
  bool bool_or(const std::string& key, bool fallback) const;

  /// Serializes on one line (no trailing newline).  Doubles print with
  /// up to 17 significant digits (exact round-trip); integral values in
  /// the safe range print without an exponent or decimal point.
  std::string dump() const;

  /// Strict parse of exactly one JSON value (trailing whitespace ok,
  /// trailing garbage rejected).  Throws Error(kInvalidData) with
  /// offset context on malformed input.
  static Json parse(std::string_view text);

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object>
      value_ = nullptr;
};

}  // namespace gmd::service
