#pragma once

/// \file model_registry.hpp
/// Deployed-surrogate registry for the query service: loads each .gmdm
/// artifact (model + scalers) once and serves it to every concurrent
/// predict request.  Batch inference through a registered model is
/// lock-free: Regressor::predict(const Matrix&) builds its inference
/// plans as stack locals, so concurrent const predicts share the model
/// without synchronization — the registry locks only the name lookup.

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gmd/dse/surrogate.hpp"
#include "gmd/service/quarantine.hpp"

namespace gmd::service {

class ModelRegistry {
 public:
  /// Loads a .gmdm artifact and registers it under `name`.  Replaces an
  /// existing registration of the same name (in-flight requests keep
  /// their shared handle).  Returns the model family name.
  std::string register_model(const std::string& name, const std::string& path);

  /// Registers an already-deployed model (e.g. trained in-process).
  void register_model(const std::string& name,
                      dse::SurrogateSuite::DeployedModel model);

  /// Throws Error(kNotFound) naming the key and registered models, or
  /// Error(kUnavailable) when the model is quarantined.  A quarantined
  /// model registered from disk is re-probed (reloaded) once per probe
  /// interval; one registered in-process can only be recovered by
  /// explicit re-registration.
  std::shared_ptr<const dse::SurrogateSuite::DeployedModel> find(
      const std::string& name);

  /// Evicts the named model from serving into the quarantined set; see
  /// TraceLibrary::quarantine for semantics.  Returns true if evicted.
  bool quarantine(const std::string& name, ErrorCode code,
                  const std::string& reason);

  /// Minimum delay between re-probe attempts (zero: probe every lookup).
  void set_probe_interval(std::chrono::milliseconds interval);

  /// Re-probes every quarantined model whose interval elapsed.  Returns
  /// the number restored to serving.
  std::size_t probe_due();

  std::vector<QuarantinedResource> quarantined() const;
  std::size_t quarantined_count() const;

  std::vector<std::string> names() const;
  std::size_t size() const;

 private:
  struct Quarantine {
    QuarantinedResource info;
    std::chrono::steady_clock::time_point next_probe;
  };

  /// Reloads the quarantined model behind `name` if its interval has
  /// elapsed.  Returns true when it was restored to serving.
  bool try_probe(const std::string& name);

  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const dse::SurrogateSuite::DeployedModel>>
      models_;
  std::map<std::string, std::string> paths_;  ///< Disk-backed models only.
  std::map<std::string, Quarantine> quarantined_;
  std::chrono::milliseconds probe_interval_{5000};
};

}  // namespace gmd::service
