#pragma once

/// \file model_registry.hpp
/// Deployed-surrogate registry for the query service: loads each .gmdm
/// artifact (model + scalers) once and serves it to every concurrent
/// predict request.  Batch inference through a registered model is
/// lock-free: Regressor::predict(const Matrix&) builds its inference
/// plans as stack locals, so concurrent const predicts share the model
/// without synchronization — the registry locks only the name lookup.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gmd/dse/surrogate.hpp"

namespace gmd::service {

class ModelRegistry {
 public:
  /// Loads a .gmdm artifact and registers it under `name`.  Replaces an
  /// existing registration of the same name (in-flight requests keep
  /// their shared handle).  Returns the model family name.
  std::string register_model(const std::string& name, const std::string& path);

  /// Registers an already-deployed model (e.g. trained in-process).
  void register_model(const std::string& name,
                      dse::SurrogateSuite::DeployedModel model);

  /// Throws Error(kNotFound) naming the key and registered models.
  std::shared_ptr<const dse::SurrogateSuite::DeployedModel> find(
      const std::string& name) const;

  std::vector<std::string> names() const;
  std::size_t size() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::shared_ptr<const dse::SurrogateSuite::DeployedModel>>
      models_;
};

}  // namespace gmd::service
