#pragma once

/// \file scheduler.hpp
/// Admission-controlled request scheduler: a bounded two-lane priority
/// queue (interactive ahead of bulk) pumped by the shared gmd
/// ThreadPool.  submit() never blocks — a full queue is a typed
/// Error(kOverloaded) the caller turns into a protocol-level rejection,
/// which is the backpressure story: the service sheds load instead of
/// growing an unbounded backlog.  shutdown() closes admission, lets
/// every accepted task drain, and joins the pump tasks.

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "gmd/common/thread_pool.hpp"
#include "gmd/common/work_queue.hpp"

namespace gmd::service {

/// Request priority classes: lane order is drain order.
enum class Priority : std::size_t {
  kInteractive = 0,  ///< predict / recommend / small simulate.
  kBulk = 1,         ///< batch simulate.
};

class Scheduler {
 public:
  struct Options {
    std::size_t num_threads = 0;  ///< 0: hardware concurrency.
    /// Maximum queued (admitted, not yet running) tasks across both
    /// lanes; submissions beyond it throw Error(kOverloaded).
    std::size_t max_queue_depth = 256;
  };

  explicit Scheduler(const Options& options);
  Scheduler() : Scheduler(Options{}) {}
  /// Drains and joins (equivalent to shutdown()).
  ~Scheduler();

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Enqueues `task` on the lane for `priority`.  Throws
  /// Error(kOverloaded) when the queue is full and Error(kCancelled)
  /// after shutdown began.  Tasks must not throw; a throwing task is
  /// swallowed (the pump logs nothing and keeps serving) — wrap
  /// handlers so errors become responses instead.
  void submit(Priority priority, std::function<void()> task);

  /// Graceful drain: stops admission, runs every already-accepted
  /// task, then joins the pumps.  Idempotent; safe to call once from
  /// any thread.
  void shutdown();

  std::size_t num_threads() const { return pool_.size(); }
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t max_queue_depth() const { return queue_.capacity(); }
  bool draining() const { return queue_.closed(); }

  struct Stats {
    std::uint64_t accepted = 0;
    std::uint64_t rejected = 0;  ///< Admission-control rejections.
    std::uint64_t executed = 0;
    std::size_t queue_depth = 0;
  };
  Stats stats() const;

 private:
  ThreadPool pool_;
  BoundedPriorityQueue<std::function<void()>> queue_;
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> executed_{0};
  std::atomic<bool> shut_down_{false};
};

}  // namespace gmd::service
