#pragma once

/// \file quarantine.hpp
/// Shared quarantine record for service resource registries.
///
/// A trace store or model that fails checksum/load/use is *quarantined*
/// rather than retried inline: it is evicted from the serving maps into
/// a quarantined set, requests naming it fail fast with a typed
/// `kUnavailable` carrying the original failure, and the resource is
/// re-probed at most once per probe interval (lazily, on lookup or on a
/// `health` poll — never in a hot loop).  A probe that succeeds
/// restores the resource to serving; one that fails re-arms the
/// interval.

#include <cstdint>
#include <string>

#include "gmd/common/error.hpp"

namespace gmd::service {

/// One quarantined resource, as reported by the `health` verb.
struct QuarantinedResource {
  std::string name;  ///< Alias (trace) or registered name (model).
  std::string path;  ///< On-disk artifact probed for recovery.
  ErrorCode code = ErrorCode::kUnavailable;  ///< Original failure code.
  std::string reason;                        ///< Original failure message.
  std::uint64_t probes = 0;  ///< Completed re-probe attempts.
};

}  // namespace gmd::service
