#pragma once

/// \file service.hpp
/// The long-lived DSE query service: one resident process holds mmapped
/// traces (TraceLibrary), deployed surrogates (ModelRegistry), and a
/// bounded result cache (ResultCache), and answers line-oriented JSON
/// requests scheduled over the shared thread pool with per-request
/// deadlines and admission control (Scheduler).
///
/// Protocol (one JSON object per line, responses matched by echoed
/// "id"; responses may arrive out of request order):
///
///   {"verb":"simulate","id":1,"trace":"bfs","points":[{...}],
///    "sampling":{"fraction":0.25,"seed":7},"deadline_ms":5000}
///   {"verb":"predict","id":2,"model":"bw","points":[{...},{...}]}
///   {"verb":"recommend","id":3,"metric":"bandwidth_mbs","model":"bw"}
///   {"verb":"register_trace","alias":"bfs","path":"t.gmdt"}
///   {"verb":"register_model","name":"bw","path":"bw.gmdm"}
///   {"verb":"stats"}   {"verb":"health"}
///
/// Success: {"id":...,"ok":true,...}.  Failure: {"id":...,"ok":false,
/// "error":{"code":"overloaded"|"not-found"|"timeout"|...,"message":..}}.
/// Admission control rejects work beyond the queue bound with code
/// "overloaded" instead of queueing unboundedly; a request whose
/// deadline expires while queued or running fails with "timeout".
/// Simulation answers are cached: a hit returns the identical bits the
/// fresh simulation produced, flagged "cached":true.
///
/// Self-healing: a trace store or model that fails checksum/load/use is
/// quarantined (evicted from serving, re-probed at most once per
/// ServiceOptions::quarantine_probe_interval); requests naming it fail
/// fast with code "unavailable" while every other resource keeps
/// serving.  `health` reports "ok" | "degraded" (something is
/// quarantined) | "draining" with per-resource detail.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>

#include "gmd/service/json.hpp"
#include "gmd/service/model_registry.hpp"
#include "gmd/service/result_cache.hpp"
#include "gmd/service/scheduler.hpp"
#include "gmd/service/trace_library.hpp"

namespace gmd::service {

struct ServiceOptions {
  std::size_t num_threads = 0;        ///< Worker pool size (0: hardware).
  std::size_t max_queue_depth = 256;  ///< Admission bound (see Scheduler).
  std::size_t cache_capacity = 4096;  ///< ResultCache entries.
  std::size_t cache_shards = 8;
  /// Applied when a request carries no "deadline_ms"; zero = unlimited.
  std::chrono::milliseconds default_deadline{0};
  /// Channel-parallel workers inside each simulation (identity-neutral).
  std::uint32_t sim_workers = 1;
  /// Minimum delay between re-probe attempts of one quarantined
  /// resource (see TraceLibrary/ModelRegistry).  Zero probes on every
  /// lookup — tests only.
  std::chrono::milliseconds quarantine_probe_interval{5000};
};

class Service {
 public:
  explicit Service(const ServiceOptions& options = {});
  /// Drains accepted work (drain()), then tears down.
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  TraceLibrary& traces() { return traces_; }
  ModelRegistry& models() { return models_; }
  ResultCache& cache() { return cache_; }

  /// Called with each response line (no trailing newline).  Async verbs
  /// invoke it from worker threads — it must be thread-safe.
  using ResponseSink = std::function<void(std::string)>;

  /// Handles one request line.  Registration/stats/health answer
  /// synchronously (before returning); simulate/predict/recommend are
  /// admitted to the scheduler and respond from a worker.  Every
  /// request produces exactly one response line, including malformed
  /// input and admission rejections — this never throws.
  void handle_line(const std::string& line, const ResponseSink& respond);

  /// Synchronous convenience (tests, simple clients): handles `line`
  /// and blocks for its single response.
  std::string handle(const std::string& line);

  /// Graceful shutdown: stops admitting, completes every accepted
  /// request (their responses still reach their sinks), and joins the
  /// workers.  Idempotent.
  void drain();
  bool draining() const { return scheduler_.draining(); }

  /// The "stats" response payload.
  Json stats_json() const;

  /// The "health" response payload: status "ok" | "degraded" |
  /// "draining" plus per-resource detail for everything quarantined.
  /// Calling it re-probes quarantined resources whose interval elapsed,
  /// so routine health polls double as the periodic recovery prober.
  Json health_json();

 private:
  struct Request;

  void dispatch(const Request& request, const ResponseSink& respond);
  Json run_simulate(const Request& request, Deadline* deadline);
  Json run_predict(const Request& request, Deadline* deadline);
  Json run_recommend(const Request& request, Deadline* deadline);

  ServiceOptions options_;
  TraceLibrary traces_;
  ModelRegistry models_;
  ResultCache cache_;
  std::atomic<std::uint64_t> received_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  /// Last member: destroyed (and therefore drained) before the
  /// components its queued tasks reference.
  Scheduler scheduler_;
};

/// JSON <-> DesignPoint mapping used by the protocol (exposed for the
/// client helper and tests).  parse_design_point applies DesignPoint
/// defaults for absent fields and throws Error(kInvalidData) for
/// unknown kinds or wrong types.
Json design_point_to_json(const dse::DesignPoint& point);
dse::DesignPoint parse_design_point(const Json& json);

}  // namespace gmd::service
