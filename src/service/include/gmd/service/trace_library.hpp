#pragma once

/// \file trace_library.hpp
/// Shared trace handles for the query service.  Each GMDT store is
/// mmapped exactly once at registration and handed out as a shared
/// reader keyed by alias or content checksum; the expensive derived
/// feeds — the fully decoded event vector and per-decode-geometry
/// PredecodedTrace — are built once on first use and shared by every
/// concurrent request (build-once via shared_future, so two requests
/// racing on a cold feed block on one build instead of running two).

#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "gmd/cpusim/memory_event.hpp"
#include "gmd/memsim/config.hpp"
#include "gmd/memsim/predecoded_trace.hpp"
#include "gmd/service/quarantine.hpp"
#include "gmd/tracestore/reader.hpp"

namespace gmd::service {

class TraceLibrary {
 public:
  /// One registered store.
  struct Entry {
    std::string alias;
    std::string path;
    std::uint64_t checksum = 0;  ///< TraceStoreReader::content_checksum().
    std::shared_ptr<const tracestore::TraceStoreReader> reader;
  };

  /// Maps the store at `path` (throws Error(kIo)/Error(kTrace) like the
  /// reader) and registers it under `alias`.  Re-registering an alias
  /// for the same content is a no-op; a different content under a
  /// taken alias throws Error(kConfig).  Returns the content checksum.
  std::uint64_t register_store(const std::string& alias,
                               const std::string& path);

  /// Looks up by alias or by 16-hex-digit content checksum.  Throws
  /// Error(kNotFound) naming the key and the registered aliases, or
  /// Error(kUnavailable) when the store is quarantined.  A quarantined
  /// store whose probe interval has elapsed is re-probed inline first
  /// (full checksum verify) and restored on success.
  std::shared_ptr<const tracestore::TraceStoreReader> find(
      const std::string& name);

  /// Evicts the named store (and every alias sharing its content) from
  /// serving into the quarantined set, dropping its cached feeds.  The
  /// original failure's code + reason are reported by `health` and by
  /// the kUnavailable error subsequent lookups raise.  Quarantining an
  /// unknown name is a no-op.  Returns true if anything was evicted.
  bool quarantine(const std::string& name, ErrorCode code,
                  const std::string& reason);

  /// Minimum delay between re-probe attempts of one quarantined store.
  /// Zero probes on every lookup (tests only — production keeps this
  /// large so a rotten store is never retried in a hot loop).
  void set_probe_interval(std::chrono::milliseconds interval);

  /// Re-probes every quarantined store whose interval elapsed (the
  /// `health` verb calls this, making health polls the periodic prober).
  /// Returns the number of stores restored to serving.
  std::size_t probe_due();

  std::vector<QuarantinedResource> quarantined() const;
  std::size_t quarantined_count() const;

  /// The store's full decoded event stream, built once and shared.
  std::shared_ptr<const std::vector<cpusim::MemoryEvent>> raw_events(
      const tracestore::TraceStoreReader& store);

  /// A predecoded request stream for `config`'s decode geometry, built
  /// once per (store, decode key) and shared.
  std::shared_ptr<const memsim::PredecodedTrace> predecoded(
      const tracestore::TraceStoreReader& store,
      const memsim::MemoryConfig& config);

  std::vector<Entry> entries() const;
  std::size_t size() const;
  /// Cached derived feeds (decoded vectors + predecoded traces).
  std::size_t cached_feeds() const;

 private:
  using RawFuture =
      std::shared_future<std::shared_ptr<const std::vector<cpusim::MemoryEvent>>>;
  using PredecodedFuture =
      std::shared_future<std::shared_ptr<const memsim::PredecodedTrace>>;

  struct Quarantine {
    QuarantinedResource info;
    std::uint64_t checksum = 0;  ///< Content at eviction, for hex lookup.
    std::chrono::steady_clock::time_point next_probe;
  };

  /// Re-probes the quarantined store behind `alias` if its interval has
  /// elapsed.  Returns true when the store was restored to serving.
  bool try_probe(const std::string& alias);
  bool quarantine_locked(const std::string& alias, ErrorCode code,
                         const std::string& reason);
  void drop_feeds_locked(std::uint64_t checksum);

  mutable std::mutex mutex_;
  std::map<std::string, Entry> by_alias_;
  std::map<std::uint64_t, Entry> by_checksum_;
  std::map<std::string, Quarantine> quarantined_;
  std::chrono::milliseconds probe_interval_{5000};
  std::map<std::uint64_t, RawFuture> raw_cache_;
  std::map<std::pair<std::uint64_t, std::string>, PredecodedFuture>
      predecoded_cache_;
};

/// Formats a content checksum the way the protocol exposes it
/// (16 lowercase hex digits, zero-padded).
std::string format_checksum(std::uint64_t checksum);

}  // namespace gmd::service
