#include "gmd/pipeline/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <utility>

#include "gmd/common/atomic_file.hpp"
#include "gmd/common/csv.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/hash.hpp"
#include "gmd/common/logging.hpp"
#include "gmd/dse/checkpoint.hpp"
#include "gmd/dse/config_space.hpp"
#include "gmd/dse/distributed.hpp"
#include "gmd/dse/dataset_builder.hpp"
#include "gmd/dse/recommend.hpp"
#include "gmd/dse/workflow.hpp"
#include "gmd/ml/serialize.hpp"
#include "gmd/pipeline/manifest.hpp"
#include "gmd/trace/converter.hpp"
#include "gmd/trace/formats.hpp"
#include "gmd/tracestore/reader.hpp"

namespace gmd::pipeline {

namespace {

namespace fs = std::filesystem;

void mix_string(Fnv1a& h, const std::string& s) {
  h.mix(s.size());
  h.mix_bytes(s.data(), s.size());
}

/// Identity of the cpusim stage: the workload configuration.
std::uint64_t cpusim_inputs_hash(const PipelineOptions& options) {
  Fnv1a h;
  h.mix(options.graph_vertices);
  h.mix(options.edge_factor);
  mix_string(h, options.workload);
  h.mix(options.seed);
  return h.state;
}

/// Identity of the train stage beyond the sweep CSV: every surrogate
/// option that changes what gets trained.
std::uint64_t surrogate_config_hash(const dse::SurrogateOptions& options) {
  Fnv1a h;
  h.mix(options.models.size());
  for (const std::string& model : options.models) mix_string(h, model);
  h.mix_double(options.test_fraction);
  h.mix(options.seed);
  return h.state;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

const std::vector<std::string>& stage_names() {
  static const std::vector<std::string> names = {"cpusim", "pack", "sweep",
                                                 "train", "recommend"};
  return names;
}

std::string PipelineResult::summary() const {
  std::ostringstream os;
  os << "pipeline:";
  for (const StageStatus& stage : stages) {
    os << ' ' << stage.name << '=';
    if (stage.skipped) {
      os << "skipped";
    } else {
      os << "ran(" << stage.seconds << "s)";
    }
  }
  os << "; sweep " << health.summary();
  os << "; " << trained_metrics << " metrics trained";
  if (skipped_metrics > 0) os << " (" << skipped_metrics << " skipped)";
  return os.str();
}

PipelineResult run_pipeline(const PipelineOptions& options) {
  GMD_REQUIRE_AS(ErrorCode::kConfig, !options.out_dir.empty(),
                 "pipeline out_dir must not be empty");
  fs::create_directories(options.out_dir);

  PipelineResult result;
  // Crash leftovers from a previous run: any *.tmp under out_dir was an
  // uncommitted artifact; readers never look at them, but sweeping them
  // keeps the directory a faithful list of published artifacts.
  result.stale_temps_removed = remove_stale_temp_files(options.out_dir);
  if (result.stale_temps_removed > 0) {
    GMD_LOG_WARN << "pipeline: removed " << result.stale_temps_removed
                 << " stale temp file(s) left by a previous crash under '"
                 << options.out_dir << "'";
  }

  const auto path_in = [&](const std::string& relpath) {
    return (fs::path(options.out_dir) / relpath).string();
  };
  result.trace_path = path_in("trace.gem5.txt");
  result.store_path = path_in("trace.gmdt");
  result.sweep_csv = path_in("sweep.csv");
  result.table1_path = path_in("table1.txt");
  result.recommendations_path = path_in("recommendations.txt");

  Manifest manifest(path_in("manifest.txt"));
  if (options.resume) manifest.load();

  const std::vector<dse::DesignPoint> points =
      options.design_points.empty() ? dse::paper_design_space()
                                    : options.design_points;

  // Runs one stage: skip when the manifest proves inputs and artifacts
  // are unchanged (resume only), otherwise execute the body under a
  // stage deadline and record the artifacts it returns.  The body
  // receives a nullable Deadline: the stage budget chained to the
  // pipeline-wide cancel token, or the bare token when unbudgeted.
  const auto run_stage =
      [&](const std::string& name, std::uint64_t inputs_hash,
          std::chrono::milliseconds budget,
          const std::function<std::vector<std::string>(Deadline*)>& body) {
        if (options.resume && manifest.stage_valid(name, inputs_hash)) {
          GMD_LOG_INFO << "pipeline: stage '" << name
                       << "' is up to date (inputs and artifacts verified); "
                          "skipping";
          result.stages.push_back(StageStatus{name, /*skipped=*/true, 0.0});
          return;
        }
        if (options.stage_hook) options.stage_hook(name);
        const auto start = std::chrono::steady_clock::now();
        std::vector<std::string> artifacts;
        if (budget.count() > 0) {
          Deadline stage_deadline(std::chrono::nanoseconds(budget),
                                  options.cancel);
          artifacts = body(&stage_deadline);
        } else {
          artifacts = body(options.cancel);
        }
        manifest.record_stage(name, inputs_hash, artifacts);
        StageStatus status{name, /*skipped=*/false, seconds_since(start)};
        GMD_LOG_INFO << "pipeline: stage '" << name << "' completed in "
                     << status.seconds << "s (" << artifacts.size()
                     << " artifact(s))";
        result.stages.push_back(std::move(status));
      };

  // --- cpusim: workload run -> gem5 text trace -------------------------
  run_stage(
      "cpusim", cpusim_inputs_hash(options), options.budgets.cpusim,
      [&](Deadline* deadline) -> std::vector<std::string> {
        dse::WorkflowConfig config;
        config.graph_vertices = options.graph_vertices;
        config.edge_factor = options.edge_factor;
        config.workload = options.workload;
        config.seed = options.seed;
        const std::vector<cpusim::MemoryEvent> events =
            dse::generate_workload_trace(config, nullptr, nullptr, deadline);
        atomic_write_file(result.trace_path, [&events](std::ostream& os) {
          trace::Gem5TraceWriter writer(os);
          for (const cpusim::MemoryEvent& event : events) {
            writer.on_event(event);
          }
        });
        return {"trace.gem5.txt"};
      });

  // --- pack: gem5 text -> GMDT store -----------------------------------
  run_stage("pack", fnv1a_file(result.trace_path), options.budgets.pack,
            [&](Deadline*) -> std::vector<std::string> {
              trace::ConvertOptions convert_options;
              convert_options.num_threads = options.num_threads;
              const trace::ConvertStats stats = trace::convert_gem5_to_gmdt(
                  result.trace_path, result.store_path, convert_options);
              GMD_LOG_INFO << "pipeline: packed " << stats.events_out
                           << " events into " << stats.chunks << " chunks";
              return {"trace.gmdt"};
            });

  // --- sweep: GMDT store x design points -> labeled CSV ----------------
  {
    const tracestore::TraceStoreReader store(result.store_path);
    Fnv1a h;
    h.mix(store.content_checksum());
    h.mix(dse::points_checksum(points));
    // The sampling geometry changes the labels, so it is part of the
    // stage identity; sim_workers is not (channel-parallel replay is
    // bit-identical to serial).
    h.mix_double(options.sweep.sample_fraction);
    if (options.sweep.sample_fraction < 1.0) {
      h.mix(options.sweep.sample_seed);
      h.mix(options.sweep.sample_warmup_chunks);
      h.mix(options.sweep.sampling_chunk_events);
    }
    run_stage(
        "sweep", h.state, options.budgets.sweep,
        [&](Deadline* deadline) -> std::vector<std::string> {
          dse::SweepOptions sweep_options = options.sweep;
          sweep_options.num_threads = options.num_threads;
          sweep_options.log_progress = options.log_progress;
          sweep_options.cancel = deadline;
          sweep_options.checkpoint_path = path_in("sweep.journal");
          sweep_options.resume = options.resume;
          if (options.sweep_fault_hook) {
            sweep_options.fault_hook = options.sweep_fault_hook;
          }
          std::vector<dse::SweepRow> rows;
          if (options.sweep_processes > 0) {
            // Distributed execution: per-worker journals live under the
            // shard run directory, so the single-process journal path
            // is cleared; rows (and the resulting CSV) are bit-identical
            // either way, which is why sweep_processes is not part of
            // the stage identity.
            sweep_options.checkpoint_path.clear();
            sweep_options.fault_hook = nullptr;  // not fork-transportable
            dse::DistributedSweepOptions dist;
            dist.num_workers = options.sweep_processes;
            dist.cancel = deadline;
            rows = dse::run_sweep_distributed(
                points, store, path_in("sweep-shards"), sweep_options, dist);
          } else {
            rows = dse::run_sweep(points, store, sweep_options);
          }
          result.health = dse::summarize_health(rows);
          GMD_REQUIRE_AS(ErrorCode::kSimulation, result.health.ok > 0,
                         "every sweep point failed ("
                             << result.health.summary() << ")");
          std::vector<dse::SweepRow> ok_rows;
          ok_rows.reserve(rows.size());
          for (const dse::SweepRow& row : rows) {
            if (row.ok()) ok_rows.push_back(row);
          }
          dse::sweep_to_table(ok_rows).save(result.sweep_csv);
          return {"sweep.csv"};
        });
  }

  // Downstream stages always read rows back from sweep.csv — never from
  // in-memory sweep results — so a fresh run and a resumed run train on
  // byte-identical inputs.
  const auto load_rows = [&]() {
    return dse::table_to_sweep(CsvTable::load(result.sweep_csv));
  };
  if (result.health.total == 0) {
    // Sweep was skipped on resume; rebuild health from the published
    // CSV (which holds only ok rows by construction).
    result.health = dse::summarize_health(load_rows());
  }

  // --- train: sweep CSV -> Table I + deployed models -------------------
  {
    Fnv1a h;
    h.mix(fnv1a_file(result.sweep_csv));
    h.mix(surrogate_config_hash(options.surrogate));
    run_stage(
        "train", h.state, options.budgets.train,
        [&](Deadline* deadline) -> std::vector<std::string> {
          const std::vector<dse::SweepRow> rows = load_rows();
          dse::SurrogateOptions surrogate_options = options.surrogate;
          surrogate_options.deadline = deadline;
          surrogate_options.skip_failed_metrics = true;
          const dse::SurrogateSuite suite =
              dse::SurrogateSuite::train(rows, surrogate_options);
          result.skipped_metrics = suite.skipped().size();

          atomic_write_text(result.table1_path, suite.format_table1());
          std::vector<std::string> artifacts = {"table1.txt"};

          fs::create_directories(path_in("models"));
          for (const std::string& metric : dse::target_metric_names()) {
            const bool skipped = std::any_of(
                suite.skipped().begin(), suite.skipped().end(),
                [&metric](const dse::SurrogateSuite::SkippedMetric& s) {
                  return s.metric == metric;
                });
            if (skipped) continue;
            const std::string best = suite.best_model(metric).model;
            const dse::SurrogateSuite::DeployedModel deployed =
                dse::SurrogateSuite::deploy(rows, metric, best,
                                            options.surrogate.seed);
            const std::string relpath = "models/" + metric + ".model";
            ml::save_model_file(path_in(relpath), *deployed.model);
            artifacts.push_back(relpath);
            ++result.trained_metrics;
          }
          return artifacts;
        });
    if (result.stages.back().skipped) {
      // Derive the counts from the manifest so a skipped train stage
      // still reports how many models it stands behind (artifacts are
      // table1.txt plus one model per trained metric).
      const StageRecord* train_record = manifest.find("train");
      if (train_record != nullptr && !train_record->artifacts.empty()) {
        result.trained_metrics = train_record->artifacts.size() - 1;
      }
    }
  }

  // --- recommend: sweep CSV -> best-point report -----------------------
  run_stage(
      "recommend", fnv1a_file(result.sweep_csv), options.budgets.recommend,
      [&](Deadline*) -> std::vector<std::string> {
        const std::vector<dse::SweepRow> rows = load_rows();
        std::ostringstream report;
        report << "=== Best simulated points ===\n"
               << dse::format_recommendations(
                      dse::recommend_from_sweep(rows));
        // The surrogate-driven recommendation is best-effort: a model
        // family that cannot train on this dataset degrades to a note,
        // it does not fail the stage.
        try {
          const std::vector<dse::Recommendation> surrogate_recs =
              dse::recommend_from_surrogate(rows, points);
          report << "\n=== Best predicted points (surrogate over the "
                    "design space) ===\n"
                 << dse::format_recommendations(surrogate_recs);
        } catch (const Error& e) {
          report << "\n(surrogate recommendation unavailable ["
                 << to_string(e.code()) << "]: " << e.what() << ")\n";
        }
        atomic_write_text(result.recommendations_path, report.str());
        return {"recommendations.txt"};
      });

  // Completed end to end: re-sweep for temps so a finished directory
  // holds only published artifacts (a mid-run crash re-cleans on the
  // next start instead).
  remove_stale_temp_files(options.out_dir);
  return result;
}

}  // namespace gmd::pipeline
