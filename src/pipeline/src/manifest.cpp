#include "gmd/pipeline/manifest.hpp"

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "gmd/common/atomic_file.hpp"
#include "gmd/common/error.hpp"
#include "gmd/common/logging.hpp"

namespace gmd::pipeline {

namespace {

constexpr std::string_view kMagic = "gmd-pipeline-manifest";
constexpr std::string_view kVersion = "v1";

std::string hex16(std::uint64_t value) {
  char buffer[17];
  std::snprintf(buffer, sizeof buffer, "%016llx",
                static_cast<unsigned long long>(value));
  return buffer;
}

std::uint64_t parse_hex16(const std::string& token, const std::string& path) {
  // Exactly 16 hex digits: a shorter token is a truncation tear, not a
  // smaller number.
  unsigned long long parsed = 0;
  int consumed = 0;
  const int got = std::sscanf(token.c_str(), "%llx%n", &parsed, &consumed);
  GMD_REQUIRE_AS(ErrorCode::kIo,
                 got == 1 && token.size() == 16 &&
                     static_cast<std::size_t>(consumed) == token.size(),
                 "corrupt pipeline manifest '" << path << "': bad hex token '"
                                               << token << "'");
  return parsed;
}

}  // namespace

Manifest::Manifest(std::string path) : path_(std::move(path)) {
  const std::filesystem::path parent =
      std::filesystem::path(path_).parent_path();
  dir_ = parent.empty() ? "." : parent.string();
}

std::string Manifest::resolve(const std::string& relpath) const {
  return (std::filesystem::path(dir_) / relpath).string();
}

std::size_t Manifest::load() {
  stages_.clear();
  if (!std::filesystem::exists(path_)) return 0;
  // Parse into a local list and publish only on success: a corrupt
  // manifest is worth a warning and a from-scratch run, never an abort
  // or a half-loaded state.
  try {
    std::ifstream in(path_);
    GMD_REQUIRE_AS(ErrorCode::kIo, in.good(),
                   "cannot read pipeline manifest '" << path_ << "'");
    std::string line;
    GMD_REQUIRE_AS(ErrorCode::kIo, static_cast<bool>(std::getline(in, line)),
                   "pipeline manifest '" << path_ << "' is empty");
    {
      std::istringstream header(line);
      std::string magic, version;
      header >> magic >> version;
      GMD_REQUIRE_AS(ErrorCode::kIo, magic == kMagic && version == kVersion,
                     "'" << path_ << "' is not a " << kVersion
                         << " pipeline manifest");
    }
    std::vector<StageRecord> loaded;
    std::vector<std::size_t> declared_outputs;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::istringstream is(line);
      std::string tag;
      is >> tag;
      if (tag == "stage") {
        StageRecord stage;
        std::string inputs_field, outputs_field;
        is >> stage.name >> inputs_field >> outputs_field;
        GMD_REQUIRE_AS(ErrorCode::kIo,
                       !stage.name.empty() &&
                           inputs_field.rfind("inputs=", 0) == 0 &&
                           outputs_field.rfind("outputs=", 0) == 0,
                       "corrupt pipeline manifest '"
                           << path_ << "': bad stage record '" << line << "'");
        stage.inputs_hash =
            parse_hex16(inputs_field.substr(7), path_);
        unsigned long long outputs = 0;
        const int got =
            std::sscanf(outputs_field.c_str() + 8, "%llu", &outputs);
        GMD_REQUIRE_AS(ErrorCode::kIo, got == 1,
                       "corrupt pipeline manifest '"
                           << path_ << "': bad stage record '" << line << "'");
        declared_outputs.push_back(static_cast<std::size_t>(outputs));
        loaded.push_back(std::move(stage));
      } else if (tag == "artifact") {
        GMD_REQUIRE_AS(ErrorCode::kIo, !loaded.empty(),
                       "corrupt pipeline manifest '"
                           << path_ << "': artifact before any stage");
        ArtifactRecord artifact;
        std::string checksum_field;
        is >> artifact.relpath >> artifact.bytes >> checksum_field;
        GMD_REQUIRE_AS(ErrorCode::kIo,
                       !artifact.relpath.empty() && !checksum_field.empty() &&
                           !is.fail(),
                       "corrupt pipeline manifest '"
                           << path_ << "': bad artifact record '" << line
                           << "'");
        artifact.checksum = parse_hex16(checksum_field, path_);
        loaded.back().artifacts.push_back(std::move(artifact));
      } else {
        GMD_REQUIRE_AS(ErrorCode::kIo, false,
                       "corrupt pipeline manifest '"
                           << path_ << "': unexpected '" << tag
                           << "' record");
      }
    }
    // The declared outputs count catches a tear that removed whole
    // trailing artifact lines.
    for (std::size_t i = 0; i < loaded.size(); ++i) {
      GMD_REQUIRE_AS(ErrorCode::kIo,
                     loaded[i].artifacts.size() == declared_outputs[i],
                     "corrupt pipeline manifest '"
                         << path_ << "': stage '" << loaded[i].name
                         << "' declares " << declared_outputs[i]
                         << " outputs but lists "
                         << loaded[i].artifacts.size());
    }
    stages_ = std::move(loaded);
  } catch (const Error& e) {
    GMD_LOG_WARN << "pipeline resume: ignoring unusable manifest '" << path_
                 << "' [" << to_string(e.code()) << "]: " << e.what()
                 << "; all stages will re-run";
    stages_.clear();
  }
  return stages_.size();
}

const StageRecord* Manifest::find(const std::string& name) const {
  for (const StageRecord& stage : stages_) {
    if (stage.name == name) return &stage;
  }
  return nullptr;
}

bool Manifest::stage_valid(const std::string& name,
                           std::uint64_t inputs_hash) const {
  const StageRecord* stage = find(name);
  if (stage == nullptr || stage->inputs_hash != inputs_hash) return false;
  for (const ArtifactRecord& artifact : stage->artifacts) {
    const std::string full = resolve(artifact.relpath);
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(full, ec);
    if (ec || size != artifact.bytes) return false;
    try {
      if (fnv1a_file(full) != artifact.checksum) return false;
    } catch (const Error&) {
      return false;
    }
  }
  return true;
}

void Manifest::record_stage(const std::string& name,
                            std::uint64_t inputs_hash,
                            std::span<const std::string> artifact_relpaths) {
  StageRecord stage;
  stage.name = name;
  stage.inputs_hash = inputs_hash;
  for (const std::string& relpath : artifact_relpaths) {
    ArtifactRecord artifact;
    artifact.relpath = relpath;
    const std::string full = resolve(relpath);
    std::error_code ec;
    const std::uintmax_t size = std::filesystem::file_size(full, ec);
    GMD_REQUIRE_AS(ErrorCode::kIo, !ec,
                   "stage '" << name << "' recorded missing artifact '"
                             << full << "'");
    artifact.bytes = static_cast<std::uint64_t>(size);
    artifact.checksum = fnv1a_file(full);
    stage.artifacts.push_back(std::move(artifact));
  }

  bool replaced = false;
  for (StageRecord& existing : stages_) {
    if (existing.name == name) {
      existing = std::move(stage);
      replaced = true;
      break;
    }
  }
  if (!replaced) stages_.push_back(std::move(stage));
  flush();
}

void Manifest::flush() const {
  atomic_write_file(path_, [this](std::ostream& out) {
    out << kMagic << ' ' << kVersion << '\n';
    for (const StageRecord& stage : stages_) {
      out << "stage " << stage.name << " inputs=" << hex16(stage.inputs_hash)
          << " outputs=" << stage.artifacts.size() << '\n';
      for (const ArtifactRecord& artifact : stage.artifacts) {
        out << "artifact " << artifact.relpath << ' ' << artifact.bytes
            << ' ' << hex16(artifact.checksum) << '\n';
      }
    }
  });
}

}  // namespace gmd::pipeline
