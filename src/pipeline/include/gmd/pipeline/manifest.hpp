#pragma once

/// \file manifest.hpp
/// Pipeline stage manifest: a small journal recording, for every
/// completed stage, the FNV-1a hash of its inputs and the (size,
/// checksum) of every artifact it produced.  --resume consults it to
/// skip stages whose inputs are unchanged AND whose artifacts still
/// verify on disk — a stage is re-run if either side drifted, so a
/// resumed pipeline can never serve stale or torn outputs.
///
/// File format (plain text, one record per line):
///
///   gmd-pipeline-manifest v1
///   stage <name> inputs=<16-hex> outputs=<n>
///   artifact <relpath> <bytes> <16-hex>
///   ...
///
/// Artifact paths are relative to the manifest's directory, so a
/// pipeline output directory can be moved or copied wholesale and still
/// resume.  Every record() rewrites the file through
/// gmd::atomic_write_file, so a crash mid-write leaves the previous
/// consistent manifest.  An unreadable or corrupt manifest is discarded
/// with a typed warning (the worst case of losing it is re-running
/// stages, never wrong results).

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace gmd::pipeline {

/// One artifact a stage produced, as recorded at completion time.
struct ArtifactRecord {
  std::string relpath;  ///< Relative to the manifest's directory.
  std::uint64_t bytes = 0;
  std::uint64_t checksum = 0;  ///< FNV-1a 64 of the file's bytes.
};

/// One completed stage.
struct StageRecord {
  std::string name;
  std::uint64_t inputs_hash = 0;  ///< Identity of everything the stage read.
  std::vector<ArtifactRecord> artifacts;
};

class Manifest {
 public:
  /// Binds to the manifest file at `path`; artifact paths resolve
  /// relative to its parent directory.  Nothing is read or written
  /// until load() / record_stage().
  explicit Manifest(std::string path);

  /// Loads an existing manifest.  A missing file yields an empty
  /// manifest; an unreadable or corrupt one is discarded with a
  /// GMD_LOG_WARN (typed code included) and also yields empty — load()
  /// never throws for bad content, because the worst case of losing a
  /// manifest is re-running stages.  Returns the number of stage
  /// records loaded.
  std::size_t load();

  /// True when stage `name` is recorded with the same `inputs_hash` and
  /// every recorded artifact still exists with matching size and
  /// checksum.  Reads (and hashes) the artifacts from disk.
  bool stage_valid(const std::string& name,
                   std::uint64_t inputs_hash) const;

  /// Records (or replaces) stage `name`: stats and hashes each artifact
  /// (paths relative to the manifest directory) and atomically rewrites
  /// the manifest file.  Throws Error(kIo) when an artifact is missing
  /// — a stage must not be recorded complete without its outputs.
  void record_stage(const std::string& name, std::uint64_t inputs_hash,
                    std::span<const std::string> artifact_relpaths);

  /// The record for `name`, or nullptr.
  const StageRecord* find(const std::string& name) const;

  const std::vector<StageRecord>& stages() const { return stages_; }
  const std::string& path() const { return path_; }

  /// The directory artifact relpaths resolve against.
  std::string resolve(const std::string& relpath) const;

 private:
  void flush() const;  ///< Atomic rewrite of the manifest file.

  std::string path_;
  std::string dir_;
  std::vector<StageRecord> stages_;
};

}  // namespace gmd::pipeline
