#pragma once

/// \file pipeline.hpp
/// Crash-safe end-to-end orchestrator for the paper's workflow, run as
/// five file-backed stages over one output directory:
///
///   cpusim    — graph generation + workload run -> trace.gem5.txt
///   pack      — gem5 text -> compressed GMDT store (trace.gmdt)
///   sweep     — memory-simulation sweep -> sweep.csv (+ sweep.journal)
///   train     — surrogate suite -> table1.txt + models/<metric>.model
///   recommend — best-point report -> recommendations.txt
///
/// Every artifact is published with a temp-then-rename write, each
/// completed stage is recorded in manifest.txt keyed on a content hash
/// of its inputs, and the sweep additionally journals per-point rows.
/// Kill the process at any instant and re-run with resume=true: stages
/// whose inputs and outputs still verify are skipped, the sweep resumes
/// from its journal, and the final artifacts are bit-identical to an
/// uninterrupted run.  Per-stage wall budgets and a pipeline-wide
/// cancellation token bound a hung stage (cpusim polls per memory
/// access, the sweep per point, training per tree / boosting stage).

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "gmd/common/deadline.hpp"
#include "gmd/dse/design_point.hpp"
#include "gmd/dse/surrogate.hpp"
#include "gmd/dse/sweep.hpp"

namespace gmd::pipeline {

/// The five stage names, in execution order.
const std::vector<std::string>& stage_names();

/// Per-stage wall budgets; 0 = unlimited.  A budget bounds the stage
/// body cooperatively — the stage fails with Error(kTimeout) and the
/// pipeline aborts (already-completed stages stay resumable).
struct StageBudgets {
  std::chrono::milliseconds cpusim{0};
  std::chrono::milliseconds pack{0};
  std::chrono::milliseconds sweep{0};
  std::chrono::milliseconds train{0};
  std::chrono::milliseconds recommend{0};
};

struct PipelineOptions {
  /// All artifacts (and manifest.txt) live here.
  std::string out_dir = "pipeline-out";

  // --- workload (cpusim stage) ----------------------------------------
  std::uint32_t graph_vertices = 256;
  unsigned edge_factor = 8;
  std::string workload = "bfs";
  std::uint64_t seed = 1;

  // --- sweep stage -----------------------------------------------------
  std::vector<dse::DesignPoint> design_points;  ///< Empty: paper space.
  /// Fault-tolerance knobs for the sweep (failure policy, retries,
  /// per-point budgets).  checkpoint_path/resume/cancel/num_threads/
  /// log_progress are managed by the pipeline and overridden.
  dse::SweepOptions sweep;
  /// Number of worker PROCESSES for the sweep stage.  0 (default) runs
  /// the sweep in-process.  >0 delegates to the distributed runner
  /// (dse::run_sweep_distributed) over <out_dir>/sweep-shards: workers
  /// share the GMDT store mapping and checkpoint per-worker journals,
  /// and the stage survives SIGKILLed workers.  Like sim_workers, this
  /// only changes where the work runs, never the labels, so it is NOT
  /// part of the stage identity — a run started in-process can resume
  /// distributed and vice versa.
  std::size_t sweep_processes = 0;

  // --- train stage -----------------------------------------------------
  /// deadline and skip_failed_metrics are managed by the pipeline: the
  /// stage budget is wired in and degraded mode is on (a metric whose
  /// training fails is recorded and skipped, not fatal).
  dse::SurrogateOptions surrogate;

  std::size_t num_threads = 0;  ///< 0: hardware concurrency.
  bool log_progress = false;

  // --- resilience ------------------------------------------------------
  /// Skip stages whose manifest record and artifacts still verify;
  /// resume the sweep from its journal.  Off: every stage re-runs (the
  /// manifest is still written for a later resume).
  bool resume = false;
  StageBudgets budgets;
  /// Pipeline-wide cancellation token, consulted by every stage token.
  /// Non-owning; must outlive run_pipeline.
  Deadline* cancel = nullptr;
  /// Deterministic fault injection for tests: called with the stage
  /// name just before the stage body runs.  Throwing aborts the
  /// pipeline exactly like the stage failing.
  std::function<void(const std::string&)> stage_hook;
  /// Forwarded to SweepOptions::fault_hook (per point index + attempt);
  /// lets tests kill or fail mid-sweep deterministically.
  std::function<void(std::size_t, std::uint32_t)> sweep_fault_hook;
};

/// Outcome of one stage in this invocation.
struct StageStatus {
  std::string name;
  bool skipped = false;  ///< Resume hit: inputs and artifacts verified.
  double seconds = 0.0;  ///< Wall time of the stage body (0 if skipped).
};

struct PipelineResult {
  std::vector<StageStatus> stages;

  // Key artifact paths (inside out_dir).
  std::string trace_path;
  std::string store_path;
  std::string sweep_csv;
  std::string table1_path;
  std::string recommendations_path;

  dse::SweepHealth health;  ///< Rebuilt from sweep.csv when skipped.
  std::size_t trained_metrics = 0;
  std::size_t skipped_metrics = 0;     ///< Degraded-mode skips in train.
  std::size_t stale_temps_removed = 0; ///< Crash leftovers swept at start.

  /// One-line-per-stage summary for logs.
  std::string summary() const;
};

/// Runs (or resumes) the pipeline.  Deterministic for a fixed
/// configuration: an interrupted run resumed to completion produces
/// artifacts bit-identical to an uninterrupted one.
PipelineResult run_pipeline(const PipelineOptions& options);

}  // namespace gmd::pipeline
