#pragma once

/// \file config.hpp
/// Memory-system configuration: device technology, geometry, timing,
/// energy, and controller policy — the knobs NVMain exposes through its
/// config files and the knobs the paper sweeps (CPU frequency,
/// controller frequency, channels, tRAS, tRCD).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace gmd {
class Deadline;  // common/deadline.hpp
}

namespace gmd::memsim {

enum class DeviceType { kDram, kNvm };

std::string to_string(DeviceType type);

/// Command scheduling policy within a channel's transaction queue.
enum class SchedulingPolicy {
  kFcfs,    ///< Strictly first-come-first-served.
  kFrFcfs,  ///< First-ready (row hit) first, then FCFS.
};

/// Row-buffer management.
enum class PagePolicy {
  kOpen,    ///< Leave the row open after an access (hope for row hits).
  kClosed,  ///< Precharge immediately after every access.
};

/// DRAM/NVM timing parameters, expressed in memory-controller clock
/// cycles — matching how NVMain config files specify them.
struct TimingParams {
  std::uint32_t tRCD = 9;    ///< Row activate to column command.
  std::uint32_t tRAS = 24;   ///< Activate to precharge (data restore); 0 for NVM.
  std::uint32_t tRP = 9;     ///< Precharge period.
  std::uint32_t tCAS = 9;    ///< Column access strobe (CL).
  std::uint32_t tBURST = 4;  ///< Data burst on the bus.
  std::uint32_t tWR = 10;    ///< Write recovery (cell write time for NVM).
  std::uint32_t tCCD = 4;    ///< Column-to-column delay.
  std::uint32_t tRRD = 4;    ///< Activate-to-activate, same rank.
  std::uint32_t tFAW = 16;   ///< Four-activate window, same rank; 0 disables.
  std::uint32_t tRFC = 0;    ///< Refresh cycle time; 0 disables refresh.
  std::uint32_t tREFI = 0;   ///< Refresh interval; 0 disables refresh.
};

/// Per-operation energies (nanojoules) and background power terms.
struct EnergyParams {
  double activate_nj = 2.0;
  double precharge_nj = 1.0;
  double read_nj = 4.0;
  double write_nj = 4.0;
  double refresh_nj = 30.0;
  /// Clock-proportional peripheral power per channel (mW per MHz of
  /// controller clock): dominant for NVM interfaces.
  double background_mw_per_mhz = 0.01;
  /// Constant per-channel background power (mW): refresh logic, DLLs —
  /// dominant for DRAM.
  double static_mw = 20.0;
};

/// Simulator implementation switches — not part of the modeled
/// hardware, so presets and config files never touch them.
struct MemSimOptions {
  /// Run the original O(queue_depth) vector-scan scheduler instead of
  /// the bitmask-window fast path.  Both produce identical metrics; the
  /// flag exists so the equivalence suite can prove it and so a
  /// regression can be bisected against the reference implementation.
  bool reference_mode = false;

  /// Cooperative deadline/cancellation token, polled by the channel
  /// service loops (drain and queue-full back-pressure).  When the
  /// token's wall budget expires or it is cancelled, the simulation
  /// unwinds with a typed gmd::Error (kTimeout / kCancelled) instead of
  /// running on — this is how the sweep runner bounds a stuck point.
  /// Non-owning; must outlive the simulation.  nullptr = never cancel.
  Deadline* deadline = nullptr;

  /// Worker threads for channel-parallel trace replay in the static
  /// MemorySystem::simulate() entry points.  Channels are distributed
  /// round-robin over min(num_workers, channels) workers, each replaying
  /// its channels' pre-partitioned request streams independently.  Every
  /// channel's state is self-contained and the final merge walks
  /// channels in index order, so the result is bit-identical to the
  /// serial fast path at any worker count.  reference_mode forces the
  /// serial path (the seed loop stays serial); 0 or 1 means serial.
  /// Incremental use (enqueue_event / enqueue_predecoded members) is
  /// always serial.
  std::uint32_t num_workers = 1;
};

/// One memory system (a single technology).  Hybrid systems combine two.
struct MemoryConfig {
  std::string name = "dram";
  DeviceType device = DeviceType::kDram;

  // Geometry.
  std::uint32_t channels = 2;
  std::uint32_t ranks = 1;
  std::uint32_t banks = 8;       ///< Banks per rank.
  std::uint32_t rows = 32768;    ///< Rows per bank.
  std::uint32_t row_bytes = 2048;///< Row (page) size in bytes.
  std::uint32_t bus_bytes = 8;   ///< Data bus width in bytes.

  // Clocks.
  std::uint32_t clock_mhz = 400;     ///< Controller/memory clock.
  std::uint32_t cpu_freq_mhz = 2000; ///< CPU clock of the trace's ticks.

  TimingParams timing;
  EnergyParams energy;

  // Controller.
  SchedulingPolicy scheduling = SchedulingPolicy::kFrFcfs;
  PagePolicy page_policy = PagePolicy::kOpen;
  std::uint32_t queue_depth = 32;

  /// Read-priority scheduling: reads (the latency-critical class) are
  /// served before writes until the queued-write count reaches
  /// write_drain_watermark, which triggers a drain so writes cannot
  /// starve.  Applies on top of the scheduling policy's row-hit
  /// preference.  Off by default (the paper's NVMain configuration
  /// serves transactions in policy order regardless of type).
  bool prioritize_reads = false;
  std::uint32_t write_drain_watermark = 24;

  /// Epoch length in controller cycles for time-series statistics —
  /// NVMain's EPOCHS/PrintGraphs facility (§III of the paper names the
  /// PrintGraphs control parameter).  0 disables epoch collection.
  std::uint64_t epoch_cycles = 0;

  /// NVMain-style address mapping scheme, MSB to LSB, colon-separated:
  /// R = row, RK = rank, BK = bank, C = column, CH = channel.  Each
  /// field must appear exactly once.  The default interleaves channels
  /// at access granularity and keeps rows at the top (best sequential
  /// locality); "R:RK:CH:BK:C" would interleave banks finer than
  /// channels, etc.
  std::string address_mapping = "R:RK:BK:C:CH";

  /// Bytes transferred per access: bus width times burst length.
  std::uint64_t access_bytes() const {
    return static_cast<std::uint64_t>(bus_bytes) * timing.tBURST * 2;  // DDR
  }
  std::uint64_t bytes_per_bank() const {
    return static_cast<std::uint64_t>(rows) * row_bytes;
  }
  std::uint64_t capacity_bytes() const {
    return bytes_per_bank() * banks * ranks * channels;
  }

  /// Simulator implementation switches (see MemSimOptions).
  MemSimOptions sim;

  /// Throws gmd::Error when any field is inconsistent.
  void validate() const;
};

/// Converts a CPU tick to a memory-controller cycle for `config`:
/// cycle = tick * clock / cpu_freq, with a 128-bit intermediate to stay
/// exact for long traces.
inline std::uint64_t tick_to_memory_cycle(const MemoryConfig& config,
                                          std::uint64_t tick) {
  return static_cast<std::uint64_t>(static_cast<__uint128_t>(tick) *
                                    config.clock_mhz / config.cpu_freq_mhz);
}

/// Incremental tick-to-cycle converter for (mostly) monotone tick
/// streams.  Carries the running division remainder forward, so the
/// common case — a small tick delta — costs a multiply and a few
/// subtractions instead of a 128-bit division per event.  Returns
/// exactly tick_to_memory_cycle() for every input; out-of-order ticks
/// take a stateless fallback.
class TickConverter {
 public:
  explicit TickConverter(const MemoryConfig& config)
      : clock_(config.clock_mhz), cpu_(config.cpu_freq_mhz) {}

  std::uint64_t operator()(std::uint64_t tick) {
    if (tick < prev_tick_) {  // out of order: exact, state untouched
      return static_cast<std::uint64_t>(static_cast<__uint128_t>(tick) *
                                        clock_ / cpu_);
    }
    const std::uint64_t dt = tick - prev_tick_;
    prev_tick_ = tick;
    if (dt > kMaxDelta) {  // dt * clock could overflow 64 bits: restart
      const auto num = static_cast<__uint128_t>(tick) * clock_;
      cycle_ = static_cast<std::uint64_t>(num / cpu_);
      rem_ = static_cast<std::uint64_t>(num % cpu_);
      return cycle_;
    }
    // Invariant: prev_tick * clock == cycle * cpu + rem, rem < cpu.
    std::uint64_t num = dt * clock_ + rem_;
    if (num >= cpu_) {
      if (num < (static_cast<std::uint64_t>(cpu_) << 4)) {
        do {
          num -= cpu_;
          ++cycle_;
        } while (num >= cpu_);
      } else {
        cycle_ += num / cpu_;
        num %= cpu_;
      }
    }
    rem_ = num;
    return cycle_;
  }

 private:
  static constexpr std::uint64_t kMaxDelta = std::uint64_t{1} << 32;

  std::uint32_t clock_;
  std::uint32_t cpu_;
  std::uint64_t prev_tick_ = 0;
  std::uint64_t cycle_ = 0;
  std::uint64_t rem_ = 0;
};

/// Paper presets ----------------------------------------------------------

/// DDR-style DRAM with the paper's timing (tRAS=24, tRCD=9).
MemoryConfig make_dram_config(std::uint32_t channels, std::uint32_t clock_mhz,
                              std::uint32_t cpu_freq_mhz);

/// NVM (PCM-like): tRAS=0 (no data restore), slow writes, clock-
/// proportional interface power.  `tRCD` follows the paper's
/// per-controller-frequency sets unless overridden.
MemoryConfig make_nvm_config(std::uint32_t channels, std::uint32_t clock_mhz,
                             std::uint32_t cpu_freq_mhz, std::uint32_t tRCD);

/// The paper's per-controller-frequency tRCD candidate sets
/// (400 MHz -> {20,30,40,50,60,80}, ..., 1600 MHz -> {80,...,320}).
const std::vector<std::uint32_t>& nvm_trcd_set(std::uint32_t clock_mhz);

/// The paper's swept axis values.
const std::vector<std::uint32_t>& paper_cpu_frequencies_mhz();   // {2000,3000,5000,6500}
const std::vector<std::uint32_t>& paper_controller_frequencies_mhz();  // {400,666,1250,1600}
const std::vector<std::uint32_t>& paper_channel_counts();        // {2,4}

}  // namespace gmd::memsim
