#pragma once

/// \file sampled.hpp
/// Chunk-sampled simulation with error bounds: simulate a deterministic,
/// seeded subset of a trace's chunks — each preceded by a warmup prefix
/// that primes bank/row-buffer/refresh state without being counted — and
/// scale the measured counters to full-trace estimates with confidence
/// intervals.  This is classic cluster sampling over the chunk index:
/// extensive metrics (reads, writes, energy, time) use the expansion
/// estimator N·mean, intensive metrics (latencies, power, bandwidth) use
/// ratio estimators, and both carry finite-population-corrected
/// Student-t intervals.  The trade is explicit: a 10% fraction buys ~10x
/// wall-time reduction and reports how much accuracy it cost.

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "gmd/cpusim/memory_event.hpp"
#include "gmd/memsim/config.hpp"
#include "gmd/memsim/metrics.hpp"

namespace gmd::memsim {

/// Chunk-granular view of an event trace, the unit of sampling.  memsim
/// deliberately does not link the trace-store library; adapters live
/// with the containers (SpanChunkedTrace below for in-memory traces, a
/// TraceStoreReader adapter in gmd::dse for GMDT files, whose native
/// chunk index maps 1:1 onto this interface).
class ChunkedTrace {
 public:
  virtual ~ChunkedTrace() = default;

  virtual std::size_t num_chunks() const = 0;

  /// Events of chunk `index`, in tick order.  The span is valid until
  /// the next chunk() call (implementations may reuse a decode buffer).
  virtual std::span<const cpusim::MemoryEvent> chunk(std::size_t index) = 0;
};

/// Fixed-size chunking over an in-memory event span (non-owning).  The
/// last chunk holds the remainder.
class SpanChunkedTrace final : public ChunkedTrace {
 public:
  SpanChunkedTrace(std::span<const cpusim::MemoryEvent> events,
                   std::size_t chunk_events);

  std::size_t num_chunks() const override;
  std::span<const cpusim::MemoryEvent> chunk(std::size_t index) override;

 private:
  std::span<const cpusim::MemoryEvent> events_;
  std::size_t chunk_events_;
};

/// Parameters of a chunk-sampled run.
struct SampledSimOptions {
  /// Target fraction of chunks to simulate, in (0, 1].  The realized
  /// sample is at least min_sampled_chunks; a sample covering every
  /// chunk degenerates to one exact exhaustive run.
  double fraction = 0.1;

  /// Seed for the chunk subset (deterministic: same seed + same trace =
  /// same sample).
  std::uint64_t seed = 1;

  /// Chunks replayed before each sampled window to prime bank,
  /// row-buffer, and refresh state; their counters are not measured.
  /// One chunk of warmup is enough for the controller-level state here
  /// (row buffers and queues turn over within a few thousand requests);
  /// raise it for very small chunks.
  std::uint32_t warmup_chunks = 1;

  /// Lower bound on the sample size.  Student-t intervals need a
  /// credible variance estimate, and with fewer than ~10 clusters the
  /// estimate is noisy enough that coverage degrades no matter the
  /// quantile; 12 keeps the statistical contract honest while staying
  /// cheap (at least 2 is always enforced).
  std::size_t min_sampled_chunks = 12;

  /// Joint two-sided confidence level over all six reported metric
  /// intervals, in (0, 1): with probability `confidence`, *every*
  /// interval contains its exhaustive value.  Each per-metric interval
  /// is therefore computed at the Bonferroni-corrected level
  /// 1 - (1 - confidence)/6.
  double confidence = 0.95;

  /// Floor on each interval's half-width as a fraction of the estimate.
  /// The steady-state windows make cluster sampling unbiased to first
  /// order (see MemorySystem::begin_measurement()), but window
  /// boundaries still leave an O(queue_depth / chunk_events) residue
  /// the t-interval cannot see when the backlog is not stationary; the
  /// floor absorbs it.
  double min_relative_halfwidth = 0.01;

  void validate() const;
};

/// One metric's confidence interval.
struct MetricInterval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Result of a sampled run: full-trace estimates in MemoryMetrics form
/// plus one interval per paper metric.
struct SampledMetrics {
  /// Scaled estimates.  The six paper metrics are the estimators
  /// described in sampled.cpp; the context fields (total_reads,
  /// execution_seconds, energies, row hits/misses) are expansion
  /// estimates rounded where integral.  Endurance fields stay zero —
  /// max/unique counts do not scale linearly and are not estimated.
  MemoryMetrics estimate;

  /// Confidence intervals, indexed like MemoryMetrics::metric_names().
  std::array<MetricInterval, 6> ci{};

  std::size_t chunks_total = 0;
  std::size_t chunks_sampled = 0;
  std::uint64_t events_simulated = 0;  ///< Including warmup replay.
  std::uint64_t events_measured = 0;   ///< Inside measured windows.

  /// True when the sample covered every chunk: the run was one exact
  /// exhaustive simulation and every interval is a point.
  bool exhaustive = false;
};

/// Runs the chunk-sampled simulation of `trace` under `config`.
/// Deterministic for fixed (config, trace, options).  Respects
/// config.sim.deadline between and inside windows; config.sim
/// worker/reference switches do not apply to the per-window replays
/// (windows are small and run serially).
SampledMetrics simulate_sampled(const MemoryConfig& config,
                                ChunkedTrace& trace,
                                const SampledSimOptions& options);

}  // namespace gmd::memsim
