#pragma once

/// \file channel.hpp
/// One memory channel: transaction queue, scheduler (FCFS / FR-FCFS),
/// page policy, refresh, banks, data bus, and per-channel statistics.

#include <array>
#include <cstdint>
#include <vector>

#include "gmd/memsim/bank.hpp"
#include "gmd/memsim/config.hpp"

namespace gmd::memsim {

/// One memory transaction as seen by a channel.  Times are in
/// memory-controller cycles.
struct Request {
  std::uint64_t arrival = 0;  ///< Enqueue cycle at the controller.
  std::uint32_t rank = 0;
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t column = 0;
  bool is_write = false;

  // Filled by the channel when serviced.
  std::uint64_t service_start = 0;  ///< First command issue cycle.
  std::uint64_t completion = 0;     ///< Data burst completion cycle.

  /// Service latency: controller-initiated to completed (paper's
  /// "average latency").
  std::uint64_t service_latency() const { return completion - service_start; }
  /// Queue + service: request arrival to completion (paper's "total
  /// latency").
  std::uint64_t total_latency() const { return completion - arrival; }
};

/// Aggregated per-channel counters after a simulation run.
struct ChannelStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t activations = 0;
  std::uint64_t precharges = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t sum_service_latency = 0;
  std::uint64_t sum_total_latency = 0;
  std::uint64_t last_completion = 0;        ///< Cycle the channel went idle.
  std::vector<std::uint64_t> bank_bytes;    ///< Bytes moved per bank.

  /// Per-epoch accumulators (completion-cycle epochs); only populated
  /// when MemoryConfig::epoch_cycles > 0.
  struct Epoch {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t sum_total_latency = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<Epoch> epochs;

  double avg_service_latency() const {
    const std::uint64_t n = reads + writes;
    return n ? static_cast<double>(sum_service_latency) /
                   static_cast<double>(n)
             : 0.0;
  }
  double avg_total_latency() const {
    const std::uint64_t n = reads + writes;
    return n ? static_cast<double>(sum_total_latency) / static_cast<double>(n)
             : 0.0;
  }
};

/// Channel controller.  Requests must be offered in arrival order
/// (enqueue() asserts monotone arrivals); drain() finishes the run.
///
/// Two scheduler implementations produce identical results:
///  - the fast path (default): the transaction queue lives in a 64-slot
///    window whose scheduling state is a handful of 64-bit masks (live
///    entries, writes, open-row hits, per-bank membership), one bit per
///    slot.  Slots fill left to right, so bit position is enqueue
///    (= arrival) order and each pick is a count-trailing-zeros over an
///    AND of masks instead of an O(queue_depth) scan;
///  - the reference path (MemSimOptions::reference_mode): the original
///    vector scan + erase, kept so the equivalence suite can prove the
///    fast path bit-identical.  Queue depths beyond the fast window
///    also run here.
class Channel {
 public:
  /// \param config  Memory configuration (geometry/timing/policy);
  /// copied, so temporaries are safe to pass.
  explicit Channel(const MemoryConfig& config);

  /// Queues one transaction.  When the transaction queue is full the
  /// controller first services entries to make room, and the incoming
  /// request (plus everything after it) is pushed back to that drain
  /// point — the back-pressure NVMain's blocking trace reader applies,
  /// which keeps queuing delays bounded by the queue depth.
  void enqueue(const Request& request);

  /// enqueue() minus the argument checks, for callers that guarantee
  /// arrival order and rank/bank ranges up front (predecoded traces
  /// establish both once at build time).  Does not advance the
  /// arrival-order watermark, so don't mix with checked enqueue() on
  /// one channel.
  void enqueue_trusted(const Request& request);

  /// Services every queued transaction.
  void drain();

  /// Refreshes the derived fields of stats() (per-bank byte totals,
  /// refresh count) from current bank state without servicing anything;
  /// drain() ends with the same pass.  Lets a measurement window
  /// snapshot a consistent serviced-requests-only baseline mid-run.
  void sync_stats();

  const ChannelStats& stats() const { return stats_; }
  const std::vector<BankState>& banks() const { return banks_; }

  /// Re-points the cooperative deadline this channel's service loops
  /// poll (the channel owns its config copy, so the setting is per
  /// channel).  The channel-parallel replay points each worker's
  /// channels at that worker's own child token — Deadline::check() is
  /// single-threaded, so workers must not share one.  nullptr disables
  /// polling; the token must outlive the channel's last service call.
  void set_deadline(Deadline* deadline) { config_.sim.deadline = deadline; }

  /// Per-rank activation-rate state (tRRD spacing, tFAW window).
  struct RankState {
    std::uint64_t last_activate = 0;
    bool any_activate = false;
    std::array<std::uint64_t, 4> window{};  ///< Last four ACT times.
    std::uint8_t window_filled = 0;
    std::uint8_t cursor = 0;
  };

 private:
  /// Applies the timing algebra and statistics for one request; shared
  /// by the reference and fast paths.  `b` must be flat_bank(request)
  /// and `row_hit` whether the bank's open row matches — both callers
  /// already have them.  Returns the completion cycle.
  std::uint64_t service_request(Request request, std::size_t b, bool row_hit);
  /// Pushes `cycle` past any refresh window it falls into.  Caches the
  /// containing window so the common case (consecutive requests in the
  /// same window) costs two compares instead of a division.
  std::uint64_t after_refresh(std::uint64_t cycle);
  /// Delays an ACT at `cycle` until the rank's tRRD/tFAW limits allow
  /// it, then records the activation.
  std::uint64_t constrain_and_record_activate(std::uint32_t rank,
                                              std::uint64_t cycle);

  std::size_t flat_bank(const Request& request) const {
    return static_cast<std::size_t>(request.rank) * config_.banks +
           request.bank;
  }

  // Reference path ----------------------------------------------------
  /// Picks the next queue index per scheduling policy.
  std::size_t pick_next() const;
  /// Services queue_[index], removing it from the queue; returns the
  /// request's completion cycle.
  std::uint64_t service(std::size_t index);

  // Fast path ----------------------------------------------------------
  /// Window capacity: one bit of each scheduling mask per slot.
  static constexpr std::uint32_t kWindow = 64;
  /// Largest queue depth the fast path serves.  Depths above this leave
  /// too little slack between the queue and the window edge (compaction
  /// runs every kWindow - queue_depth inserts), so such configs use the
  /// reference path instead.
  static constexpr std::uint32_t kMaxFastDepth = 48;

  /// Places one admitted request into the window and the masks.
  void fast_insert(const Request& pending);
  /// Moves the live slots back to the front of the window, preserving
  /// order; runs when an insert reaches the window edge.
  void compact_window();
  /// Picks and services the scheduler's next request; returns its
  /// completion cycle.
  std::uint64_t fast_service_next();
  std::uint64_t fast_service_slot(std::uint32_t s);

  MemoryConfig config_;
  std::uint64_t access_bytes_;          // config_.access_bytes(), hoisted
  std::vector<BankState> banks_;        // ranks * banks, rank-major
  std::vector<RankState> ranks_;        // activation-rate tracking
  std::uint64_t now_ = 0;               // controller command clock
  std::uint64_t bus_free_ = 0;          // data bus availability
  std::uint64_t last_cas_ = 0;          // channel-level tCCD spacing
  std::uint64_t last_arrival_ = 0;
  std::uint64_t stall_until_ = 0;  // back-pressure point for new arrivals
  std::uint64_t refresh_window_ = 0;  // cached tREFI window start
  ChannelStats stats_;

  // Reference-path storage.
  std::vector<Request> queue_;          // pending, arrival order

  // Fast-path storage.
  bool fast_ = true;
  bool track_hits_ = false;  // FR-FCFS + open page maintains hit bits
  std::uint64_t live_mask_ = 0;   // slots holding a pending request
  std::uint64_t write_mask_ = 0;  // pending writes
  std::uint64_t hit_mask_ = 0;    // pending open-row hits
  std::uint32_t pos_ = 0;         // next insert slot; monotone between
                                  // compactions, so position = age
  std::uint32_t arrived_ = 0;     // cached arrival<=horizon boundary
  std::uint32_t queued_reads_ = 0;
  std::uint32_t queued_writes_ = 0;
  std::array<Request, kWindow> window_{};
  std::array<std::uint32_t, kWindow> slot_bank_{};  // flat bank per slot
  std::vector<std::uint64_t> bank_mask_;  // per flat bank: live members
};

}  // namespace gmd::memsim
