#pragma once

/// \file channel.hpp
/// One memory channel: transaction queue, scheduler (FCFS / FR-FCFS),
/// page policy, refresh, banks, data bus, and per-channel statistics.

#include <array>
#include <cstdint>
#include <vector>

#include "gmd/memsim/bank.hpp"
#include "gmd/memsim/config.hpp"

namespace gmd::memsim {

/// One memory transaction as seen by a channel.  Times are in
/// memory-controller cycles.
struct Request {
  std::uint64_t arrival = 0;  ///< Enqueue cycle at the controller.
  std::uint32_t rank = 0;
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t column = 0;
  bool is_write = false;

  // Filled by the channel when serviced.
  std::uint64_t service_start = 0;  ///< First command issue cycle.
  std::uint64_t completion = 0;     ///< Data burst completion cycle.

  /// Service latency: controller-initiated to completed (paper's
  /// "average latency").
  std::uint64_t service_latency() const { return completion - service_start; }
  /// Queue + service: request arrival to completion (paper's "total
  /// latency").
  std::uint64_t total_latency() const { return completion - arrival; }
};

/// Aggregated per-channel counters after a simulation run.
struct ChannelStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  std::uint64_t activations = 0;
  std::uint64_t precharges = 0;
  std::uint64_t refreshes = 0;
  std::uint64_t sum_service_latency = 0;
  std::uint64_t sum_total_latency = 0;
  std::uint64_t last_completion = 0;        ///< Cycle the channel went idle.
  std::vector<std::uint64_t> bank_bytes;    ///< Bytes moved per bank.

  /// Per-epoch accumulators (completion-cycle epochs); only populated
  /// when MemoryConfig::epoch_cycles > 0.
  struct Epoch {
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t sum_total_latency = 0;
    std::uint64_t bytes = 0;
  };
  std::vector<Epoch> epochs;

  double avg_service_latency() const {
    const std::uint64_t n = reads + writes;
    return n ? static_cast<double>(sum_service_latency) /
                   static_cast<double>(n)
             : 0.0;
  }
  double avg_total_latency() const {
    const std::uint64_t n = reads + writes;
    return n ? static_cast<double>(sum_total_latency) / static_cast<double>(n)
             : 0.0;
  }
};

/// Channel controller.  Requests must be offered in arrival order
/// (enqueue() asserts monotone arrivals); drain() finishes the run.
class Channel {
 public:
  /// \param config  Memory configuration (geometry/timing/policy);
  /// copied, so temporaries are safe to pass.
  explicit Channel(const MemoryConfig& config);

  /// Queues one transaction.  When the transaction queue is full the
  /// controller first services entries to make room, and the incoming
  /// request (plus everything after it) is pushed back to that drain
  /// point — the back-pressure NVMain's blocking trace reader applies,
  /// which keeps queuing delays bounded by the queue depth.
  void enqueue(const Request& request);

  /// Services every queued transaction.
  void drain();

  const ChannelStats& stats() const { return stats_; }
  const std::vector<BankState>& banks() const { return banks_; }

  /// Per-rank activation-rate state (tRRD spacing, tFAW window).
  struct RankState {
    std::uint64_t last_activate = 0;
    bool any_activate = false;
    std::array<std::uint64_t, 4> window{};  ///< Last four ACT times.
    std::uint8_t window_filled = 0;
    std::uint8_t cursor = 0;
  };

 private:
  /// Picks the next queue index per scheduling policy.
  std::size_t pick_next() const;
  /// Services queue_[index], removing it from the queue; returns the
  /// request's completion cycle.
  std::uint64_t service(std::size_t index);
  /// Pushes `cycle` past any refresh window it falls into and charges
  /// refresh energy bookkeeping.
  std::uint64_t after_refresh(std::uint64_t cycle) const;
  /// Delays an ACT at `cycle` until the rank's tRRD/tFAW limits allow
  /// it, then records the activation.
  std::uint64_t constrain_and_record_activate(std::uint32_t rank,
                                              std::uint64_t cycle);

  MemoryConfig config_;
  std::vector<BankState> banks_;        // ranks * banks, rank-major
  std::vector<RankState> ranks_;        // activation-rate tracking
  std::vector<Request> queue_;          // pending, arrival order
  std::uint64_t now_ = 0;               // controller command clock
  std::uint64_t bus_free_ = 0;          // data bus availability
  std::uint64_t last_cas_ = 0;          // channel-level tCCD spacing
  std::uint64_t last_arrival_ = 0;
  std::uint64_t stall_until_ = 0;  // back-pressure point for new arrivals
  ChannelStats stats_;
};

}  // namespace gmd::memsim
