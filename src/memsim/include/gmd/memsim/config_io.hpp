#pragma once

/// \file config_io.hpp
/// NVMain-style configuration files.  NVMain drives its simulations
/// from plain `KEY value` text files (one pair per line, `;` comments);
/// this module reads and writes MemoryConfig in that format so
/// configurations can be versioned, diffed, and swept by scripts, as
/// the paper's configuration-generation scripts did.
///
/// Recognized keys follow NVMain naming where one exists (CLK, CPUFreq,
/// CHANNELS, RANKS, BANKS, ROWS, tRCD, tRAS, tRP, tCAS, tBURST, tWR,
/// tCCD, tRFC, tREFI, QueueDepth, MEM_CTL, ClosePage, ...), with
/// gmd-prefixed extensions for the energy model.

#include <iosfwd>
#include <string>

#include "gmd/memsim/config.hpp"

namespace gmd::memsim {

/// Serializes a configuration as an NVMain-style config file.
void write_config(std::ostream& os, const MemoryConfig& config);
void save_config(const std::string& path, const MemoryConfig& config);

/// Parses an NVMain-style config file.  Unknown keys throw (catching
/// typos in sweep scripts); missing keys keep their defaults.  The
/// result is validated before being returned.
MemoryConfig read_config(std::istream& is);
MemoryConfig load_config(const std::string& path);

}  // namespace gmd::memsim
