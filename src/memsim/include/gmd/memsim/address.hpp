#pragma once

/// \file address.hpp
/// Physical-address decomposition into (channel, rank, bank, row,
/// column) under a configurable NVMain-style mapping scheme (see
/// MemoryConfig::address_mapping).  The scheme decides which hardware
/// resource consecutive addresses interleave across first.

#include <array>
#include <cstdint>
#include <string>

#include "gmd/memsim/config.hpp"

namespace gmd::memsim {

struct DecodedAddress {
  std::uint32_t channel = 0;
  std::uint32_t rank = 0;
  std::uint32_t bank = 0;
  std::uint32_t row = 0;
  std::uint32_t column = 0;  ///< Column in access-size units.

  friend bool operator==(const DecodedAddress&,
                         const DecodedAddress&) = default;
};

/// Decodes addresses for one MemoryConfig.  Bits below one access are
/// an offset and ignored; the remaining fields follow the configured
/// mapping scheme, with the topmost field (typically the row) wrapping
/// modulo its size so any trace fits any capacity.
class AddressDecoder {
 public:
  explicit AddressDecoder(const MemoryConfig& config);

  DecodedAddress decode(std::uint64_t address) const;

  /// Flat bank index in [0, channels * ranks * banks).
  std::uint32_t flat_bank(const DecodedAddress& a) const {
    return (a.channel * ranks_ + a.rank) * banks_ + a.bank;
  }
  std::uint32_t total_banks() const { return channels_ * ranks_ * banks_; }

  /// The parsed scheme, normalized (e.g. "R:RK:BK:C:CH").
  std::string scheme() const;

 private:
  enum class Field { kRow, kRank, kBank, kColumn, kChannel };

  std::uint32_t field_size(Field field) const;

  std::uint32_t channels_;
  std::uint32_t ranks_;
  std::uint32_t banks_;
  std::uint32_t rows_;
  std::uint32_t columns_per_row_;
  std::uint64_t access_bytes_;
  std::array<Field, 5> lsb_to_msb_{};  ///< Decode order.

  /// When every field size (and the access size) is a power of two —
  /// the usual hardware geometry — each field is a fixed bit slice of
  /// the address and decode() is five shift-and-masks instead of five
  /// divisions.  shift_/mask_ are indexed by Field.
  bool pow2_ = false;
  std::uint32_t access_shift_ = 0;
  std::array<std::uint32_t, 5> shift_{};
  std::array<std::uint32_t, 5> mask_{};
};

}  // namespace gmd::memsim
