#pragma once

/// \file metrics.hpp
/// The memory responses the workflow extracts from a simulation —
/// exactly the six metrics the paper trains surrogates for, plus the
/// diagnostics (energy breakdown, row-buffer behaviour, endurance) that
/// NVMain also reports.

#include <cstdint>
#include <string>
#include <vector>

namespace gmd::memsim {

struct MemoryMetrics {
  // --- the paper's six response metrics -----------------------------
  double avg_power_per_channel_w = 0.0;
  double avg_bandwidth_per_bank_mbs = 0.0;
  double avg_latency_cycles = 0.0;        ///< Service latency (no queue).
  double avg_total_latency_cycles = 0.0;  ///< Includes queuing delay.
  double avg_reads_per_channel = 0.0;
  double avg_writes_per_channel = 0.0;

  // --- run context ----------------------------------------------------
  std::uint64_t total_reads = 0;
  std::uint64_t total_writes = 0;
  std::uint32_t channels = 0;
  std::uint32_t banks_total = 0;
  double execution_seconds = 0.0;

  // --- energy breakdown ------------------------------------------------
  double dynamic_energy_j = 0.0;     ///< ACT/PRE/RD/WR/REF energy.
  double background_energy_j = 0.0;  ///< Static + clock-proportional.
  double total_energy_j() const {
    return dynamic_energy_j + background_energy_j;
  }

  // --- row buffer -------------------------------------------------------
  std::uint64_t row_hits = 0;
  std::uint64_t row_misses = 0;
  double row_hit_rate() const {
    const std::uint64_t total = row_hits + row_misses;
    return total ? static_cast<double>(row_hits) / static_cast<double>(total)
                 : 0.0;
  }

  // --- endurance ---------------------------------------------------------
  std::uint64_t max_line_writes = 0;    ///< Hottest 64B line's write count.
  std::uint64_t unique_lines_written = 0;

  // --- epoch time series (NVMain PrintGraphs) ---------------------------
  struct EpochSample {
    std::uint64_t epoch = 0;        ///< Index; start = epoch * epoch_cycles.
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    double avg_total_latency_cycles = 0.0;
    double bandwidth_mbs = 0.0;     ///< Whole-system bandwidth this epoch.
  };
  /// Per-epoch activity (by completion cycle), merged across channels;
  /// empty unless MemoryConfig::epoch_cycles was set.
  std::vector<EpochSample> epochs;

  /// Human-readable report.
  std::string describe() const;

  /// Column names / row values for dataset assembly, in matching order.
  static const std::vector<std::string>& metric_names();
  std::vector<double> metric_values() const;
};

}  // namespace gmd::memsim
