#pragma once

/// \file memory_system.hpp
/// A complete single-technology main-memory system: address decoder,
/// one controller per channel, energy model, endurance tracking —
/// driven by a CPU-tick-stamped memory-event trace, like NVMain's
/// trace-reader main loop.

#include <cstdint>
#include <span>
#include <vector>

#include "gmd/common/flat_counter.hpp"
#include "gmd/cpusim/memory_event.hpp"
#include "gmd/memsim/address.hpp"
#include "gmd/memsim/channel.hpp"
#include "gmd/memsim/config.hpp"
#include "gmd/memsim/metrics.hpp"
#include "gmd/memsim/predecoded_trace.hpp"

namespace gmd::memsim {

class MemorySystem {
 public:
  explicit MemorySystem(const MemoryConfig& config);

  const MemoryConfig& config() const { return config_; }

  /// Feeds one trace event.  Events must arrive in non-decreasing tick
  /// order.  `tick` is a CPU cycle; the controller sees it scaled to
  /// the memory clock.  Accesses wider than one memory word are split.
  void enqueue_event(const cpusim::MemoryEvent& event);

  /// Feeds an already split/decoded/scaled request stream.  The trace's
  /// decode key must match this system's config (GMD_REQUIRE'd);
  /// produces results identical to replaying the raw events.
  void enqueue_predecoded(const PredecodedTrace& trace);

  /// Ends the warmup phase of a measured window (the sampled-simulation
  /// path): snapshots per-channel counter baselines at the serviced
  /// frontier and clears endurance tracking.  finish() then reports
  /// metrics for the steady-state schedule inside the window — warmup
  /// primes bank, row-buffer, refresh, and queue-backlog state without
  /// being counted, and the queues are deliberately *not* drained at
  /// either window edge (warmup requests completing in-window stand in
  /// for the window's own still-queued tail, so the boundaries cancel
  /// under a stationary backlog).  Callable at most once; requires
  /// epoch_cycles == 0 (epoch series are whole-run).  When never
  /// called, finish() is bit-identical to the unwindowed arithmetic
  /// (baselines are all zero).
  void begin_measurement();

  /// Computes the final metrics.  Whole-trace runs drain every
  /// controller first; measurement windows stop at the serviced
  /// frontier instead (see begin_measurement()).
  MemoryMetrics finish();

  /// One-shot convenience: simulate a whole trace.  With
  /// config.sim.num_workers > 1 the trace is predecoded internally and
  /// replayed channel-parallel (bit-identical to the serial run).
  static MemoryMetrics simulate(const MemoryConfig& config,
                                std::span<const cpusim::MemoryEvent> trace);

  /// One-shot fast path over a shared predecoded trace — the sweep's
  /// hot loop, which skips per-config word splitting and address
  /// decoding entirely.  With config.sim.num_workers > 1 the replay is
  /// channel-parallel over trace.partition_by_channel(); results are
  /// bit-identical to serial replay at any worker count (reference_mode
  /// forces serial).
  static MemoryMetrics simulate(const MemoryConfig& config,
                                const PredecodedTrace& trace);

  /// Converts a CPU tick to a memory-controller cycle.
  std::uint64_t tick_to_memory_cycle(std::uint64_t tick) const;

  const std::vector<Channel>& channels() const { return channels_; }

 private:
  void enqueue_word(std::uint64_t cycle, std::uint64_t address, bool is_write);

  /// Channel-parallel replay: `workers` threads own disjoint channel
  /// sets (round-robin by channel index), each enqueueing and draining
  /// its channels from the trace's per-channel partition under its own
  /// child Deadline.  Per-worker endurance counters merge in worker
  /// order after the join.  Leaves every channel drained, so the
  /// following finish() only assembles metrics.
  void replay_parallel(const PredecodedTrace& trace, std::uint32_t workers);

  MemoryConfig config_;
  AddressDecoder decoder_;
  std::vector<Channel> channels_;
  TickConverter ticker_{config_};  ///< Per-event tick scaling.
  FlatCounter line_writes_;  ///< 64B-line write counts (endurance).
  /// Per-channel counter baselines subtracted by finish().  All zero
  /// until begin_measurement() snapshots the warmup totals; subtracting
  /// zero is exact, so the unwindowed path's arithmetic is unchanged.
  std::vector<ChannelStats> baseline_;
  std::uint64_t measure_start_ = 0;  ///< Wall clock at window start.
  bool measuring_ = false;
  bool finished_ = false;
};

}  // namespace gmd::memsim
