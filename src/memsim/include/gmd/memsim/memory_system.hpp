#pragma once

/// \file memory_system.hpp
/// A complete single-technology main-memory system: address decoder,
/// one controller per channel, energy model, endurance tracking —
/// driven by a CPU-tick-stamped memory-event trace, like NVMain's
/// trace-reader main loop.

#include <cstdint>
#include <span>
#include <vector>

#include "gmd/common/flat_counter.hpp"
#include "gmd/cpusim/memory_event.hpp"
#include "gmd/memsim/address.hpp"
#include "gmd/memsim/channel.hpp"
#include "gmd/memsim/config.hpp"
#include "gmd/memsim/metrics.hpp"
#include "gmd/memsim/predecoded_trace.hpp"

namespace gmd::memsim {

class MemorySystem {
 public:
  explicit MemorySystem(const MemoryConfig& config);

  const MemoryConfig& config() const { return config_; }

  /// Feeds one trace event.  Events must arrive in non-decreasing tick
  /// order.  `tick` is a CPU cycle; the controller sees it scaled to
  /// the memory clock.  Accesses wider than one memory word are split.
  void enqueue_event(const cpusim::MemoryEvent& event);

  /// Feeds an already split/decoded/scaled request stream.  The trace's
  /// decode key must match this system's config (GMD_REQUIRE'd);
  /// produces results identical to replaying the raw events.
  void enqueue_predecoded(const PredecodedTrace& trace);

  /// Drains all controllers and computes the final metrics.
  MemoryMetrics finish();

  /// One-shot convenience: simulate a whole trace.
  static MemoryMetrics simulate(const MemoryConfig& config,
                                std::span<const cpusim::MemoryEvent> trace);

  /// One-shot fast path over a shared predecoded trace — the sweep's
  /// hot loop, which skips per-config word splitting and address
  /// decoding entirely.
  static MemoryMetrics simulate(const MemoryConfig& config,
                                const PredecodedTrace& trace);

  /// Converts a CPU tick to a memory-controller cycle.
  std::uint64_t tick_to_memory_cycle(std::uint64_t tick) const;

  const std::vector<Channel>& channels() const { return channels_; }

 private:
  void enqueue_word(std::uint64_t cycle, std::uint64_t address, bool is_write);

  MemoryConfig config_;
  AddressDecoder decoder_;
  std::vector<Channel> channels_;
  TickConverter ticker_{config_};  ///< Per-event tick scaling.
  FlatCounter line_writes_;  ///< 64B-line write counts (endurance).
  bool finished_ = false;
};

}  // namespace gmd::memsim
