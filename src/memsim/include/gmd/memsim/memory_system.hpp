#pragma once

/// \file memory_system.hpp
/// A complete single-technology main-memory system: address decoder,
/// one controller per channel, energy model, endurance tracking —
/// driven by a CPU-tick-stamped memory-event trace, like NVMain's
/// trace-reader main loop.

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "gmd/cpusim/memory_event.hpp"
#include "gmd/memsim/address.hpp"
#include "gmd/memsim/channel.hpp"
#include "gmd/memsim/config.hpp"
#include "gmd/memsim/metrics.hpp"

namespace gmd::memsim {

class MemorySystem {
 public:
  explicit MemorySystem(const MemoryConfig& config);

  const MemoryConfig& config() const { return config_; }

  /// Feeds one trace event.  Events must arrive in non-decreasing tick
  /// order.  `tick` is a CPU cycle; the controller sees it scaled to
  /// the memory clock.  Accesses wider than one memory word are split.
  void enqueue_event(const cpusim::MemoryEvent& event);

  /// Drains all controllers and computes the final metrics.
  MemoryMetrics finish();

  /// One-shot convenience: simulate a whole trace.
  static MemoryMetrics simulate(const MemoryConfig& config,
                                std::span<const cpusim::MemoryEvent> trace);

  /// Converts a CPU tick to a memory-controller cycle.
  std::uint64_t tick_to_memory_cycle(std::uint64_t tick) const;

  const std::vector<Channel>& channels() const { return channels_; }

 private:
  void enqueue_word(std::uint64_t tick, std::uint64_t address, bool is_write);

  MemoryConfig config_;
  AddressDecoder decoder_;
  std::vector<Channel> channels_;
  std::unordered_map<std::uint64_t, std::uint64_t> line_writes_;
  bool finished_ = false;
};

}  // namespace gmd::memsim
